"""Snapshot of the public API surface.

``repro.__all__`` and ``repro.api.__all__`` are pinned name for name:
an accidental removal, rename, or silent addition fails here before it
reaches a caller.  Growing the API deliberately means updating the
snapshot in the same change — which is the point.
"""

from __future__ import annotations

import pytest

import repro
import repro.api
import repro.errors

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")


EXPECTED_API = frozenset({
    "CAPABILITIES",
    "CapabilityEntry",
    "ConnectivityQuery",
    "ConnectivityResult",
    "CutQuery",
    "CutQueryResult",
    "GraphSketchEngine",
    "KEdgeConnectivityQuery",
    "KEdgeConnectivityResult",
    "MinCutQuery",
    "MinCutQueryResult",
    "PropertiesQuery",
    "PropertiesResult",
    "Query",
    "QueryResult",
    "QueryTelemetry",
    "SketchSpec",
    "SpannerDistanceQuery",
    "SpannerDistanceResult",
    "SparsifierQuery",
    "SparsifierResult",
    "SubgraphCountQuery",
    "SubgraphCountResult",
    "WIRE_VERSION",
    "build_sketch",
    "capability_entry",
    "capability_of",
    "kind_of_sketch",
    "query_from_dict",
    "query_to_dict",
    "register_capability",
    "registered_kinds",
    "result_from_dict",
    "result_to_dict",
})

EXPECTED_SKETCH_CLASSES = frozenset({
    "BaswanaSenSpanner",
    "BipartitenessSketch",
    "CutEdgesSketch",
    "EdgeConnectivitySketch",
    "MinCutSketch",
    "MSTWeightSketch",
    "RecurseConnectSpanner",
    "SimpleSparsification",
    "Sparsification",
    "SpanningForestSketch",
    "SubgraphSketch",
    "WeightedSparsification",
})

EXPECTED_EXCEPTIONS = frozenset({
    "AdaptivityError",
    "EpochStoreError",
    "GraphError",
    "NotSupportedError",
    "RecoveryFailed",
    "ReproError",
    "SamplerFailed",
    "SketchCompatibilityError",
    "SketchFailure",
    "StoreCorruptionError",
    "StreamError",
    "WireFormatError",
})

EXPECTED_STREAM_MODEL = frozenset({
    "DynamicGraphStream",
    "EdgeUpdate",
    "HashSource",
    "StreamBatch",
})

EXPECTED_TEMPORAL_STORE = frozenset({
    "EpochStore",
    "RetentionPolicy",
})

EXPECTED_TOP_LEVEL = (
    EXPECTED_API
    | EXPECTED_SKETCH_CLASSES
    | EXPECTED_EXCEPTIONS
    | EXPECTED_STREAM_MODEL
    | EXPECTED_TEMPORAL_STORE
    | {"__version__", "error_code_table"}
)

EXPECTED_KINDS = (
    "baswana_sen_spanner",
    "bipartiteness",
    "cut_edges",
    "edge_connectivity",
    "mincut",
    "mst_weight",
    "recurse_connect_spanner",
    "simple_sparsification",
    "spanning_forest",
    "sparsification",
    "subgraph_count",
    "weighted_sparsification",
)

EXPECTED_CAPABILITIES = (
    "connectivity",
    "k-edge-connectivity",
    "mincut",
    "cut-query",
    "sparsifier",
    "spanner-distance",
    "subgraph-count",
    "properties",
)


class TestTopLevelSurface:
    def test_all_matches_snapshot(self):
        assert frozenset(repro.__all__) == EXPECTED_TOP_LEVEL

    def test_every_exported_name_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ exports missing {name}"

    def test_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))


class TestApiSurface:
    def test_all_matches_snapshot(self):
        assert frozenset(repro.api.__all__) == EXPECTED_API

    def test_every_exported_name_resolves(self):
        for name in repro.api.__all__:
            assert hasattr(repro.api, name)


class TestExceptionHierarchy:
    def test_every_public_exception_is_exported(self):
        """No exception class hides in repro.errors unexported."""
        public = {
            name for name, obj in vars(repro.errors).items()
            if isinstance(obj, type)
            and issubclass(obj, Exception)
            and not name.startswith("_")
        }
        assert public == EXPECTED_EXCEPTIONS
        assert public <= set(repro.__all__)

    def test_all_derive_from_repro_error(self):
        for name in EXPECTED_EXCEPTIONS - {"ReproError"}:
            assert issubclass(getattr(repro, name), repro.ReproError)


class TestRegistrySnapshots:
    def test_registered_kinds(self):
        assert repro.registered_kinds() == EXPECTED_KINDS

    def test_capability_vocabulary(self):
        assert repro.CAPABILITIES == EXPECTED_CAPABILITIES

    def test_every_kind_declares_known_capabilities(self):
        for kind in repro.registered_kinds():
            entry = repro.capability_entry(kind)
            assert entry.queries, f"{kind} declares no capabilities"
            assert entry.queries <= set(EXPECTED_CAPABILITIES)
