"""Property-based temporal equivalence harness.

The temporal contract, pinned *byte-for-byte* for every serialisable
sketch class over hypothesis-generated insert/delete streams and epoch
grids: for any epoch-aligned window ``[t1, t2)``, the following three
sketches are identical —

(a) a fresh sketch consuming only the window's tokens (direct),
(b) ``checkpoint[t2] - checkpoint[t1]`` (temporal subtraction),
(c) the same subtraction over a timeline whose checkpoints were sealed
    per-site and merged across shards (PR 2 strategies × temporal).

Linearity makes all three exact, so the harness compares serialised
bytes — cell arrays, parameters, and seeds at once.  Algebraic
identities of ``subtract``/``negate`` ride along at the bottom.

The whole module runs once per available kernel backend (the autouse
``kernel_backend`` fixture below): byte-identity across backends is the
parity contract of :mod:`repro.kernels`, and this harness is what pins
it — a backend whose kernels drift by even one residue fails here on
hypothesis-generated streams.  On a numpy-only install that is a single
pass; where numba imports, every property runs under both backends.
"""

from __future__ import annotations

import functools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    BipartitenessSketch,
    CutEdgesSketch,
    EdgeConnectivitySketch,
    MinCutSketch,
    MSTWeightSketch,
    SimpleSparsification,
    Sparsification,
    SpanningForestSketch,
    SubgraphSketch,
    WeightedSparsification,
)
from repro.distributed import PARTITION_STRATEGIES, ShardedSketchRunner
from repro.errors import SketchCompatibilityError
from repro.hashing import HashSource
from repro.sketch import dump_sketch
from repro.streams import DynamicGraphStream
from repro.temporal import EpochManager, EpochTimeline, TemporalQueryEngine

from strategies import streams_with_epochs

from repro import kernels

N = 8


@pytest.fixture(
    params=kernels.available_backends(),
    ids=lambda backend: f"kernels-{backend}",
    autouse=True,
    scope="module",
)
def kernel_backend(request):
    """Pin the parity contract: the harness repeats per kernel backend."""
    previous = kernels.backend_name()
    selected = kernels.use(request.param)
    assert selected == request.param, (
        f"backend {request.param!r} advertised as available but "
        f"selection fell back to {selected!r}"
    )
    yield selected
    kernels.use(previous)


def _forest(seed):
    return SpanningForestSketch(N, HashSource(seed))


def _edge_connect(seed):
    return EdgeConnectivitySketch(N, 2, HashSource(seed))


def _mincut(seed):
    return MinCutSketch(N, epsilon=0.5, source=HashSource(seed), c_k=0.4)


def _simple_sparsify(seed):
    return SimpleSparsification(N, epsilon=0.5, source=HashSource(seed), c_k=0.15)


def _sparsify(seed):
    return Sparsification(
        N, epsilon=0.5, source=HashSource(seed), c_k=0.3, c_rough=0.05
    )


def _weighted(seed):
    return WeightedSparsification(
        N, max_weight=2, epsilon=0.5, source=HashSource(seed), c_k=0.15
    )


def _subgraph(seed):
    return SubgraphSketch(N, order=3, samplers=6, source=HashSource(seed))


def _cut_edges(seed):
    return CutEdgesSketch(N, k=6, source=HashSource(seed))


def _bipartite(seed):
    return BipartitenessSketch(N, HashSource(seed))


def _mst(seed):
    return MSTWeightSketch(N, max_weight=2, source=HashSource(seed))


#: Cheap-to-construct classes get more hypothesis examples; the
#: hierarchy sketches (dozens of constituent banks each) get fewer —
#: the algebra they exercise is identical, only the bank count grows.
CHEAP_CASES = [
    ("spanning_forest", _forest),
    ("cut_edges", _cut_edges),
    ("subgraph_count", _subgraph),
    ("bipartiteness", _bipartite),
]
HEAVY_CASES = [
    ("edge_connectivity", _edge_connect),
    ("mst_weight", _mst),
    ("mincut", _mincut),
    ("simple_sparsification", _simple_sparsify),
    ("weighted_sparsification", _weighted),
    ("sparsification", _sparsify),
]
#: Every registry-serialisable sketch class.
SKETCH_CASES = CHEAP_CASES + HEAVY_CASES


def _stream_from(tokens: list[tuple[int, int, int]]) -> DynamicGraphStream:
    stream = DynamicGraphStream(N)
    for u, v, delta in tokens:
        if delta > 0:
            stream.insert(u, v, delta)
        else:
            stream.delete(u, v, -delta)
    return stream


def _window_pairs(epochs: int) -> list[tuple[int, int]]:
    """All windows for tiny grids, a representative sweep otherwise."""
    if epochs <= 2:
        return [(a, b) for a in range(epochs) for b in range(a + 1, epochs + 1)]
    return [(0, epochs), (epochs // 2, epochs), (1, 2), (epochs - 1, epochs)]


temporal_settings = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

heavy_settings = settings(
    max_examples=2,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _check_window_equivalence(maker, name, data, shard):
    """Shared body for the (a)/(b)/(c) byte-identity property.

    The sharded route is pinned at the checkpoint level: once the
    merged-across-sites timeline is byte-identical to the single-site
    one (epoch metadata included), window subtraction over it is the
    same computation, so only the single-site engine needs the
    per-window sweep.
    """
    tokens, boundaries = data
    strategy, sites = shard
    seed = 5000 + sum(ord(c) for c in name)
    factory = functools.partial(maker, seed)
    stream = _stream_from(tokens)
    batch = stream.as_batch()

    timeline = EpochManager.consume(factory, stream, boundaries=boundaries)
    engine = TemporalQueryEngine(timeline)
    sharded = ShardedSketchRunner(
        factory, sites=sites, strategy=strategy, seed=3
    ).run_epochs(stream, boundaries=boundaries)
    assert [c.payload for c in sharded.timeline.checkpoints] == [
        c.payload for c in timeline.checkpoints
    ], f"{name}: sharded timeline differs at K={sites}, {strategy}"

    for t1, t2 in _window_pairs(timeline.epochs):
        start = boundaries[t1 - 1] if t1 else 0
        direct = factory()
        direct.consume_batch(batch.slice(start, boundaries[t2 - 1]))
        assert dump_sketch(engine.window_sketch(t1, t2)) == dump_sketch(
            direct
        ), f"{name}: subtraction window [{t1},{t2}) differs from direct"


class TestWindowEquivalence:
    @pytest.mark.parametrize(
        "name,maker", CHEAP_CASES, ids=[c[0] for c in CHEAP_CASES]
    )
    @temporal_settings
    @given(data=streams_with_epochs(n=N, max_tokens=30, max_epochs=4),
           shard=st.tuples(
               st.sampled_from(PARTITION_STRATEGIES), st.integers(2, 3)
           ))
    def test_direct_subtraction_and_sharded_agree(self, name, maker, data, shard):
        _check_window_equivalence(maker, name, data, shard)

    @pytest.mark.parametrize(
        "name,maker", HEAVY_CASES, ids=[c[0] for c in HEAVY_CASES]
    )
    @heavy_settings
    @given(data=streams_with_epochs(n=N, max_tokens=24, max_epochs=3),
           shard=st.tuples(
               st.sampled_from(PARTITION_STRATEGIES), st.integers(2, 3)
           ))
    def test_hierarchy_classes_agree(self, name, maker, data, shard):
        _check_window_equivalence(maker, name, data, shard)

    @temporal_settings
    @given(data=streams_with_epochs(n=N, max_tokens=40, max_epochs=4))
    def test_manifest_round_trip_preserves_windows(self, data):
        tokens, boundaries = data
        factory = functools.partial(_forest, 777)
        stream = _stream_from(tokens)
        timeline = EpochManager.consume(factory, stream, boundaries=boundaries)
        restored = EpochTimeline.from_bytes(timeline.to_bytes())
        assert restored.boundaries == timeline.boundaries
        engine = TemporalQueryEngine(restored)
        for t1, t2 in _window_pairs(timeline.epochs):
            assert dump_sketch(engine.window_sketch(t1, t2)) == dump_sketch(
                TemporalQueryEngine(timeline).window_sketch(t1, t2)
            )


class TestSubtractAlgebra:
    @pytest.mark.parametrize(
        "name,maker", SKETCH_CASES, ids=[c[0] for c in SKETCH_CASES]
    )
    def test_subtract_then_merge_is_identity(self, name, maker):
        """(x - y) + y == x, and x - x == 0, for every sketch class."""
        stream = _stream_from(
            [(0, 1, 1), (1, 2, 2), (2, 3, 1), (1, 2, -1), (0, 4, 1),
             (3, 5, 2), (0, 1, -1), (4, 6, 1)]
        )
        half = DynamicGraphStream(N, list(stream)[: len(stream) // 2])
        whole = maker(61).consume(stream)
        reference = dump_sketch(whole)
        whole.subtract(maker(61).consume(half))
        whole.merge(maker(61).consume(half))
        assert dump_sketch(whole) == reference
        zero = maker(61).consume(stream)
        zero.subtract(maker(61).consume(stream))
        assert dump_sketch(zero) == dump_sketch(maker(61))

    @pytest.mark.parametrize(
        "name,maker", SKETCH_CASES, ids=[c[0] for c in SKETCH_CASES]
    )
    def test_negate_twice_is_identity(self, name, maker):
        stream = DynamicGraphStream(N)
        stream.insert(0, 1)
        stream.insert(1, 2, 2)
        stream.delete(1, 2)
        sketch = maker(62).consume(stream)
        reference = dump_sketch(sketch)
        sketch.negate()
        assert dump_sketch(sketch) != reference  # non-zero sketch flips
        sketch.negate()
        assert dump_sketch(sketch) == reference

    def test_subtract_refuses_mismatched_seed(self):
        a = _forest(1)
        b = _forest(2)
        with pytest.raises(SketchCompatibilityError):
            a.subtract(b)

    def test_subtract_refuses_mismatched_shape(self):
        a = _edge_connect(3)
        b = EdgeConnectivitySketch(N, 3, HashSource(3))
        with pytest.raises(SketchCompatibilityError):
            a.subtract(b)


class TestQuerySurfaceRouting:
    """Every sketch kind routes through window_answer / the engine."""

    @pytest.mark.parametrize(
        "name,maker", SKETCH_CASES, ids=[c[0] for c in SKETCH_CASES]
    )
    def test_window_answer_has_kind_specific_metric(self, name, maker):
        from repro.temporal import window_answer

        stream = _stream_from(
            [(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 1), (4, 5, 1),
             (1, 2, -1), (1, 2, 1)]
        )
        answer = window_answer(maker(63).consume(stream))
        assert answer["sketch"] == type(maker(63)).__name__
        # Beyond the class name: a real metric or an honest FAIL.
        assert len(answer) >= 2

    def test_unregistered_sketch_gets_note(self):
        from repro.temporal import window_answer

        assert "note" in window_answer(object())

    def test_engine_surface(self):
        factory = functools.partial(_forest, 88)
        stream = _stream_from([(0, 1, 1), (1, 2, 1), (3, 4, 1)])
        engine = TemporalQueryEngine(
            EpochManager.consume(factory, stream, epochs=2)
        )
        assert engine.epochs == 2
        assert engine.window_tokens(0, 2) == 3
        assert dump_sketch(engine.prefix_sketch(2)) == dump_sketch(
            engine.window_sketch(0, 2)
        )
        assert engine.was_connected(0, 2, through_epoch=2)
        assert not engine.was_connected(0, 3, through_epoch=2)
        with pytest.raises(ValueError, match="valid epoch range"):
            engine.window_tokens(2, 2)

    def test_was_connected_requires_connectivity_surface(self):
        factory = functools.partial(_cut_edges, 89)
        stream = _stream_from([(0, 1, 1)])
        engine = TemporalQueryEngine(
            EpochManager.consume(factory, stream, epochs=1)
        )
        with pytest.raises(TypeError, match="connectivity"):
            engine.was_connected(0, 1, through_epoch=1)

    def test_manager_streaming_api(self):
        """extend/seal_epoch incrementally, matching the one-shot path."""
        factory = functools.partial(_forest, 90)
        stream = _stream_from([(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 1, -1)])
        batch = stream.as_batch()
        manager = EpochManager(factory)
        manager.extend(batch.slice(0, 2))
        first = manager.seal_epoch()
        assert (first.epoch, first.tokens, first.cumulative_tokens) == (1, 2, 2)
        manager.extend(batch.slice(2, 4))
        manager.seal_epoch()
        assert manager.sealed_epochs == 2
        assert manager.n == N
        one_shot = EpochManager.consume(factory, stream, boundaries=[2, 4])
        assert [c.payload for c in manager.timeline().checkpoints] == [
            c.payload for c in one_shot.checkpoints
        ]

    def test_manager_rejects_non_columnar_sketch(self):
        with pytest.raises(TypeError, match="consume_batch"):
            EpochManager(lambda: object())
