"""Tests for k-sparse recovery (Theorem 2.2) and the squash encoding (Fig. 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RecoveryFailed
from repro.sketch import (
    SparseRecovery,
    SparseRecoveryBank,
    bucket_count_for,
    is_valid_encoding,
    pair_position_in_subset,
    pair_positions_k3,
    rows_for_order,
    squash_matrix,
    unsquash_value,
)


class TestSparseRecovery:
    def test_exact_recovery(self, source):
        sr = SparseRecovery(10_000, k=6, source=source.derive(1))
        truth = {10: 3, 500: -2, 9999: 1, 42: 7}
        for i, v in truth.items():
            sr.update(i, v)
        assert sr.decode() == truth

    def test_empty_vector_decodes_empty(self, source):
        sr = SparseRecovery(100, k=3, source=source.derive(2))
        assert sr.decode() == {}

    def test_cancellation_to_empty(self, source):
        sr = SparseRecovery(100, k=3, source=source.derive(3))
        sr.update(5, 2)
        sr.update(5, -2)
        assert sr.decode() == {}

    def test_exactly_k_items(self, source):
        k = 10
        sr = SparseRecovery(5000, k=k, source=source.derive(4))
        truth = {i * 97 + 3: i + 1 for i in range(k)}
        sr.update_many(list(truth), list(truth.values()))
        assert sr.decode() == truth

    def test_overfull_fails_honestly(self, source):
        sr = SparseRecovery(5000, k=4, source=source.derive(5))
        sr.update_many(np.arange(0, 4000, 13), np.ones(308, dtype=int))
        with pytest.raises(RecoveryFailed):
            sr.decode()

    def test_update_many_matches_scalar(self, source):
        a = SparseRecovery(1000, k=5, source=source.derive(6))
        b = SparseRecovery(1000, k=5, source=source.derive(6))
        items = [3, 700, 41, 900]
        vals = [1, -2, 3, 4]
        for i, v in zip(items, vals):
            a.update(i, v)
        b.update_many(items, vals)
        assert (a.phi == b.phi).all()
        assert (a.fp1 == b.fp1).all()

    def test_merge_linearity(self, source):
        a = SparseRecovery(500, k=4, source=source.derive(7))
        b = SparseRecovery(500, k=4, source=source.derive(7))
        a.update(10, 1)
        b.update(10, -1)
        b.update(20, 5)
        a.merge(b)
        assert a.decode() == {20: 5}

    def test_merge_seed_mismatch(self, source):
        a = SparseRecovery(500, k=4, source=source.derive(8))
        b = SparseRecovery(500, k=4, source=source.derive(9))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_repeatable_decode(self, source):
        sr = SparseRecovery(100, k=3, source=source.derive(10))
        sr.update(5, 1)
        assert sr.decode() == {5: 1}
        assert sr.decode() == {5: 1}  # decode must not mutate state

    def test_bucket_count_grows_with_k(self):
        assert bucket_count_for(1) >= 2
        assert bucket_count_for(10) > bucket_count_for(2)

    def test_rejects_bad_parameters(self, source):
        with pytest.raises(ValueError):
            SparseRecovery(100, k=0, source=source)
        with pytest.raises(ValueError):
            SparseRecovery(100, k=2, source=source, rows=1)

    def test_out_of_domain_update(self, source):
        sr = SparseRecovery(100, k=2, source=source.derive(11))
        with pytest.raises(ValueError):
            sr.update(100, 1)

    @pytest.mark.parametrize("trial", range(10))
    def test_random_round_trips(self, source, trial):
        rng = np.random.default_rng(trial)
        k = int(rng.integers(1, 12))
        size = int(rng.integers(0, k + 1))
        sr = SparseRecovery(10_000, k=k, source=source.derive(12, trial))
        items = rng.choice(10_000, size=size, replace=False)
        vals = rng.integers(1, 100, size=size)
        sr.update_many(items, vals)
        assert sr.decode() == {int(i): int(v) for i, v in zip(items, vals)}


class TestSparseRecoveryBank:
    def test_decode_single_instance(self, source):
        bank = SparseRecoveryBank(3, 4, 1000, k=5, source=source.derive(20))
        bank.update(np.array([1, 1]), np.array([2, 2]),
                    np.array([10, 800]), np.array([2, -3]))
        assert bank.decode(1, 2) == {10: 2, 800: -3}
        assert bank.decode(0, 0) == {}

    def test_decode_sum_cancels_internal(self, source):
        """The Fig. 3 step 4(c) mechanism: shore sums expose the cut."""
        bank = SparseRecoveryBank(1, 4, 1000, k=5, source=source.derive(21))
        # Edge inside {0,1}: +1 to inst0, -1 to inst1 (same item).
        # Edge crossing {0,1}|{2}: +1 to inst1, -1 to inst2.
        bank.update(
            np.zeros(4, dtype=int),
            np.array([0, 1, 1, 2]),
            np.array([50, 50, 70, 70]),
            np.array([1, -1, 1, -1]),
        )
        assert bank.decode_sum(0, [0, 1]) == {70: 1}
        assert bank.decode_sum(0, [0, 1, 2]) == {}

    def test_decode_sum_overfull_fails(self, source):
        bank = SparseRecoveryBank(1, 2, 4096, k=3, source=source.derive(22))
        items = np.arange(1, 400, 7)
        bank.update(
            np.zeros(items.size, dtype=int),
            np.zeros(items.size, dtype=int),
            items,
            np.ones(items.size, dtype=int),
        )
        with pytest.raises(RecoveryFailed):
            bank.decode_sum(0, [0])

    def test_groups_use_independent_hashes(self, source):
        bank = SparseRecoveryBank(2, 1, 1000, k=4, source=source.derive(23))
        items = np.array([7, 7])
        bank.update(np.array([0, 1]), np.array([0, 0]), items, np.array([1, 1]))
        assert bank.decode(0, 0) == {7: 1}
        assert bank.decode(1, 0) == {7: 1}

    def test_merge(self, source):
        a = SparseRecoveryBank(1, 2, 100, k=3, source=source.derive(24))
        b = SparseRecoveryBank(1, 2, 100, k=3, source=source.derive(24))
        a.update(np.array([0]), np.array([0]), np.array([5]), np.array([1]))
        b.update(np.array([0]), np.array([0]), np.array([5]), np.array([2]))
        a.merge(b)
        assert a.decode(0, 0) == {5: 3}

    def test_merge_mismatch(self, source):
        a = SparseRecoveryBank(1, 2, 100, k=3, source=source.derive(25))
        b = SparseRecoveryBank(1, 2, 100, k=4, source=source.derive(25))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_empty_instance_list_rejected(self, source):
        bank = SparseRecoveryBank(1, 2, 100, k=3, source=source.derive(26))
        with pytest.raises(ValueError):
            bank.decode_sum(0, [])


class TestSquash:
    def test_fig4_example(self):
        """The worked example of Fig. 4 (n=5, k=3)."""
        x = np.array(
            [
                [1, 1, 1, 0, 0, 1, 1, 1, 1, 1],
                [0, 1, 0, 1, 0, 0, 1, 0, 0, 0],
                [1, 1, 0, 1, 0, 1, 1, 0, 1, 1],
            ]
        )
        assert squash_matrix(x).tolist() == [5, 7, 1, 6, 0, 5, 7, 1, 5, 5]

    def test_squash_rejects_non_binary(self):
        with pytest.raises(ValueError):
            squash_matrix(np.array([[0, 2]]))

    def test_squash_rejects_non_2d(self):
        with pytest.raises(ValueError):
            squash_matrix(np.array([1, 0, 1]))

    def test_unsquash_roundtrip(self):
        for value in range(8):
            rows = unsquash_value(value, 3)
            assert sum(1 << r for r in rows) == value

    def test_unsquash_rejects_invalid(self):
        with pytest.raises(ValueError):
            unsquash_value(8, 3)
        with pytest.raises(ValueError):
            unsquash_value(-1, 3)

    def test_is_valid_encoding(self):
        assert is_valid_encoding(7, 3)
        assert not is_valid_encoding(8, 3)

    def test_pair_position_in_subset(self):
        subset = (2, 5, 9)
        assert pair_position_in_subset(subset, 2, 5) == 0
        assert pair_position_in_subset(subset, 2, 9) == 1
        assert pair_position_in_subset(subset, 9, 5) == 2

    def test_pair_position_rejects_outside_pair(self):
        with pytest.raises(ValueError):
            pair_position_in_subset((1, 2, 3), 1, 9)

    def test_pair_positions_k3_matches_generic(self):
        u, v = 4, 10
        w = np.array([0, 5, 20])
        pos = pair_positions_k3(u, v, w)
        for wi, p in zip(w, pos):
            subset = tuple(sorted((u, v, int(wi))))
            assert pair_position_in_subset(subset, u, v) == p

    def test_rows_for_order(self):
        assert rows_for_order(3) == 3
        assert rows_for_order(4) == 6
        assert rows_for_order(5) == 10
