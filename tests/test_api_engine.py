"""Engine/legacy parity: the facade answers are the hand-wired answers.

For every registry sketch kind and every deployment mode — local,
sharded across all four partition strategies, temporal epoch windows,
and sharded-temporal — the :class:`~repro.api.GraphSketchEngine` state
is *byte-identical* to the pipeline a caller would have hand-wired
before the facade existed.  DeprecationWarnings are promoted to errors
here: the engine must never answer through a deprecated shim.

Capability dispatch rides along: every capability a kind declares must
actually answer its canonical query, and every undeclared one must
raise :class:`~repro.errors.NotSupportedError`.
"""

from __future__ import annotations

import functools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import (
    CAPABILITIES,
    ConnectivityQuery,
    CutQuery,
    GraphSketchEngine,
    KEdgeConnectivityQuery,
    MinCutQuery,
    PropertiesQuery,
    QueryResult,
    SketchSpec,
    SpannerDistanceQuery,
    SparsifierQuery,
    SubgraphCountQuery,
    build_sketch,
    capability_entry,
)
from repro.distributed import PARTITION_STRATEGIES, ShardedSketchRunner
from repro.errors import NotSupportedError
from repro.sketch import dump_sketch
from repro.streams import DynamicGraphStream, churn_stream, erdos_renyi_graph
from repro.temporal import EpochManager

from strategies import streams_with_epochs

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")

N = 8

#: One spec per serialisable kind, parameters matching the temporal
#: equivalence harness (small enough for a dense matrix sweep).
SPECS = {
    "spanning_forest": SketchSpec.of("spanning_forest", N, seed=31),
    "edge_connectivity": SketchSpec.of("edge_connectivity", N, seed=32, k=2),
    "mincut": SketchSpec.of("mincut", N, seed=33, epsilon=0.5, c_k=0.4),
    "simple_sparsification": SketchSpec.of(
        "simple_sparsification", N, seed=34, epsilon=0.5, c_k=0.15),
    "sparsification": SketchSpec.of(
        "sparsification", N, seed=35, epsilon=0.5, c_k=0.3, c_rough=0.05),
    "weighted_sparsification": SketchSpec.of(
        "weighted_sparsification", N, seed=36, max_weight=2, epsilon=0.5,
        c_k=0.15),
    "subgraph_count": SketchSpec.of(
        "subgraph_count", N, seed=37, order=3, samplers=6),
    # k bounds the recoverable crossing-edge count; the ER workload's
    # two-node cuts can cross ~10 edges, so give it headroom.
    "cut_edges": SketchSpec.of("cut_edges", N, seed=38, k=16),
    "bipartiteness": SketchSpec.of("bipartiteness", N, seed=39),
    "mst_weight": SketchSpec.of("mst_weight", N, seed=40, max_weight=2),
}
KINDS = sorted(SPECS)

SPANNER_SPECS = {
    "baswana_sen_spanner": SketchSpec.of(
        "baswana_sen_spanner", N, seed=41, k=2),
    "recurse_connect_spanner": SketchSpec.of(
        "recurse_connect_spanner", N, seed=42, k=2),
}

#: One canonical, dispatchable query per capability name.
CANONICAL_QUERIES = {
    "connectivity": ConnectivityQuery(u=0, v=N - 1),
    "k-edge-connectivity": KEdgeConnectivityQuery(),
    "mincut": MinCutQuery(),
    "cut-query": CutQuery(side=frozenset({0, 1})),
    "sparsifier": SparsifierQuery(),
    "spanner-distance": SpannerDistanceQuery(source=0, target=1),
    "subgraph-count": SubgraphCountQuery("triangle"),
    "properties": PropertiesQuery(),
}


@pytest.fixture(scope="module")
def stream() -> DynamicGraphStream:
    edges = erdos_renyi_graph(N, 0.5, seed=5)
    return churn_stream(N, edges, seed=6)


@pytest.fixture(scope="module")
def direct_bytes(stream) -> dict:
    """dump_sketch of the hand-wired local pipeline, per kind."""
    return {
        kind: dump_sketch(spec.build().consume_batch(stream.as_batch()))
        for kind, spec in SPECS.items()
    }


class TestLocalParity:
    @pytest.mark.parametrize("kind", KINDS)
    def test_ingest_matches_hand_wired(self, kind, stream, direct_bytes):
        engine = GraphSketchEngine.for_spec(SPECS[kind]).ingest(stream)
        assert engine.snapshot() == direct_bytes[kind]

    @pytest.mark.parametrize("kind", KINDS)
    def test_ingest_batch_matches_hand_wired(self, kind, stream, direct_bytes):
        batch = stream.as_batch()
        engine = GraphSketchEngine.for_spec(SPECS[kind])
        half = len(batch) // 2
        engine.ingest_batch(batch.slice(0, half))
        engine.ingest_batch(batch.slice(half, len(batch)))
        assert engine.snapshot() == direct_bytes[kind]


class TestShardedParity:
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    @pytest.mark.parametrize("kind", KINDS)
    def test_matches_legacy_runner_and_local(
        self, kind, strategy, stream, direct_bytes
    ):
        spec = SPECS[kind]
        engine = (GraphSketchEngine.for_spec(spec)
                  .sharded(sites=3, strategy=strategy, seed=3)
                  .ingest(stream))
        legacy = ShardedSketchRunner(
            functools.partial(build_sketch, spec),
            sites=3, strategy=strategy, seed=3,
        ).run(stream)
        assert engine.snapshot() == dump_sketch(legacy.sketch)
        # ...which is itself byte-identical to the single-site pipeline.
        assert engine.snapshot() == direct_bytes[kind]
        assert engine.shipped_bytes == legacy.total_payload_bytes

    def test_process_mode_identical(self, stream, direct_bytes):
        spec = SPECS["spanning_forest"]
        with (GraphSketchEngine.for_spec(spec)
                .sharded(sites=2, seed=3)
                .workers(mode="process", processes=2)) as engine:
            engine.ingest(stream)
            assert engine.snapshot() == direct_bytes["spanning_forest"]


class TestProcessLifecycle:
    """Engine-level pool/segment lifecycle for ``workers("process")``."""

    def test_runner_and_pool_reused_across_ingests(self, stream):
        from repro.distributed import shm

        spec = SPECS["spanning_forest"]
        with (GraphSketchEngine.for_spec(spec)
                .sharded(sites=2, seed=3)
                .workers(mode="process", processes=1,
                         start_method="spawn")) as engine:
            engine.ingest(stream)
            runner = engine._runner_obj
            assert runner is not None and runner._pool is not None
            pool = runner._pool
            engine.ingest(stream)
            assert engine._runner_obj is runner
            assert runner._pool is pool
            assert shm.active_segment_names()
        assert shm.active_segment_names() == []
        # Linearity check on the double ingest: merged state equals a
        # sequential engine fed the stream twice.
        twice = (GraphSketchEngine.for_spec(spec)
                 .sharded(sites=2, seed=3)
                 .ingest(stream).ingest(stream))
        assert engine.snapshot() == twice.snapshot()

    def test_close_keeps_engine_queryable_and_is_idempotent(
        self, stream, direct_bytes
    ):
        spec = SPECS["spanning_forest"]
        engine = (GraphSketchEngine.for_spec(spec)
                  .sharded(sites=2, seed=3)
                  .workers(mode="process", processes=1)
                  .ingest(stream))
        engine.close()
        assert engine._runner_obj is None
        assert engine.snapshot() == direct_bytes["spanning_forest"]
        engine.close()
        # A later ingest transparently rebuilds the pool + segments.
        engine.ingest(stream)
        assert engine._runner_obj is not None
        engine.close()

    def test_close_is_noop_on_local_engine(self, stream, direct_bytes):
        engine = GraphSketchEngine.for_spec(
            SPECS["spanning_forest"]
        ).ingest(stream)
        engine.close()
        assert engine.snapshot() == direct_bytes["spanning_forest"]

    def test_workers_rejects_bad_processes(self):
        engine = GraphSketchEngine.for_spec(
            SPECS["spanning_forest"]
        ).sharded(sites=2)
        with pytest.raises(ValueError, match="processes must be >= 1"):
            engine.workers(mode="process", processes=0)


class TestTemporalParity:
    EPOCHS = 3

    @pytest.mark.parametrize("kind", KINDS)
    def test_timeline_matches_hand_wired_manager(self, kind, stream):
        spec = SPECS[kind]
        engine = (GraphSketchEngine.for_spec(spec)
                  .epochs(count=self.EPOCHS)
                  .ingest(stream))
        legacy = EpochManager.consume(
            functools.partial(build_sketch, spec), stream, epochs=self.EPOCHS
        )
        assert engine.snapshot() == legacy.to_bytes()

    @pytest.mark.parametrize("kind", KINDS)
    def test_window_matches_replay(self, kind, stream):
        """The windowed-query materialisation is the replayed sketch."""
        from repro.temporal import materialise_window

        spec = SPECS[kind]
        engine = (GraphSketchEngine.for_spec(spec)
                  .epochs(count=self.EPOCHS)
                  .ingest(stream))
        timeline = engine.timeline
        for t1, t2 in ((0, self.EPOCHS), (1, self.EPOCHS)):
            start = timeline.boundaries[t1 - 1] if t1 else 0
            stop = timeline.boundaries[t2 - 1]
            replay = spec.build().consume_batch(
                stream.as_batch().slice(start, stop)
            )
            window = materialise_window(timeline, t1, t2)
            assert dump_sketch(window) == dump_sketch(replay)

    @pytest.mark.parametrize("kind", KINDS)
    def test_sharded_temporal_matches_legacy(self, kind, stream):
        spec = SPECS[kind]
        engine = (GraphSketchEngine.for_spec(spec)
                  .sharded(sites=2, seed=3)
                  .epochs(count=self.EPOCHS)
                  .ingest(stream))
        legacy = ShardedSketchRunner(
            functools.partial(build_sketch, spec), sites=2, seed=3,
        ).run_epochs(stream, epochs=self.EPOCHS)
        assert engine.snapshot() == legacy.timeline.to_bytes()

    def test_manual_sealing_matches_grid(self, stream):
        """ingest_batch + seal_epoch == the one-shot even grid."""
        spec = SPECS["spanning_forest"]
        grid = (GraphSketchEngine.for_spec(spec)
                .epochs(count=2)
                .ingest(stream))
        manual = GraphSketchEngine.for_spec(spec).epochs()
        batch = stream.as_batch()
        bounds = grid.timeline.boundaries
        start = 0
        for end in bounds:
            manual.ingest_batch(batch.slice(start, end))
            manual.seal_epoch()
            start = end
        assert manual.snapshot() == grid.snapshot()


hypothesis_settings = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestHypothesisParity:
    """Random insert/delete streams and epoch grids (tests/strategies.py)."""

    @pytest.mark.parametrize(
        "kind", ["spanning_forest", "cut_edges", "bipartiteness"]
    )
    @hypothesis_settings
    @given(data=streams_with_epochs(n=N, max_tokens=30, max_epochs=3),
           strategy=st.sampled_from(PARTITION_STRATEGIES))
    def test_all_modes_byte_identical(self, kind, data, strategy):
        tokens, boundaries = data
        stream = DynamicGraphStream(N)
        for u, v, delta in tokens:
            if delta > 0:
                stream.insert(u, v, delta)
            else:
                stream.delete(u, v, -delta)
        spec = SPECS[kind]
        direct = dump_sketch(spec.build().consume_batch(stream.as_batch()))
        local = GraphSketchEngine.for_spec(spec).ingest(stream)
        assert local.snapshot() == direct
        sharded = (GraphSketchEngine.for_spec(spec)
                   .sharded(sites=2, strategy=strategy, seed=3)
                   .ingest(stream))
        assert sharded.snapshot() == direct
        temporal = (GraphSketchEngine.for_spec(spec)
                    .epochs(boundaries=boundaries)
                    .ingest(stream))
        legacy = EpochManager.consume(
            functools.partial(build_sketch, spec), stream,
            boundaries=boundaries,
        )
        assert temporal.snapshot() == legacy.to_bytes()


class TestCapabilityDispatch:
    """Every declared capability dispatches; every other one refuses."""

    @pytest.mark.parametrize("kind", KINDS + sorted(SPANNER_SPECS))
    def test_declared_dispatch_and_undeclared_refusal(self, kind, stream):
        spec = SPECS.get(kind) or SPANNER_SPECS[kind]
        engine = GraphSketchEngine.for_spec(spec).ingest(stream)
        declared = capability_entry(kind).queries
        assert declared, f"{kind} declares no capabilities"
        for capability in CAPABILITIES:
            query = CANONICAL_QUERIES[capability]
            if capability in declared:
                result = engine.query(query)
                assert isinstance(result, QueryResult)
                assert result.kind == kind
                assert result.capability == capability
                assert result.telemetry.seconds >= 0.0
                assert result.telemetry.payload_bytes >= 0
            else:
                with pytest.raises(NotSupportedError, match=capability):
                    engine.query(query)

    def test_windowed_query_reports_window_and_bytes(self, stream):
        engine = (GraphSketchEngine.for_spec(SPECS["spanning_forest"])
                  .epochs(count=3)
                  .ingest(stream))
        result = engine.query(ConnectivityQuery(window=(1, 3)))
        assert result.window == (1, 3)
        assert result.telemetry.payload_bytes > 0
        # default window is the full sealed prefix
        full = engine.query(ConnectivityQuery())
        assert full.window == (0, 3)

    def test_capabilities_match_class_declarations(self):
        for kind in KINDS + sorted(SPANNER_SPECS):
            entry = capability_entry(kind)
            assert entry.queries == frozenset(entry.cls.CAPABILITIES)


class TestEngineContracts:
    def test_unknown_kind_refused(self):
        with pytest.raises(NotSupportedError, match="unknown sketch kind"):
            GraphSketchEngine.for_spec(SketchSpec.of("bogus", N))

    def test_unknown_strategy_refused(self):
        with pytest.raises(NotSupportedError, match="partition strategy"):
            GraphSketchEngine.for_spec(SPECS["spanning_forest"]).sharded(
                strategy="bogus"
            )

    def test_window_needs_temporal_mode(self, stream):
        engine = GraphSketchEngine.for_spec(SPECS["spanning_forest"]).ingest(
            stream
        )
        with pytest.raises(NotSupportedError, match="temporal"):
            engine.query(ConnectivityQuery(window=(0, 1)))

    def test_configuration_frozen_after_ingest(self, stream):
        engine = GraphSketchEngine.for_spec(SPECS["spanning_forest"]).ingest(
            stream
        )
        with pytest.raises(NotSupportedError, match="after ingestion"):
            engine.sharded(sites=2)

    def test_spanners_refuse_epochs_and_snapshot(self, stream):
        spec = SPANNER_SPECS["baswana_sen_spanner"]
        with pytest.raises(NotSupportedError, match="adaptive"):
            GraphSketchEngine.for_spec(spec).epochs(count=2)
        engine = GraphSketchEngine.for_spec(spec).ingest(stream)
        with pytest.raises(NotSupportedError, match="adaptive"):
            engine.snapshot()

    def test_invalid_window_is_value_error(self, stream):
        engine = (GraphSketchEngine.for_spec(SPECS["spanning_forest"])
                  .epochs(count=2)
                  .ingest(stream))
        with pytest.raises(ValueError, match="not a valid epoch range"):
            engine.query(ConnectivityQuery(window=(5, 9)))

    def test_bad_spec_params_refused(self):
        with pytest.raises(ValueError, match="cannot build"):
            SketchSpec.of("spanning_forest", N, bogus_param=1).build()

    def test_snapshot_restore_roundtrip_local(self, stream, direct_bytes):
        engine = GraphSketchEngine.for_spec(SPECS["spanning_forest"]).ingest(
            stream
        )
        restored = GraphSketchEngine.restore(engine.snapshot())
        assert restored.spec.kind == "spanning_forest"
        assert restored.snapshot() == direct_bytes["spanning_forest"]
        before = engine.query(ConnectivityQuery())
        after = restored.query(ConnectivityQuery())
        assert before.components == after.components

    def test_snapshot_restore_roundtrip_temporal(self, stream):
        engine = (GraphSketchEngine.for_spec(SPECS["spanning_forest"])
                  .epochs(count=3)
                  .ingest(stream))
        restored = GraphSketchEngine.restore(engine.snapshot())
        assert restored.deployment == "temporal"
        assert restored.epochs_sealed == 3
        want = engine.query(ConnectivityQuery(window=(1, 3)))
        got = restored.query(ConnectivityQuery(window=(1, 3)))
        assert got.components == want.components

    def test_restore_garbage_refused(self):
        with pytest.raises(ValueError):
            GraphSketchEngine.restore(b"not a snapshot at all")

    def test_query_before_ingest_refused(self):
        engine = GraphSketchEngine.for_spec(SPECS["spanning_forest"])
        with pytest.raises(NotSupportedError, match="no data ingested"):
            engine.query(ConnectivityQuery())

    def test_restored_temporal_engine_refuses_further_ingest(self, stream):
        """New data cannot silently vanish next to a restored timeline."""
        engine = (GraphSketchEngine.for_spec(SPECS["spanning_forest"])
                  .epochs(count=3)
                  .ingest(stream))
        restored = GraphSketchEngine.restore(engine.snapshot())
        with pytest.raises(NotSupportedError, match="already sealed"):
            restored.ingest(stream)
        with pytest.raises(NotSupportedError, match="already sealed"):
            restored.seal_epoch()
        # second ingest on the grid engine is refused the same way
        with pytest.raises(NotSupportedError, match="already"):
            engine.ingest(stream)

    def test_sharded_gridless_epochs_refused(self, stream):
        """Manual sealing is local-only; sharding must not be dropped."""
        engine = (GraphSketchEngine.for_spec(SPECS["spanning_forest"])
                  .sharded(sites=2)
                  .epochs())
        with pytest.raises(NotSupportedError, match="local-only"):
            engine.ingest(stream)
        with pytest.raises(NotSupportedError, match="local-only"):
            engine.seal_epoch()

    def test_failed_ingest_leaves_engine_unstarted(self, stream):
        """A refused ingest must not freeze configuration or unlock
        queries on an empty sketch."""
        engine = GraphSketchEngine.for_spec(SPECS["spanning_forest"])
        wrong_universe = DynamicGraphStream(N + 5)
        wrong_universe.insert(0, N + 1)
        with pytest.raises(ValueError, match="universes differ"):
            engine.ingest(wrong_universe)
        with pytest.raises(NotSupportedError, match="no data ingested"):
            engine.query(ConnectivityQuery())
        engine.sharded(sites=2, seed=3)  # still configurable
        engine.ingest(stream)
        assert engine.query(ConnectivityQuery()).components >= 1

    def test_restore_refuses_mismatched_override_spec(self, stream):
        from repro.errors import SketchCompatibilityError

        engine = GraphSketchEngine.for_spec(SPECS["mst_weight"]).ingest(stream)
        with pytest.raises(SketchCompatibilityError, match="cannot restore"):
            GraphSketchEngine.restore(engine.snapshot(), spec=SPECS["mincut"])

    def test_adaptive_refuses_process_workers(self):
        with pytest.raises(NotSupportedError, match="adaptive"):
            GraphSketchEngine.for_spec(
                SPANNER_SPECS["baswana_sen_spanner"]
            ).workers(mode="process")

    def test_register_capability_refuses_changed_entry(self):
        from repro.api import CapabilityEntry, register_capability
        from repro.core import SpanningForestSketch

        # identical re-registration is idempotent...
        register_capability(CapabilityEntry(
            kind="spanning_forest", cls=SpanningForestSketch,
            queries=frozenset(SpanningForestSketch.CAPABILITIES),
        ))
        # ...but changing any field of an existing entry is refused.
        with pytest.raises(ValueError, match="already registered"):
            register_capability(CapabilityEntry(
                kind="spanning_forest", cls=SpanningForestSketch,
                queries=frozenset({"mincut"}),
            ))


class TestDeprecatedShims:
    """The legacy entry points still work — loudly."""

    def test_consume_warns_and_matches_engine(self, stream, direct_bytes):
        spec = SPECS["spanning_forest"]
        sketch = spec.build()
        with pytest.warns(DeprecationWarning, match="consume"):
            sketch.consume(stream)
        assert dump_sketch(sketch) == direct_bytes["spanning_forest"]

    def test_sharded_consume_warns_and_matches_engine(
        self, stream, direct_bytes
    ):
        from repro.distributed import sharded_consume

        spec = SPECS["spanning_forest"]
        with pytest.warns(DeprecationWarning, match="sharded_consume"):
            report = sharded_consume(
                stream, functools.partial(build_sketch, spec),
                sites=3, seed=3,
            )
        assert dump_sketch(report.sketch) == direct_bytes["spanning_forest"]

    def test_temporal_query_engine_warns_and_matches(self, stream):
        from repro.temporal import TemporalQueryEngine

        spec = SPECS["spanning_forest"]
        engine = (GraphSketchEngine.for_spec(spec)
                  .epochs(count=3)
                  .ingest(stream))
        with pytest.warns(DeprecationWarning, match="TemporalQueryEngine"):
            legacy = TemporalQueryEngine(engine.timeline)
        assert dump_sketch(legacy.window_sketch(1, 3)) == dump_sketch(
            spec.build().consume_batch(stream.as_batch().slice(
                engine.timeline.boundaries[0], engine.timeline.boundaries[2]
            ))
        )

    def test_answer_query_warns_and_matches_engine(self, stream):
        from repro.api.dispatch import answer_query

        spec = SPECS["mincut"]
        engine = GraphSketchEngine.for_spec(spec).ingest(stream)
        direct = spec.build().consume_batch(stream.as_batch())
        with pytest.warns(DeprecationWarning, match="answer_query"):
            result_cls, fields = answer_query("mincut", direct, MinCutQuery())
        facade = engine.query(MinCutQuery())
        assert result_cls is type(facade)
        assert fields["value"] == facade.value
        assert fields["stop_level"] == facade.stop_level


class TestDictQueries:
    """query() accepts the wire dict form and answers identically."""

    def test_dict_equals_typed(self, stream):
        engine = GraphSketchEngine.for_spec(SPECS["mincut"]).ingest(stream)
        typed = engine.query(MinCutQuery())
        wired = engine.query({
            "v": 1, "query": "mincut", "window": None, "args": {},
        })
        assert wired.value == typed.value
        assert wired.stop_level == typed.stop_level

    def test_dict_roundtrip_of_typed_query(self, stream):
        engine = GraphSketchEngine.for_spec(
            SPECS["spanning_forest"]
        ).ingest(stream)
        query = ConnectivityQuery(u=0, v=N - 1)
        assert (
            engine.query(query.to_dict()).same_component
            == engine.query(query).same_component
        )

    def test_malformed_dict_raises_wire_error(self, stream):
        from repro.errors import WireFormatError

        engine = GraphSketchEngine.for_spec(SPECS["mincut"]).ingest(stream)
        with pytest.raises(WireFormatError):
            engine.query({"query": "mincut"})  # no version field

    def test_undeclared_capability_via_dict(self, stream):
        engine = GraphSketchEngine.for_spec(SPECS["mincut"]).ingest(stream)
        with pytest.raises(NotSupportedError, match="mincut"):
            engine.query({
                "v": 1, "query": "sparsifier", "window": None, "args": {},
            })
