"""Tests for companion property sketches: bipartiteness, k-conn, MST, cuts."""

from __future__ import annotations

import pytest

from repro.core import (
    BipartitenessSketch,
    CutEdgesSketch,
    MSTWeightSketch,
    is_k_connected_sketch,
)
from repro.errors import RecoveryFailed, StreamError
from repro.streams import (
    DynamicGraphStream,
    churn_stream,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    dumbbell_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    random_weighted_edges,
    stream_from_edges,
    weighted_churn_stream,
)


class TestBipartitenessSketch:
    @pytest.mark.parametrize(
        "edges,n,expect",
        [
            (path_graph(10), 10, True),
            (cycle_graph(8), 8, True),    # even cycle
            (cycle_graph(9), 9, False),   # odd cycle
            (complete_bipartite_graph(4, 5), 9, True),
            (complete_graph(5), 5, False),
            (grid_graph(4, 4), 16, True),
        ],
    )
    def test_known_graphs(self, edges, n, expect, source):
        sk = BipartitenessSketch(n, source.derive(1, n)).consume(
            stream_from_edges(n, edges)
        )
        assert sk.is_bipartite() == expect

    def test_empty_graph_bipartite(self, source):
        sk = BipartitenessSketch(6, source.derive(2))
        assert sk.is_bipartite()

    def test_mixed_components(self, source):
        """One bipartite and one odd-cycle component: not bipartite."""
        n = 12
        edges = path_graph(5) + [(6 + u, 6 + v) for u, v in cycle_graph(5)]
        sk = BipartitenessSketch(n, source.derive(3)).consume(
            stream_from_edges(n, edges)
        )
        assert not sk.is_bipartite()

    def test_deletion_restores_bipartiteness(self, source):
        """Odd cycle closed then reopened: bipartite again (linearity)."""
        n = 5
        st = DynamicGraphStream(n)
        for u, v in cycle_graph(5):
            st.insert(u, v)
        st.delete(4, 0)  # break the odd cycle
        sk = BipartitenessSketch(n, source.derive(4)).consume(st)
        assert sk.is_bipartite()

    def test_merge(self, source):
        n = 9
        edges = cycle_graph(9)
        st = stream_from_edges(n, edges)
        merged = BipartitenessSketch(n, source.derive(5))
        for part in st.partition(2, seed=1):
            site = BipartitenessSketch(n, source.derive(5)).consume(part)
            merged.merge(site)
        assert not merged.is_bipartite()

    def test_merge_mismatch(self, source):
        a = BipartitenessSketch(5, source.derive(6))
        b = BipartitenessSketch(6, source.derive(6))
        with pytest.raises(ValueError):
            a.merge(b)


class TestIsKConnectedSketch:
    def test_dumbbell_boundary(self, source):
        clique, bridges = 6, 3
        n = 2 * clique
        st = churn_stream(n, dumbbell_graph(clique, bridges), seed=1)
        assert is_k_connected_sketch(n, 3, st, source.derive(10))
        assert not is_k_connected_sketch(n, 4, st, source.derive(11))

    def test_path_is_1_but_not_2_connected(self, source):
        n = 8
        st = stream_from_edges(n, path_graph(n))
        assert is_k_connected_sketch(n, 1, st, source.derive(12))
        assert not is_k_connected_sketch(n, 2, st, source.derive(13))

    def test_disconnected_graph(self, source):
        st = stream_from_edges(6, [(0, 1), (2, 3)])
        assert not is_k_connected_sketch(6, 1, st, source.derive(14))

    def test_empty_graph(self, source):
        assert not is_k_connected_sketch(
            4, 1, DynamicGraphStream(4), source.derive(15)
        )


class TestMSTWeightSketch:
    def test_unit_weights_spanning_tree(self, source):
        n = 12
        st = stream_from_edges(n, path_graph(n))
        sk = MSTWeightSketch(n, max_weight=1, source=source.derive(20)).consume(st)
        assert sk.estimate() == n - 1

    def test_weighted_path_exact(self, source):
        # Path with weights 1..4: MST weight = 10.
        n = 5
        st = DynamicGraphStream(n)
        for i, w in enumerate([1, 2, 3, 4]):
            st.insert(i, i + 1, copies=w)
        sk = MSTWeightSketch(n, max_weight=4, source=source.derive(21)).consume(st)
        assert sk.estimate() == 10

    def test_cheap_edges_chosen(self, source):
        """Triangle 1-1-5: MST picks the two cheap edges (weight 2)."""
        n = 3
        st = DynamicGraphStream(n)
        st.insert(0, 1, copies=1)
        st.insert(1, 2, copies=1)
        st.insert(0, 2, copies=5)
        sk = MSTWeightSketch(n, max_weight=5, source=source.derive(22)).consume(st)
        assert sk.estimate() == 2

    def test_matches_kruskal_on_random_graphs(self, source):
        n = 14
        wedges = random_weighted_edges(n, 0.5, 6, seed=3)
        st = weighted_churn_stream(n, wedges, seed=4)
        sk = MSTWeightSketch(n, max_weight=6, source=source.derive(23)).consume(st)
        assert sk.estimate() == _kruskal_weight(n, wedges)

    def test_disconnected_returns_forest_weight(self, source):
        n = 6
        st = DynamicGraphStream(n)
        st.insert(0, 1, copies=2)
        st.insert(3, 4, copies=3)
        sk = MSTWeightSketch(n, max_weight=4, source=source.derive(24)).consume(st)
        assert sk.estimate() == 5

    def test_geometric_ladder_overestimates_within_bound(self, source):
        n = 14
        wedges = random_weighted_edges(n, 0.5, 32, seed=5)
        st = weighted_churn_stream(n, wedges, seed=6)
        eps = 0.5
        sk = MSTWeightSketch(
            n, max_weight=32, epsilon=eps, source=source.derive(25)
        ).consume(st)
        truth = _kruskal_weight(n, wedges)
        est = sk.estimate()
        assert truth <= est <= (1 + eps) * truth + 1e-9
        assert len(sk.sketches) < 32  # strictly fewer than exact thresholds

    def test_weight_guard(self, source):
        sk = MSTWeightSketch(5, max_weight=3, source=source.derive(26))
        st = DynamicGraphStream(5)
        st.insert(0, 1, copies=7)
        with pytest.raises(StreamError):
            sk.consume(st)

    def test_merge(self, source):
        n = 10
        wedges = random_weighted_edges(n, 0.5, 4, seed=7)
        st = weighted_churn_stream(n, wedges, seed=8)
        direct = MSTWeightSketch(n, max_weight=4, source=source.derive(27)).consume(st)
        merged = MSTWeightSketch(n, max_weight=4, source=source.derive(27))
        for part in st.partition(2, seed=9):
            merged.merge(
                MSTWeightSketch(n, max_weight=4, source=source.derive(27)).consume(part)
            )
        assert merged.estimate() == direct.estimate()

    def test_rejects_bad_parameters(self, source):
        with pytest.raises(ValueError):
            MSTWeightSketch(5, max_weight=0, source=source)
        with pytest.raises(ValueError):
            MSTWeightSketch(5, max_weight=3, epsilon=-0.1, source=source)


def _kruskal_weight(n: int, wedges: list[tuple[int, int, int]]) -> float:
    from repro.graphs import UnionFind

    uf = UnionFind(n)
    total = 0.0
    for u, v, w in sorted(wedges, key=lambda e: e[2]):
        if uf.union(u, v):
            total += w
    return total


class TestCutEdgesSketch:
    def test_exact_cut_listing(self, source):
        n = 12
        edges = dumbbell_graph(6, 2)
        sk = CutEdgesSketch(n, k=5, source=source.derive(30)).consume(
            churn_stream(n, edges, seed=1)
        )
        crossing = sk.crossing_edges(set(range(6)))
        assert crossing == {(0, 6): 1, (1, 7): 1}
        assert sk.cut_value(set(range(6))) == 2

    def test_any_query_side_orientation(self, source):
        n = 8
        sk = CutEdgesSketch(n, k=4, source=source.derive(31)).consume(
            stream_from_edges(n, path_graph(n))
        )
        assert sk.crossing_edges({0, 1, 2}) == {(2, 3): 1}
        assert sk.crossing_edges({3, 4, 5, 6, 7}) == {(2, 3): 1}

    def test_overfull_cut_fails(self, source):
        n = 10
        sk = CutEdgesSketch(n, k=3, source=source.derive(32)).consume(
            stream_from_edges(n, complete_graph(n))
        )
        with pytest.raises(RecoveryFailed):
            sk.crossing_edges({0, 1, 2, 3, 4})

    def test_component_detection(self, source):
        n = 8
        edges = [(0, 1), (1, 2), (3, 4)]
        sk = CutEdgesSketch(n, k=4, source=source.derive(33)).consume(
            stream_from_edges(n, edges)
        )
        assert sk.is_cut_empty({0, 1, 2})
        assert not sk.is_cut_empty({0, 1})

    def test_multiplicities_reported(self, source):
        n = 5
        st = DynamicGraphStream(n)
        st.insert(0, 3, copies=4)
        sk = CutEdgesSketch(n, k=3, source=source.derive(34)).consume(st)
        assert sk.crossing_edges({0}) == {(0, 3): 4}
        assert sk.cut_value({0}) == 4

    def test_invalid_sides(self, source):
        sk = CutEdgesSketch(6, k=3, source=source.derive(35))
        with pytest.raises(ValueError):
            sk.crossing_edges(set())
        with pytest.raises(ValueError):
            sk.crossing_edges(set(range(6)))
        with pytest.raises(ValueError):
            sk.crossing_edges({9})

    def test_merge(self, source):
        n = 8
        edges = erdos_renyi_graph(n, 0.4, seed=2)
        st = churn_stream(n, edges, seed=3)
        direct = CutEdgesSketch(n, k=8, source=source.derive(36)).consume(st)
        merged = CutEdgesSketch(n, k=8, source=source.derive(36))
        for part in st.partition(2, seed=4):
            merged.merge(CutEdgesSketch(n, k=8, source=source.derive(36)).consume(part))
        assert (merged.bank.bank.phi == direct.bank.bank.phi).all()

    def test_rejects_bad_parameters(self, source):
        with pytest.raises(ValueError):
            CutEdgesSketch(1, k=2, source=source)
        with pytest.raises(ValueError):
            CutEdgesSketch(5, k=0, source=source)
