"""Tests for MINCUT (Fig. 1, Theorems 3.2/3.6)."""

from __future__ import annotations

import pytest

from repro.core import MinCutSketch, default_k
from repro.graphs import Graph, global_min_cut_value
from repro.streams import (
    churn_stream,
    dumbbell_graph,
    erdos_renyi_graph,
    path_graph,
    stream_from_edges,
)


class TestDefaultK:
    def test_grows_with_accuracy(self):
        assert default_k(64, 0.1, 1.0) > default_k(64, 0.5, 1.0)

    def test_minimum_two(self):
        assert default_k(4, 1.0, 0.01) == 2

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            default_k(10, 0.0, 1.0)
        with pytest.raises(ValueError):
            default_k(10, 1.5, 1.0)


class TestMinCutSketch:
    @pytest.mark.parametrize("bridges", [1, 2, 4])
    def test_exact_on_small_cuts(self, bridges, source):
        """Cuts below k are recovered exactly at level 0."""
        clique = 7
        n = 2 * clique
        edges = dumbbell_graph(clique, bridges)
        sk = MinCutSketch(
            n, epsilon=0.5, source=source.derive(1, bridges), c_k=1.0
        ).consume(churn_stream(n, edges, seed=bridges))
        res = sk.estimate()
        assert res.value == bridges
        assert res.stop_level == 0

    def test_path_graph_min_cut_one(self, source):
        n = 16
        sk = MinCutSketch(n, epsilon=0.5, source=source.derive(2)).consume(
            stream_from_edges(n, path_graph(n))
        )
        assert sk.estimate().value == 1

    def test_disconnected_graph_zero(self, source):
        n = 10
        sk = MinCutSketch(n, epsilon=0.5, source=source.derive(3)).consume(
            stream_from_edges(n, [(0, 1), (2, 3)])
        )
        assert sk.estimate().value == 0

    def test_large_cut_approximated(self, source):
        """λ ≥ k exercises the subsampling recursion (stop level > 0)."""
        n = 18
        edges = erdos_renyi_graph(n, 0.9, seed=4)
        g = Graph.from_edges(n, edges)
        truth = global_min_cut_value(g)
        sk = MinCutSketch(
            n, epsilon=0.5, source=source.derive(4), c_k=0.35
        ).consume(churn_stream(n, edges, seed=5))
        res = sk.estimate()
        assert truth >= res.k, "workload should force recursion"
        assert res.stop_level >= 1
        assert 0.3 * truth <= res.value <= 2.5 * truth

    def test_update_token_path_matches_consume(self, source):
        n = 12
        edges = erdos_renyi_graph(n, 0.4, seed=6)
        st = churn_stream(n, edges, seed=7)
        a = MinCutSketch(n, source=source.derive(5)).consume(st)
        b = MinCutSketch(n, source=source.derive(5))
        for upd in st:
            b.update(upd)
        assert a.estimate().value == b.estimate().value

    def test_merge_matches_direct(self, source):
        n = 12
        edges = erdos_renyi_graph(n, 0.4, seed=8)
        st = churn_stream(n, edges, seed=9)
        direct = MinCutSketch(n, source=source.derive(6)).consume(st)
        merged = MinCutSketch(n, source=source.derive(6))
        for part in st.partition(2, seed=10):
            merged.merge(MinCutSketch(n, source=source.derive(6)).consume(part))
        assert merged.estimate().value == direct.estimate().value

    def test_merge_mismatch(self, source):
        a = MinCutSketch(10, source=source.derive(7), c_k=1.0)
        b = MinCutSketch(10, source=source.derive(7), c_k=3.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_result_diagnostics(self, source):
        n = 12
        sk = MinCutSketch(n, source=source.derive(8)).consume(
            stream_from_edges(n, path_graph(n))
        )
        res = sk.estimate()
        assert res.k == sk.k
        assert len(res.witness_cut_values) == res.stop_level + 1
        assert res.witness_cut_values[res.stop_level] < res.k

    def test_witnesses_exposed(self, source):
        n = 10
        sk = MinCutSketch(n, source=source.derive(9)).consume(
            stream_from_edges(n, path_graph(n))
        )
        ws = sk.witnesses()
        assert len(ws) == sk.levels + 1
        assert ws[0].num_edges() == n - 1

    def test_universe_mismatch(self, source):
        from repro.streams import DynamicGraphStream

        sk = MinCutSketch(10, source=source.derive(10))
        with pytest.raises(ValueError):
            sk.consume(DynamicGraphStream(12))
