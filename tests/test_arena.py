"""Contiguous sketch-state arena: layout, algebra, and codec migration.

The arena contract has three legs:

* **layout** — every cell bank of every registry sketch class views one
  contiguous field-major ``int64`` buffer, in the exact order the
  serialisation codec walks the banks;
* **algebra** — whole-buffer ``merge``/``subtract``/``negate`` are
  cell-for-cell identical to the per-bank ops they replaced, including
  after banks are re-adopted between nested and top-level arenas;
* **migration** — v1 (npz) blobs, including the golden fixture
  manifests, load into arena-backed sketches and round-trip through the
  v2 codec with identical query answers.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest
from blob_utils import (
    pack_v1_sketch,
    repack_v2,
    sketch_fields_v2,
    unpack_v2,
)

from repro.core import (
    BipartitenessSketch,
    CutEdgesSketch,
    EdgeConnectivitySketch,
    MinCutSketch,
    MSTWeightSketch,
    SimpleSparsification,
    Sparsification,
    SpanningForestSketch,
    SubgraphSketch,
    WeightedSparsification,
)
from repro.distributed import forest_sketch
from repro.errors import SketchCompatibilityError
from repro.hashing import HashSource, MERSENNE31
from repro.sketch import (
    CellBank,
    SketchArena,
    dump_sketch,
    ensure_arena,
    load_sketch,
    merge_sketch_bytes,
    subtract_sketch_bytes,
)
from repro.streams import (
    churn_stream,
    erdos_renyi_graph,
    random_weighted_edges,
    weighted_churn_stream,
)
from repro.temporal import EpochTimeline, TemporalQueryEngine

N = 10

#: name → builder(seed); small parameterisations of all 10 registry classes.
BUILDERS = {
    "spanning_forest": lambda s: SpanningForestSketch(N, HashSource(s)),
    "edge_connectivity": lambda s: EdgeConnectivitySketch(N, 2, HashSource(s)),
    "mincut": lambda s: MinCutSketch(
        N, epsilon=0.5, source=HashSource(s), c_k=0.3
    ),
    "simple_sparsification": lambda s: SimpleSparsification(
        N, epsilon=0.5, source=HashSource(s), c_k=0.1
    ),
    "sparsification": lambda s: Sparsification(
        N, epsilon=0.5, source=HashSource(s), c_k=0.1, c_rough=0.1, levels=3
    ),
    "weighted_sparsification": lambda s: WeightedSparsification(
        N, max_weight=3, epsilon=0.5, source=HashSource(s), c_k=0.1
    ),
    "subgraph_count": lambda s: SubgraphSketch(
        N, order=3, samplers=4, source=HashSource(s)
    ),
    "cut_edges": lambda s: CutEdgesSketch(N, k=3, source=HashSource(s)),
    "bipartiteness": lambda s: BipartitenessSketch(N, HashSource(s)),
    "mst_weight": lambda s: MSTWeightSketch(
        N, max_weight=3, source=HashSource(s)
    ),
}

WEIGHTED = {"weighted_sparsification", "mst_weight"}


@pytest.fixture(scope="module")
def stream():
    return churn_stream(N, erdos_renyi_graph(N, 0.4, seed=71), seed=72)


@pytest.fixture(scope="module")
def weighted_stream():
    return weighted_churn_stream(
        N, random_weighted_edges(N, 0.4, 3, seed=73), seed=74
    )


def _consumed(name: str, seed: int, stream, weighted_stream):
    sketch = BUILDERS[name](seed)
    sketch.consume_batch(
        (weighted_stream if name in WEIGHTED else stream).as_batch()
    )
    return sketch


def _legacy_combine(a, b, op: str) -> None:
    """The pre-arena path: loop the codec bank list, 4 numpy ops per bank."""
    for mine, theirs in zip(a._cell_banks(), b._cell_banks()):
        getattr(mine, op)(theirs)


class TestLayout:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_banks_view_one_contiguous_buffer(self, name):
        sketch = BUILDERS[name](17)
        arena = ensure_arena(sketch)
        banks = sketch._cell_banks()
        cells = sum(b.size for b in banks)
        assert arena.buffer.size == 4 * cells
        assert arena.buffer.dtype == np.int64
        offset = 0
        for bank in banks:
            for f, field in enumerate((bank.phi, bank.iota, bank.fp1,
                                       bank.fp2)):
                assert field.base is arena.buffer
                start = f * cells + offset
                assert np.shares_memory(
                    field, arena.buffer[start:start + bank.size]
                )
            offset += bank.size

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_arena_is_cached(self, name):
        sketch = BUILDERS[name](18)
        assert ensure_arena(sketch) is ensure_arena(sketch)
        assert sketch.arena is sketch.arena

    def test_fresh_bank_is_already_contiguous(self):
        bank = CellBank(8, 100, HashSource(3))
        assert bank.phi.base is bank.iota.base is bank.fp1.base is bank.fp2.base
        assert bank.phi.base.size == 4 * 8

    def test_single_cell_bank_adoption(self):
        bank = CellBank(1, 5, HashSource(4))
        bank.scatter(np.array([0]), np.array([3]), np.array([2]))
        before = (bank.phi.copy(), bank.iota.copy(),
                  bank.fp1.copy(), bank.fp2.copy())
        arena = SketchArena.adopt([bank])
        assert arena.cells == 1 and arena.buffer.size == 4
        for got, want in zip((bank.phi, bank.iota, bank.fp1, bank.fp2),
                             before):
            assert np.array_equal(got, want)
        twin = CellBank(1, 5, HashSource(4))
        twin.scatter(np.array([0]), np.array([3]), np.array([2]))
        arena.merge(SketchArena.adopt([twin]))
        assert bank.phi[0] == 2 * before[0][0]

    def test_adopt_refuses_empty_bank_list(self):
        with pytest.raises(ValueError, match="at least one"):
            SketchArena.adopt([])


class TestAlgebraEquivalence:
    """Arena ops are byte-identical to the per-bank path they replaced."""

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    @pytest.mark.parametrize("op", ["merge", "subtract"])
    def test_combine_matches_legacy(self, name, op, stream, weighted_stream):
        arena_side = _consumed(name, 21, stream, weighted_stream)
        arena_other = _consumed(name, 21, stream, weighted_stream)
        legacy_side = _consumed(name, 21, stream, weighted_stream)
        legacy_other = _consumed(name, 21, stream, weighted_stream)
        getattr(arena_side, op)(arena_other)      # whole-buffer path
        _legacy_combine(legacy_side, legacy_other, op)  # per-bank path
        assert dump_sketch(arena_side) == dump_sketch(legacy_side)
        if op == "merge":
            assert dump_sketch(arena_side) != dump_sketch(arena_other)

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_negate_matches_legacy(self, name, stream, weighted_stream):
        a = _consumed(name, 22, stream, weighted_stream)
        b = _consumed(name, 22, stream, weighted_stream)
        a.negate()
        for bank in b._cell_banks():
            np.negative(bank.phi, out=bank.phi)
            np.negative(bank.iota, out=bank.iota)
            bank.fp1[:] = (MERSENNE31 - bank.fp1) % MERSENNE31
            bank.fp2[:] = (MERSENNE31 - bank.fp2) % MERSENNE31
        assert dump_sketch(a) == dump_sketch(b)
        a.negate()
        assert dump_sketch(a) == dump_sketch(
            _consumed(name, 22, stream, weighted_stream)
        )

    def test_nested_then_top_level_readoption(self, stream):
        """Using a nested forest directly, then the parent, stays exact."""
        a = EdgeConnectivitySketch(N, 2, HashSource(31)).consume(stream)
        b = EdgeConnectivitySketch(N, 2, HashSource(31)).consume(stream)
        ref = EdgeConnectivitySketch(N, 2, HashSource(31)).consume(stream)

        parent_arena = ensure_arena(a)
        # Nested use: merge the sub-forests directly (steals their banks
        # out of the parent's buffer)...
        for mine, theirs in zip(a.groups, b.groups):
            mine.merge(theirs)
        assert not parent_arena.attached()
        # ...then top-level use again: the parent re-adopts and the
        # state is exactly a doubled reference.
        a.subtract(ref)
        assert dump_sketch(a) == dump_sketch(ref)

    def test_empty_sketches_stay_empty_under_algebra(self):
        a = BUILDERS["mincut"](41)
        b = BUILDERS["mincut"](41)
        empty = dump_sketch(a)
        a.merge(b)
        a.subtract(b)
        a.negate()
        assert dump_sketch(a) == empty
        assert not ensure_arena(a).buffer.any()


class TestEmptyAndEdgeCases:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_empty_sketch_round_trips(self, name):
        sketch = BUILDERS[name](51)
        blob = dump_sketch(sketch)
        restored = load_sketch(blob, like=sketch)
        assert dump_sketch(restored) == blob
        assert not ensure_arena(restored).buffer.any()

    def test_merge_bytes_into_empty_equals_load(self, stream):
        consumed = SpanningForestSketch(N, HashSource(52)).consume(stream)
        blob = dump_sketch(consumed)
        empty = SpanningForestSketch(N, HashSource(52))
        merge_sketch_bytes(empty, blob)
        assert dump_sketch(empty) == blob

    def test_subtract_bytes_inverts_merge_bytes(self, stream):
        base = SpanningForestSketch(N, HashSource(53)).consume(stream)
        reference = dump_sketch(base)
        other = dump_sketch(SpanningForestSketch(N, HashSource(53)).consume(
            stream
        ))
        merge_sketch_bytes(base, other)
        subtract_sketch_bytes(base, other)
        assert dump_sketch(base) == reference

    def test_combine_bytes_refuses_mismatches(self, stream):
        ours = SpanningForestSketch(N, HashSource(54)).consume(stream)
        stranger = dump_sketch(
            SpanningForestSketch(N, HashSource(55)).consume(stream)
        )
        with pytest.raises(SketchCompatibilityError, match="seed"):
            merge_sketch_bytes(ours, stranger)
        cut = dump_sketch(CutEdgesSketch(N, k=3, source=HashSource(54)))
        with pytest.raises(SketchCompatibilityError):
            merge_sketch_bytes(ours, cut)
        with pytest.raises(ValueError):
            subtract_sketch_bytes(ours, b"junk bytes, not a blob")

    def test_combine_bytes_accepts_v1_blob(self, stream):
        consumed = SpanningForestSketch(N, HashSource(56)).consume(stream)
        v1 = pack_v1_sketch(dump_sketch(consumed))
        empty = SpanningForestSketch(N, HashSource(56))
        merge_sketch_bytes(empty, v1)
        assert dump_sketch(empty) == dump_sketch(consumed)


class TestSparseEncoding:
    """Lightly-loaded sketches ship as sparse (position, value) pairs."""

    def test_empty_and_shard_sketches_dump_sparse(self, stream):
        empty = dump_sketch(SpanningForestSketch(N, HashSource(81)))
        header, _payload = unpack_v2(empty)
        assert header["encoding"] == "sparse-zlib"
        assert header["nnz"] == 0

    def test_sparse_blob_round_trips(self, stream):
        # A couple of tokens keep the buffer sparse.
        sketch = SpanningForestSketch(N, HashSource(82))
        sketch.consume_batch(stream.as_batch().slice(0, 3))
        blob = dump_sketch(sketch)
        header, _ = unpack_v2(blob)
        assert header["encoding"] == "sparse-zlib"
        restored = load_sketch(blob, like=sketch)
        assert dump_sketch(restored) == blob
        for mine, theirs in zip(sketch._cell_banks(),
                                restored._cell_banks()):
            assert np.array_equal(mine.phi, theirs.phi)
            assert np.array_equal(mine.fp1, theirs.fp1)

    def test_sparse_merge_bytes_equals_dense_merge(self, stream):
        shard = stream.as_batch().slice(0, 4)
        consumed = SpanningForestSketch(N, HashSource(83))
        consumed.consume_batch(shard)
        blob = dump_sketch(consumed)
        assert unpack_v2(blob)[0]["encoding"] == "sparse-zlib"

        via_bytes = SpanningForestSketch(N, HashSource(83)).consume(stream)
        merge_sketch_bytes(via_bytes, blob)
        via_object = SpanningForestSketch(N, HashSource(83)).consume(stream)
        via_object.merge(load_sketch(blob))
        assert dump_sketch(via_bytes) == dump_sketch(via_object)
        subtract_sketch_bytes(via_bytes, blob)
        assert dump_sketch(via_bytes) == dump_sketch(
            SpanningForestSketch(N, HashSource(83)).consume(stream)
        )

    def test_tampered_sparse_payloads_rejected(self, stream):
        sketch = SpanningForestSketch(N, HashSource(84))
        sketch.consume_batch(stream.as_batch().slice(0, 3))
        blob = dump_sketch(sketch)

        def reorder(header, payload):
            raw = np.frombuffer(bytes(payload), dtype="<i8").copy()
            nnz = header["nnz"]
            raw[:nnz] = raw[:nnz][::-1]  # descending positions
            payload[:] = raw.astype("<i8").tobytes()

        with pytest.raises(ValueError, match="strictly increasing"):
            load_sketch(repack_v2(blob, reorder))

        def out_of_range(header, payload):
            raw = np.frombuffer(bytes(payload), dtype="<i8").copy()
            raw[header["nnz"] - 1] = 4 * int(sum(header["cells"]))
            payload[:] = raw.astype("<i8").tobytes()

        with pytest.raises(ValueError, match="outside the buffer"):
            load_sketch(repack_v2(blob, out_of_range))

        def bad_nnz(header, _payload):
            header["nnz"] = header["nnz"] + 1

        with pytest.raises(ValueError, match="mis-sized"):
            load_sketch(repack_v2(blob, bad_nnz))

        with pytest.raises(ValueError, match="mis-sized"):
            merge_sketch_bytes(
                SpanningForestSketch(N, HashSource(84)),
                repack_v2(blob, bad_nnz),
            )


class TestCodecMigration:
    """v1 blobs (golden fixtures included) migrate losslessly to v2."""

    def test_v2_payload_matches_v1_field_concatenation(self, stream):
        sketch = EdgeConnectivitySketch(N, 2, HashSource(61)).consume(stream)
        blob = dump_sketch(sketch)
        _header, fields = sketch_fields_v2(blob)
        banks = sketch._cell_banks()
        for name in ("phi", "iota", "fp1", "fp2"):
            concat = np.concatenate([getattr(b, name) for b in banks])
            assert np.array_equal(fields[name], concat), name

    def test_golden_v1_manifest_re_dumps_to_v2(self, tmp_path):
        import pathlib

        fixture = (
            pathlib.Path(__file__).parent / "fixtures"
            / "forest_epochs_v1.manifest"
        )
        timeline = EpochTimeline.from_bytes(fixture.read_bytes())
        answers = [
            TemporalQueryEngine(timeline).answer(0, t)
            for t in range(1, timeline.epochs + 1)
        ]
        # Migrate every checkpoint through the v2 codec.
        migrated = EpochTimeline(timeline.n, [
            type(c)(
                epoch=c.epoch, tokens=c.tokens,
                cumulative_tokens=c.cumulative_tokens,
                payload=dump_sketch(
                    load_sketch(c.payload),
                    epoch_meta={"epoch": c.epoch, "tokens": c.tokens,
                                "cumulative_tokens": c.cumulative_tokens},
                ),
            )
            for c in timeline.checkpoints
        ])
        v2_bytes = migrated.to_bytes()
        restored = EpochTimeline.from_bytes(v2_bytes)
        engine = TemporalQueryEngine(restored)
        for t, want in enumerate(answers, start=1):
            assert engine.answer(0, t) == want

    def test_golden_v1_checkpoint_merges_with_v2_twin(self, tmp_path):
        import pathlib

        fixture = (
            pathlib.Path(__file__).parent / "fixtures"
            / "forest_epochs_v1.manifest"
        )
        timeline = EpochTimeline.from_bytes(fixture.read_bytes())
        twin = functools.partial(forest_sketch, timeline.n, 424242)()
        merge_sketch_bytes(twin, timeline.checkpoint(3).payload)
        assert dump_sketch(twin) == dump_sketch(
            load_sketch(timeline.checkpoint(3).payload)
        )
