"""Tests for ℓ₀ samplers (Theorem 2.1): scalar and bank forms."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.errors import SamplerFailed
from repro.hashing import HashSource
from repro.sketch import L0Sampler, L0SamplerBank


class TestL0SamplerScalar:
    def test_sample_from_singleton(self, source):
        s = L0Sampler(500, source.derive(1))
        s.update(123, 9)
        assert s.sample() == (123, 9)

    def test_sample_in_support(self, source):
        s = L0Sampler(500, source.derive(2))
        support = {3: 1, 99: 2, 400: -1}
        for i, v in support.items():
            s.update(i, v)
        i, v = s.sample()
        assert support[i] == v

    def test_deletions_cancel(self, source):
        s = L0Sampler(500, source.derive(3))
        s.update(7, 1)
        s.update(300, 1)
        s.update(300, -1)
        assert s.sample() == (7, 1)

    def test_zero_vector_flagged(self, source):
        s = L0Sampler(500, source.derive(4))
        s.update(5, 1)
        s.update(5, -1)
        with pytest.raises(SamplerFailed) as info:
            s.sample()
        assert info.value.vector_is_zero

    def test_update_out_of_domain(self, source):
        s = L0Sampler(100, source.derive(5))
        with pytest.raises(ValueError):
            s.update(100, 1)

    def test_merge_equals_combined(self, source):
        a = L0Sampler(200, source.derive(6))
        b = L0Sampler(200, source.derive(6))
        a.update(10, 1)
        b.update(10, -1)
        b.update(50, 2)
        a.merge(b)
        assert a.sample() == (50, 2)

    def test_merge_domain_mismatch(self, source):
        a = L0Sampler(200, source.derive(7))
        b = L0Sampler(300, source.derive(7))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_moderate_support_recoverable(self, source):
        s = L0Sampler(10_000, source.derive(8), rows=2, buckets=8)
        support = {i * 37 + 1: 1 for i in range(50)}
        for i, v in support.items():
            s.update(i, v)
        i, v = s.sample()
        assert i in support

    @pytest.mark.parametrize("seed", range(8))
    def test_parity_with_one_family_bank(self, seed):
        """Scalar and bank samplers share the selection rule, tie-break included.

        Both derive the level/bucket hashes from the same labels, so a
        scalar sampler and a one-family single-sampler bank built from
        the same source place items in the same cells; the sample must
        then agree because both pick the argmax of ``(level, hash(i))``
        over decodable cells.  Before the tie-break fix the scalar
        sampler kept the *first* candidate of the deepest level instead.
        """
        src = HashSource(0xA11CE + seed)
        domain = 2_000
        scalar = L0Sampler(domain, src)
        bank = L0SamplerBank(families=1, samplers=1, domain=domain, source=src)
        support = {(j * 131 + 17 * seed) % domain: 1 + (j % 3) for j in range(24)}
        support.pop(0, None)
        items = np.fromiter(support, dtype=np.int64)
        values = np.fromiter(support.values(), dtype=np.int64)
        for i, v in support.items():
            scalar.update(i, v)
        bank.update(
            np.zeros(items.size, dtype=np.int64),
            np.zeros(items.size, dtype=np.int64),
            items,
            values,
        )
        try:
            expected = bank.sample(0, 0)
        except SamplerFailed:
            with pytest.raises(SamplerFailed):
                scalar.sample()
            return
        assert scalar.sample() == expected


class TestL0SamplerBank:
    def test_families_are_independent_samplers(self, source):
        bank = L0SamplerBank(families=50, samplers=1, domain=1000,
                             source=source.derive(10))
        support = [5, 111, 600, 999]
        arr = np.asarray(support)
        for f in range(50):
            bank.update(
                np.full(4, f), np.zeros(4, dtype=int), arr, np.ones(4, dtype=int)
            )
        got = set()
        for f in range(50):
            try:
                i, _ = bank.sample(f, 0)
                got.add(i)
            except SamplerFailed:
                pass
        # Different families should not all return the same element.
        assert len(got) >= 2
        assert got <= set(support)

    def test_sample_sum_is_sum_vector(self, source):
        bank = L0SamplerBank(families=1, samplers=3, domain=500,
                             source=source.derive(11))
        # sampler0: +1@40; sampler1: -1@40, +2@99; sampler2: +5@7
        bank.update(
            np.zeros(4, dtype=int),
            np.array([0, 1, 1, 2]),
            np.array([40, 40, 99, 7]),
            np.array([1, -1, 2, 5]),
        )
        i, v = bank.sample_sum(0, [0, 1])
        assert (i, v) == (99, 2)
        got = {bank.sample_sum(0, [0, 1, 2])[0] for _ in range(1)}
        assert got <= {99, 7}

    def test_sample_sum_empty_list_rejected(self, source):
        bank = L0SamplerBank(1, 2, 100, source.derive(12))
        with pytest.raises(ValueError):
            bank.sample_sum(0, [])

    def test_is_zero(self, source):
        bank = L0SamplerBank(1, 2, 100, source.derive(13))
        assert bank.is_zero(0, 0)
        bank.update(np.array([0]), np.array([1]), np.array([10]), np.array([1]))
        assert bank.is_zero(0, 0)
        assert not bank.is_zero(0, 1)

    def test_zero_flag_on_sample(self, source):
        bank = L0SamplerBank(1, 1, 100, source.derive(14))
        with pytest.raises(SamplerFailed) as info:
            bank.sample(0, 0)
        assert info.value.vector_is_zero

    def test_merge_equals_single_stream(self, source):
        a = L0SamplerBank(2, 2, 300, source.derive(15))
        b = L0SamplerBank(2, 2, 300, source.derive(15))
        c = L0SamplerBank(2, 2, 300, source.derive(15))
        upd1 = (np.array([0, 1]), np.array([0, 1]), np.array([9, 20]),
                np.array([1, 3]))
        upd2 = (np.array([0]), np.array([0]), np.array([9]), np.array([-1]))
        a.update(*upd1)
        b.update(*upd2)
        c.update(*upd1)
        c.update(*upd2)
        a.merge(b)
        assert (a.bank.phi == c.bank.phi).all()
        assert (a.bank.fp1 == c.bank.fp1).all()

    def test_merge_shape_mismatch(self, source):
        a = L0SamplerBank(2, 2, 300, source.derive(16))
        b = L0SamplerBank(2, 3, 300, source.derive(16))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_uniformity_statistical(self, source):
        """Theorem 2.1 shape: samples near-uniform over the support."""
        support = [5, 90, 450, 1023, 1999]
        trials = 400
        bank = L0SamplerBank(families=trials, samplers=1, domain=2016,
                             source=source.derive(17))
        arr = np.asarray(support)
        ones = np.ones(len(support), dtype=int)
        zeros = np.zeros(len(support), dtype=int)
        for f in range(trials):
            bank.update(np.full(len(support), f), zeros, arr, ones)
        counts: Counter[int] = Counter()
        fails = 0
        for f in range(trials):
            try:
                i, _ = bank.sample(f, 0)
                counts[i] += 1
            except SamplerFailed:
                fails += 1
        assert fails / trials < 0.05
        expected = (trials - fails) / len(support)
        chi2 = sum(
            (counts[i] - expected) ** 2 / expected for i in support
        )
        # df=4; 99.9% quantile ≈ 18.5 — generous but catches real bias.
        assert chi2 < 18.5, (dict(counts), chi2)

    def test_fail_rate_small(self, source):
        """Samplers rarely FAIL across support sizes (δ-error behaviour)."""
        trials = 100
        for size in (1, 3, 17, 200):
            bank = L0SamplerBank(families=trials, samplers=1, domain=4096,
                                 source=source.derive(18, size))
            items = np.arange(1, 4 * size, 4, dtype=np.int64)[:size]
            ones = np.ones(items.size, dtype=int)
            zeros = np.zeros(items.size, dtype=int)
            for f in range(trials):
                bank.update(np.full(items.size, f), zeros, items, ones)
            fails = 0
            for f in range(trials):
                try:
                    bank.sample(f, 0)
                except SamplerFailed:
                    fails += 1
            assert fails / trials <= 0.1, size

    def test_rejects_bad_shapes(self, source):
        with pytest.raises(ValueError):
            L0SamplerBank(0, 1, 10, source)
        with pytest.raises(ValueError):
            L0SamplerBank(1, 0, 10, source)
