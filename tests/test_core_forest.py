"""Tests for the incidence encoding and AGM spanning-forest sketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    SpanningForestSketch,
    decode_incidence_sample,
    edge_domain,
    incidence_rows,
)
from repro.graphs import Graph, connected_components
from repro.streams import (
    DynamicGraphStream,
    EdgeUpdate,
    churn_stream,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
    stream_from_edges,
)
from repro.util import pair_rank


class TestIncidence:
    def test_edge_domain(self):
        assert edge_domain(10) == 45

    def test_rows_signs(self):
        nodes, items, deltas = incidence_rows(EdgeUpdate(7, 2, 3), 10)
        assert nodes.tolist() == [2, 7]
        assert items.tolist() == [pair_rank(2, 7, 10)] * 2
        assert deltas.tolist() == [3, -3]

    def test_cut_cancellation_identity(self):
        """support(Σ_{u∈A} x^u) = E(A, V-A) — the Eq. 1 telescoping."""
        n = 8
        edges = [(0, 1), (1, 2), (2, 3), (0, 3), (3, 4), (5, 6)]
        vectors = {u: np.zeros(edge_domain(n), dtype=int) for u in range(n)}
        for u, v in edges:
            nodes, items, deltas = incidence_rows(EdgeUpdate(u, v), n)
            for nd, it, dl in zip(nodes, items, deltas):
                vectors[nd][it] += dl
        side = {0, 1, 2, 3}
        summed = sum(vectors[u] for u in side)
        crossing = {pair_rank(3, 4, n)}
        assert set(np.nonzero(summed)[0]) == crossing

    def test_decode_incidence_sample(self):
        n = 10
        item = pair_rank(2, 7, n)
        assert decode_incidence_sample(item, 4, n) == (2, 7, 4)
        assert decode_incidence_sample(item, -4, n) == (7, 2, 4)


class TestSpanningForestSketch:
    @pytest.mark.parametrize(
        "edges,n,comps",
        [
            (path_graph(15), 15, 1),
            (cycle_graph(12), 12, 1),
            (star_graph(10), 10, 1),
            ([(0, 1), (2, 3), (4, 5)], 8, 5),  # 3 pairs + 2 isolated
        ],
    )
    def test_component_count(self, edges, n, comps, source):
        sk = SpanningForestSketch(n, source.derive(1)).consume(
            stream_from_edges(n, edges)
        )
        assert len(sk.connected_components()) == comps

    def test_forest_edges_are_real_and_acyclic(self, source):
        n = 24
        edges = erdos_renyi_graph(n, 0.25, seed=3)
        g = Graph.from_edges(n, edges)
        sk = SpanningForestSketch(n, source.derive(2)).consume(
            churn_stream(n, edges, seed=4)
        )
        forest = sk.spanning_forest()
        from repro.graphs import UnionFind

        uf = UnionFind(n)
        for u, v, mult in forest:
            assert g.has_edge(u, v), "forest edge must exist in the graph"
            assert mult == 1
            assert uf.union(u, v), "forest must be acyclic"

    def test_forest_spans_connected_graph(self, source):
        n = 20
        edges = erdos_renyi_graph(n, 0.4, seed=5)
        g = Graph.from_edges(n, edges)
        want = len(connected_components(g))
        sk = SpanningForestSketch(n, source.derive(3)).consume(
            churn_stream(n, edges, seed=6)
        )
        assert len(sk.connected_components()) == want

    def test_churn_equivalence(self, source):
        """Sketch of churny stream == sketch of clean stream (linearity)."""
        n = 16
        edges = erdos_renyi_graph(n, 0.3, seed=7)
        churny = churn_stream(n, edges, seed=8)
        clean = stream_from_edges(n, edges)
        a = SpanningForestSketch(n, source.derive(4)).consume(churny)
        b = SpanningForestSketch(n, source.derive(4)).consume(clean)
        assert (a.bank.bank.phi == b.bank.bank.phi).all()
        assert (a.bank.bank.iota == b.bank.bank.iota).all()
        assert (a.bank.bank.fp1 == b.bank.bank.fp1).all()

    def test_distributed_merge(self, source):
        n = 16
        edges = erdos_renyi_graph(n, 0.3, seed=9)
        st = churn_stream(n, edges, seed=10)
        direct = SpanningForestSketch(n, source.derive(5)).consume(st)
        merged = SpanningForestSketch(n, source.derive(5))
        for part in st.partition(3, seed=11):
            site = SpanningForestSketch(n, source.derive(5)).consume(part)
            merged.merge(site)
        assert (merged.bank.bank.phi == direct.bank.bank.phi).all()
        assert len(merged.connected_components()) == len(
            connected_components(Graph.from_edges(n, edges))
        )

    def test_merge_mismatch_rejected(self, source):
        a = SpanningForestSketch(10, source.derive(6))
        b = SpanningForestSketch(11, source.derive(6))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_stream_universe_mismatch(self, source):
        sk = SpanningForestSketch(10, source.derive(7))
        with pytest.raises(ValueError):
            sk.consume(DynamicGraphStream(11))

    def test_empty_graph(self, source):
        sk = SpanningForestSketch(6, source.derive(8))
        assert sk.spanning_forest() == []
        assert len(sk.connected_components()) == 6

    def test_multigraph_multiplicity_recovered(self, source):
        n = 6
        st = DynamicGraphStream(n)
        st.insert(0, 1, copies=5)
        sk = SpanningForestSketch(n, source.derive(9)).consume(st)
        forest = sk.spanning_forest()
        assert forest == [(0, 1, 5)]

    def test_is_connected(self, source):
        n = 12
        sk = SpanningForestSketch(n, source.derive(10)).consume(
            stream_from_edges(n, path_graph(n))
        )
        assert sk.is_connected()

    def test_rejects_tiny_universe(self, source):
        with pytest.raises(ValueError):
            SpanningForestSketch(1, source)

    def test_memory_cells_positive(self, source):
        sk = SpanningForestSketch(8, source.derive(11))
        assert sk.memory_cells() > 0
