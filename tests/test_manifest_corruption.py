"""Fuzz/corruption tests for ``load_sketch`` and the epoch manifest.

The storage contract: corrupted, truncated, tampered, or mismatched
bytes must raise ``SketchCompatibilityError``/``ValueError`` — a load
either returns a verified-compatible sketch or refuses; it never
returns a silently wrong one.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest
from blob_utils import pack_v1_sketch, repack_v2

from repro.core import SpanningForestSketch
from repro.distributed import forest_sketch
from repro.errors import SketchCompatibilityError
from repro.hashing import HashSource
from repro.sketch import (
    dump_epoch_manifest,
    dump_sketch,
    load_epoch_manifest,
    load_sketch,
)
from repro.streams import churn_stream, erdos_renyi_graph
from repro.temporal import EpochManager, EpochTimeline

N = 10


@pytest.fixture(scope="module")
def stream():
    return churn_stream(N, erdos_renyi_graph(N, 0.45, seed=21), seed=22)


@pytest.fixture(scope="module")
def blob(stream) -> bytes:
    return dump_sketch(SpanningForestSketch(N, HashSource(31)).consume(stream))


@pytest.fixture(scope="module")
def timeline(stream) -> EpochTimeline:
    return EpochManager.consume(
        functools.partial(forest_sketch, N, 31), stream, epochs=3
    )


def _repack(blob: bytes, mutate) -> bytes:
    """Unpack a v2 blob, apply ``mutate(header, payload)``, reseal."""
    return repack_v2(blob, mutate)


class TestLoadSketchFuzz:
    @pytest.mark.parametrize("keep", [1, 10, 57, 200])
    def test_truncated_payload_rejected(self, blob, keep):
        with pytest.raises(ValueError):
            load_sketch(blob[:keep])

    def test_every_prefix_of_small_blob_rejected(self):
        small = dump_sketch(SpanningForestSketch(2, HashSource(1), rounds=1))
        for keep in range(0, len(small), max(1, len(small) // 50)):
            with pytest.raises(ValueError):
                load_sketch(small[:keep])

    @pytest.mark.parametrize("cut", [8, 80, 1])
    def test_mis_sized_cell_buffer_rejected(self, blob, cut):
        """A resealed (valid-CRC) blob with missing cell bytes refuses."""
        def shrink(_header, payload):
            del payload[-cut:]

        with pytest.raises(ValueError, match="mis-sized"):
            load_sketch(_repack(blob, shrink))

    @pytest.mark.parametrize("dtype", [np.int32, np.float64, np.uint8])
    def test_v1_flipped_dtype_fields_rejected(self, blob, dtype):
        """The legacy-v1 read path still rejects mis-typed field arrays."""
        def flip(_header, arrays):
            arrays["phi"] = arrays["phi"].astype(dtype)

        with pytest.raises(ValueError, match="dtype|mis-sized"):
            load_sketch(pack_v1_sketch(blob, flip))

    def test_v1_reencoded_blob_loads_identically(self, blob):
        """A v1 re-encoding of a v2 blob reconstructs the same sketch."""
        v1 = pack_v1_sketch(blob)
        assert dump_sketch(load_sketch(v1)) == blob

    def test_flipped_delta_bytes_rejected_or_detected(self, blob):
        """Bit flips anywhere in the blob break the payload CRC32."""
        corrupted = bytearray(blob)
        corrupted[len(corrupted) // 3] ^= 0x40
        with pytest.raises(ValueError):
            load_sketch(bytes(corrupted))

    def test_mismatched_seed_against_reference_rejected(self, blob, stream):
        other = SpanningForestSketch(N, HashSource(32)).consume(stream)
        with pytest.raises(SketchCompatibilityError, match="seed"):
            load_sketch(blob, like=other)

    def test_oversized_cells_meta_rejected(self, blob):
        def grow(header, _arrays):
            header["cells"] = [header["cells"][0] * 2]

        with pytest.raises(ValueError, match="cell layout"):
            load_sketch(_repack(blob, grow))


class TestManifestCorruption:
    def test_round_trip_is_clean(self, timeline):
        header, payloads = load_epoch_manifest(timeline.to_bytes())
        assert header["epoch_ids"] == [1, 2, 3]
        assert payloads == [c.payload for c in timeline.checkpoints]

    @pytest.mark.parametrize("keep_fraction", [0.1, 0.5, 0.9])
    def test_truncated_manifest_rejected(self, timeline, keep_fraction):
        data = timeline.to_bytes()
        with pytest.raises(ValueError):
            EpochTimeline.from_bytes(data[: int(len(data) * keep_fraction)])

    def test_truncated_inner_payloads_rejected(self, timeline):
        """Header promises more payload bytes than the blob holds."""
        def drop_tail(_header, payload):
            del payload[-20:]

        with pytest.raises(ValueError, match="truncated or padded"):
            load_epoch_manifest(_repack(timeline.to_bytes(), drop_tail))

    def test_out_of_order_epoch_ids_rejected(self, timeline):
        def swap(header, _arrays):
            header["epoch_ids"] = [2, 1, 3]

        with pytest.raises(ValueError, match="consecutive"):
            load_epoch_manifest(_repack(timeline.to_bytes(), swap))

    def test_duplicated_epoch_ids_rejected(self, timeline):
        def dup(header, _arrays):
            header["epoch_ids"] = [1, 1, 2]

        with pytest.raises(ValueError, match="consecutive"):
            load_epoch_manifest(_repack(timeline.to_bytes(), dup))

    def test_offset_epoch_ids_rejected_at_dump_and_load(self, timeline):
        """dump and load agree: only the 1-based grid is a valid manifest."""
        payloads = [c.payload for c in timeline.checkpoints]
        with pytest.raises(ValueError, match="1\\.\\.3"):
            dump_epoch_manifest(payloads, epoch_ids=[3, 4, 5])

        def shift(header, _arrays):
            header["epoch_ids"] = [2, 3, 4]

        with pytest.raises(ValueError, match="consecutive"):
            load_epoch_manifest(_repack(timeline.to_bytes(), shift))

    def test_mismatched_seed_inside_manifest_rejected(self, stream):
        """A checkpoint sealed under a different seed cannot hide."""
        a = dump_sketch(SpanningForestSketch(N, HashSource(41)).consume(stream))
        b = dump_sketch(SpanningForestSketch(N, HashSource(42)).consume(stream))
        with pytest.raises(SketchCompatibilityError, match="seed"):
            dump_epoch_manifest([a, b])
        # ... and a manifest whose header lies about the seed refuses on load.
        good = dump_epoch_manifest([a])

        def lie(header, _arrays):
            header["sketch_seed"] = 42

        with pytest.raises(SketchCompatibilityError, match="seed"):
            load_epoch_manifest(_repack(good, lie))

    def test_mixed_sketch_kinds_rejected(self, stream):
        from repro.core import CutEdgesSketch

        forest = dump_sketch(
            SpanningForestSketch(N, HashSource(41)).consume(stream)
        )
        cut = dump_sketch(
            CutEdgesSketch(N, k=4, source=HashSource(41)).consume(stream)
        )
        with pytest.raises(SketchCompatibilityError, match="kind"):
            dump_epoch_manifest([forest, cut])

    def test_sketch_blob_is_not_a_manifest(self, blob):
        with pytest.raises(ValueError, match="expected 'epoch-manifest'"):
            load_epoch_manifest(blob)

    def test_manifest_is_not_a_sketch_blob(self, timeline):
        with pytest.raises(ValueError, match="not a registry-serialised"):
            load_sketch(timeline.to_bytes())

    def test_garbage_bytes_rejected(self):
        with pytest.raises(ValueError):
            load_epoch_manifest(b"\x00" * 100)
        with pytest.raises(ValueError):
            EpochTimeline.from_bytes(b"PK\x03\x04 almost a zip")

    def test_negative_payload_length_rejected(self, timeline):
        def poison(header, _arrays):
            header["lengths"] = [
                -header["lengths"][0],
                header["lengths"][1],
                header["lengths"][2] + 2 * header["lengths"][0],
            ]

        with pytest.raises(ValueError):
            load_epoch_manifest(_repack(timeline.to_bytes(), poison))

    def test_manager_rejects_bad_boundaries(self, stream):
        factory = functools.partial(forest_sketch, N, 31)
        with pytest.raises(ValueError, match="exactly one"):
            EpochManager.consume(factory, stream)
        with pytest.raises(ValueError, match="exactly one"):
            EpochManager.consume(factory, stream, epochs=2, boundaries=[1])
        with pytest.raises(ValueError, match="non-decreasing"):
            EpochManager.consume(factory, stream, boundaries=[5, 3, len(stream)])
        with pytest.raises(ValueError, match="final boundary"):
            EpochManager.consume(factory, stream, boundaries=[3])
        with pytest.raises(ValueError, match="at least one epoch"):
            EpochManager.consume(factory, stream, epochs=0)
