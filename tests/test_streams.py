"""Tests for repro.streams: updates, dynamic streams, generators."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.graphs import Graph, global_min_cut_value
from repro.util import pair_rank
from repro.streams import (
    DynamicGraphStream,
    EdgeUpdate,
    churn_stream,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    dumbbell_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    planted_partition_graph,
    random_weighted_edges,
    star_graph,
    stream_from_edges,
    triangle_planted_graph,
    weighted_churn_stream,
)


class TestEdgeUpdate:
    def test_canonical_orientation(self):
        upd = EdgeUpdate(7, 3)
        assert (upd.lo, upd.hi) == (3, 7)
        assert upd.key == (3, 7)

    def test_inverse_cancels(self):
        upd = EdgeUpdate(1, 2, 5)
        inv = upd.inverse()
        assert inv.delta == -5
        assert inv.key == upd.key

    def test_rejects_self_loop(self):
        with pytest.raises(StreamError):
            EdgeUpdate(3, 3)

    def test_rejects_zero_delta(self):
        with pytest.raises(StreamError):
            EdgeUpdate(1, 2, 0)

    def test_rejects_negative_node(self):
        with pytest.raises(StreamError):
            EdgeUpdate(-1, 2)

    def test_universe_validation(self):
        EdgeUpdate(0, 9).validate_universe(10)
        with pytest.raises(StreamError):
            EdgeUpdate(0, 10).validate_universe(10)


class TestDynamicGraphStream:
    def test_multiplicities_aggregate(self):
        st = DynamicGraphStream(5)
        st.insert(0, 1)
        st.insert(1, 0)
        st.insert(2, 3)
        st.delete(2, 3)
        assert st.multiplicities() == {(0, 1): 2}
        assert st.edges() == [(0, 1)]

    def test_negative_final_multiplicity_rejected(self):
        st = DynamicGraphStream(5)
        st.delete(0, 1)
        with pytest.raises(StreamError):
            st.multiplicities()

    def test_validate_catches_negative_prefix(self):
        st = DynamicGraphStream(5)
        st.delete(0, 1)
        st.insert(0, 1)
        # Final multiplicity is 0, but a prefix went negative.
        with pytest.raises(StreamError):
            st.validate()

    def test_rejects_small_universe(self):
        with pytest.raises(StreamError):
            DynamicGraphStream(1)

    def test_rejects_out_of_universe_updates(self):
        st = DynamicGraphStream(4)
        with pytest.raises(StreamError):
            st.insert(0, 4)

    def test_partition_preserves_aggregate(self):
        edges = erdos_renyi_graph(15, 0.4, seed=1)
        st = churn_stream(15, edges, seed=2)
        parts = st.partition(3, seed=3)
        assert sum(len(p) for p in parts) == len(st)
        merged: dict = {}
        for p in parts:
            for upd in p:
                merged[upd.key] = merged.get(upd.key, 0) + upd.delta
        merged = {k: v for k, v in merged.items() if v}
        assert merged == st.multiplicities()

    def test_partition_needs_positive_sites(self):
        st = DynamicGraphStream(4)
        with pytest.raises(StreamError):
            st.partition(0)

    def test_sorted_by_edge_groups_tokens(self):
        st = DynamicGraphStream(6)
        st.insert(3, 4)
        st.insert(0, 1)
        st.delete(3, 4)
        st.insert(0, 2)
        st.insert(3, 4)
        srt = st.sorted_by_edge()
        keys = [u.key for u in srt]
        assert keys == sorted(keys)
        assert srt.multiplicities() == st.multiplicities()

    def test_shuffled_preserves_aggregate(self):
        edges = erdos_renyi_graph(12, 0.5, seed=4)
        st = stream_from_edges(12, edges)
        sh = st.shuffled(seed=9)
        assert sh.multiplicities() == st.multiplicities()
        assert len(sh) == len(st)

    def test_concatenation(self):
        a = DynamicGraphStream(5)
        a.insert(0, 1)
        b = DynamicGraphStream(5)
        b.insert(1, 2)
        c = a + b
        assert len(c) == 2
        assert c.multiplicities() == {(0, 1): 1, (1, 2): 1}

    def test_concatenation_universe_mismatch(self):
        with pytest.raises(StreamError):
            DynamicGraphStream(5) + DynamicGraphStream(6)

    def test_interleave_preserves_tokens(self):
        a = stream_from_edges(8, path_graph(8))
        b = stream_from_edges(8, [(0, 7)])
        c = a.interleaved_with(b, seed=1)
        assert len(c) == len(a) + len(b)
        assert c.multiplicities() == {**a.multiplicities(), **b.multiplicities()}

    def test_from_edges(self):
        st = DynamicGraphStream.from_edges(4, [(0, 1), (2, 3)])
        assert st.final_edge_count() == 2


class TestStreamBatch:
    def test_columns_match_tokens(self):
        st = DynamicGraphStream(6)
        st.insert(3, 1)
        st.delete(0, 5, copies=2)
        batch = st.as_batch()
        assert len(batch) == 2
        assert batch.n == 6
        assert list(batch.lo) == [1, 0]
        assert list(batch.hi) == [3, 5]
        assert list(batch.delta) == [1, -2]
        assert list(batch.ranks) == [pair_rank(1, 3, 6), pair_rank(0, 5, 6)]

    def test_cached_until_append(self):
        st = stream_from_edges(8, path_graph(8))
        first = st.as_batch()
        assert st.as_batch() is first  # shared across consumers
        st.insert(0, 7)
        second = st.as_batch()
        assert second is not first
        assert len(second) == len(first) + 1

    def test_columns_are_read_only(self):
        batch = stream_from_edges(5, [(0, 1), (2, 3)]).as_batch()
        for column in (batch.lo, batch.hi, batch.delta, batch.ranks):
            with pytest.raises(ValueError):
                column[0] = 99

    def test_select_and_slice(self):
        st = stream_from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4)])
        batch = st.as_batch()
        picked = batch.select(batch.lo >= 2)
        assert list(picked.lo) == [2, 3]
        window = batch.slice(1, 3)
        assert list(window.hi) == [2, 3]
        assert list(window.ranks) == list(batch.ranks[1:3])

    def test_empty_stream_batch(self):
        batch = DynamicGraphStream(4).as_batch()
        assert len(batch) == 0
        assert batch.ranks.size == 0

    def test_consumer_sees_tokens_appended_after_as_batch(self):
        """Regression: the invalidate-on-append contract, end to end.

        A consumer that sketched the stream, then had the stream grow,
        then consumed again must see the new tokens — a stale cached
        batch would silently drop them (and break temporal epochs,
        where the manager re-pulls ``as_batch`` between seals).
        """
        from repro.core import SpanningForestSketch
        from repro.hashing import HashSource
        from repro.sketch import dump_sketch

        st = stream_from_edges(6, [(0, 1), (1, 2)])
        st.as_batch()  # populate the cache before the append
        st.insert(2, 3)
        st.delete(1, 2)
        grown = st.as_batch()
        assert len(grown) == 4, "append must invalidate the cached batch"
        resumed = SpanningForestSketch(6, HashSource(9)).consume(st)
        direct = SpanningForestSketch(6, HashSource(9))
        direct.consume_batch(
            DynamicGraphStream(6, list(st)).as_batch()
        )
        assert dump_sketch(resumed) == dump_sketch(direct)
        assert sorted(map(tuple, (e[:2] for e in resumed.spanning_forest()))) \
            == [(0, 1), (2, 3)]


class TestGenerators:
    def test_er_edge_count_scales_with_p(self):
        sparse = erdos_renyi_graph(40, 0.1, seed=1)
        dense = erdos_renyi_graph(40, 0.9, seed=1)
        assert len(sparse) < len(dense)

    def test_er_rejects_bad_p(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)

    def test_er_no_self_loops_or_duplicates(self):
        edges = erdos_renyi_graph(30, 0.5, seed=2)
        assert all(u != v for u, v in edges)
        assert len(set(edges)) == len(edges)

    def test_planted_partition_denser_inside(self):
        edges = planted_partition_graph(40, 0.8, 0.05, seed=3)
        inside = sum(1 for u, v in edges if (u < 20) == (v < 20))
        across = len(edges) - inside
        assert inside > 3 * across

    def test_dumbbell_min_cut_is_bridges(self):
        for bridges in (1, 3, 5):
            edges = dumbbell_graph(8, bridges)
            g = Graph.from_edges(16, edges)
            assert global_min_cut_value(g) == bridges

    def test_dumbbell_rejects_too_many_bridges(self):
        with pytest.raises(ValueError):
            dumbbell_graph(5, 4)

    def test_grid_edge_count(self):
        edges = grid_graph(4, 5)
        assert len(edges) == 4 * 4 + 3 * 5

    def test_path_cycle_star_complete(self):
        assert len(path_graph(10)) == 9
        assert len(cycle_graph(10)) == 10
        assert len(star_graph(10)) == 9
        assert len(complete_graph(6)) == 15
        assert len(complete_bipartite_graph(3, 4)) == 12

    def test_triangle_planted_contains_triangles(self):
        from repro.graphs import triangle_count

        edges = triangle_planted_graph(30, 0.0, 5, seed=4)
        g = Graph.from_edges(30, edges)
        assert triangle_count(g) == 5

    def test_triangle_planted_rejects_too_many(self):
        with pytest.raises(ValueError):
            triangle_planted_graph(10, 0.1, 4)

    def test_random_weighted_in_range(self):
        wedges = random_weighted_edges(20, 0.5, 9, seed=5)
        assert all(1 <= w <= 9 for _, _, w in wedges)


class TestChurnStreams:
    def test_final_graph_is_exact(self):
        edges = erdos_renyi_graph(25, 0.3, seed=6)
        st = churn_stream(25, edges, seed=7)
        assert sorted(st.edges()) == sorted(
            (min(u, v), max(u, v)) for u, v in edges
        )

    def test_prefix_validity(self):
        edges = erdos_renyi_graph(25, 0.3, seed=8)
        st = churn_stream(25, edges, seed=9)
        st.validate()  # no prefix goes negative

    def test_contains_deletions(self):
        edges = erdos_renyi_graph(25, 0.5, seed=10)
        st = churn_stream(25, edges, churn_fraction=0.5, seed=11)
        assert any(u.delta < 0 for u in st)

    def test_zero_churn_zero_decoy_is_clean(self):
        edges = [(0, 1), (1, 2)]
        st = churn_stream(5, edges, churn_fraction=0.0, decoy_fraction=0.0, seed=1)
        assert len(st) == 2

    def test_rejects_bad_fractions(self):
        with pytest.raises(StreamError):
            churn_stream(5, [(0, 1)], churn_fraction=1.5)

    def test_weighted_churn_preserves_weights(self):
        wedges = random_weighted_edges(15, 0.4, 7, seed=12)
        st = weighted_churn_stream(15, wedges, seed=13)
        st.validate()
        want = {
            (min(u, v), max(u, v)): w for u, v, w in wedges
        }
        assert st.multiplicities() == want

    def test_weighted_churn_tokens_are_atomic(self):
        wedges = [(0, 1, 5), (1, 2, 3)]
        st = weighted_churn_stream(4, wedges, churn_fraction=1.0, seed=14)
        # Every token's |delta| must equal the full edge weight.
        weights = {(0, 1): 5, (1, 2): 3}
        for upd in st:
            assert abs(upd.delta) == weights[upd.key]

    def test_weighted_churn_rejects_zero_weight(self):
        with pytest.raises(StreamError):
            weighted_churn_stream(4, [(0, 1, 0)])
