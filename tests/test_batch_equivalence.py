"""Batched ingestion equivalence: ``consume`` ≡ token-by-token ``update``.

The columnar ingestion engine routes every sketch's ``consume()``
through a shared :class:`~repro.streams.batch.StreamBatch`.  Because
every sketch is linear and every scatter is an exact integer (or exact
modular) addition, the batched path must leave *byte-identical* sketch
state to feeding the same stream one :meth:`update` at a time — the
per-token path stays the reference implementation.  This suite pins
that identity for every sketch class, and re-checks it after
``merge()`` of sketches fed from a partitioned stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BipartitenessSketch,
    CutEdgesSketch,
    EdgeConnectivitySketch,
    MinCutSketch,
    MSTWeightSketch,
    SimpleSparsification,
    Sparsification,
    SpanningForestSketch,
    SubgraphSketch,
    WeightedSparsification,
)
from repro.sketch.bank import CellBank
from repro.streams import (
    churn_stream,
    erdos_renyi_graph,
    random_weighted_edges,
    weighted_churn_stream,
)

N = 18
MAX_WEIGHT = 4


def _plain_stream():
    edges = erdos_renyi_graph(N, 0.3, seed=7)
    return churn_stream(N, edges, seed=8)


def _weighted_stream():
    weighted = random_weighted_edges(N, 0.3, max_weight=MAX_WEIGHT, seed=9)
    return weighted_churn_stream(N, weighted, seed=10)


SKETCHES = {
    "forest": (
        lambda src: SpanningForestSketch(N, src, rounds=4),
        _plain_stream,
    ),
    "edge-connect": (
        lambda src: EdgeConnectivitySketch(N, 3, src, rounds=3),
        _plain_stream,
    ),
    "mincut": (
        lambda src: MinCutSketch(
            N, epsilon=0.5, source=src, c_k=0.5, levels=4, rounds=3
        ),
        _plain_stream,
    ),
    "simple-sparsify": (
        lambda src: SimpleSparsification(
            N, epsilon=0.5, source=src, c_k=0.05, levels=4, rounds=3
        ),
        _plain_stream,
    ),
    "sparsify": (
        lambda src: Sparsification(
            N, epsilon=0.5, source=src, c_k=0.1, c_rough=0.05, levels=4, rounds=3
        ),
        _plain_stream,
    ),
    "subgraph-k3": (
        lambda src: SubgraphSketch(N, order=3, samplers=8, source=src),
        _plain_stream,
    ),
    "subgraph-k4": (
        lambda src: SubgraphSketch(N, order=4, samplers=4, source=src),
        _plain_stream,
    ),
    "cut-edges": (
        lambda src: CutEdgesSketch(N, k=6, source=src),
        _plain_stream,
    ),
    "bipartiteness": (
        lambda src: BipartitenessSketch(N, src, rounds=3),
        _plain_stream,
    ),
    "mst-weight": (
        lambda src: MSTWeightSketch(N, max_weight=MAX_WEIGHT, source=src, rounds=3),
        _weighted_stream,
    ),
    "weighted-sparsify": (
        lambda src: WeightedSparsification(
            N, max_weight=MAX_WEIGHT, epsilon=0.5, source=src, c_k=0.05, rounds=2
        ),
        _weighted_stream,
    ),
}


def _cell_banks(sketch) -> list[CellBank]:
    """Every CellBank a sketch's state lives in, in a stable order."""
    if isinstance(sketch, SpanningForestSketch):
        return [sketch.bank.bank]
    if isinstance(sketch, EdgeConnectivitySketch):
        return [b for g in sketch.groups for b in _cell_banks(g)]
    if isinstance(sketch, (MinCutSketch, SimpleSparsification)):
        return [b for inst in sketch.instances for b in _cell_banks(inst)]
    if isinstance(sketch, Sparsification):
        return _cell_banks(sketch.rough) + [sketch.recovery.bank]
    if isinstance(sketch, SubgraphSketch):
        return [sketch.bank.bank]
    if isinstance(sketch, CutEdgesSketch):
        return [sketch.bank.bank]
    if isinstance(sketch, BipartitenessSketch):
        return _cell_banks(sketch.base) + _cell_banks(sketch.doubled)
    if isinstance(sketch, MSTWeightSketch):
        return [b for s in sketch.sketches for b in _cell_banks(s)]
    if isinstance(sketch, WeightedSparsification):
        return [b for c in sketch.classes for b in _cell_banks(c)]
    raise TypeError(f"no bank extraction for {type(sketch).__name__}")


def _assert_identical(batched, reference) -> None:
    banks_a = _cell_banks(batched)
    banks_b = _cell_banks(reference)
    assert len(banks_a) == len(banks_b) > 0
    for a, b in zip(banks_a, banks_b):
        assert np.array_equal(a.phi, b.phi)
        assert np.array_equal(a.iota, b.iota)
        assert np.array_equal(a.fp1, b.fp1)
        assert np.array_equal(a.fp2, b.fp2)


@pytest.mark.parametrize("name", sorted(SKETCHES))
def test_consume_matches_tokenwise_update(name, source):
    factory, make_stream = SKETCHES[name]
    stream = make_stream()
    batched = factory(source.derive(1)).consume(stream)
    reference = factory(source.derive(1))
    for upd in stream:
        reference.update(upd)
    _assert_identical(batched, reference)


@pytest.mark.parametrize("name", sorted(SKETCHES))
def test_merged_partitions_match_whole_stream(name, source):
    factory, make_stream = SKETCHES[name]
    stream = make_stream()
    whole = factory(source.derive(2)).consume(stream)
    merged = None
    for part in stream.partition(3, seed=5):
        site = factory(source.derive(2)).consume(part)
        if merged is None:
            merged = site
        else:
            merged.merge(site)
    _assert_identical(merged, whole)
