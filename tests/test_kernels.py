"""The kernel registry: selection, fallback, telemetry, and parity.

:mod:`repro.kernels` is a performance knob, never a correctness knob —
this module pins the knob's contract:

* the registry resolves every published kernel name and nothing else;
* backend selection degrades loudly-but-safely (unavailable ``numba``
  and unknown names warn ``RuntimeWarning`` and land on an available
  backend, so ``REPRO_KERNELS`` can never break an install);
* on a numba-less interpreter the fallback is *clean*: the package
  imports, records why numba is out, and serves numpy — proven here
  without numba ever being importable;
* telemetry counts calls and seconds per (kernel, implementing
  backend) and resets to empty;
* every available backend is byte-identical on the scatter kernel for
  a deterministic workload (the deep cross-backend sweep is the
  hypothesis harness in ``tests/test_temporal_equivalence.py``).
"""

from __future__ import annotations

import importlib.util
import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro import kernels
from repro.core import SpanningForestSketch
from repro.hashing import HashSource
from repro.sketch import dump_sketch
from repro.streams import DynamicGraphStream

N = 8


@pytest.fixture(autouse=True)
def restore_backend():
    previous = kernels.backend_name()
    yield
    kernels.use(previous)


def _workload_stream() -> DynamicGraphStream:
    stream = DynamicGraphStream(N)
    for u in range(N):
        for v in range(u + 1, N):
            if (u * 7 + v * 3) % 4 != 0:
                stream.insert(u, v)
    stream.delete(0, 3)
    return stream


class TestRegistry:
    def test_every_published_name_resolves(self):
        assert kernels.KERNEL_NAMES
        for name in kernels.KERNEL_NAMES:
            handle = kernels.get(name)
            assert handle.name == name
            assert handle.backend in kernels.available_backends()

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            kernels.get("definitely_not_a_kernel")

    def test_handles_are_cached(self):
        assert kernels.get("scatter_multi") is kernels.get("scatter_multi")

    def test_numpy_always_available(self):
        assert "numpy" in kernels.available_backends()


class TestSelection:
    def test_explicit_numpy(self):
        assert kernels.use("numpy") == "numpy"
        assert kernels.backend_name() == "numpy"

    def test_auto_prefers_numba_when_available(self):
        expected = (
            "numba" if "numba" in kernels.available_backends() else "numpy"
        )
        assert kernels.use("auto") == expected

    def test_unknown_backend_warns_and_falls_back(self):
        with pytest.warns(RuntimeWarning, match="unknown kernel backend"):
            selected = kernels.use("fortran")
        assert selected in kernels.available_backends()

    def test_case_and_whitespace_insensitive(self):
        assert kernels.use("  NumPy ") == "numpy"

    @pytest.mark.skipif(
        "numba" in kernels.available_backends(),
        reason="numba importable here; the fallback path cannot trigger",
    )
    def test_numba_unavailable_warns_and_serves_numpy(self):
        """The documented degradation: request numba, get numpy + warning."""
        assert "numba" in kernels.UNAVAILABLE
        with pytest.warns(RuntimeWarning, match="falling back to the numpy"):
            assert kernels.use("numba") == "numpy"
        # auto on this interpreter is numpy, silently.
        assert kernels.use("auto") == "numpy"


class TestNumbaAbsentImport:
    @pytest.mark.skipif(
        importlib.util.find_spec("numba") is not None,
        reason="numba is installed; absence cannot be proven in-process",
    )
    def test_package_imports_cleanly_without_numba(self):
        """A fresh interpreter without numba imports the package warning-
        free, records the import failure, and selects numpy."""
        code = (
            "import warnings\n"
            "with warnings.catch_warnings():\n"
            "    warnings.simplefilter('error')\n"
            "    from repro import kernels\n"
            "assert kernels.backend_name() == 'numpy'\n"
            "assert kernels.available_backends() == ('numpy',)\n"
            "assert 'numba' in kernels.UNAVAILABLE\n"
            "print('fallback-ok')\n"
        )
        src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
        env = {
            k: v for k, v in os.environ.items() if k != "REPRO_KERNELS"
        }
        env["PYTHONPATH"] = src
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=120, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "fallback-ok" in proc.stdout

    def test_unavailable_reason_is_a_string(self):
        for backend, reason in kernels.UNAVAILABLE.items():
            assert isinstance(backend, str) and isinstance(reason, str)
            assert reason  # an empty diagnosis helps nobody


class TestTelemetry:
    def test_calls_and_seconds_accumulate(self):
        kernels.reset_kernel_stats()
        assert kernels.kernel_stats() == []
        sketch = SpanningForestSketch(N, HashSource(9))
        sketch.consume_batch(_workload_stream().as_batch())
        rows = kernels.kernel_stats()
        assert rows, "ingest must flow through at least one kernel"
        by_kernel = {row["kernel"]: row for row in rows}
        assert "forest_scatter" in by_kernel
        for row in rows:
            assert row["backend"] in kernels.available_backends()
            assert row["calls"] >= 1
            assert row["seconds"] >= 0.0

    def test_reset_zeroes_everything(self):
        kernels.get("level_route")(np.zeros(4, dtype=np.int64), 3)
        assert kernels.kernel_stats()
        kernels.reset_kernel_stats()
        assert kernels.kernel_stats() == []


class TestCrossBackendParity:
    @pytest.mark.parametrize("backend", kernels.available_backends())
    def test_ingest_bytes_identical_under_each_backend(self, backend):
        """One deterministic workload, serialised bytes per backend —
        all equal to the numpy reference."""
        batch = _workload_stream().as_batch()

        def ingest() -> bytes:
            sketch = SpanningForestSketch(N, HashSource(42))
            sketch.consume_batch(batch)
            return dump_sketch(sketch)

        kernels.use("numpy")
        reference = ingest()
        kernels.use(backend)
        assert ingest() == reference, (
            f"backend {backend!r} drifted from the numpy reference"
        )
