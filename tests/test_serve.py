"""The ingestion/query service: wire contract, concurrency, parity.

Everything runs in-process through the bundled ASGI test client — no
sockets, no server.  The heavyweight guarantees pinned here:

* **Parity**: a served answer is byte-identical (canonical JSON, minus
  telemetry) to the in-process ``engine.query()`` answer for every
  serialisable kind and every capability it declares.
* **Backpressure**: a full ingest queue rejects batch submissions with
  429 + ``Retry-After`` and accurate counters.
* **Idempotency**: replaying a client batch id returns the original
  admission receipt and ingests nothing.
* **Races**: concurrent ingest and query interleave safely (the tenant
  lock serialises engine state).
* **Shutdown**: lifespan shutdown drains every admitted job before
  closing engines.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import GraphSketchEngine, SketchSpec
from repro.api.wire import blob_from_wire
from repro.serve import ServeConfig, create_app
from repro.serve.testing import AsgiClient
from repro.streams import EdgeUpdate, StreamBatch

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")

N = 8

#: Spec declarations (wire form) per serialisable kind — parameters
#: mirror tests/test_wire.py so parity runs against known-good configs.
SPEC_PARAMS = {
    "spanning_forest": {},
    "edge_connectivity": {"k": 2},
    "mincut": {"epsilon": 0.5, "c_k": 0.4},
    "simple_sparsification": {"epsilon": 0.5, "c_k": 0.15},
    "sparsification": {"epsilon": 0.5, "c_k": 0.3, "c_rough": 0.05},
    "weighted_sparsification": {"max_weight": 2, "epsilon": 0.5, "c_k": 0.15},
    "subgraph_count": {"order": 3, "samplers": 6},
    "cut_edges": {"k": 16},
    "bipartiteness": {},
    "mst_weight": {"max_weight": 2},
}
SEEDS = {kind: 31 + i for i, kind in enumerate(sorted(SPEC_PARAMS))}

#: A small deterministic insert-only workload over the N-node universe.
WORKLOAD = [
    [u, v, 1]
    for u in range(N)
    for v in range(u + 1, N)
    if (u * 7 + v * 3) % 4 != 0
]

CANONICAL_QUERIES = {
    "connectivity": {"query": "connectivity", "args": {"u": 0, "v": N - 1}},
    "k-edge-connectivity": {"query": "k-edge-connectivity", "args": {}},
    "mincut": {"query": "mincut", "args": {}},
    "cut-query": {"query": "cut-query", "args": {"side": [0, 1]}},
    "sparsifier": {"query": "sparsifier", "args": {}},
    "subgraph-count": {"query": "subgraph-count", "args": {"pattern": "triangle"}},
    "properties": {"query": "properties", "args": {}},
}


def wire_query(capability: str) -> dict:
    return {"v": 1, "window": None, **CANONICAL_QUERIES[capability]}


def tenant_declaration(kind: str, name: str | None = None) -> dict:
    return {
        "name": name or kind,
        "spec": {
            "kind": kind, "n": N, "seed": SEEDS[kind],
            "params": SPEC_PARAMS[kind],
        },
    }


def reference_engine(kind: str) -> GraphSketchEngine:
    """The in-process engine the served tenant must match exactly."""
    spec = SketchSpec.of(kind, N, seed=SEEDS[kind], **SPEC_PARAMS[kind])
    batch = StreamBatch.from_updates(
        N, [EdgeUpdate(u, v, d) for u, v, d in WORKLOAD]
    )
    return GraphSketchEngine.for_spec(spec).ingest_batch(batch)


def strip_telemetry(payload: dict) -> str:
    return json.dumps(
        {k: v for k, v in payload.items() if k != "telemetry"},
        sort_keys=True,
    )


def run(coro) -> None:
    asyncio.run(coro)


class TestLifecycleAndRouting:
    def test_healthz_and_unknown_routes(self):
        async def scenario():
            async with AsgiClient(create_app()) as client:
                assert (await client.get("/healthz")).json() == {"status": "ok"}
                r = await client.get("/nope")
                assert r.status == 404
                assert r.json()["error"]["code"] == "NOT_FOUND"
                r = await client.delete("/healthz")
                assert r.status == 404
                r = await client.request("PUT", "/v1/tenants")
                assert r.status == 405
                assert r.json()["error"]["code"] == "METHOD_NOT_ALLOWED"

        run(scenario())

    def test_not_accepting_before_startup(self):
        async def scenario():
            client = AsgiClient(create_app())  # no lifespan: never started
            r = await client.post(
                "/v1/tenants", json=tenant_declaration("spanning_forest")
            )
            assert r.status == 503
            assert r.json()["error"]["code"] == "SHUTTING_DOWN"

        run(scenario())


class TestTenantCrud:
    def test_create_list_get_delete(self):
        async def scenario():
            async with AsgiClient(create_app()) as client:
                r = await client.post(
                    "/v1/tenants", json=tenant_declaration("spanning_forest")
                )
                assert r.status == 201
                info = r.json()
                assert info["capabilities"] == ["connectivity"]
                assert info["spec"]["kind"] == "spanning_forest"
                r = await client.get("/v1/tenants")
                assert r.json() == {"tenants": ["spanning_forest"]}
                r = await client.get("/v1/tenants/spanning_forest")
                assert r.status == 200
                r = await client.delete("/v1/tenants/spanning_forest")
                assert r.status == 200
                r = await client.get("/v1/tenants/spanning_forest")
                assert r.status == 404
                assert r.json()["error"]["code"] == "TENANT_UNKNOWN"

        run(scenario())

    def test_duplicate_name_conflicts(self):
        async def scenario():
            async with AsgiClient(create_app()) as client:
                decl = tenant_declaration("spanning_forest")
                assert (await client.post("/v1/tenants", json=decl)).status == 201
                r = await client.post("/v1/tenants", json=decl)
                assert r.status == 409
                assert r.json()["error"]["code"] == "TENANT_EXISTS"

        run(scenario())

    @pytest.mark.parametrize("declaration,status,code", [
        ({"name": "x/y", "spec": {"kind": "spanning_forest", "n": N}},
         400, "WIRE_INVALID"),
        ({"name": "ok"}, 400, "WIRE_INVALID"),
        ({"name": "ok", "spec": {"kind": "page_rank", "n": N}},
         422, "NOT_SUPPORTED"),
        ({"name": "ok", "spec": {"kind": "spanning_forest", "n": N,
                                 "params": {"bogus": 1}}},
         400, "BAD_REQUEST"),
        ({"name": "ok", "spec": {"kind": "baswana_sen_spanner", "n": N,
                                 "params": {"k": 2}}},
         422, "NOT_SUPPORTED"),
        ({"name": "ok", "spec": {"kind": "spanning_forest", "n": N},
          "deployment": {"epochs": {"count": 4}}},
         422, "NOT_SUPPORTED"),
        ({"name": "ok", "spec": {"kind": "spanning_forest", "n": N},
          "deployment": {"sharded": {}, "epochs": {}}},
         422, "NOT_SUPPORTED"),
        ({"name": "ok", "spec": {"kind": "spanning_forest", "n": N},
          "deployment": {"sharded": {"strategy": "telepathy"}}},
         422, "NOT_SUPPORTED"),
    ])
    def test_refused_declarations(self, declaration, status, code):
        async def scenario():
            async with AsgiClient(create_app()) as client:
                r = await client.post("/v1/tenants", json=declaration)
                assert r.status == status, r.text
                assert r.json()["error"]["code"] == code

        run(scenario())


class TestIngestAndParity:
    @pytest.mark.parametrize("kind", sorted(SPEC_PARAMS))
    def test_served_answers_match_in_process_engine(self, kind):
        """The parity contract, all serialisable kinds × capabilities."""
        from repro.api.capabilities import capability_entry

        async def scenario():
            reference = reference_engine(kind)
            async with AsgiClient(create_app()) as client:
                r = await client.post(
                    "/v1/tenants", json=tenant_declaration(kind)
                )
                assert r.status == 201, r.text
                r = await client.post(
                    f"/v1/tenants/{kind}/batches",
                    json={"updates": WORKLOAD},
                )
                assert r.status == 202, r.text
                await client.post(f"/v1/tenants/{kind}/flush")
                for capability in sorted(capability_entry(kind).queries):
                    served = await client.post(
                        f"/v1/tenants/{kind}/query",
                        json=wire_query(capability),
                    )
                    assert served.status == 200, served.text
                    local = reference.query(wire_query(capability))
                    assert strip_telemetry(served.json()) == \
                        strip_telemetry(local.to_dict()), (kind, capability)

        run(scenario())

    def test_columnar_as_batch_matches_batches(self):
        """``as_batch`` columnar ingest lands byte-identical to ``batches``.

        Same kind, same seed, same workload — one tenant fed the
        row-wise form, one the columnar form; their codec-v2 snapshots
        must match exactly, which pins every cell of the sketch state.
        """
        async def scenario():
            kind = "spanning_forest"
            columns = {
                "lo": [u for u, _, _ in WORKLOAD],
                "hi": [v for _, v, _ in WORKLOAD],
                "delta": [d for _, _, d in WORKLOAD],
            }
            async with AsgiClient(create_app()) as client:
                for name in ("rows", "cols"):
                    decl = tenant_declaration(kind, name=name)
                    assert (await client.post(
                        "/v1/tenants", json=decl)).status == 201
                r = await client.post("/v1/tenants/rows/batches",
                                      json={"updates": WORKLOAD})
                assert r.status == 202, r.text
                r = await client.post("/v1/tenants/cols/as_batch",
                                      json=columns)
                assert r.status == 202, r.text
                # Same receipt shape and update count as the row form.
                assert r.json()["updates"] == len(WORKLOAD)
                snaps = []
                for name in ("rows", "cols"):
                    await client.post(f"/v1/tenants/{name}/flush")
                    r = await client.get(f"/v1/tenants/{name}/snapshot")
                    assert r.status == 200
                    snaps.append(r.json()["blob"])
                assert snaps[0] == snaps[1]

        run(scenario())

    def test_columnar_default_delta_and_idempotency(self):
        async def scenario():
            async with AsgiClient(create_app()) as client:
                await client.post(
                    "/v1/tenants", json=tenant_declaration("spanning_forest")
                )
                # Omitted delta column means unit insertions.
                body = {"lo": [0, 1], "hi": [1, 2], "batch_id": "b-1"}
                r = await client.post(
                    "/v1/tenants/spanning_forest/as_batch", json=body
                )
                assert r.status == 202 and r.json()["updates"] == 2
                receipt = r.json()
                # Replay returns the original receipt, ingests nothing.
                r = await client.post(
                    "/v1/tenants/spanning_forest/as_batch", json=body
                )
                assert r.status == 200
                assert r.json() == {**receipt, "replayed": True}
                info = (await client.get(
                    "/v1/tenants/spanning_forest")).json()
                assert info["batches_deduplicated"] == 1

        run(scenario())

    @pytest.mark.parametrize("body,code", [
        ({"lo": [], "hi": []}, "BAD_REQUEST"),
        ({"lo": [0], "hi": [1, 2]}, "WIRE_INVALID"),            # ragged
        ({"lo": [0], "hi": [1], "delta": []}, "WIRE_INVALID"),  # ragged delta
        ({"lo": [0], "hi": ["x"]}, "WIRE_INVALID"),
        ({"lo": 3, "hi": [1]}, "WIRE_INVALID"),
        ({"lo": [0], "hi": [0]}, "STREAM_INVALID"),             # self-loop
        ({"lo": [0], "hi": [N]}, "STREAM_INVALID"),             # outside
    ])
    def test_rejected_columnar_batches(self, body, code):
        async def scenario():
            async with AsgiClient(create_app()) as client:
                await client.post(
                    "/v1/tenants", json=tenant_declaration("spanning_forest")
                )
                r = await client.post(
                    "/v1/tenants/spanning_forest/as_batch", json=body
                )
                assert r.status == 400, r.text
                assert r.json()["error"]["code"] == code

        run(scenario())

    def test_sharded_tenant_matches_local(self):
        async def scenario():
            reference = reference_engine("mincut")
            async with AsgiClient(create_app()) as client:
                decl = tenant_declaration("mincut", name="sharded-mincut")
                decl["deployment"] = {
                    "sharded": {"sites": 3, "strategy": "hash-edge", "seed": 0}
                }
                assert (await client.post("/v1/tenants", json=decl)).status == 201
                # Two separate batches: linearity merges the per-ingest
                # reports into the same state one stream would produce.
                half = len(WORKLOAD) // 2
                for part in (WORKLOAD[:half], WORKLOAD[half:]):
                    r = await client.post(
                        "/v1/tenants/sharded-mincut/batches",
                        json={"updates": part},
                    )
                    assert r.status == 202
                await client.post("/v1/tenants/sharded-mincut/flush")
                served = await client.post(
                    "/v1/tenants/sharded-mincut/query",
                    json=wire_query("mincut"),
                )
                local = reference.query(wire_query("mincut"))
                assert strip_telemetry(served.json()) == \
                    strip_telemetry(local.to_dict())

        run(scenario())

    def test_temporal_tenant_windows(self):
        async def scenario():
            async with AsgiClient(create_app()) as client:
                decl = tenant_declaration("spanning_forest", name="tmp")
                decl["deployment"] = {"epochs": {}}
                assert (await client.post("/v1/tenants", json=decl)).status == 201
                half = len(WORKLOAD) // 2
                await client.post("/v1/tenants/tmp/batches",
                                  json={"updates": WORKLOAD[:half]})
                r = await client.post("/v1/tenants/tmp/seal")
                assert r.status == 200 and r.json()["epochs_sealed"] == 1
                await client.post("/v1/tenants/tmp/batches",
                                  json={"updates": WORKLOAD[half:]})
                r = await client.post("/v1/tenants/tmp/seal")
                assert r.json()["epochs_sealed"] == 2
                # Window [0, 1) sees only the first half.
                query = wire_query("connectivity")
                query["window"] = [0, 1]
                served = await client.post("/v1/tenants/tmp/query", json=query)
                assert served.status == 200
                assert served.json()["window"] == [0, 1]
                spec = SketchSpec.of(
                    "spanning_forest", N, seed=SEEDS["spanning_forest"]
                )
                reference = GraphSketchEngine.for_spec(spec).epochs()
                reference.ingest_batch(StreamBatch.from_updates(
                    N, [EdgeUpdate(u, v, d) for u, v, d in WORKLOAD[:half]]
                ))
                reference.seal_epoch()
                assert strip_telemetry(served.json()) == \
                    strip_telemetry(reference.query(query).to_dict())

        run(scenario())

    def test_seal_on_non_temporal_tenant_is_422(self):
        async def scenario():
            async with AsgiClient(create_app()) as client:
                await client.post(
                    "/v1/tenants", json=tenant_declaration("spanning_forest")
                )
                r = await client.post("/v1/tenants/spanning_forest/seal")
                assert r.status == 422
                assert r.json()["error"]["code"] == "NOT_SUPPORTED"

        run(scenario())

    def test_snapshot_restores_in_process(self):
        async def scenario():
            async with AsgiClient(create_app()) as client:
                kind = "spanning_forest"
                await client.post("/v1/tenants", json=tenant_declaration(kind))
                await client.post(f"/v1/tenants/{kind}/batches",
                                  json={"updates": WORKLOAD})
                await client.post(f"/v1/tenants/{kind}/flush")
                r = await client.get(f"/v1/tenants/{kind}/snapshot")
                assert r.status == 200 and r.json()["codec"] == "v2"
                blob = blob_from_wire(r.json()["blob"])
            assert blob == reference_engine(kind).snapshot()
            restored = GraphSketchEngine.restore(blob)
            assert restored.query(wire_query("connectivity")).connected \
                == reference_engine(kind).query(
                    wire_query("connectivity")).connected

        run(scenario())

    @pytest.mark.parametrize("body,code", [
        ({"updates": []}, "BAD_REQUEST"),
        ({"updates": [[0, 0]]}, "STREAM_INVALID"),      # self-loop
        ({"updates": [[0, N]]}, "STREAM_INVALID"),      # outside universe
        ({"updates": [[0, 1, 0]]}, "STREAM_INVALID"),   # zero delta
        ({"updates": [["a", 1]]}, "WIRE_INVALID"),
        ({"updates": "nope"}, "WIRE_INVALID"),
        ({"batch_id": 7, "updates": [[0, 1]]}, "BAD_REQUEST"),
    ])
    def test_rejected_batches(self, body, code):
        async def scenario():
            async with AsgiClient(create_app()) as client:
                await client.post(
                    "/v1/tenants", json=tenant_declaration("spanning_forest")
                )
                r = await client.post(
                    "/v1/tenants/spanning_forest/batches", json=body
                )
                assert r.status == 400, r.text
                assert r.json()["error"]["code"] == code

        run(scenario())

    def test_query_wire_errors(self):
        async def scenario():
            async with AsgiClient(create_app()) as client:
                await client.post(
                    "/v1/tenants", json=tenant_declaration("spanning_forest")
                )
                await client.post("/v1/tenants/spanning_forest/batches",
                                  json={"updates": [[0, 1]]})
                await client.post("/v1/tenants/spanning_forest/flush")
                r = await client.post("/v1/tenants/spanning_forest/query",
                                      json={"query": "connectivity"})
                assert r.status == 400
                assert r.json()["error"]["code"] == "WIRE_INVALID"
                r = await client.post("/v1/tenants/spanning_forest/query",
                                      json=wire_query("mincut"))
                assert r.status == 422
                assert r.json()["error"]["code"] == "NOT_SUPPORTED"
                r = await client.post("/v1/tenants/spanning_forest/query",
                                      body=b"{not json")
                assert r.status == 400
                assert r.json()["error"]["code"] == "BAD_REQUEST"

        run(scenario())


class TestIdempotency:
    def test_replay_returns_original_receipt_and_ingests_nothing(self):
        async def scenario():
            app = create_app()
            async with AsgiClient(app) as client:
                await client.post(
                    "/v1/tenants", json=tenant_declaration("spanning_forest")
                )
                first = await client.post(
                    "/v1/tenants/spanning_forest/batches",
                    json={"batch_id": "b-1", "updates": WORKLOAD},
                )
                assert first.status == 202
                assert first.json()["replayed"] is False
                await client.post("/v1/tenants/spanning_forest/flush")
                replay = await client.post(
                    "/v1/tenants/spanning_forest/batches",
                    json={"batch_id": "b-1", "updates": [[0, 1]]},
                )
                assert replay.status == 200
                assert replay.json() == {**first.json(), "replayed": True}
                await client.post("/v1/tenants/spanning_forest/flush")
                info = (await client.get("/v1/tenants/spanning_forest")).json()
                assert info["updates_ingested"] == len(WORKLOAD)
                assert info["batches_ingested"] == 1
                assert info["batches_deduplicated"] == 1

        run(scenario())

    def test_ttl_expiry_forgets_batch_ids(self):
        async def scenario():
            now = [0.0]
            app = create_app(
                ServeConfig(idempotency_ttl=10.0), clock=lambda: now[0]
            )
            async with AsgiClient(app) as client:
                await client.post(
                    "/v1/tenants", json=tenant_declaration("spanning_forest")
                )
                body = {"batch_id": "b", "updates": [[0, 1]]}
                assert (await client.post(
                    "/v1/tenants/spanning_forest/batches", json=body
                )).status == 202
                now[0] = 5.0   # still remembered
                assert (await client.post(
                    "/v1/tenants/spanning_forest/batches", json=body
                )).status == 200
                now[0] = 20.0  # expired: admitted as a fresh batch
                assert (await client.post(
                    "/v1/tenants/spanning_forest/batches", json=body
                )).status == 202

        run(scenario())

    def test_deleting_tenant_forgets_its_batch_ids(self):
        async def scenario():
            async with AsgiClient(create_app()) as client:
                decl = tenant_declaration("spanning_forest")
                await client.post("/v1/tenants", json=decl)
                body = {"batch_id": "b", "updates": [[0, 1]]}
                await client.post("/v1/tenants/spanning_forest/batches",
                                  json=body)
                await client.post("/v1/tenants/spanning_forest/flush")
                await client.delete("/v1/tenants/spanning_forest")
                await client.post("/v1/tenants", json=decl)
                r = await client.post("/v1/tenants/spanning_forest/batches",
                                      json=body)
                assert r.status == 202  # fresh tenant, fresh id space

        run(scenario())


class TestBackpressure:
    def test_queue_full_rejects_with_retry_after(self):
        async def scenario():
            app = create_app(ServeConfig(queue_capacity=3,
                                         retry_after_seconds=7))
            async with AsgiClient(app) as client:
                await client.post(
                    "/v1/tenants", json=tenant_declaration("spanning_forest")
                )
                tenant = app.registry.get("spanning_forest")
                async with tenant.lock:  # stall the drainer mid-job
                    statuses = []
                    for i in range(6):
                        r = await client.post(
                            "/v1/tenants/spanning_forest/batches",
                            json={"updates": [[i % N, (i + 1) % N]]},
                        )
                        statuses.append(r.status)
                        if r.status == 429:
                            assert r.headers["retry-after"] == "7"
                            assert r.json()["error"]["code"] == "QUEUE_FULL"
                    # 3 queued (+ possibly 1 already in-flight at the
                    # drainer, stalled on the lock); the rest 429.
                    admitted = statuses.count(202)
                    assert admitted in (3, 4)
                    assert statuses.count(429) == 6 - admitted
                await client.post("/v1/tenants/spanning_forest/flush")
                info = (await client.get("/v1/tenants/spanning_forest")).json()
                assert info["batches_ingested"] == admitted
                metrics = (await client.get("/metrics")).text
                assert (
                    f"repro_serve_jobs_rejected_total {6 - admitted}"
                ) in metrics

        run(scenario())

    def test_streaming_waits_instead_of_rejecting(self):
        async def scenario():
            # Queue of 1 + chunk size 1: every line must wait for the
            # drainer, yet all lines land (flow control, not rejection).
            app = create_app(ServeConfig(queue_capacity=1,
                                         stream_chunk_updates=1))
            async with AsgiClient(app) as client:
                await client.post(
                    "/v1/tenants", json=tenant_declaration("spanning_forest")
                )
                lines = b"".join(
                    json.dumps([u, u + 1]).encode() + b"\n"
                    for u in range(N - 1)
                )
                r = await client.post("/v1/tenants/spanning_forest/stream",
                                      body=lines)
                assert r.status == 202
                assert r.json()["updates"] == N - 1
                await client.post("/v1/tenants/spanning_forest/flush")
                info = (await client.get("/v1/tenants/spanning_forest")).json()
                assert info["updates_ingested"] == N - 1

        run(scenario())


class TestStreaming:
    def test_chunked_ndjson_reassembles_lines(self):
        async def scenario():
            async with AsgiClient(create_app()) as client:
                await client.post(
                    "/v1/tenants", json=tenant_declaration("spanning_forest")
                )
                payload = b"".join(
                    json.dumps({"u": u, "v": u + 1}).encode() + b"\n"
                    for u in range(N - 1)
                )
                # Split mid-line: the handler must buffer across chunks.
                chunks = [payload[:7], payload[7:20], payload[20:]]
                r = await client.post("/v1/tenants/spanning_forest/stream",
                                      chunks=chunks)
                assert r.status == 202, r.text
                assert r.json()["updates"] == N - 1
                await client.post("/v1/tenants/spanning_forest/flush")
                served = await client.post(
                    "/v1/tenants/spanning_forest/query",
                    json=wire_query("connectivity"),
                )
                assert served.json()["body"]["connected"] is True

        run(scenario())

    def test_invalid_ndjson_line_is_400(self):
        async def scenario():
            async with AsgiClient(create_app()) as client:
                await client.post(
                    "/v1/tenants", json=tenant_declaration("spanning_forest")
                )
                r = await client.post("/v1/tenants/spanning_forest/stream",
                                      body=b'[0, 1]\nnot json\n')
                assert r.status == 400
                assert r.json()["error"]["code"] == "BAD_REQUEST"

        run(scenario())


class TestConcurrency:
    def test_ingest_while_query_races(self):
        """Interleaved submissions and queries never corrupt or error."""
        async def scenario():
            async with AsgiClient(create_app()) as client:
                await client.post(
                    "/v1/tenants", json=tenant_declaration("spanning_forest")
                )
                edges = [(u, v) for u, v, _ in WORKLOAD]
                # Seed one drained batch so queries during the race
                # never hit the empty-engine refusal.
                first = edges[0]
                await client.post(
                    "/v1/tenants/spanning_forest/batches",
                    json={"updates": [list(first)]},
                )
                await client.post("/v1/tenants/spanning_forest/flush")
                edges = edges[1:]

                async def ingest() -> None:
                    for u, v in edges:
                        r = await client.post(
                            "/v1/tenants/spanning_forest/batches",
                            json={"updates": [[u, v]]},
                        )
                        assert r.status in (202, 429)

                async def query() -> None:
                    for _ in range(10):
                        r = await client.post(
                            "/v1/tenants/spanning_forest/query",
                            json=wire_query("connectivity"),
                        )
                        assert r.status == 200, r.text
                        body = r.json()["body"]
                        assert 1 <= body["components"] <= N

                await asyncio.gather(ingest(), query(), ingest(), query())
                await client.post("/v1/tenants/spanning_forest/flush")
                final = await client.post(
                    "/v1/tenants/spanning_forest/query",
                    json=wire_query("connectivity"),
                )
                # Both ingest tasks submitted the same inserts; doubled
                # multiplicities leave connectivity structure unchanged.
                reference = reference_engine("spanning_forest")
                assert final.json()["body"]["components"] == \
                    reference.query(wire_query("connectivity")).components

        run(scenario())

    def test_shutdown_drains_admitted_jobs(self):
        """Jobs admitted before shutdown land in the sketch, not the bin."""
        async def scenario():
            app = create_app(ServeConfig(queue_capacity=len(WORKLOAD) + 1))
            async with AsgiClient(app) as client:
                await client.post(
                    "/v1/tenants", json=tenant_declaration("spanning_forest")
                )
                tenant = app.registry.get("spanning_forest")
                for u, v, d in WORKLOAD:
                    r = await client.post(
                        "/v1/tenants/spanning_forest/batches",
                        json={"updates": [[u, v, d]]},
                    )
                    assert r.status == 202
                # Exit immediately: shutdown must drain, not drop.
            assert tenant.updates_ingested == len(WORKLOAD)
            assert tenant.pending == 0
            assert tenant.drain_errors == 0
            reference = reference_engine("spanning_forest")
            assert tenant.engine.query(wire_query("connectivity")).components \
                == reference.query(wire_query("connectivity")).components

        run(scenario())

    def test_drain_error_is_accounted_not_fatal(self):
        async def scenario():
            app = create_app()
            async with AsgiClient(app) as client:
                decl = tenant_declaration("spanning_forest", name="tmp")
                decl["deployment"] = {"epochs": {}}
                await client.post("/v1/tenants", json=decl)
                tenant = app.registry.get("tmp")
                # Sabotage: sealing an empty epoch raises inside the
                # drainer; the service must absorb it and keep going.
                r = await client.post("/v1/tenants/tmp/seal")
                assert r.status in (200, 422, 500)
                await client.post("/v1/tenants/tmp/batches",
                                  json={"updates": [[0, 1]]})
                await client.post("/v1/tenants/tmp/flush")
                assert tenant.updates_ingested == 1

        run(scenario())


class TestMetrics:
    def test_exposition_content(self):
        async def scenario():
            async with AsgiClient(create_app()) as client:
                await client.post(
                    "/v1/tenants", json=tenant_declaration("spanning_forest")
                )
                await client.post("/v1/tenants/spanning_forest/batches",
                                  json={"updates": WORKLOAD})
                await client.post("/v1/tenants/spanning_forest/flush")
                for _ in range(3):
                    await client.post("/v1/tenants/spanning_forest/query",
                                      json=wire_query("connectivity"))
                r = await client.get("/metrics")
                assert r.status == 200
                assert r.headers["content-type"].startswith("text/plain")
                text = r.text
                assert "# TYPE repro_serve_queue_depth gauge" in text
                assert "repro_serve_queue_depth 0" in text
                assert "repro_serve_tenants 1" in text
                assert (
                    "repro_serve_updates_ingested_total"
                    f'{{tenant="spanning_forest"}} {len(WORKLOAD)}'
                ) in text
                assert (
                    "repro_serve_queries_total"
                    '{capability="connectivity",tenant="spanning_forest"} 3'
                ) in text
                assert "repro_serve_query_seconds_total" in text

        run(scenario())
