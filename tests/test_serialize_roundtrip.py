"""Dump/load round trips for every registry-serialisable sketch.

Two layers of guarantees:

* **fidelity** — a loaded sketch answers every query identically to the
  original (the cell arrays, parameters, and hash seeds all survive);
* **refusal** — wrong kinds, corrupted bytes, tampered parameters, and
  mismatched seeds/params against a local reference sketch are rejected
  with clear errors, never silently mis-loaded.
"""

from __future__ import annotations

import pytest

from repro.core import (
    BipartitenessSketch,
    CutEdgesSketch,
    EdgeConnectivitySketch,
    MinCutSketch,
    MSTWeightSketch,
    SimpleSparsification,
    Sparsification,
    SpanningForestSketch,
    SubgraphSketch,
    WeightedSparsification,
)
from repro.errors import SketchCompatibilityError
from repro.hashing import HashSource
from repro.sketch import (
    dump_l0_bank,
    dump_sketch,
    load_sketch,
    peek_sketch_meta,
    serializable_sketch_kinds,
    sketch_kind_of,
)
from repro.streams import (
    churn_stream,
    erdos_renyi_graph,
    random_weighted_edges,
    weighted_churn_stream,
)

N = 12


@pytest.fixture(scope="module")
def stream():
    return churn_stream(N, erdos_renyi_graph(N, 0.4, seed=11), seed=12)


@pytest.fixture(scope="module")
def weighted_stream():
    return weighted_churn_stream(
        N, random_weighted_edges(N, 0.4, 3, seed=13), seed=14
    )


#: kind → (builder(seed), query answered after round trip, weighted?).
CASES = {
    "spanning_forest": (
        lambda s: SpanningForestSketch(N, HashSource(s)),
        lambda sk: sorted(map(sorted, sk.connected_components())),
        False,
    ),
    "edge_connectivity": (
        lambda s: EdgeConnectivitySketch(N, 3, HashSource(s)),
        lambda sk: sorted(sk.witness().weighted_edges()),
        False,
    ),
    "mincut": (
        lambda s: MinCutSketch(N, epsilon=0.5, source=HashSource(s), c_k=0.4),
        lambda sk: (sk.estimate().value, sk.estimate().stop_level),
        False,
    ),
    "simple_sparsification": (
        lambda s: SimpleSparsification(
            N, epsilon=0.5, source=HashSource(s), c_k=0.15
        ),
        lambda sk: sorted(sk.sparsifier().graph.weighted_edges()),
        False,
    ),
    "sparsification": (
        lambda s: Sparsification(
            N, epsilon=0.5, source=HashSource(s), c_k=0.3, c_rough=0.05
        ),
        lambda sk: sorted(sk.sparsifier().graph.weighted_edges()),
        False,
    ),
    "weighted_sparsification": (
        lambda s: WeightedSparsification(
            N, max_weight=3, epsilon=0.5, source=HashSource(s), c_k=0.15
        ),
        lambda sk: sorted(sk.sparsifier().graph.weighted_edges()),
        True,
    ),
    "subgraph_count": (
        lambda s: SubgraphSketch(N, order=3, samplers=8, source=HashSource(s)),
        lambda sk: sk.raw_samples(),
        False,
    ),
    "cut_edges": (
        lambda s: CutEdgesSketch(N, k=16, source=HashSource(s)),
        lambda sk: sorted(sk.crossing_edges({0}).items()),
        False,
    ),
    "bipartiteness": (
        lambda s: BipartitenessSketch(N, HashSource(s)),
        lambda sk: sk.is_bipartite(),
        False,
    ),
    "mst_weight": (
        lambda s: MSTWeightSketch(N, max_weight=3, source=HashSource(s)),
        lambda sk: (sk.estimate(), sk.component_counts()),
        True,
    ),
}


class TestRoundTrip:
    def test_registry_covers_all_cases(self):
        assert set(serializable_sketch_kinds()) == set(CASES)

    @pytest.mark.parametrize("kind", sorted(CASES))
    def test_queries_identical_after_round_trip(
        self, kind, stream, weighted_stream
    ):
        build, query, weighted = CASES[kind]
        st = weighted_stream if weighted else stream
        original = build(2000).consume(st)
        blob = dump_sketch(original)
        restored = load_sketch(blob)
        assert type(restored) is type(original)
        assert sketch_kind_of(restored) == kind
        assert query(restored) == query(original)

    @pytest.mark.parametrize("kind", sorted(CASES))
    def test_restored_sketch_stays_linear(self, kind, stream, weighted_stream):
        """A loaded sketch keeps consuming and merging like the original."""
        build, query, weighted = CASES[kind]
        st = weighted_stream if weighted else stream
        half = len(st) // 2
        first = type(st)(st.n, list(st)[:half])
        second = type(st)(st.n, list(st)[half:])
        whole = build(2001).consume(st)
        resumed = load_sketch(dump_sketch(build(2001).consume(first)))
        resumed.merge(build(2001).consume(second))
        assert dump_sketch(resumed) == dump_sketch(whole)

    def test_meta_peek(self, stream):
        blob = dump_sketch(
            SpanningForestSketch(N, HashSource(2002)).consume(stream)
        )
        meta = peek_sketch_meta(blob)
        assert meta["__kind__"] == "sketch:spanning_forest"
        assert meta["n"] == N
        assert meta["seed"] == 2002


class TestRefusals:
    def test_unregistered_type_rejected(self):
        with pytest.raises(TypeError, match="no registered sketch codec"):
            dump_sketch(object())

    def test_missing_seed_rejected(self, stream):
        sk = SpanningForestSketch(N, HashSource(3000))
        sk.source_seed = None
        with pytest.raises(ValueError, match="no recorded seed"):
            dump_sketch(sk)
        assert peek_sketch_meta(dump_sketch(sk, seed=3000))["seed"] == 3000

    def test_wrong_kind_rejected(self, stream):
        """A sketch blob is not a bank blob, and vice versa."""
        from repro.sketch import load_l0_bank

        sketch_blob = dump_sketch(SpanningForestSketch(N, HashSource(3001)))
        with pytest.raises(ValueError, match="expected 'l0_bank'"):
            load_l0_bank(sketch_blob)
        bank_blob = dump_l0_bank(
            SpanningForestSketch(N, HashSource(3001)).bank
        )
        with pytest.raises(ValueError, match="not a registry-serialised"):
            load_sketch(bank_blob)

    def test_garbage_bytes_rejected(self):
        with pytest.raises(ValueError, match="not a repro sketch blob"):
            load_sketch(b"these are not the bytes you are looking for")

    def test_corrupted_blob_rejected(self):
        blob = bytearray(dump_sketch(SpanningForestSketch(N, HashSource(3002))))
        blob[len(blob) // 2] ^= 0xFF  # flip a payload byte
        with pytest.raises(ValueError):
            load_sketch(bytes(blob))

    def test_corrupted_magic_rejected(self):
        from repro.sketch.serialize import _pack

        blob = _pack("sketch:spanning_forest", {"n": N}, {})
        # Re-pack with a bogus magic by crafting the header directly.
        import io
        import json

        import numpy as np

        header = {"__magic__": "wrong-magic", "__kind__": "sketch:x"}
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            __header__=np.frombuffer(
                json.dumps(header).encode(), dtype=np.uint8
            ),
        )
        with pytest.raises(ValueError, match="bad magic"):
            load_sketch(buf.getvalue())
        assert isinstance(blob, bytes)  # the well-formed pack still works

    def test_mismatched_seed_refused_against_reference(self, stream):
        ours = SpanningForestSketch(N, HashSource(41)).consume(stream)
        theirs = SpanningForestSketch(N, HashSource(42)).consume(stream)
        blob = dump_sketch(theirs)
        with pytest.raises(SketchCompatibilityError, match="seed"):
            load_sketch(blob, like=ours)

    def test_mismatched_params_refused_against_reference(self, stream):
        ours = EdgeConnectivitySketch(N, 3, HashSource(43))
        theirs = EdgeConnectivitySketch(N, 4, HashSource(43))
        with pytest.raises(SketchCompatibilityError, match="k:"):
            load_sketch(dump_sketch(theirs), like=ours)

    def test_mismatched_type_refused_against_reference(self, stream):
        forest = SpanningForestSketch(N, HashSource(44))
        cut = CutEdgesSketch(N, k=4, source=HashSource(44))
        with pytest.raises(SketchCompatibilityError, match="CutEdgesSketch"):
            load_sketch(dump_sketch(forest), like=cut)

    def test_tampered_fingerprint_values_rejected(self):
        """Out-of-field fingerprint values refuse to load (both codecs)."""
        import struct

        from blob_utils import densify_sketch_v2, pack_v1_sketch, repack_v2

        from repro.hashing import MERSENNE31

        blob = dump_sketch(SpanningForestSketch(N, HashSource(3004)))

        def poison_v2(header, payload):
            # First fp1 cell sits after the phi and iota halves.
            offset = 2 * int(sum(header["cells"])) * 8
            struct.pack_into("<q", payload, offset, MERSENNE31)

        with pytest.raises(ValueError, match="outside"):
            load_sketch(repack_v2(densify_sketch_v2(blob), poison_v2))

        def poison_v1(_header, arrays):
            arrays["fp1"][0] = MERSENNE31  # just past the field modulus

        with pytest.raises(ValueError, match="outside"):
            load_sketch(pack_v1_sketch(blob, poison_v1))

    def test_tampered_cells_meta_rejected(self):
        """A blob whose cell layout disagrees with its params refuses."""
        from blob_utils import repack_v2

        blob = dump_sketch(SpanningForestSketch(N, HashSource(3003)))

        def lie(header, _payload):
            header["cells"] = [1]  # lie about the layout

        with pytest.raises(ValueError, match="cell layout"):
            load_sketch(repack_v2(blob, lie))
