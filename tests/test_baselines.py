"""Tests for the baseline algorithms (Karger, Fung, Buriol, offline BS)."""

from __future__ import annotations

import pytest

from repro.baselines import (
    BuriolTriangleEstimator,
    baswana_sen_offline,
    exact_gamma,
    exact_min_cut,
    exact_triangles,
    fung_sample_probabilities,
    fung_sparsify,
    graph_from_stream,
    karger_sample_probability,
    karger_sparsify,
)
from repro.core import TRIANGLE, cut_approximation_report
from repro.errors import StreamError
from repro.graphs import Graph, measure_stretch, triangle_count
from repro.streams import (
    churn_stream,
    complete_graph,
    dumbbell_graph,
    erdos_renyi_graph,
    path_graph,
    stream_from_edges,
    triangle_planted_graph,
)


class TestKarger:
    def test_probability_depends_on_min_cut(self):
        weak = Graph.from_edges(16, dumbbell_graph(8, 1))
        strong = Graph.from_edges(10, complete_graph(10))
        assert karger_sample_probability(weak, 0.5) == 1.0
        # The paper constant keeps p at 1 for laptop-scale λ; scale it
        # down (as the experiments do) to see the λ-dependence.
        assert karger_sample_probability(strong, 0.5, c=0.5) < 1.0

    def test_sparsifier_quality(self):
        g = Graph.from_edges(20, erdos_renyi_graph(20, 0.8, seed=1))
        sp = karger_sparsify(g, epsilon=0.5, c=3.0, seed=2)
        rep = cut_approximation_report(g, sp, sample_cuts=100)
        assert rep.max_relative_error < 1.0

    def test_keeps_everything_at_p_one(self):
        g = Graph.from_edges(8, path_graph(8))
        sp = karger_sparsify(g, epsilon=0.5, seed=3)
        assert sorted(sp.graph.weighted_edges()) == sorted(g.weighted_edges())

    def test_rejects_bad_epsilon(self):
        g = Graph.from_edges(4, path_graph(4))
        with pytest.raises(ValueError):
            karger_sample_probability(g, 0.0)


class TestFung:
    def test_probabilities_inverse_to_connectivity(self):
        g = Graph.from_edges(16, dumbbell_graph(8, 2))
        probs = fung_sample_probabilities(g, epsilon=0.5, c=0.3)
        bridge_p = probs[(0, 8)]
        clique_p = probs[(0, 1)]
        assert bridge_p >= clique_p

    def test_low_connectivity_edges_always_kept(self):
        g = Graph.from_edges(10, path_graph(10))
        probs = fung_sample_probabilities(g, epsilon=0.5)
        assert all(p == 1.0 for p in probs.values())

    def test_sparsifier_quality(self):
        g = Graph.from_edges(20, erdos_renyi_graph(20, 0.8, seed=4))
        sp = fung_sparsify(g, epsilon=0.5, c=1.0, seed=5)
        rep = cut_approximation_report(g, sp, sample_cuts=100)
        assert rep.max_relative_error < 0.6


class TestBuriol:
    def test_exact_on_dense_triangle_graph(self):
        n = 20
        edges = complete_graph(n)
        g = Graph.from_edges(n, edges)
        est = BuriolTriangleEstimator(n, samplers=600, seed=6).consume(
            stream_from_edges(n, edges)
        ).estimate()
        truth = triangle_count(g)
        assert abs(est.triangles - truth) / truth < 0.5

    def test_zero_triangles(self):
        n = 12
        est = BuriolTriangleEstimator(n, samplers=100, seed=7).consume(
            stream_from_edges(n, path_graph(n))
        ).estimate()
        assert est.triangles == 0.0

    def test_rejects_deletions(self):
        """The gap the paper's sketch closes: insert-only baselines break."""
        n = 10
        st = churn_stream(n, erdos_renyi_graph(n, 0.5, seed=8), seed=9)
        assert any(u.delta < 0 for u in st)
        with pytest.raises(StreamError):
            BuriolTriangleEstimator(n, samplers=10, seed=10).consume(st)

    def test_rejects_self_loop(self):
        est = BuriolTriangleEstimator(5, samplers=4, seed=11)
        with pytest.raises(StreamError):
            est.update(2, 2)

    def test_rejects_bad_samplers(self):
        with pytest.raises(ValueError):
            BuriolTriangleEstimator(5, samplers=0)


class TestOfflineBaswanaSen:
    @pytest.mark.parametrize("k", [2, 3])
    def test_stretch_bound(self, k):
        n = 30
        g = Graph.from_edges(n, erdos_renyi_graph(n, 0.4, seed=12))
        spanner = baswana_sen_offline(g, k=k, seed=13)
        rep = measure_stretch(g, spanner)
        assert rep.disconnected_pairs == 0
        assert rep.max_stretch <= 2 * k - 1

    def test_compresses_dense_graphs(self):
        n = 24
        g = Graph.from_edges(n, complete_graph(n))
        spanner = baswana_sen_offline(g, k=3, seed=14)
        assert spanner.num_edges() < g.num_edges()

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            baswana_sen_offline(Graph(5), k=1)


class TestExactWrappers:
    def test_graph_from_stream(self):
        st = stream_from_edges(6, path_graph(6))
        g = graph_from_stream(st)
        assert sorted(g.edges()) == path_graph(6)

    def test_exact_min_cut(self):
        st = stream_from_edges(12, dumbbell_graph(6, 2))
        assert exact_min_cut(st) == 2.0

    def test_exact_triangles_and_gamma(self):
        edges = triangle_planted_graph(15, 0.0, 3, seed=15)
        st = stream_from_edges(15, edges)
        assert exact_triangles(st) == 3
        assert exact_gamma(st, TRIANGLE) > 0
