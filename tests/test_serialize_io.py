"""Tests for sketch serialisation and stream text I/O."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import StreamError
from repro.hashing import HashSource
from repro.sketch import (
    L0SamplerBank,
    SparseRecoveryBank,
    dump_l0_bank,
    dump_recovery_bank,
    load_l0_bank,
    load_recovery_bank,
)
from repro.streams import (
    DynamicGraphStream,
    churn_stream,
    dumps_stream,
    erdos_renyi_graph,
    loads_stream,
    read_stream,
    write_stream,
)


class TestL0BankSerialization:
    def _filled_bank(self, seed: int) -> L0SamplerBank:
        bank = L0SamplerBank(
            families=3, samplers=4, domain=500, source=HashSource(seed)
        )
        rng = np.random.default_rng(1)
        bank.update(
            rng.integers(0, 3, size=50),
            rng.integers(0, 4, size=50),
            rng.integers(0, 500, size=50),
            rng.choice([-1, 1], size=50),
        )
        return bank

    def test_round_trip_bit_exact(self):
        bank = self._filled_bank(77)
        blob = dump_l0_bank(bank)
        restored = load_l0_bank(blob)
        assert (restored.bank.phi == bank.bank.phi).all()
        assert (restored.bank.iota == bank.bank.iota).all()
        assert (restored.bank.fp1 == bank.bank.fp1).all()
        assert (restored.bank.fp2 == bank.bank.fp2).all()

    def test_restored_bank_is_usable(self):
        """The restored bank must keep working: same hashes, mergeable."""
        bank = self._filled_bank(78)
        restored = load_l0_bank(dump_l0_bank(bank))
        restored.merge(bank)  # would raise on any shape/seed mismatch
        assert (restored.bank.phi == 2 * bank.bank.phi).all()
        # Further updates must route identically on both copies.
        fresh = load_l0_bank(dump_l0_bank(bank))
        upd = (np.array([0]), np.array([1]), np.array([42]), np.array([1]))
        bank.update(*upd)
        fresh.update(*upd)
        assert (fresh.bank.phi == bank.bank.phi).all()
        assert (fresh.bank.fp1 == bank.bank.fp1).all()

    def test_sampling_survives_round_trip(self):
        bank = L0SamplerBank(1, 1, 100, HashSource(5))
        bank.update(np.array([0]), np.array([0]), np.array([7]), np.array([3]))
        restored = load_l0_bank(dump_l0_bank(bank))
        assert restored.sample(0, 0) == (7, 3)

    def test_wrong_kind_rejected(self):
        bank = self._filled_bank(79)
        blob = dump_l0_bank(bank)
        with pytest.raises(ValueError):
            load_recovery_bank(blob)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            load_l0_bank(b"not a sketch")

    def test_explicit_seed_override(self):
        bank = self._filled_bank(80)
        bank.source_seed = None  # simulate a non-seeded source
        with pytest.raises(ValueError):
            dump_l0_bank(bank)
        blob = dump_l0_bank(bank, seed=80)
        assert load_l0_bank(blob).source_seed == 80


class TestRecoveryBankSerialization:
    def test_round_trip_and_decode(self):
        bank = SparseRecoveryBank(2, 3, 1000, k=5, source=HashSource(9))
        bank.update(
            np.array([0, 1]), np.array([2, 0]),
            np.array([10, 700]), np.array([4, -2]),
        )
        restored = load_recovery_bank(dump_recovery_bank(bank))
        assert restored.decode(0, 2) == {10: 4}
        assert restored.decode(1, 0) == {700: -2}

    def test_merge_after_transfer(self):
        """The distributed workflow: site dumps, coordinator loads+merges."""
        site_a = SparseRecoveryBank(1, 2, 100, k=4, source=HashSource(11))
        site_b = SparseRecoveryBank(1, 2, 100, k=4, source=HashSource(11))
        site_a.update(np.array([0]), np.array([0]), np.array([5]), np.array([1]))
        site_b.update(np.array([0]), np.array([0]), np.array([5]), np.array([2]))
        coordinator = load_recovery_bank(dump_recovery_bank(site_a))
        coordinator.merge(load_recovery_bank(dump_recovery_bank(site_b)))
        assert coordinator.decode(0, 0) == {5: 3}


class TestStreamIO:
    def test_round_trip(self):
        n = 15
        st = churn_stream(n, erdos_renyi_graph(n, 0.3, seed=1), seed=2)
        restored = loads_stream(dumps_stream(st))
        assert restored.n == st.n
        assert list(restored) == list(st)

    def test_file_round_trip(self, tmp_path):
        st = DynamicGraphStream(5)
        st.insert(0, 1)
        st.delete(0, 1)
        st.insert(2, 3, copies=4)
        path = tmp_path / "stream.txt"
        write_stream(st, path)
        assert read_stream(path).multiplicities() == {(2, 3): 4}

    def test_handle_round_trip(self):
        st = DynamicGraphStream(4)
        st.insert(1, 2)
        buf = io.StringIO()
        write_stream(st, buf)
        buf.seek(0)
        assert list(read_stream(buf)) == list(st)

    def test_comments_and_blanks_ignored(self):
        text = (
            "# dynamic-graph-stream n=4\n"
            "\n"
            "# a comment\n"
            "0 1 1\n"
            "1 2 -1\n"
        )
        st = loads_stream(text)
        assert len(st) == 2
        assert st[1].delta == -1

    def test_missing_header(self):
        with pytest.raises(StreamError):
            loads_stream("0 1 1\n")

    def test_duplicate_header(self):
        with pytest.raises(StreamError):
            loads_stream(
                "# dynamic-graph-stream n=4\n# dynamic-graph-stream n=4\n"
            )

    def test_malformed_token(self):
        with pytest.raises(StreamError):
            loads_stream("# dynamic-graph-stream n=4\n0 1\n")
        with pytest.raises(StreamError):
            loads_stream("# dynamic-graph-stream n=4\n0 x 1\n")

    def test_self_loop_rejected_on_load(self):
        with pytest.raises(StreamError):
            loads_stream("# dynamic-graph-stream n=4\n2 2 1\n")
