"""Tests for :mod:`repro.analysis` — the repo-specific invariant linter.

Covers, per ISSUE 6:

* one violating and one clean fixture tree per rule family
  (``tests/fixtures/analysis/``);
* the live-registry introspection checks, including the "delete a
  CAPABILITIES declaration / a ``_cell_banks`` override / a registry
  entry and the linter goes red" guarantees;
* the "delete a seeding argument and the linter goes red" guarantee;
* the baseline ratchet: growth blocks, shrinkage passes with a note,
  determinism/registry findings block even when baselined;
* the self-check: ``python -m repro.analysis --check`` exits 0 on this
  repository.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    check_registries,
    compare_to_baseline,
    default_source_root,
    run_analysis,
)
from repro.analysis.cli import main as analysis_main

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"

REPO_ROOT = Path(__file__).resolve().parents[1]


def rules_of(report) -> set[str]:
    return {finding.rule for finding in report.findings}


def analyse(fixture: str):
    return run_analysis(FIXTURES / fixture, introspect=False)


# -- fixture trees: one bad and one ok case per family -------------------------


@pytest.mark.parametrize(
    "fixture, expected_rules",
    [
        (
            "determinism_bad",
            {"REP-D001", "REP-D002", "REP-D003", "REP-D004"},
        ),
        ("registry_bad", {"REP-R004", "REP-R005"}),
        ("purity_bad", {"REP-P001", "REP-P002", "REP-P003"}),
        ("hygiene_bad", {"REP-H001", "REP-H002", "REP-H003"}),
        ("deprecation_bad", {"REP-X001", "REP-X002"}),
    ],
)
def test_violating_fixture_trees_are_caught(fixture, expected_rules):
    report = analyse(fixture)
    assert rules_of(report) == expected_rules


@pytest.mark.parametrize(
    "fixture",
    [
        "determinism_ok",
        "registry_ok",
        "purity_ok",
        "hygiene_ok",
        "deprecation_ok",
    ],
)
def test_clean_fixture_trees_pass(fixture):
    report = analyse(fixture)
    assert report.findings == ()


def test_finding_families_match_rule_prefixes():
    for fixture in ("determinism_bad", "registry_bad", "purity_bad",
                    "hygiene_bad", "deprecation_bad"):
        for finding in analyse(fixture).findings:
            assert finding.rule.startswith("REP-")
            assert finding.line > 0
            assert finding.path.endswith(".py")


def test_deleting_a_seeding_argument_goes_red(tmp_path):
    """The acceptance-criterion scenario: drop the seed, linter fails."""
    seeded = tmp_path / "seeded" / "core"
    seeded.mkdir(parents=True)
    (seeded / "sampler.py").write_text(
        "import numpy as np\n"
        "def make(seed):\n"
        "    return np.random.default_rng(seed)\n"
    )
    assert run_analysis(tmp_path / "seeded", introspect=False).findings == ()

    unseeded = tmp_path / "unseeded" / "core"
    unseeded.mkdir(parents=True)
    (unseeded / "sampler.py").write_text(
        "import numpy as np\n"
        "def make(seed):\n"
        "    return np.random.default_rng()\n"
    )
    report = run_analysis(tmp_path / "unseeded", introspect=False)
    assert rules_of(report) == {"REP-D001"}


def test_syntax_error_is_refused_not_skipped(tmp_path):
    (tmp_path / "broken.py").write_text("def oops(:\n")
    with pytest.raises(ValueError, match="broken.py"):
        run_analysis(tmp_path, introspect=False)


# -- live-registry introspection ----------------------------------------------


def test_live_registries_are_complete():
    assert check_registries() == []


def test_deleting_capabilities_declaration_goes_red(monkeypatch):
    from repro.core.forest import SpanningForestSketch

    monkeypatch.delattr(SpanningForestSketch, "CAPABILITIES")
    findings = check_registries()
    assert any(
        f.rule == "REP-R001" and "spanning_forest" in f.message
        for f in findings
    )


def test_deleting_cell_banks_override_goes_red(monkeypatch):
    from repro.core.forest import SpanningForestSketch
    from repro.sketch.arena import ArenaBacked

    monkeypatch.setattr(
        SpanningForestSketch, "_cell_banks", ArenaBacked._cell_banks
    )
    findings = check_registries()
    assert any(
        f.rule == "REP-R002" and "spanning_forest" in f.message
        for f in findings
    )


def test_unreachable_codec_kind_goes_red(monkeypatch):
    from repro.api import capabilities

    registry = dict(capabilities._REGISTRY)
    registry.pop("mincut")
    monkeypatch.setattr(capabilities, "_REGISTRY", registry)
    findings = check_registries()
    assert any(
        f.rule == "REP-R003" and "mincut" in f.message for f in findings
    )


def test_capability_kind_without_codec_goes_red(monkeypatch):
    from repro.api import capabilities
    from repro.core.mincut import MinCutSketch

    registry = dict(capabilities._REGISTRY)
    registry["phantom_kind"] = capabilities.CapabilityEntry(
        kind="phantom_kind",
        cls=MinCutSketch,
        queries=frozenset({"mincut"}),
        serialisable=True,
    )
    monkeypatch.setattr(capabilities, "_REGISTRY", registry)
    findings = check_registries()
    assert any(
        f.rule == "REP-R003" and "phantom_kind" in f.message
        for f in findings
    )


# -- the baseline ratchet ------------------------------------------------------


def _hygiene_finding(path="api/surface.py", line=7) -> Finding:
    return Finding(path, line, "REP-H001", "hygiene", "missing annotations")


def _determinism_finding() -> Finding:
    return Finding("core/x.py", 3, "REP-D001", "determinism", "unseeded rng")


def test_baseline_allows_exactly_the_recorded_counts():
    baseline = Baseline.from_findings([_hygiene_finding()])
    blocking, notes = compare_to_baseline([_hygiene_finding()], baseline)
    assert blocking == [] and notes == []


def test_baseline_growth_blocks():
    baseline = Baseline.from_findings([_hygiene_finding()])
    blocking, _ = compare_to_baseline(
        [_hygiene_finding(line=7), _hygiene_finding(line=20)], baseline
    )
    assert len(blocking) == 1  # the count beyond the budget, not both


def test_baseline_shrink_passes_with_a_note():
    baseline = Baseline.from_findings(
        [_hygiene_finding(line=7), _hygiene_finding(line=20)]
    )
    blocking, notes = compare_to_baseline([_hygiene_finding()], baseline)
    assert blocking == []
    assert len(notes) == 1 and "--write-baseline" in notes[0]


def test_zero_tolerance_families_cannot_be_baselined():
    finding = _determinism_finding()
    baseline = Baseline.from_findings([finding])
    assert baseline.counts == {}  # never written into a baseline
    hand_edited = Baseline({"REP-D001:core/x.py": 5})
    blocking, _ = compare_to_baseline([finding], hand_edited)
    assert blocking == [finding]  # and ignored even if hand-added


def test_baseline_roundtrip_and_validation(tmp_path):
    path = tmp_path / "analysis_baseline.json"
    Baseline.from_findings([_hygiene_finding()]).dump(path)
    assert Baseline.load(path).counts == {"REP-H001:api/surface.py": 1}
    path.write_text(json.dumps({"version": 99}))
    with pytest.raises(ValueError):
        Baseline.load(path)
    path.write_text(json.dumps({"version": 1, "counts": {"k": -2}}))
    with pytest.raises(ValueError):
        Baseline.load(path)


# -- the CLI -------------------------------------------------------------------


def test_cli_check_fails_on_violating_tree(capsys):
    code = analysis_main([
        "--src", str(FIXTURES / "determinism_bad"),
        "--no-introspect", "--check",
    ])
    assert code == 1
    out = capsys.readouterr().out
    assert "REP-D001" in out and "FAIL" in out


def test_cli_json_report(capsys):
    code = analysis_main([
        "--src", str(FIXTURES / "purity_bad"), "--no-introspect", "--json",
    ])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_scanned"] == 1
    assert {f["rule"] for f in payload["findings"]} == {
        "REP-P001", "REP-P002", "REP-P003",
    }
    assert payload["family_counts"]["purity"] == 4


def test_cli_write_baseline_then_check_passes(tmp_path, capsys):
    baseline = tmp_path / "analysis_baseline.json"
    src = FIXTURES / "hygiene_bad"
    code = analysis_main([
        "--src", str(src), "--no-introspect",
        "--baseline", str(baseline), "--write-baseline",
    ])
    assert code == 0 and baseline.is_file()
    capsys.readouterr()
    code = analysis_main([
        "--src", str(src), "--no-introspect",
        "--baseline", str(baseline), "--check",
    ])
    assert code == 0
    assert "OK" in capsys.readouterr().out


def test_cli_baselined_determinism_still_fails(tmp_path, capsys):
    baseline = tmp_path / "analysis_baseline.json"
    src = FIXTURES / "determinism_bad"
    analysis_main([
        "--src", str(src), "--no-introspect",
        "--baseline", str(baseline), "--write-baseline",
    ])
    capsys.readouterr()
    code = analysis_main([
        "--src", str(src), "--no-introspect",
        "--baseline", str(baseline), "--check",
    ])
    assert code == 1  # zero-tolerance families ignore the baseline


# -- the self-check: this repository holds its own invariants ------------------


def test_repo_passes_its_own_linter():
    """Zero findings beyond the committed (shrink-only) baseline."""
    report = run_analysis(default_source_root(), introspect=True)
    baseline = Baseline.load(REPO_ROOT / "analysis_baseline.json")
    blocking, _notes = compare_to_baseline(report.findings, baseline)
    assert blocking == [], "\n".join(f.render() for f in blocking)
    assert report.files_scanned > 80


def test_cli_check_exits_zero_on_repo():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--check"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src")},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK" in proc.stdout
