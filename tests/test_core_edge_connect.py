"""Tests for k-EDGECONNECT (Theorem 2.3)."""

from __future__ import annotations

import pytest

from repro.core import EdgeConnectivitySketch
from repro.graphs import Graph, global_min_cut_value
from repro.streams import (
    churn_stream,
    complete_graph,
    dumbbell_graph,
    erdos_renyi_graph,
    path_graph,
    stream_from_edges,
)


class TestEdgeConnectivitySketch:
    def test_witness_contains_all_small_cut_edges(self, source):
        """Theorem 2.3: e ∈ H for every e in a cut of size ≤ k."""
        clique, bridges = 7, 2
        n = 2 * clique
        edges = dumbbell_graph(clique, bridges)
        sk = EdgeConnectivitySketch(n, k=4, source=source.derive(1)).consume(
            churn_stream(n, edges, seed=2)
        )
        h = sk.witness()
        for t in range(bridges):
            assert h.has_edge(t, clique + t), "bridge edge missing from witness"

    def test_witness_preserves_min_cut_value(self, source):
        clique, bridges = 6, 3
        n = 2 * clique
        edges = dumbbell_graph(clique, bridges)
        sk = EdgeConnectivitySketch(n, k=5, source=source.derive(2)).consume(
            churn_stream(n, edges, seed=3)
        )
        assert global_min_cut_value(sk.witness()) == bridges

    def test_witness_edge_budget(self, source):
        n = 14
        edges = complete_graph(n)
        sk = EdgeConnectivitySketch(n, k=3, source=source.derive(3)).consume(
            stream_from_edges(n, edges)
        )
        h = sk.witness()
        assert h.num_edges() <= 3 * (n - 1)

    def test_witness_edges_are_subgraph(self, source):
        n = 18
        edges = erdos_renyi_graph(n, 0.3, seed=5)
        g = Graph.from_edges(n, edges)
        sk = EdgeConnectivitySketch(n, k=3, source=source.derive(4)).consume(
            churn_stream(n, edges, seed=6)
        )
        for u, v, _w in sk.witness().weighted_edges():
            assert g.has_edge(u, v)

    def test_sparse_graph_fully_captured(self, source):
        """For graphs with < k-connectivity everywhere, H == G."""
        n = 12
        edges = path_graph(n)
        sk = EdgeConnectivitySketch(n, k=3, source=source.derive(5)).consume(
            stream_from_edges(n, edges)
        )
        h = sk.witness()
        assert sorted(h.edges()) == sorted(edges)

    def test_witness_repeatable(self, source):
        """witness() must restore sketch state (subtract-then-restore)."""
        n = 12
        edges = erdos_renyi_graph(n, 0.4, seed=7)
        sk = EdgeConnectivitySketch(n, k=3, source=source.derive(6)).consume(
            stream_from_edges(n, edges)
        )
        first = sorted(sk.witness().edges())
        second = sorted(sk.witness().edges())
        assert first == second

    def test_merge_matches_direct(self, source):
        n = 14
        edges = erdos_renyi_graph(n, 0.35, seed=8)
        st = churn_stream(n, edges, seed=9)
        direct = EdgeConnectivitySketch(n, k=3, source=source.derive(7)).consume(st)
        merged = EdgeConnectivitySketch(n, k=3, source=source.derive(7))
        for part in st.partition(2, seed=10):
            site = EdgeConnectivitySketch(n, k=3, source=source.derive(7))
            merged.merge(site.consume(part))
        assert sorted(direct.witness().edges()) == sorted(merged.witness().edges())

    def test_merge_mismatch(self, source):
        a = EdgeConnectivitySketch(10, k=2, source=source.derive(8))
        b = EdgeConnectivitySketch(10, k=3, source=source.derive(8))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_rejects_bad_k(self, source):
        with pytest.raises(ValueError):
            EdgeConnectivitySketch(10, k=0, source=source)

    def test_empty_graph_witness_empty(self, source):
        sk = EdgeConnectivitySketch(8, k=2, source=source.derive(9))
        assert sk.witness().num_edges() == 0

    def test_disconnected_components_both_covered(self, source):
        n = 12
        edges = [(0, 1), (1, 2), (2, 0)] + [(6 + u, 6 + v) for u, v in path_graph(5)]
        sk = EdgeConnectivitySketch(n, k=2, source=source.derive(10)).consume(
            stream_from_edges(n, edges)
        )
        h = sk.witness()
        assert h.num_edges() >= len(edges) - 1  # triangle may drop 1 at k=2... not below
