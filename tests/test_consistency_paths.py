"""Consistency between scalar update paths and vectorised consume paths.

Every algorithm offers both a per-token ``update`` and a batched
``consume``; these tests pin them to bit-identical sketch states so the
fast paths can never drift from the reference semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CutEdgesSketch,
    MinCutSketch,
    SimpleSparsification,
    Sparsification,
    SpanningForestSketch,
)
from repro.hashing import HashSource
from repro.streams import churn_stream, erdos_renyi_graph


@pytest.fixture
def workload():
    n = 14
    edges = erdos_renyi_graph(n, 0.45, seed=21)
    return n, churn_stream(n, edges, seed=22)


def _phi_of(sketch):
    """Concatenated phi arrays of all banks inside a sketch."""
    if isinstance(sketch, SpanningForestSketch):
        return [sketch.bank.bank.phi]
    if isinstance(sketch, CutEdgesSketch):
        return [sketch.bank.bank.phi]
    if isinstance(sketch, MinCutSketch):
        return [
            g.bank.bank.phi for inst in sketch.instances for g in inst.groups
        ]
    if isinstance(sketch, SimpleSparsification):
        return [
            g.bank.bank.phi for inst in sketch.instances for g in inst.groups
        ]
    if isinstance(sketch, Sparsification):
        return _phi_of(sketch.rough) + [sketch.recovery.bank.phi]
    raise TypeError(type(sketch))


@pytest.mark.parametrize(
    "factory",
    [
        lambda n: SpanningForestSketch(n, HashSource(77)),
        lambda n: MinCutSketch(n, source=HashSource(78)),
        lambda n: SimpleSparsification(n, source=HashSource(79)),
        lambda n: Sparsification(n, source=HashSource(80)),
        lambda n: CutEdgesSketch(n, k=6, source=HashSource(81)),
    ],
    ids=["forest", "mincut", "simple-sparsify", "sparsify", "cut-queries"],
)
def test_update_equals_consume(workload, factory):
    n, stream = workload
    batched = factory(n).consume(stream)
    tokenwise = factory(n)
    for upd in stream:
        tokenwise.update(upd)
    for a, b in zip(_phi_of(batched), _phi_of(tokenwise)):
        assert (a == b).all()


def test_chunked_consume_equals_whole(workload):
    """Forest consume() chunking must not affect the result."""
    n, stream = workload
    whole = SpanningForestSketch(n, HashSource(82)).consume(stream)
    chunked = SpanningForestSketch(n, HashSource(82))
    m = len(stream)
    lo = np.fromiter((u.lo for u in stream), dtype=np.int64, count=m)
    hi = np.fromiter((u.hi for u in stream), dtype=np.int64, count=m)
    dl = np.fromiter((u.delta for u in stream), dtype=np.int64, count=m)
    for start in range(0, m, 3):  # absurdly small chunks
        chunked.update_edges(
            lo[start:start + 3], hi[start:start + 3], dl[start:start + 3]
        )
    assert (whole.bank.bank.phi == chunked.bank.bank.phi).all()
    assert (whole.bank.bank.fp1 == chunked.bank.bank.fp1).all()


def test_subgraph_consume_equals_update(workload):
    """SubgraphSketch chunked consume must match per-token updates."""
    from repro.core import SubgraphSketch

    n, stream = workload
    batched = SubgraphSketch(
        n, order=3, samplers=16, source=HashSource(83)
    ).consume(stream)
    tokenwise = SubgraphSketch(n, order=3, samplers=16, source=HashSource(83))
    for upd in stream:
        tokenwise.update(upd)
    assert (batched.bank.bank.phi == tokenwise.bank.bank.phi).all()
    assert (batched.bank.bank.iota == tokenwise.bank.bank.iota).all()
    assert (batched.bank.bank.fp1 == tokenwise.bank.bank.fp1).all()
