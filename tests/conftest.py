"""Shared fixtures and hypothesis profiles for the repro test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.graphs import Graph
from repro.hashing import HashSource
from repro.streams import DynamicGraphStream, churn_stream, erdos_renyi_graph

# Hypothesis profiles: "dev" (default) explores with fresh entropy each
# run; "ci" is derandomized so the property suites are reproducible in
# CI — combined with a fixed --hypothesis-seed, a CI failure replays
# locally with HYPOTHESIS_PROFILE=ci.
settings.register_profile("dev", deadline=None, print_blob=True)
settings.register_profile(
    "ci", deadline=None, derandomize=True, print_blob=True
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def source() -> HashSource:
    """A fixed-seed hash source; tests derive children as needed."""
    return HashSource(0xC0FFEE)


@pytest.fixture
def small_graph() -> Graph:
    """A 10-node connected graph with a pendant vertex and a triangle."""
    return Graph.from_edges(
        10,
        [
            (0, 1), (1, 2), (2, 0),          # triangle
            (2, 3), (3, 4), (4, 5), (5, 6),  # path
            (6, 7), (7, 8), (8, 6),          # second triangle
            (8, 9),                          # pendant
        ],
    )


@pytest.fixture
def er_workload() -> tuple[Graph, DynamicGraphStream]:
    """An Erdős–Rényi graph plus a churny dynamic stream ending at it."""
    n = 20
    edges = erdos_renyi_graph(n, 0.35, seed=11)
    return Graph.from_edges(n, edges), churn_stream(n, edges, seed=12)
