"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.graphs import Graph
from repro.hashing import HashSource
from repro.streams import DynamicGraphStream, churn_stream, erdos_renyi_graph


@pytest.fixture
def source() -> HashSource:
    """A fixed-seed hash source; tests derive children as needed."""
    return HashSource(0xC0FFEE)


@pytest.fixture
def small_graph() -> Graph:
    """A 10-node connected graph with a pendant vertex and a triangle."""
    return Graph.from_edges(
        10,
        [
            (0, 1), (1, 2), (2, 0),          # triangle
            (2, 3), (3, 4), (4, 5), (5, 6),  # path
            (6, 7), (7, 8), (8, 6),          # second triangle
            (8, 9),                          # pendant
        ],
    )


@pytest.fixture
def er_workload() -> tuple[Graph, DynamicGraphStream]:
    """An Erdős–Rényi graph plus a churny dynamic stream ending at it."""
    n = 20
    edges = erdos_renyi_graph(n, 0.35, seed=11)
    return Graph.from_edges(n, edges), churn_stream(n, edges, seed=12)
