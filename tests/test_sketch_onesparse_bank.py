"""Tests for 1-sparse cells and the vectorised cell bank."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SketchFailure
from repro.hashing import MERSENNE31
from repro.sketch import CellBank, OneSparseCell, decode_cells


class TestOneSparseCell:
    def test_single_item_decodes(self, source):
        cell = OneSparseCell(100, source.derive(1))
        cell.update(42, 7)
        assert cell.decode() == (42, 7)

    def test_negative_value_decodes(self, source):
        cell = OneSparseCell(100, source.derive(2))
        cell.update(13, -4)
        assert cell.decode() == (13, -4)

    def test_accumulated_updates(self, source):
        cell = OneSparseCell(100, source.derive(3))
        cell.update(8, 3)
        cell.update(8, 2)
        assert cell.decode() == (8, 5)

    def test_cancellation_back_to_one_sparse(self, source):
        cell = OneSparseCell(100, source.derive(4))
        cell.update(8, 3)
        cell.update(9, 1)
        cell.update(9, -1)
        assert cell.decode() == (8, 3)

    def test_empty_cell_fails(self, source):
        cell = OneSparseCell(100, source.derive(5))
        assert cell.is_zero()
        with pytest.raises(SketchFailure):
            cell.decode()
        assert cell.try_decode() is None

    def test_two_items_detected(self, source):
        cell = OneSparseCell(100, source.derive(6))
        cell.update(3, 1)
        cell.update(90, 1)
        with pytest.raises(SketchFailure):
            cell.decode()

    def test_adversarial_phi_zero(self, source):
        """Two items whose values cancel in phi must not decode."""
        cell = OneSparseCell(100, source.derive(7))
        cell.update(10, 5)
        cell.update(20, -5)
        assert not cell.is_zero()
        with pytest.raises(SketchFailure):
            cell.decode()

    def test_adversarial_integer_midpoint(self, source):
        """Two items with iota/phi integral still rejected by fingerprint."""
        cell = OneSparseCell(100, source.derive(8))
        cell.update(10, 1)
        cell.update(20, 1)  # iota/phi = 15, a valid-looking index
        with pytest.raises(SketchFailure):
            cell.decode()

    def test_update_out_of_domain(self, source):
        cell = OneSparseCell(100, source.derive(9))
        with pytest.raises(ValueError):
            cell.update(100, 1)

    def test_merge_linearity(self, source):
        a = OneSparseCell(50, source.derive(10))
        b = OneSparseCell(50, source.derive(10))
        a.update(5, 2)
        b.update(5, -2)
        b.update(7, 1)
        a.merge(b)
        assert a.decode() == (7, 1)

    def test_merge_seed_mismatch_rejected(self, source):
        a = OneSparseCell(50, source.derive(11))
        b = OneSparseCell(50, source.derive(12))
        with pytest.raises(ValueError):
            a.merge(b)


class TestCellBank:
    def test_scatter_and_decode(self, source):
        bank = CellBank(8, 1000, source.derive(20))
        bank.scatter(
            np.array([0, 1, 1, 5]),
            np.array([10, 20, 20, 999]),
            np.array([1, 2, -2, 7]),
        )
        ok, idx, val = decode_cells(
            bank.phi, bank.iota, bank.fp1, bank.fp2, 1000, bank.z1, bank.z2
        )
        assert ok[0] and idx[0] == 10 and val[0] == 1
        assert not ok[1]  # cancelled to zero
        assert ok[5] and idx[5] == 999 and val[5] == 7

    def test_decode_rejects_multi_item_cell(self, source):
        bank = CellBank(2, 1000, source.derive(21))
        bank.scatter(np.array([0, 0]), np.array([3, 4]), np.array([1, 1]))
        ok, _, _ = decode_cells(
            bank.phi, bank.iota, bank.fp1, bank.fp2, 1000, bank.z1, bank.z2
        )
        assert not ok[0]

    def test_fingerprints_stay_reduced(self, source):
        bank = CellBank(1, 10, source.derive(22))
        for _ in range(50):
            bank.scatter(np.array([0]), np.array([3]), np.array([10**6]))
        assert 0 <= bank.fp1[0] < MERSENNE31
        assert 0 <= bank.fp2[0] < MERSENNE31

    def test_merge_matches_combined_stream(self, source):
        a = CellBank(4, 100, source.derive(23))
        b = CellBank(4, 100, source.derive(23))
        c = CellBank(4, 100, source.derive(23))
        a.scatter(np.array([0, 1]), np.array([5, 6]), np.array([1, 2]))
        b.scatter(np.array([0, 2]), np.array([5, 7]), np.array([-1, 3]))
        c.scatter(
            np.array([0, 1, 0, 2]),
            np.array([5, 6, 5, 7]),
            np.array([1, 2, -1, 3]),
        )
        a.merge(b)
        assert (a.phi == c.phi).all()
        assert (a.iota == c.iota).all()
        assert (a.fp1 == c.fp1).all()
        assert (a.fp2 == c.fp2).all()

    def test_merge_shape_mismatch(self, source):
        a = CellBank(4, 100, source.derive(24))
        b = CellBank(5, 100, source.derive(24))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_summed_cells_cancel(self, source):
        bank = CellBank(4, 100, source.derive(25))
        # Two "instances" of 2 cells each; same item with opposite signs.
        bank.scatter(np.array([0, 2]), np.array([9, 9]), np.array([4, -4]))
        idx2d = np.array([[0, 1], [2, 3]])
        phi, iota, fp1, fp2 = bank.summed_cells(idx2d)
        assert (phi == 0).all() and (iota == 0).all()
        assert (fp1 == 0).all() and (fp2 == 0).all()

    def test_rejects_bad_shape(self, source):
        with pytest.raises(ValueError):
            CellBank(0, 10, source)
        with pytest.raises(ValueError):
            CellBank(10, 0, source)
