"""Tests for repro.graphs: Graph, flows, cuts, Gomory-Hu, census, spanners."""

from __future__ import annotations

import math

import pytest

from repro.errors import GraphError
from repro.graphs import (
    Graph,
    MaxFlow,
    all_edge_connectivities,
    all_pairs_distances,
    bfs_distances,
    brute_force_min_cut,
    census,
    connected_components,
    count_nonempty_subgraphs,
    count_pattern,
    diameter,
    dijkstra,
    edge_connectivity,
    gamma_exact,
    global_min_cut_value,
    gomory_hu_tree,
    induced_edge_pattern,
    is_connected,
    is_k_edge_connected,
    is_spanner,
    measure_stretch,
    min_st_cut,
    sparse_certificate,
    spanning_forest,
    stoer_wagner,
    triangle_count,
    verify_subgraph,
    wedge_count,
)
from repro.streams import (
    complete_graph,
    cycle_graph,
    dumbbell_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
)


class TestGraphBasics:
    def test_add_and_query(self):
        g = Graph(4)
        g.add_edge(0, 1, 2.0)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.weight(0, 1) == 2.0
        assert g.weight(2, 3) == 0.0

    def test_add_accumulates_and_cancels(self):
        g = Graph(3)
        g.add_edge(0, 1, 2.0)
        g.add_edge(0, 1, 3.0)
        assert g.weight(0, 1) == 5.0
        g.add_edge(0, 1, -5.0)
        assert not g.has_edge(0, 1)

    def test_set_edge(self):
        g = Graph(3)
        g.set_edge(0, 1, 4.0)
        g.set_edge(0, 1, 1.5)
        assert g.weight(0, 1) == 1.5
        g.set_edge(0, 1, 0.0)
        assert not g.has_edge(0, 1)

    def test_remove_edge(self):
        g = Graph.from_edges(3, [(0, 1)])
        g.remove_edge(0, 1)
        assert g.num_edges() == 0
        with pytest.raises(GraphError):
            g.remove_edge(0, 1)

    def test_rejects_self_loop(self):
        g = Graph(3)
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_rejects_out_of_universe(self):
        g = Graph(3)
        with pytest.raises(GraphError):
            g.add_edge(0, 3)

    def test_degree_and_weighted_degree(self):
        g = Graph.from_weighted_edges(4, [(0, 1, 2.0), (0, 2, 3.0)])
        assert g.degree(0) == 2
        assert g.weighted_degree(0) == 5.0
        assert g.degree(3) == 0

    def test_edges_iteration_canonical(self):
        g = Graph.from_edges(4, [(3, 1), (2, 0)])
        assert sorted(g.edges()) == [(0, 2), (1, 3)]

    def test_cut_value(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert g.cut_value({0}) == 2.0
        assert g.cut_value({0, 1}) == 2.0
        assert g.cut_value({0, 2}) == 4.0

    def test_from_multiplicities(self):
        g = Graph.from_multiplicities(3, {(0, 1): 3, (1, 2): 0})
        assert g.weight(0, 1) == 3.0
        assert not g.has_edge(1, 2)
        with pytest.raises(GraphError):
            Graph.from_multiplicities(3, {(0, 1): -1})

    def test_copy_and_eq(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        h = g.copy()
        assert g == h
        h.add_edge(0, 2)
        assert g != h

    def test_subgraph_on_edges(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        sub = g.subgraph_on_edges([(0, 1)])
        assert sub.num_edges() == 1
        with pytest.raises(GraphError):
            g.subgraph_on_edges([(0, 3)])

    def test_total_weight(self):
        g = Graph.from_weighted_edges(3, [(0, 1, 2.5), (1, 2, 1.5)])
        assert g.total_weight() == 4.0


class TestMaxFlow:
    def test_path_flow_is_bottleneck(self):
        g = Graph.from_weighted_edges(4, [(0, 1, 5), (1, 2, 2), (2, 3, 4)])
        assert min_st_cut(g, 0, 3) == 2.0

    def test_parallel_paths_add(self):
        g = Graph.from_weighted_edges(
            4, [(0, 1, 1), (1, 3, 1), (0, 2, 2), (2, 3, 2)]
        )
        assert min_st_cut(g, 0, 3) == 3.0

    def test_disconnected_zero(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert min_st_cut(g, 0, 3) == 0.0

    def test_min_cut_side_is_certificate(self):
        g = Graph.from_edges(16, dumbbell_graph(8, 2))
        value, side = MaxFlow(g).min_cut_side(0, 8)
        assert value == 2.0
        assert g.cut_value(side) == 2.0
        assert 0 in side and 8 not in side

    def test_same_terminals_rejected(self):
        g = Graph.from_edges(3, [(0, 1)])
        with pytest.raises(GraphError):
            min_st_cut(g, 1, 1)

    def test_flow_reusable_across_terminal_pairs(self):
        g = Graph.from_edges(6, cycle_graph(6))
        flow = MaxFlow(g)
        assert flow.max_flow(0, 3) == 2.0
        assert flow.max_flow(1, 4) == 2.0
        assert flow.max_flow(0, 3) == 2.0  # unchanged after reuse

    def test_negative_capacity_rejected(self):
        g = Graph(3)
        g.add_edge(0, 1, -2.0)
        with pytest.raises(GraphError):
            MaxFlow(g)


class TestGlobalMinCut:
    def test_matches_brute_force_on_random_graphs(self):
        for seed in range(8):
            g = Graph.from_edges(10, erdos_renyi_graph(10, 0.45, seed=seed))
            sw, side = stoer_wagner(g)
            bf, _ = brute_force_min_cut(g)
            assert sw == bf
            if sw > 0:
                assert g.cut_value(side) == sw

    def test_dumbbell(self):
        g = Graph.from_edges(12, dumbbell_graph(6, 3))
        assert global_min_cut_value(g) == 3.0

    def test_disconnected_graph(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        value, side = stoer_wagner(g)
        assert value == 0.0
        assert g.cut_value(side) == 0.0

    def test_weighted(self):
        g = Graph.from_weighted_edges(3, [(0, 1, 5), (1, 2, 0.5), (0, 2, 1)])
        assert global_min_cut_value(g) == 1.5

    def test_brute_force_size_guard(self):
        g = Graph.from_edges(25, path_graph(25))
        with pytest.raises(GraphError):
            brute_force_min_cut(g)

    def test_edge_connectivity_values(self):
        g = Graph.from_edges(12, dumbbell_graph(6, 2))
        assert edge_connectivity(g, 0, 6) == 2.0  # across the bar
        assert edge_connectivity(g, 0, 1) == 6.0  # inside a clique (5 + bridge path)

    def test_all_edge_connectivities(self):
        g = Graph.from_edges(5, cycle_graph(5))
        lam = all_edge_connectivities(g)
        assert all(v == 2.0 for v in lam.values())
        assert len(lam) == 5


class TestGomoryHu:
    @pytest.mark.parametrize("seed", range(5))
    def test_pairwise_values_match_maxflow(self, seed):
        g = Graph.from_edges(10, erdos_renyi_graph(10, 0.4, seed=seed))
        tree = gomory_hu_tree(g)
        flow = MaxFlow(g)
        for u in range(10):
            for v in range(u + 1, 10):
                assert tree.min_cut_value(u, v) == pytest.approx(
                    flow.max_flow(u, v)
                )

    @pytest.mark.parametrize("seed", range(5))
    def test_tree_edges_induce_minimum_cuts(self, seed):
        """The property Gusfield's variant lacks and Fig. 3 requires."""
        g = Graph.from_edges(10, erdos_renyi_graph(10, 0.4, seed=seed))
        tree = gomory_hu_tree(g)
        for a, b, w in tree.tree_edges():
            side = tree.induced_cut_side(a, b)
            assert g.cut_value(side) == pytest.approx(w)
            assert a in side and b not in side

    def test_bottleneck_edge_separates_endpoints(self):
        g = Graph.from_edges(12, dumbbell_graph(6, 2))
        tree = gomory_hu_tree(g)
        a, b, w = tree.min_weight_edge_on_path(0, 7)
        assert w == 2.0
        side = tree.induced_cut_side(a, b)
        assert (0 in side) != (7 in side)

    def test_weighted_graph(self):
        g = Graph.from_weighted_edges(
            5, [(0, 1, 3.0), (1, 2, 1.0), (2, 3, 2.5), (3, 4, 4.0), (0, 4, 1.5)]
        )
        tree = gomory_hu_tree(g)
        flow = MaxFlow(g)
        for u in range(5):
            for v in range(u + 1, 5):
                assert tree.min_cut_value(u, v) == pytest.approx(flow.max_flow(u, v))

    def test_disconnected(self):
        g = Graph.from_edges(5, [(0, 1), (2, 3)])
        tree = gomory_hu_tree(g)
        assert tree.min_cut_value(0, 2) == 0.0
        assert tree.min_cut_value(2, 3) == 1.0

    def test_same_edge(self):
        g = Graph.from_edges(4, path_graph(4))
        tree = gomory_hu_tree(g)
        e = tree.tree_edges()[0]
        assert tree.same_edge(e, (e[1], e[0], e[2]))
        assert not tree.same_edge(e, (e[0], e[0] + 99, e[2]))

    def test_needs_two_nodes(self):
        with pytest.raises(GraphError):
            gomory_hu_tree(Graph(1))


class TestConnectivity:
    def test_components(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (4, 5)])
        comps = connected_components(g)
        assert {frozenset(c) for c in comps} == {
            frozenset({0, 1, 2}),
            frozenset({3}),
            frozenset({4, 5}),
        }
        assert not is_connected(g)

    def test_spanning_forest_size(self):
        g = Graph.from_edges(8, cycle_graph(8))
        forest = spanning_forest(g)
        assert len(forest) == 7

    def test_sparse_certificate_preserves_small_cuts(self):
        g = Graph.from_edges(16, dumbbell_graph(8, 2))
        cert = sparse_certificate(g, 3)
        # All bridge edges must be present and the min cut preserved.
        assert cert.has_edge(0, 8) and cert.has_edge(1, 9)
        assert global_min_cut_value(cert) == 2.0
        assert cert.num_edges() <= 3 * 15

    def test_certificate_edge_budget(self):
        g = Graph.from_edges(12, complete_graph(12))
        cert = sparse_certificate(g, 4)
        assert cert.num_edges() <= 4 * 11

    def test_is_k_edge_connected(self):
        g = Graph.from_edges(6, complete_graph(6))
        assert is_k_edge_connected(g, 5)
        assert not is_k_edge_connected(g, 6)
        path = Graph.from_edges(4, path_graph(4))
        assert is_k_edge_connected(path, 1)
        assert not is_k_edge_connected(path, 2)

    def test_certificate_rejects_bad_k(self):
        with pytest.raises(GraphError):
            sparse_certificate(Graph(3), 0)


class TestDistances:
    def test_bfs_on_path(self):
        g = Graph.from_edges(5, path_graph(5))
        assert bfs_distances(g, 0) == [0, 1, 2, 3, 4]

    def test_bfs_unreachable_is_inf(self):
        g = Graph.from_edges(4, [(0, 1)])
        d = bfs_distances(g, 0)
        assert math.isinf(d[2]) and math.isinf(d[3])

    def test_dijkstra_weighted(self):
        g = Graph.from_weighted_edges(4, [(0, 1, 5), (0, 2, 1), (2, 1, 1), (1, 3, 1)])
        assert dijkstra(g, 0) == [0, 2, 1, 3]

    def test_dijkstra_rejects_negative(self):
        g = Graph.from_weighted_edges(3, [(0, 1, -1)])
        with pytest.raises(GraphError):
            dijkstra(g, 0)

    def test_all_pairs_symmetry(self):
        g = Graph.from_edges(9, grid_graph(3, 3))
        d = all_pairs_distances(g)
        for u in range(9):
            for v in range(9):
                assert d[u][v] == d[v][u]

    def test_diameter(self):
        assert diameter(Graph.from_edges(6, path_graph(6))) == 5
        assert diameter(Graph.from_edges(6, complete_graph(6))) == 1

    def test_bad_source(self):
        g = Graph.from_edges(3, [(0, 1)])
        with pytest.raises(GraphError):
            bfs_distances(g, 3)


class TestCensus:
    def test_triangle_pattern_mask(self, small_graph):
        assert induced_edge_pattern(small_graph, (0, 1, 2)) == 7
        assert induced_edge_pattern(small_graph, (0, 1, 5)) == 1

    def test_census_totals(self, small_graph):
        counts = census(small_graph, 3)
        assert sum(counts.values()) == math.comb(10, 3)

    def test_census_triangles_match_direct_count(self, small_graph):
        counts = census(small_graph, 3)
        assert counts.get(7, 0) == triangle_count(small_graph) == 2

    def test_nonempty_count(self, small_graph):
        counts = census(small_graph, 3)
        assert count_nonempty_subgraphs(small_graph, 3) == sum(
            c for m, c in counts.items() if m
        )

    def test_gamma_exact_bounds(self, small_graph):
        gamma = gamma_exact(small_graph, frozenset({7}), 3)
        assert 0.0 <= gamma <= 1.0

    def test_gamma_empty_graph(self):
        assert gamma_exact(Graph(5), frozenset({7}), 3) == 0.0

    def test_count_pattern(self, small_graph):
        assert count_pattern(small_graph, frozenset({7}), 3) == 2

    def test_wedge_count_formula(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert wedge_count(g) == 3

    def test_census_order_guard(self, small_graph):
        from repro.errors import NotSupportedError

        with pytest.raises(NotSupportedError):
            census(small_graph, 6)


class TestSpannerVerification:
    def test_graph_is_spanner_of_itself(self, small_graph):
        assert is_spanner(small_graph, small_graph, 1.0)

    def test_subgraph_check(self, small_graph):
        bad = Graph(10)
        bad.add_edge(0, 9)
        with pytest.raises(GraphError):
            verify_subgraph(small_graph, bad)

    def test_stretch_of_spanning_tree_of_cycle(self):
        g = Graph.from_edges(8, cycle_graph(8))
        tree = Graph.from_edges(8, path_graph(8))
        rep = measure_stretch(g, tree)
        assert rep.max_stretch == 7.0
        assert rep.disconnected_pairs == 0
        assert rep.spanner_edges == 7

    def test_disconnection_detected(self):
        g = Graph.from_edges(4, path_graph(4))
        partial = Graph(4)
        partial.add_edge(0, 1)
        rep = measure_stretch(g, partial)
        assert rep.disconnected_pairs > 0
        assert math.isinf(rep.max_stretch)
        assert not rep.satisfies(100.0)

    def test_sampled_sources(self, small_graph):
        rep = measure_stretch(small_graph, small_graph, sample_pairs=4, seed=1)
        assert rep.max_stretch == 1.0
        assert rep.pairs_evaluated <= 4 * 9
