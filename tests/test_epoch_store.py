"""Durable `EpochStore` harness: exactness properties + corruption fuzz.

Three contracts, each pinned where it can actually fail:

1. **Exactness** (hypothesis, every serialisable sketch class): any
   epoch window ``[t1, t2)`` answered through a *compacted* store —
   merged dyadic delta spans — is byte-identical to the uncompacted
   in-memory ``EpochTimeline`` answer (cumulative-checkpoint
   subtraction), and retention never evicts an epoch that the declared
   ``min_granularity`` still promises to answer.
2. **Durability** (corruption/crash fuzz): truncated segments, flipped
   bits, catalog entries pointing at missing or wrong-seed files, and a
   simulated crash between segment write and catalog rename all raise
   *typed* errors (:class:`~repro.errors.StoreCorruptionError` /
   :class:`~repro.errors.EpochStoreError`) — never a wrong window
   answer — and leave the store re-openable.  The committed golden
   store under ``tests/fixtures/epoch_store_v1/`` pins the on-disk
   format; if the format changes intentionally, add ``epoch_store_v2``
   and a migration path — do not regenerate v1.
3. **Distribution**: ``run_epochs`` sealing straight into a store on
   the persistent shared-memory pool produces stored state
   byte-identical to sequential mode.
"""

from __future__ import annotations

import functools
import json
import pathlib
import shutil
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import EpochStore, GraphSketchEngine, RetentionPolicy, SketchSpec
from repro.api import ConnectivityQuery
from repro.distributed import ShardedSketchRunner, forest_sketch
from repro.errors import EpochStoreError, NotSupportedError, StoreCorruptionError
from repro.sketch import dump_sketch, peek_sketch_meta
from repro.streams import DynamicGraphStream, churn_stream, erdos_renyi_graph
from repro.temporal import EpochManager, materialise_window

from strategies import streams_with_epochs
from test_temporal_equivalence import (
    CHEAP_CASES,
    HEAVY_CASES,
    N,
    _stream_from,
    _window_pairs,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
GOLDEN = FIXTURES / "epoch_store_v1"

#: Workload the golden store was sealed from (regeneration reference
#: only — see the module docstring: v1 is frozen).
GOLDEN_N = 10
GOLDEN_SEED = 424242
GOLDEN_EPOCHS = 4
GOLDEN_BOUNDARIES = (14, 28, 42, 57)

store_settings = settings(
    max_examples=5, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
heavy_store_settings = settings(
    max_examples=2, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _golden_stream() -> DynamicGraphStream:
    return churn_stream(
        GOLDEN_N, erdos_renyi_graph(GOLDEN_N, 0.4, seed=5),
        churn_fraction=0.6, seed=6,
    )


def _copy_golden(tmp_path: pathlib.Path) -> pathlib.Path:
    """A scratch copy of the golden store, safe to tamper with."""
    root = tmp_path / "store"
    shutil.copytree(GOLDEN, root)
    return root


def _rewrite_catalog(root: pathlib.Path, mutate) -> None:
    """Apply ``mutate(doc)`` to the catalog and reseal its self-CRC.

    Models an attacker (or cosmic ray) with enough luck to keep the
    whole-file checksum valid — the per-segment checks must still catch
    the lie.
    """
    path = root / "catalog.json"
    doc = json.loads(path.read_bytes())
    doc.pop("self_crc32", None)
    mutate(doc)
    body = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
    doc["self_crc32"] = zlib.crc32(body) & 0xFFFFFFFF
    path.write_bytes(json.dumps(doc, sort_keys=True, indent=1).encode())


class TestWindowExactness:
    """Satellite 1: store windows byte-identical to timeline windows."""

    @pytest.mark.parametrize(
        "name,maker", CHEAP_CASES, ids=[c[0] for c in CHEAP_CASES]
    )
    @store_settings
    @given(data=streams_with_epochs(n=N, max_tokens=30, max_epochs=4))
    def test_compacted_store_matches_timeline(
        self, name, maker, data, tmp_path_factory
    ):
        tokens, boundaries = data
        factory = functools.partial(maker, 6000 + sum(ord(c) for c in name))
        timeline = EpochManager.consume(
            factory, _stream_from(tokens), boundaries=boundaries
        )
        root = tmp_path_factory.mktemp("hyp") / "store"
        store = EpochStore.from_timeline(root, timeline, horizon=0)
        for t1, t2 in _window_pairs(timeline.epochs):
            assert dump_sketch(materialise_window(store, t1, t2)) == \
                dump_sketch(materialise_window(timeline, t1, t2)), \
                f"{name}: store window [{t1},{t2}) differs from timeline"

    @pytest.mark.parametrize(
        "name,maker", HEAVY_CASES, ids=[c[0] for c in HEAVY_CASES]
    )
    @heavy_store_settings
    @given(data=streams_with_epochs(n=N, max_tokens=24, max_epochs=3))
    def test_hierarchy_classes_match(self, name, maker, data, tmp_path_factory):
        tokens, boundaries = data
        factory = functools.partial(maker, 6000 + sum(ord(c) for c in name))
        timeline = EpochManager.consume(
            factory, _stream_from(tokens), boundaries=boundaries
        )
        root = tmp_path_factory.mktemp("hyp") / "store"
        store = EpochStore.from_timeline(root, timeline, horizon=0)
        for t1, t2 in _window_pairs(timeline.epochs):
            assert dump_sketch(materialise_window(store, t1, t2)) == \
                dump_sketch(materialise_window(timeline, t1, t2)), \
                f"{name}: store window [{t1},{t2}) differs from timeline"

    @store_settings
    @given(
        data=streams_with_epochs(n=N, max_tokens=40, max_epochs=4),
        granularity=st.sampled_from([1, 2, 4]),
        horizon=st.integers(0, 2),
    )
    def test_reopened_store_answers_identically(
        self, data, granularity, horizon, tmp_path_factory
    ):
        """Windows survive a close/reopen cycle bit for bit."""
        tokens, boundaries = data
        factory = functools.partial(forest_sketch, N, 321)
        timeline = EpochManager.consume(
            factory, _stream_from(tokens), boundaries=boundaries
        )
        root = tmp_path_factory.mktemp("hyp") / "store"
        EpochStore.from_timeline(
            root, timeline, horizon=horizon,
            retention=RetentionPolicy(min_granularity=granularity),
        )
        reopened = EpochStore.open(root)
        assert reopened.verify() > 0
        for t1, t2 in _window_pairs(timeline.epochs):
            try:
                got = dump_sketch(materialise_window(reopened, t1, t2))
            except EpochStoreError:
                continue  # finer than the granularity policy — legal refusal
            assert got == dump_sketch(materialise_window(timeline, t1, t2))

    @store_settings
    @given(
        data=streams_with_epochs(n=N, max_tokens=48, max_epochs=6),
        granularity=st.sampled_from([2, 4]),
    )
    def test_granularity_never_evicts_promised_windows(
        self, data, granularity, tmp_path_factory
    ):
        """Satellite 1b: every aligned window above base stays answerable.

        ``min_granularity=g`` may forget spans finer than ``g``, but any
        window whose endpoints are multiples of ``g`` (or the timeline
        tail) above the retention floor must still be answered — and
        exactly.
        """
        tokens, boundaries = data
        factory = functools.partial(forest_sketch, N, 77)
        timeline = EpochManager.consume(
            factory, _stream_from(tokens), boundaries=boundaries
        )
        root = tmp_path_factory.mktemp("hyp") / "store"
        store = EpochStore.from_timeline(
            root, timeline,
            retention=RetentionPolicy(min_granularity=granularity),
        )
        epochs = timeline.epochs
        aligned = [t for t in range(0, epochs + 1, granularity)] + [epochs]
        for t1 in sorted(set(aligned)):
            for t2 in sorted(set(aligned)):
                if not store.base <= t1 < t2 <= epochs:
                    continue
                assert dump_sketch(materialise_window(store, t1, t2)) == \
                    dump_sketch(materialise_window(timeline, t1, t2))

    def test_dyadic_plan_is_logarithmic(self, tmp_path):
        """A fully compacted store answers any window in O(log T) spans."""
        import math

        T = 32
        stream = _stream_from(
            [(i % (N - 1), N - 1, 1) for i in range(T * 2)]
        )
        factory = functools.partial(forest_sketch, N, 9)
        timeline = EpochManager.consume(factory, stream, epochs=T)
        store = EpochStore.from_timeline(tmp_path / "s", timeline, horizon=0)
        bound = 2 * int(math.log2(T)) + 2
        for t1 in range(T):
            for t2 in range(t1 + 1, T + 1):
                plan = store.plan_window(t1, t2)
                assert len(plan) <= bound
                covered = []
                for entry in plan:
                    covered.extend(range(entry.start, entry.end))
                assert covered == list(range(t1, t2)), "non-exact cover"

    def test_max_epochs_floor_respects_span_boundaries(self, tmp_path):
        stream = _stream_from([(i % (N - 1), N - 1, 1) for i in range(32)])
        factory = functools.partial(forest_sketch, N, 13)
        timeline = EpochManager.consume(factory, stream, epochs=16)
        store = EpochStore.from_timeline(
            tmp_path / "s", timeline, retention=RetentionPolicy(max_epochs=4)
        )
        assert store.base <= store.epochs - 4
        assert all(e.start >= store.base for e in store.spans())
        with pytest.raises(EpochStoreError, match="retention floor"):
            store.plan_window(0, store.epochs)
        # The newest max_epochs epochs stay exact.
        assert dump_sketch(materialise_window(store, 12, 16)) == \
            dump_sketch(materialise_window(timeline, 12, 16))

    def test_max_bytes_evicts_oldest_first_and_keeps_newest(self, tmp_path):
        stream = _stream_from([(i % (N - 1), N - 1, 1) for i in range(32)])
        factory = functools.partial(forest_sketch, N, 14)
        timeline = EpochManager.consume(factory, stream, epochs=16)
        unbounded = EpochStore.from_timeline(tmp_path / "u", timeline)
        budget = unbounded.total_bytes // 3
        store = EpochStore.from_timeline(
            tmp_path / "s", timeline, retention=RetentionPolicy(max_bytes=budget)
        )
        assert store.base > 0, "a third of the budget must evict something"
        # The newest epoch is never evicted, whatever the budget.
        assert dump_sketch(
            materialise_window(store, store.epochs - 1, store.epochs)
        ) == dump_sketch(
            materialise_window(timeline, store.epochs - 1, store.epochs)
        )

    def test_lru_keeps_resident_bytes_bounded(self, tmp_path):
        stream = _stream_from([(i % (N - 1), N - 1, 1) for i in range(64)])
        factory = functools.partial(forest_sketch, N, 15)
        timeline = EpochManager.consume(factory, stream, epochs=16)
        EpochStore.from_timeline(tmp_path / "s", timeline, horizon=0)
        budget = 48_000
        store = EpochStore.open(tmp_path / "s", cache_bytes=budget)
        for t1, t2 in [(0, 16), (4, 12), (8, 16), (0, 8), (2, 14)]:
            store.window_sketch(t1, t2)
        assert store.resident_bytes <= budget
        assert store.disk_loads > 0
        # A cache hit must not touch the disk again.
        loads = store.disk_loads
        store.window_sketch(0, 16)
        assert store.disk_loads == loads


class TestResume:
    def test_resume_extends_seamlessly(self, tmp_path):
        """Crash-continuation: windows across the restart stay exact."""
        stream = _stream_from(
            [(i % (N - 1), N - 1, 1 if i % 3 else 1) for i in range(40)]
        )
        factory = functools.partial(forest_sketch, N, 55)
        batch = stream.as_batch()
        bounds = [10, 20, 30, 40]

        root = tmp_path / "s"
        manager = EpochManager(factory, store=EpochStore(root))
        manager.extend(batch.slice(0, 10)).seal_epoch()
        manager.extend(batch.slice(10, 20)).seal_epoch()
        del manager  # "crash"

        resumed = EpochManager.resume(factory, EpochStore.open(root))
        resumed.extend(batch.slice(20, 30)).seal_epoch()
        resumed.extend(batch.slice(30, 40)).seal_epoch()
        store = resumed.store
        assert store.epochs == 4
        assert store.boundaries == (10, 20, 30, 40)

        uninterrupted = EpochManager.consume(factory, stream, boundaries=bounds)
        for t1, t2 in [(0, 4), (1, 3), (0, 2), (2, 4), (1, 4)]:
            assert dump_sketch(materialise_window(store, t1, t2)) == \
                dump_sketch(materialise_window(uninterrupted, t1, t2))

    def test_store_backed_manager_is_bounded(self, tmp_path):
        manager = EpochManager(
            functools.partial(forest_sketch, N, 1),
            store=EpochStore(tmp_path / "s"),
        )
        manager.extend(_stream_from([(0, 1, 1)]).as_batch()).seal_epoch()
        assert manager.sealed_epochs == 1
        with pytest.raises(EpochStoreError, match="store-backed"):
            manager.timeline()

    def test_fresh_manager_refuses_nonempty_store(self, tmp_path):
        store = EpochStore(tmp_path / "s")
        EpochManager(
            functools.partial(forest_sketch, N, 1), store=store
        ).extend(_stream_from([(0, 1, 1)]).as_batch()).seal_epoch()
        with pytest.raises(EpochStoreError, match="resume"):
            EpochManager(functools.partial(forest_sketch, N, 1), store=store)
        with pytest.raises(EpochStoreError, match="empty"):
            EpochManager.resume(
                functools.partial(forest_sketch, N, 1),
                EpochStore(tmp_path / "empty"),
            )


class TestAppendContract:
    def test_out_of_order_append_refused(self, tmp_path):
        factory = functools.partial(forest_sketch, N, 2)
        timeline = EpochManager.consume(
            factory, _stream_from([(0, 1, 1), (1, 2, 1)]), epochs=2
        )
        store = EpochStore(tmp_path / "s")
        store.append_checkpoint(timeline.checkpoint(1))
        with pytest.raises(EpochStoreError, match="out-of-order"):
            store.append_checkpoint(timeline.checkpoint(1))

    def test_mismatched_seed_append_refused(self, tmp_path):
        t1 = EpochManager.consume(
            functools.partial(forest_sketch, N, 2),
            _stream_from([(0, 1, 1)]), epochs=1,
        )
        t2 = EpochManager.consume(
            functools.partial(forest_sketch, N, 3),
            _stream_from([(0, 1, 1), (1, 2, 1)]), epochs=2,
        )
        store = EpochStore(tmp_path / "s")
        store.append_checkpoint(t1.checkpoint(1))
        with pytest.raises(EpochStoreError, match="seed"):
            store.append_checkpoint(t2.checkpoint(2))

    def test_garbage_payload_refused(self, tmp_path):
        from repro.temporal import EpochCheckpoint

        store = EpochStore(tmp_path / "s")
        with pytest.raises(EpochStoreError, match="not a sketch blob"):
            store.append_checkpoint(EpochCheckpoint(1, 1, 1, b"junk"))

    def test_open_refuses_missing_and_foreign_directories(self, tmp_path):
        with pytest.raises(EpochStoreError, match="no epoch store"):
            EpochStore.open(tmp_path / "nowhere")
        foreign = tmp_path / "foreign"
        foreign.mkdir()
        (foreign / "data.txt").write_text("not ours")
        with pytest.raises(EpochStoreError, match="refusing to adopt"):
            EpochStore(foreign)

    def test_retention_policy_validation(self):
        with pytest.raises(ValueError, match="power of two"):
            RetentionPolicy(min_granularity=3)
        with pytest.raises(ValueError, match="max_epochs"):
            RetentionPolicy(max_epochs=0)
        with pytest.raises(ValueError, match="max_bytes"):
            RetentionPolicy(max_bytes=0)


class TestCorruptionFuzz:
    """Satellite 2: tampered on-disk state raises typed errors, never
    wrong answers, and the store stays re-openable."""

    def _live_span(self, store: EpochStore):
        return store.spans()[0]

    def test_truncated_segment(self, tmp_path):
        root = _copy_golden(tmp_path)
        store = EpochStore.open(root)
        entry = self._live_span(store)
        path = root / "segments" / entry.file
        path.write_bytes(path.read_bytes()[:-7])
        with pytest.raises(StoreCorruptionError, match="integrity"):
            store.window_sketch(entry.start, entry.end)
        # Undamaged epochs still answer; the store re-opens.
        assert EpochStore.open(root).epochs == GOLDEN_EPOCHS

    def test_bit_flipped_segment(self, tmp_path):
        root = _copy_golden(tmp_path)
        store = EpochStore.open(root)
        entry = self._live_span(store)
        path = root / "segments" / entry.file
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x40
        path.write_bytes(bytes(data))
        with pytest.raises(StoreCorruptionError, match="CRC|integrity"):
            store.verify()
        assert EpochStore.open(root).epochs == GOLDEN_EPOCHS

    def test_missing_segment(self, tmp_path):
        root = _copy_golden(tmp_path)
        store = EpochStore.open(root)
        entry = self._live_span(store)
        (root / "segments" / entry.file).unlink()
        with pytest.raises(StoreCorruptionError, match="missing"):
            store.window_sketch(entry.start, entry.end)
        assert EpochStore.open(root).epochs == GOLDEN_EPOCHS

    def test_catalog_entry_pointing_at_wrong_span(self, tmp_path):
        """A resealed catalog aiming an entry at another (valid!) segment
        is caught by the blob's own span metadata — swapped files cannot
        silently answer the wrong window."""
        root = _copy_golden(tmp_path)
        store = EpochStore.open(root)
        spans = store.spans()
        a, b = spans[0], spans[1]

        def swap(doc):
            for span in doc["spans"]:
                if span["start"] == a.start and span["end"] == a.end:
                    span["file"] = b.file
                    span["bytes"] = b.nbytes
                    span["crc32"] = b.crc32
        _rewrite_catalog(root, swap)
        tampered = EpochStore.open(root)
        with pytest.raises(StoreCorruptionError, match="misplaced"):
            tampered.window_sketch(a.start, a.end)

    def test_mismatched_seed_segment(self, tmp_path):
        """A segment from an identically-shaped store with another seed
        passes file-level CRC (catalog resealed) but fails the header
        seed check."""
        root = _copy_golden(tmp_path)
        store = EpochStore.open(root)
        entry = self._live_span(store)
        other_timeline = EpochManager.consume(
            functools.partial(forest_sketch, GOLDEN_N, GOLDEN_SEED + 1),
            _golden_stream(), boundaries=list(GOLDEN_BOUNDARIES),
        )
        other_root = tmp_path / "other"
        other = EpochStore.from_timeline(other_root, other_timeline, horizon=0)
        other_entry = next(
            e for e in other.spans()
            if (e.start, e.end) == (entry.start, entry.end)
        )
        shutil.copy(
            other_root / "segments" / other_entry.file,
            root / "segments" / entry.file,
        )

        def reseal(doc):
            for span in doc["spans"]:
                if span["file"] == entry.file:
                    span["bytes"] = other_entry.nbytes
                    span["crc32"] = other_entry.crc32
        _rewrite_catalog(root, reseal)
        tampered = EpochStore.open(root)
        with pytest.raises(StoreCorruptionError, match="seed"):
            tampered.window_sketch(entry.start, entry.end)

    def test_bit_flipped_catalog(self, tmp_path):
        root = _copy_golden(tmp_path)
        path = root / "catalog.json"
        data = bytearray(path.read_bytes())
        # Alter a digit inside the boundaries list, keeping valid JSON.
        at = data.index(b'"boundaries"')
        while not chr(data[at]).isdigit():
            at += 1
        data[at] = ord("1") if data[at] != ord("1") else ord("2")
        path.write_bytes(bytes(data))
        with pytest.raises(StoreCorruptionError, match="checksum"):
            EpochStore.open(root)

    def test_truncated_catalog(self, tmp_path):
        root = _copy_golden(tmp_path)
        path = root / "catalog.json"
        path.write_bytes(path.read_bytes()[:-40])
        with pytest.raises(StoreCorruptionError, match="JSON"):
            EpochStore.open(root)

    def test_newer_catalog_version_refused(self, tmp_path):
        root = _copy_golden(tmp_path)
        _rewrite_catalog(root, lambda doc: doc.update(version=99))
        with pytest.raises(EpochStoreError, match="newer"):
            EpochStore.open(root)

    def test_crash_between_segment_write_and_catalog_rename(self, tmp_path):
        """Orphans from an interrupted append are swept; answers unchanged."""
        root = _copy_golden(tmp_path)
        before = {
            (t1, t2): dump_sketch(
                materialise_window(EpochStore.open(root), t1, t2)
            )
            for t1, t2 in [(0, 4), (1, 3), (2, 4)]
        }
        segments = root / "segments"
        # The residue of an append that died before the catalog rename:
        # a fully-written span, a half-written tmp, a newer head.
        (segments / "span-000004-000005.blob").write_bytes(b"half-written")
        (segments / "head-000005.blob").write_bytes(b"also orphaned")
        (segments / "span-000000-000008.blob.tmp").write_bytes(b"tmp")
        store = EpochStore.open(root)
        assert store.epochs == GOLDEN_EPOCHS, "catalog is the commit point"
        assert not (segments / "span-000004-000005.blob").exists()
        assert not (segments / "head-000005.blob").exists()
        assert not (segments / "span-000000-000008.blob.tmp").exists()
        for (t1, t2), expected in before.items():
            assert dump_sketch(materialise_window(store, t1, t2)) == expected

    def test_foreign_files_survive_the_sweep(self, tmp_path):
        root = _copy_golden(tmp_path)
        keep = root / "segments" / "NOTES.txt"
        keep.write_text("operator breadcrumb")
        EpochStore.open(root)
        assert keep.exists()


class TestGoldenFixture:
    """Pin the v1 on-disk format against the committed store."""

    def test_opens_with_expected_shape(self):
        store = EpochStore.open(GOLDEN)
        assert store.epochs == GOLDEN_EPOCHS
        assert store.base == 0
        assert store.boundaries == GOLDEN_BOUNDARIES
        assert store.sketch_kind == "sketch:spanning_forest"
        assert store.seed == GOLDEN_SEED
        assert store.n == GOLDEN_N
        assert [(e.start, e.end) for e in store.spans()] == [
            (0, 1), (0, 2), (0, 4), (1, 2), (2, 3), (2, 4), (3, 4),
        ]

    def test_catalog_schema_is_v1(self):
        doc = json.loads((GOLDEN / "catalog.json").read_bytes())
        assert doc["format"] == "repro-epoch-store"
        assert doc["version"] == 1
        assert set(doc) == {
            "format", "version", "sketch_kind", "sketch_seed", "n", "base",
            "epoch_tokens", "boundaries", "horizon", "retention", "head",
            "spans", "self_crc32",
        }
        assert all(
            set(span) == {"start", "end", "file", "bytes", "crc32"}
            for span in doc["spans"]
        )

    def test_every_segment_verifies(self):
        assert EpochStore.open(GOLDEN).verify() == 8  # 7 spans + head

    def test_windows_match_freshly_computed_sketches(self):
        """The frozen bytes still decode to the exact window sketches."""
        store = EpochStore.open(GOLDEN)
        factory = functools.partial(forest_sketch, GOLDEN_N, GOLDEN_SEED)
        batch = _golden_stream().as_batch()
        bounds = (0,) + GOLDEN_BOUNDARIES
        for t1, t2 in [(0, 4), (0, 2), (1, 3), (2, 4), (3, 4)]:
            direct = factory()
            direct.consume_batch(batch.slice(bounds[t1], bounds[t2]))
            assert dump_sketch(materialise_window(store, t1, t2)) == \
                dump_sketch(direct)

    def test_head_carries_seal_metadata(self):
        store = EpochStore.open(GOLDEN)
        meta = peek_sketch_meta(store.head_payload())
        assert meta["epoch"] == {
            "epoch": 4, "tokens": 15, "cumulative_tokens": 57,
        }


class TestEngineIntegration:
    def _stream(self):
        return churn_stream(
            N, erdos_renyi_graph(N, 0.5, seed=21), churn_fraction=0.5, seed=22
        )

    def test_engine_store_mode_matches_in_memory(self, tmp_path):
        spec = SketchSpec.of("spanning_forest", n=N, seed=4)
        stream = self._stream()
        durable = (GraphSketchEngine.for_spec(spec)
                   .epochs(count=6, store=tmp_path / "s")
                   .ingest(stream))
        in_memory = (GraphSketchEngine.for_spec(spec)
                     .epochs(count=6).ingest(stream))
        assert durable.timeline is None and durable.store.epochs == 6
        for window in [(0, 6), (2, 5), (1, 2)]:
            a = durable.query(ConnectivityQuery(window=window))
            b = in_memory.query(ConnectivityQuery(window=window))
            assert (a.connected, a.components) == (b.connected, b.components)

    def test_snapshot_restore_round_trips_store_pointer(self, tmp_path):
        spec = SketchSpec.of("spanning_forest", n=N, seed=4)
        engine = (GraphSketchEngine.for_spec(spec)
                  .epochs(count=4, store=tmp_path / "s")
                  .ingest(self._stream()))
        blob = engine.snapshot()
        assert peek_sketch_meta(blob)["__kind__"] == "epoch-store"
        restored = GraphSketchEngine.restore(blob)
        assert restored.deployment == "temporal"
        assert restored.epochs_sealed == 4
        assert restored.spec.kind == "spanning_forest"
        a = engine.query(ConnectivityQuery(window=(1, 4)))
        b = restored.query(ConnectivityQuery(window=(1, 4)))
        assert (a.connected, a.components) == (b.connected, b.components)

    def test_attach_store_and_retention_guards(self, tmp_path):
        with pytest.raises(ValueError, match="store= as well"):
            GraphSketchEngine.for_spec(
                SketchSpec.of("spanning_forest", n=N, seed=4)
            ).epochs(count=2, retention=RetentionPolicy(max_epochs=4))
        with pytest.raises(NotSupportedError, match="empty"):
            GraphSketchEngine.attach_store(EpochStore(tmp_path / "empty"))
        spec = SketchSpec.of("spanning_forest", n=N, seed=4)
        (GraphSketchEngine.for_spec(spec)
         .epochs(count=3, store=tmp_path / "s").ingest(self._stream()))
        attached = GraphSketchEngine.attach_store(tmp_path / "s")
        assert attached.epochs_sealed == 3
        assert attached.spec == spec

    def test_cli_store_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "cli-store")
        assert main([
            "epochs", "--epochs", "4", "--store", root, "--granularity", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "retention floor 0" in out
        assert "store pointer" in out
        assert main([
            "window-query", "--store", root, "--from", "2", "--to", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "dyadic span load" in out
        # Sub-granularity window: typed refusal → exit 2, not a traceback.
        assert main([
            "window-query", "--store", root, "--from", "1", "--to", "2",
        ]) == 2
        assert "finer than the retained granularity" in \
            capsys.readouterr().err
        assert main([
            "epochs", "--epochs", "2", "--granularity", "2",
        ]) == 2  # retention flags without --store

    def test_cli_epochs_refuses_reusing_populated_store(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "cli-store")
        assert main(["epochs", "--epochs", "2", "--store", root]) == 0
        capsys.readouterr()
        assert main(["epochs", "--epochs", "2", "--store", root]) == 2
        assert "resume" in capsys.readouterr().err


class TestProcessModeStore:
    """Satellite 3: shm-pool ``run_epochs`` sealing into a store."""

    def test_process_mode_store_matches_sequential(self, tmp_path):
        factory = functools.partial(forest_sketch, N, 31)
        stream = churn_stream(
            N, erdos_renyi_graph(N, 0.4, seed=5), churn_fraction=0.6, seed=6
        )
        seq_store = EpochStore(tmp_path / "seq")
        seq = ShardedSketchRunner(factory, sites=3, seed=3).run_epochs(
            stream, epochs=4, store=seq_store
        )
        proc_store = EpochStore(tmp_path / "proc")
        with ShardedSketchRunner(
            factory, sites=3, seed=3, mode="process", processes=2
        ) as runner:
            proc = runner.run_epochs(stream, epochs=4, store=proc_store)
        assert [c.payload for c in proc.timeline.checkpoints] == \
            [c.payload for c in seq.timeline.checkpoints]
        assert proc_store.epochs == seq_store.epochs == 4
        assert proc_store.head_payload() == seq_store.head_payload()
        assert [(e.start, e.end, e.crc32) for e in proc_store.spans()] == \
            [(e.start, e.end, e.crc32) for e in seq_store.spans()]
        for t1, t2 in [(0, 4), (1, 3), (2, 4)]:
            assert dump_sketch(materialise_window(proc_store, t1, t2)) == \
                dump_sketch(materialise_window(seq_store, t1, t2))
        # And the durable state matches the in-memory report timeline.
        local = EpochManager.consume(factory, stream, epochs=4)
        assert dump_sketch(materialise_window(proc_store, 0, 4)) == \
            dump_sketch(materialise_window(local, 0, 4))
