"""Failure-injection and adversarial-input tests.

The probabilistic machinery must fail *honestly*: undersized sketches
may return FAIL, but must not return wrong answers; preconditions the
paper states (simple final graphs for §4) must be detected when
violated; extreme churn must leave no residue.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    TRIANGLE,
    CutEdgesSketch,
    MinCutSketch,
    SpanningForestSketch,
    SubgraphSketch,
)
from repro.errors import RecoveryFailed, SamplerFailed
from repro.graphs import Graph
from repro.hashing import HashSource
from repro.sketch import L0SamplerBank, SparseRecovery
from repro.streams import (
    DynamicGraphStream,
    complete_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
    stream_from_edges,
)


class TestExtremeChurn:
    def test_repeated_insert_delete_leaves_no_residue(self, source):
        """1000 insert/delete rounds on one edge: sketch must end zero."""
        n = 6
        st = DynamicGraphStream(n)
        for _ in range(1000):
            st.insert(0, 1)
            st.delete(0, 1)
        sk = SpanningForestSketch(n, source.derive(1)).consume(st)
        assert sk.spanning_forest() == []
        assert all(sk.bank.is_zero(0, v) for v in range(n))

    def test_everything_churns_final_graph_survives(self, source):
        """Insert the clique, delete all of it, re-insert a path."""
        n = 10
        st = DynamicGraphStream(n)
        for u, v in complete_graph(n):
            st.insert(u, v)
        for u, v in complete_graph(n):
            st.delete(u, v)
        for u, v in path_graph(n):
            st.insert(u, v)
        sk = SpanningForestSketch(n, source.derive(2)).consume(st)
        forest = sk.spanning_forest()
        assert len(forest) == n - 1
        path_edges = set(path_graph(n))
        assert all((u, v) in path_edges for u, v, _ in forest)

    def test_high_multiplicity_cancellation(self, source):
        n = 5
        st = DynamicGraphStream(n)
        st.insert(0, 1, copies=10**6)
        st.delete(0, 1, copies=10**6 - 1)
        sk = SpanningForestSketch(n, source.derive(3)).consume(st)
        assert sk.spanning_forest() == [(0, 1, 1)]

    def test_mincut_under_total_rebuild(self, source):
        """Graph torn down and rebuilt differently: only the final state counts."""
        n = 10
        st = DynamicGraphStream(n)
        for u, v in complete_graph(n):
            st.insert(u, v)
        for u, v in complete_graph(n):
            st.delete(u, v)
        for u, v in star_graph(n):
            st.insert(u, v)
        res = MinCutSketch(n, source=source.derive(4)).consume(st).estimate()
        assert res.value == 1  # star has min cut 1


class TestHonestFailure:
    def test_undersized_sampler_fails_not_lies(self, source):
        """rows=1, buckets=1: failures allowed, wrong samples are not."""
        domain = 1000
        support = {i * 13 + 1: 1 for i in range(100)}
        wrong = 0
        fails = 0
        for trial in range(50):
            bank = L0SamplerBank(
                families=1, samplers=1, domain=domain,
                source=source.derive(10, trial), rows=1, buckets=1,
            )
            items = np.asarray(list(support))
            bank.update(
                np.zeros(items.size, dtype=int), np.zeros(items.size, dtype=int),
                items, np.ones(items.size, dtype=int),
            )
            try:
                i, v = bank.sample(0, 0)
                if support.get(i) != v:
                    wrong += 1
            except SamplerFailed:
                fails += 1
        assert wrong == 0, "sampler must never return a non-support element"
        assert fails > 0, "this configuration should exhibit failures"

    def test_undersized_recovery_fails_not_lies(self, source):
        wrong = 0
        failed = 0
        for trial in range(50):
            sr = SparseRecovery(10_000, k=2, source=source.derive(11, trial))
            items = np.arange(trial * 7, trial * 7 + 20)
            sr.update_many(items, np.ones(20, dtype=int))
            try:
                decoded = sr.decode()
                if decoded != {int(i): 1 for i in items}:
                    wrong += 1
            except RecoveryFailed:
                failed += 1
        assert wrong == 0, "recovery must never return a wrong vector"
        assert failed >= 45, "support 10x beyond capacity should mostly FAIL"

    def test_cut_query_beyond_k_raises_not_truncates(self, source):
        n = 12
        sk = CutEdgesSketch(n, k=2, source=source.derive(12)).consume(
            stream_from_edges(n, star_graph(n))
        )
        # Centre cut crosses 11 > 2 edges.
        with pytest.raises(RecoveryFailed):
            sk.crossing_edges({0})
        # Leaf cuts (1 edge) still answer fine.
        assert sk.crossing_edges({5}) == {(0, 5): 1}


class TestPreconditionViolations:
    def test_subgraph_sketch_detects_multigraph(self, source):
        """§4 needs a simple final graph; multiplicity 2 must be flagged.

        A doubled edge contributes ``2·2^pos``; when the third vertex of
        a column is *below* both endpoints the pair sits at the top row
        (pos = 2 for k = 3) and the column value ``8`` falls outside the
        3-bit binary encodings — detectably invalid.  (Doubled edges can
        also alias to *valid* wrong encodings at lower rows; that is the
        documented limit of the precondition check.)
        """
        n = 8
        st = DynamicGraphStream(n)
        st.insert(6, 7, copies=2)  # every {w,6,7} column gets value 8
        sk = SubgraphSketch(n, order=3, samplers=64, source=source.derive(13))
        sk.consume(st)
        est = sk.estimate(TRIANGLE)
        assert est.invalid_encodings > 0

    def test_stream_universe_guard_everywhere(self, source):
        big = DynamicGraphStream(20)
        big.insert(0, 19)
        for sketch in (
            SpanningForestSketch(10, source.derive(14)),
            MinCutSketch(10, source=source.derive(15)),
            CutEdgesSketch(10, k=3, source=source.derive(16)),
            SubgraphSketch(10, order=3, samplers=4, source=source.derive(17)),
        ):
            with pytest.raises(ValueError):
                sketch.consume(big)


class TestSeedSensitivity:
    def test_different_seeds_different_cells_same_answers(self, source):
        n = 14
        edges = erdos_renyi_graph(n, 0.4, seed=5)
        st = stream_from_edges(n, edges)
        g = Graph.from_edges(n, edges)
        from repro.graphs import connected_components

        want = len(connected_components(g))
        cells = []
        for seed in range(5):
            sk = SpanningForestSketch(n, HashSource(seed)).consume(st)
            assert len(sk.connected_components()) == want
            cells.append(sk.bank.bank.phi.copy())
        # The cell contents must differ across seeds (different hashes).
        assert any((cells[0] != c).any() for c in cells[1:])

    def test_merge_rejects_cross_seed(self):
        a = SpanningForestSketch(8, HashSource(1))
        b = SpanningForestSketch(8, HashSource(2))
        # Same shape, different seeds: merging would corrupt silently if
        # allowed on the bank level, so the banks must share z1/z2 — they
        # do not, and CellBank.merge refuses.
        with pytest.raises(ValueError):
            a.bank.merge(b.bank)
