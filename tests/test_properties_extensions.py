"""Property-based tests for the companion sketches and I/O layers."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BipartitenessSketch, CutEdgesSketch, MSTWeightSketch
from repro.errors import RecoveryFailed
from repro.graphs import UnionFind
from repro.hashing import HashSource
from repro.streams import (
    DynamicGraphStream,
    EdgeUpdate,
    dumps_stream,
    loads_stream,
)

common_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Small random graphs as canonical edge sets.
edge_sets = st.builds(
    lambda pairs: sorted({(min(u, v), max(u, v)) for u, v in pairs if u != v}),
    st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=25),
)


def _is_bipartite_exact(n: int, edges: list[tuple[int, int]]) -> bool:
    color = [-1] * n
    adj: list[list[int]] = [[] for _ in range(n)]
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    for start in range(n):
        if color[start] != -1:
            continue
        color[start] = 0
        stack = [start]
        while stack:
            x = stack.pop()
            for y in adj[x]:
                if color[y] == -1:
                    color[y] = color[x] ^ 1
                    stack.append(y)
                elif color[y] == color[x]:
                    return False
    return True


class TestBipartitenessProperty:
    @common_settings
    @given(edges=edge_sets, seed=st.integers(0, 3))
    def test_matches_two_coloring(self, edges, seed):
        n = 10
        st_ = DynamicGraphStream(n, (EdgeUpdate(u, v) for u, v in edges))
        sk = BipartitenessSketch(n, HashSource(40 + seed)).consume(st_)
        assert sk.is_bipartite() == _is_bipartite_exact(n, edges)


class TestMSTProperty:
    @common_settings
    @given(
        data=st.lists(
            st.tuples(
                st.integers(0, 8),
                st.integers(0, 8),
                st.integers(1, 7),
            ).filter(lambda t: t[0] != t[1]),
            max_size=20,
        )
    )
    def test_matches_kruskal(self, data):
        n = 9
        # Deduplicate edges (keep first weight) to get atomic tokens.
        weights: dict[tuple[int, int], int] = {}
        for u, v, w in data:
            weights.setdefault((min(u, v), max(u, v)), w)
        stream = DynamicGraphStream(n)
        for (u, v), w in weights.items():
            stream.insert(u, v, copies=w)
        sk = MSTWeightSketch(n, max_weight=7, source=HashSource(41)).consume(stream)
        uf = UnionFind(n)
        truth = 0.0
        for (u, v), w in sorted(weights.items(), key=lambda kv: kv[1]):
            if uf.union(u, v):
                truth += w
        assert sk.estimate() == truth


class TestCutQueryProperty:
    @common_settings
    @given(edges=edge_sets, side_bits=st.integers(1, 2**10 - 2))
    def test_matches_exact_cut(self, edges, side_bits):
        n = 10
        side = {v for v in range(n) if (side_bits >> v) & 1}
        if not side or len(side) == n:
            return
        stream = DynamicGraphStream(n, (EdgeUpdate(u, v) for u, v in edges))
        sk = CutEdgesSketch(n, k=30, source=HashSource(42)).consume(stream)
        exact = {
            (u, v): 1 for u, v in edges if (u in side) != (v in side)
        }
        try:
            assert sk.crossing_edges(side) == exact
        except RecoveryFailed:
            # Only acceptable when the cut genuinely exceeds capacity.
            assert len(exact) > 30


class TestStreamIOProperty:
    @common_settings
    @given(
        tokens=st.lists(
            st.tuples(
                st.integers(0, 7),
                st.integers(0, 7),
                st.integers(-9, 9),
            ).filter(lambda t: t[0] != t[1] and t[2] != 0),
            max_size=30,
        )
    )
    def test_round_trip_identity(self, tokens):
        stream = DynamicGraphStream(
            8, (EdgeUpdate(u, v, d) for u, v, d in tokens)
        )
        restored = loads_stream(dumps_stream(stream))
        assert restored.n == stream.n
        assert list(restored) == list(stream)
