"""Helpers for taking codec blobs apart in tamper/corruption tests.

Codec v2 blobs (the current write format) are ``magic + u32 header
length + JSON header + payload``; these helpers unpack them, let a test
mutate header and payload, and reseal the length/CRC bookkeeping so the
*semantic* integrity checks of the loaders are exercised rather than
the checksum.  ``pack_v1_sketch`` builds a legacy npz sketch blob from
live data, so the v1 read path stays covered without binary fixtures
for every sketch class.
"""

from __future__ import annotations

import io
import json
import struct
import zlib

import numpy as np

V2_PREFIX = b"RSKB2\n"
_HEAD = struct.Struct("<I")


def unpack_v2(blob: bytes) -> tuple[dict, bytearray]:
    """Split a v2 blob into (header dict, mutable *decoded* payload)."""
    assert blob[:len(V2_PREFIX)] == V2_PREFIX, "not a v2 blob"
    (hlen,) = _HEAD.unpack_from(blob, len(V2_PREFIX))
    start = len(V2_PREFIX) + _HEAD.size
    header = json.loads(blob[start:start + hlen].decode("utf-8"))
    payload = blob[start + hlen:]
    if header.get("encoding") in ("zlib", "sparse-zlib"):
        payload = zlib.decompress(payload)
    return header, bytearray(payload)


def pack_v2(header: dict, payload: bytes, reseal: bool = True) -> bytes:
    """Reassemble a v2 blob; ``reseal`` refreshes length + CRC."""
    header = dict(header)
    payload = bytes(payload)
    if header.get("encoding") in ("zlib", "sparse-zlib"):
        payload = zlib.compress(payload, 1)
    if reseal:
        header["payload_bytes"] = len(payload)
        header["crc32"] = zlib.crc32(payload) & 0xFFFFFFFF
    head = json.dumps(header).encode("utf-8")
    return V2_PREFIX + _HEAD.pack(len(head)) + head + payload


def repack_v2(blob: bytes, mutate) -> bytes:
    """Unpack, apply ``mutate(header, payload)``, reseal, reassemble."""
    header, payload = unpack_v2(blob)
    mutate(header, payload)
    return pack_v2(header, payload)


def sketch_buffer_v2(blob: bytes) -> tuple[dict, np.ndarray]:
    """A v2 sketch blob's header and dense field-major cell buffer."""
    header, payload = unpack_v2(blob)
    total = int(sum(header["cells"]))
    raw = np.frombuffer(bytes(payload), dtype="<i8").astype(np.int64)
    if header.get("encoding") == "sparse-zlib":
        nnz = header["nnz"]
        dense = np.zeros(4 * total, dtype=np.int64)
        dense[raw[:nnz]] = raw[nnz:]
        return header, dense
    return header, raw


def sketch_fields_v2(blob: bytes) -> tuple[dict, dict[str, np.ndarray]]:
    """A v2 sketch blob's header and its four per-field cell arrays."""
    header, dense = sketch_buffer_v2(blob)
    total = int(sum(header["cells"]))
    fields = {
        name: dense[i * total:(i + 1) * total]
        for i, name in enumerate(("phi", "iota", "fp1", "fp2"))
    }
    return header, fields


def densify_sketch_v2(blob: bytes) -> bytes:
    """Re-encode a (possibly sparse) v2 sketch blob as dense zlib.

    Loaders accept both encodings, so tamper tests that poke absolute
    buffer offsets densify first.
    """
    header, dense = sketch_buffer_v2(blob)
    header = dict(header)
    header.pop("nnz", None)
    header["encoding"] = "zlib"
    return pack_v2(header, dense.astype("<i8").tobytes())


def pack_v1_sketch(blob: bytes, mutate=None) -> bytes:
    """Re-encode a v2 sketch blob in the legacy v1 npz container.

    Byte-compatible with what ``dump_sketch`` produced before codec v2:
    same header keys (v1 magic) and the four concatenated field arrays.
    ``mutate(header, arrays)`` may tamper with either before packing.
    """
    header, arrays = sketch_fields_v2(blob)
    header = dict(header)
    header["__magic__"] = "repro-sketch-v1"
    for key in ("payload_bytes", "crc32", "encoding", "nnz"):
        header.pop(key, None)
    if mutate is not None:
        mutate(header, arrays)
    buf = io.BytesIO()
    np.savez_compressed(
        buf,
        __header__=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        **arrays,
    )
    return buf.getvalue()
