"""Tests for repro.util: bit helpers and combinatorial (un)ranking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util import (
    ceil_log2,
    check_node,
    check_probability,
    comb,
    floor_log2,
    pair_count,
    pair_rank,
    pair_rank_array,
    pair_unrank,
    stable_unique_pairs,
    subset_rank,
    subset_unrank,
    trailing_zeros,
)


class TestLogHelpers:
    def test_ceil_log2_powers(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(1024) == 10

    def test_ceil_log2_non_powers(self):
        assert ceil_log2(3) == 2
        assert ceil_log2(1025) == 11

    def test_floor_log2(self):
        assert floor_log2(1) == 0
        assert floor_log2(7) == 2
        assert floor_log2(8) == 3

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            ceil_log2(bad)
        with pytest.raises(ValueError):
            floor_log2(bad)

    def test_trailing_zeros(self):
        assert trailing_zeros(1) == 0
        assert trailing_zeros(8) == 3
        assert trailing_zeros(12) == 2

    def test_trailing_zeros_rejects_zero(self):
        with pytest.raises(ValueError):
            trailing_zeros(0)


class TestComb:
    def test_small_values(self):
        assert comb(5, 2) == 10
        assert comb(5, 0) == 1
        assert comb(5, 5) == 1

    def test_out_of_range_is_zero(self):
        assert comb(3, 5) == 0
        assert comb(-1, 0) == 0
        assert comb(3, -1) == 0

    def test_pair_count(self):
        assert pair_count(2) == 1
        assert pair_count(10) == 45


class TestPairRanking:
    def test_roundtrip_all_pairs(self):
        n = 23
        seen = set()
        for u in range(n):
            for v in range(u + 1, n):
                r = pair_rank(u, v, n)
                assert pair_unrank(r, n) == (u, v)
                seen.add(r)
        assert seen == set(range(pair_count(n)))

    def test_order_independent(self):
        assert pair_rank(3, 7, 10) == pair_rank(7, 3, 10)

    def test_lexicographic_order(self):
        assert pair_rank(0, 1, 5) == 0
        assert pair_rank(0, 4, 5) == 3
        assert pair_rank(1, 2, 5) == 4

    def test_roundtrip_large_universe_exact(self):
        """Regression: the quadratic seed must stay exact at large n.

        For n ≳ 2^26, ``8 · C(n,2)`` exceeds 2^53, where float sqrt
        rounding begins; ``math.isqrt`` keeps the row seed exact for any
        n, so the boundary fix-ups stay O(1) and the round trip is exact
        all the way to the last rank.
        """
        for n in (1 << 27, (1 << 28) + 3):
            total = pair_count(n)
            pairs = [
                (0, 1), (0, n - 1), (1, 2),
                (n // 3, n // 2), (n - 3, n - 2), (n - 2, n - 1),
            ]
            for u, v in pairs:
                assert pair_unrank(pair_rank(u, v, n), n) == (u, v)
            for r in (0, 1, total // 3, total // 2, total - 2, total - 1):
                u, v = pair_unrank(r, n)
                assert 0 <= u < v < n
                assert pair_rank(u, v, n) == r

    def test_rejects_self_pair(self):
        with pytest.raises(ValueError):
            pair_rank(3, 3, 10)

    def test_rejects_out_of_universe(self):
        with pytest.raises(ValueError):
            pair_rank(0, 10, 10)
        with pytest.raises(ValueError):
            pair_unrank(45, 10)

    def test_array_version_matches_scalar(self):
        n = 31
        rng = np.random.default_rng(0)
        u = rng.integers(0, n, size=200)
        v = rng.integers(0, n, size=200)
        mask = u != v
        u, v = u[mask], v[mask]
        got = pair_rank_array(u, v, n)
        want = [pair_rank(int(a), int(b), n) for a, b in zip(u, v)]
        assert got.tolist() == want


class TestSubsetRanking:
    @pytest.mark.parametrize("n,k", [(8, 3), (10, 4), (12, 2), (9, 5)])
    def test_roundtrip(self, n, k):
        total = comb(n, k)
        for r in range(total):
            s = subset_unrank(r, n, k)
            assert subset_rank(s, n) == r
            assert len(s) == k
            assert all(0 <= x < n for x in s)
            assert list(s) == sorted(s)

    def test_first_and_last(self):
        assert subset_unrank(0, 10, 3) == (0, 1, 2)
        assert subset_unrank(comb(10, 3) - 1, 10, 3) == (7, 8, 9)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            subset_rank((3, 1, 2), 10)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            subset_rank((1, 1, 2), 10)

    def test_rejects_out_of_range_rank(self):
        with pytest.raises(ValueError):
            subset_unrank(comb(6, 3), 6, 3)


class TestValidationHelpers:
    def test_check_node(self):
        check_node(0, 5)
        check_node(4, 5)
        with pytest.raises(ValueError):
            check_node(5, 5)
        with pytest.raises(ValueError):
            check_node(-1, 5)

    def test_check_probability(self):
        check_probability(0.5)
        check_probability(1.0)
        with pytest.raises(ValueError):
            check_probability(0.0)
        with pytest.raises(ValueError):
            check_probability(1.5)

    def test_stable_unique_pairs(self):
        pairs = [(2, 1), (1, 2), (3, 4), (4, 3), (1, 2)]
        assert stable_unique_pairs(pairs) == [(1, 2), (3, 4)]
