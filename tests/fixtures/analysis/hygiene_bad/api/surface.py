"""Fixture: API hygiene violations (REP-H001/H002/H003)."""

from dataclasses import dataclass


def lookup(kind, default=None):          # REP-H001: unannotated public fn
    try:
        return {"a": 1}[kind]
    except:                              # REP-H002: bare except
        return default


@dataclass(frozen=True)
class FrozenSpec:
    kind: str

    def rename(self, kind: str) -> None:
        self.kind = kind                 # REP-H003: frozen mutation

    def sneak(self, kind: str) -> None:
        object.__setattr__(self, "kind", kind)   # REP-H003: backdoor
