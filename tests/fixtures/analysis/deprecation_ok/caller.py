"""Fixture: library code on the new surface; the shim goes uncalled."""

from .api.deprecation import warn_deprecated


def old_path(x):
    warn_deprecated("old_path()", "new_path()")
    return new_path(x)                   # shim may call forward, same module


def new_path(x):
    return x
