"""Fixture: a fully, structurally registered sketch class."""

from repro.sketch import ArenaBacked


class WellRegisteredSketch(ArenaBacked):
    CAPABILITIES = frozenset({"connectivity"})

    def _cell_banks(self):
        return []
