"""Fixture: the deterministic spellings of everything determinism_bad does."""

import time

import numpy as np


def build_levels(n, seed):
    rng = np.random.default_rng(seed)      # seeded: fine
    t0 = time.perf_counter()               # monotonic timing: fine
    order = []
    for kind in sorted({"phi", "iota", "fp"}):   # sorted set: fine
        order.append(kind)
    return rng, time.perf_counter() - t0, order
