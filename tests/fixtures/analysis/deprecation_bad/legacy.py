"""Fixture: a legacy entry point kept as a warning shim."""

from .api.deprecation import warn_deprecated


def old_path(x):
    warn_deprecated("old_path()", "new_path()")
    return x
