"""Fixture: the (mini) deprecation home module."""

import warnings


def warn_deprecated(old: str, new: str) -> None:
    warnings.warn(f"{old} -> {new}", DeprecationWarning, stacklevel=3)
