"""Fixture: library code regressing onto the deprecated surface."""

import warnings

from .legacy import old_path


def do_work(x):
    warnings.warn("do_work is old", DeprecationWarning)   # REP-X002
    return old_path(x)                                    # REP-X001
