"""Fixture: structurally half-registered sketch classes (REP-R004/R005)."""

from repro.sketch import ArenaBacked


def _caps_from_config():
    return frozenset({"connectivity"})


class HalfRegisteredSketch(ArenaBacked):
    # REP-R004: ArenaBacked subclass with no _cell_banks() override.
    CAPABILITIES = frozenset({"connectivity"})


class DynamicCapsSketch(ArenaBacked):
    # REP-R005: CAPABILITIES is not a literal frozenset of strings.
    CAPABILITIES = _caps_from_config()

    def _cell_banks(self):
        return []
