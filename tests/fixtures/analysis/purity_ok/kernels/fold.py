"""Fixture: per-cell loops are the kernel directory's own business."""


def fold_cells(bank, other):
    for c in range(bank.phi.size):
        bank.phi[c] += other.phi[c]      # fine here: repro/kernels/ owns cells
    return bank


def slice_assign(bank, arrays):
    for name, bank_field in (("fp1", bank.fp1), ("fp2", bank.fp2)):
        bank_field[:] = arrays[name]     # whole-array slice, not per-cell
    return bank
