"""Fixture: pickle is legal at the process-spawn seam."""

import pickle


def ship_spec(spec):
    return pickle.dumps(spec)
