"""Fixture: the sanctioned columnar ingestion spelling."""


def ingest_all(sketch, stream):
    sketch.consume_batch(stream.as_batch())
    return sketch
