"""Fixture: the sanctioned columnar ingestion spelling."""


def ingest_all(sketch, stream):
    sketch.consume_batch(stream.as_batch())
    return sketch


def restore_banks(banks, arrays):
    for bank, chunk in zip(banks, arrays):
        bank.phi[:] = chunk              # whole-array slice, not per-cell
    return banks
