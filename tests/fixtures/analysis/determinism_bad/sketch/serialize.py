"""Fixture: every determinism rule violated (REP-D001..D004)."""

import random
import time

import numpy as np


def build_levels(n):
    rng = np.random.default_rng()          # REP-D001: unseeded
    jitter = random.random()               # REP-D002: process-global RNG
    stamp = time.time()                    # REP-D003: wall clock on sketch path
    order = []
    for kind in {"phi", "iota", "fp"}:     # REP-D004: set iteration order
        order.append(kind)
    return rng, jitter, stamp, order
