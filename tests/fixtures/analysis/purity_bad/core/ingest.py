"""Fixture: hot-path purity violations (REP-P001/P002)."""

import pickle  # REP-P002: pickle outside the process-spawn seam


def ingest_all(sketch, stream):
    for upd in stream.updates():
        sketch.update(upd)               # REP-P001: per-token ingestion loop
    return pickle.dumps(sketch)          # REP-P002: pickled sketch bytes
