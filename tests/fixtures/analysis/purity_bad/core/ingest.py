"""Fixture: hot-path purity violations (REP-P001/P002)."""

import pickle  # REP-P002: pickle outside the process-spawn seam


def ingest_all(sketch, stream):
    for upd in stream.updates():
        sketch.update(upd)               # REP-P001: per-token ingestion loop
    return pickle.dumps(sketch)          # REP-P002: pickled sketch bytes


def fold_cells(bank, other):
    for c in range(bank.phi.size):
        bank.phi[c] += other.phi[c]      # REP-P003: per-cell Python loop
    return bank
