"""Fixture: the hygienic spellings of everything hygiene_bad does."""

from dataclasses import dataclass, replace


def lookup(kind: str, default: "int | None" = None) -> "int | None":
    try:
        return {"a": 1}[kind]
    except KeyError:
        return default


@dataclass(frozen=True)
class FrozenSpec:
    kind: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", self.kind.strip())  # ctor hook: fine

    def rename(self, kind: str) -> "FrozenSpec":
        return replace(self, kind=kind)
