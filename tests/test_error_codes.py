"""Snapshot of the stable machine-readable error-code table.

Every public exception in :mod:`repro.errors` carries a ``code`` string
that is part of the wire contract: CLI exits print ``error[CODE]:`` and
the serve API returns the code in error bodies.  The table is pinned
name for name and code for code — renaming either is a deliberate,
breaking change that must update this snapshot.
"""

from __future__ import annotations

import re

import pytest

import repro
import repro.errors
from repro.cli import main
from repro.errors import ReproError, error_code_table

EXPECTED_CODE_TABLE = {
    "AdaptivityError": "ADAPTIVITY_VIOLATION",
    "EpochStoreError": "STORE_INVALID",
    "GraphError": "GRAPH_INVALID",
    "NotSupportedError": "NOT_SUPPORTED",
    "RecoveryFailed": "RECOVERY_FAILED",
    "ReproError": "REPRO_ERROR",
    "SamplerFailed": "SAMPLER_FAILED",
    "SketchCompatibilityError": "SKETCH_INCOMPATIBLE",
    "SketchFailure": "SKETCH_FAILURE",
    "StoreCorruptionError": "STORE_CORRUPT",
    "StreamError": "STREAM_INVALID",
    "WireFormatError": "WIRE_INVALID",
}


class TestCodeTable:
    def test_table_matches_snapshot(self):
        assert error_code_table() == EXPECTED_CODE_TABLE

    def test_codes_are_unique(self):
        codes = list(error_code_table().values())
        assert len(codes) == len(set(codes))

    def test_codes_are_upper_snake(self):
        for code in error_code_table().values():
            assert re.fullmatch(r"[A-Z][A-Z0-9_]*", code), code

    def test_every_public_exception_has_own_code(self):
        """Each class pins its code explicitly — no silent inheritance.

        An exception inheriting its parent's code would collapse two
        wire-distinguishable failures into one; the uniqueness test
        above catches the collision, this one names the offender.
        """
        for name in EXPECTED_CODE_TABLE:
            cls = getattr(repro.errors, name)
            assert "code" in vars(cls), f"{name} inherits its code"

    def test_instances_carry_the_class_code(self):
        err = repro.NotSupportedError("nope")
        assert err.code == "NOT_SUPPORTED"
        assert isinstance(err, ReproError)


class TestCliSurfacing:
    def test_store_error_exit_carries_code(self, tmp_path, capsys):
        # An empty directory holds no store: EpochStoreError, exit 2,
        # and the stable code in brackets so scripts can dispatch on it.
        assert main(["window-query", "--store", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "error[STORE_INVALID]:" in err

    def test_non_library_errors_stay_plain(self, capsys):
        # argparse-level validation is not a ReproError; no code.
        assert main(["epochs", "--boundaries", "100,abc"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "error[" not in err
