"""Integration tests: full pipelines across modules, end to end.

Each test exercises a complete paper workflow: stream → sketch →
post-process → verify against exact computation, including the
distributed and derandomised deployment stories of Sections 1.1 / 3.4.
"""

from __future__ import annotations

import pytest

from repro.core import (
    TRIANGLE,
    BaswanaSenSpanner,
    MinCutSketch,
    SimpleSparsification,
    Sparsification,
    SubgraphSketch,
    cut_approximation_report,
    encoding_class,
)
from repro.graphs import (
    Graph,
    gamma_exact,
    global_min_cut_value,
    measure_stretch,
)
from repro.hashing import HashSource, NisanPRG
from repro.sketch import L0Sampler
from repro.streams import (
    churn_stream,
    dumbbell_graph,
    erdos_renyi_graph,
    planted_partition_graph,
)


class TestEndToEndPipelines:
    def test_mincut_pipeline_on_planted_partition(self, source):
        n = 24
        edges = planted_partition_graph(n, 0.8, 0.1, seed=1)
        g = Graph.from_edges(n, edges)
        truth = global_min_cut_value(g)
        st = churn_stream(n, edges, seed=2)
        res = MinCutSketch(n, epsilon=0.5, source=source.derive(1)).consume(
            st
        ).estimate()
        assert res.value == pytest.approx(truth, rel=0.5)

    def test_sparsifier_then_mincut_composition(self, source):
        """A sparsifier must preserve the min cut — compose the two results."""
        n = 22
        edges = erdos_renyi_graph(n, 0.7, seed=3)
        g = Graph.from_edges(n, edges)
        st = churn_stream(n, edges, seed=4)
        sp = SimpleSparsification(
            n, source=source.derive(2), c_k=0.4
        ).consume(st).sparsifier()
        lam_g = global_min_cut_value(g)
        lam_h = global_min_cut_value(sp.graph)
        assert lam_h == pytest.approx(lam_g, rel=0.6)

    def test_all_sketches_one_stream(self, source):
        """Single pass, four different sketches fed the same tokens."""
        n = 20
        edges = erdos_renyi_graph(n, 0.4, seed=5)
        g = Graph.from_edges(n, edges)
        st = churn_stream(n, edges, seed=6)

        mc = MinCutSketch(n, source=source.derive(3))
        sp = SimpleSparsification(n, source=source.derive(4), c_k=0.3)
        sub = SubgraphSketch(n, order=3, samplers=64, source=source.derive(5))
        for upd in st:
            mc.update(upd)
            sp.update(upd)
            sub.update(upd)

        assert mc.estimate().value == pytest.approx(
            global_min_cut_value(g), rel=0.6
        )
        rep = cut_approximation_report(g, sp.sparsifier(), sample_cuts=100)
        assert rep.max_relative_error < 1.0
        est = sub.estimate(TRIANGLE)
        assert abs(
            est.gamma - gamma_exact(g, encoding_class(TRIANGLE), 3)
        ) < 0.15

    def test_distributed_three_site_deployment(self, source):
        """Partition → per-site sketches → merge → identical answers."""
        n = 18
        edges = erdos_renyi_graph(n, 0.5, seed=7)
        st = churn_stream(n, edges, seed=8)
        direct = Sparsification(n, source=source.derive(6)).consume(st)
        merged = Sparsification(n, source=source.derive(6))
        for part in st.partition(3, seed=9):
            merged.merge(Sparsification(n, source=source.derive(6)).consume(part))
        assert sorted(direct.sparsifier().graph.weighted_edges()) == sorted(
            merged.sparsifier().graph.weighted_edges()
        )

    def test_adaptive_spanner_over_dynamic_stream(self, source):
        n = 25
        edges = erdos_renyi_graph(n, 0.35, seed=10)
        g = Graph.from_edges(n, edges)
        st = churn_stream(n, edges, seed=11)
        rep = BaswanaSenSpanner(n, k=3, source=source.derive(7)).build(st)
        sr = measure_stretch(g, rep.spanner)
        assert sr.disconnected_pairs == 0
        assert sr.max_stretch <= 5

    def test_dumbbell_stress_all_results(self, source):
        """The motivating example: a fragile cut under heavy churn."""
        clique, bridges = 8, 2
        n = 2 * clique
        edges = dumbbell_graph(clique, bridges)
        st = churn_stream(n, edges, churn_fraction=0.8, decoy_fraction=1.0,
                          seed=12)
        res = MinCutSketch(n, source=source.derive(8)).consume(st).estimate()
        assert res.value == bridges

    def test_derandomised_l0_pipeline(self, source):
        """Section 3.4: the sampler driven by Nisan-PRG bits still works."""
        prg = NisanPRG(20, source.derive(9))

        class PrgSource:
            def derive(self, *labels):
                return self

            def levels(self, x, max_level):
                return prg.levels(x, max_level)

            def bucket(self, x, buckets):
                return prg.bucket(x, buckets)

            def hash64(self, x):
                return prg.hash64(x)

            seed = 0

        sampler = L0Sampler(500, PrgSource())
        support = {10: 1, 200: 2, 499: 3}
        for i, v in support.items():
            sampler.update(i, v)
        i, v = sampler.sample()
        assert support[i] == v

    def test_order_invariance_of_full_pipeline(self, source):
        """Sketches of shuffled vs sorted streams are identical (§3.4)."""
        n = 16
        edges = erdos_renyi_graph(n, 0.4, seed=13)
        st = churn_stream(n, edges, seed=14)
        a = SubgraphSketch(n, order=3, samplers=16, source=source.derive(10))
        b = SubgraphSketch(n, order=3, samplers=16, source=source.derive(10))
        a.consume(st.shuffled(seed=15))
        b.consume(st.sorted_by_edge())
        assert (a.bank.bank.phi == b.bank.bank.phi).all()
        assert (a.bank.bank.fp1 == b.bank.bank.fp1).all()

    def test_quickstart_example_runs(self):
        """The README quickstart, verbatim."""
        from repro import (
            DynamicGraphStream,
            HashSource,
            MinCutSketch,
        )

        stream = DynamicGraphStream(n=8)
        stream.insert(0, 1)
        stream.insert(1, 2)
        stream.insert(2, 3)
        stream.insert(0, 3)
        stream.insert(4, 5)
        stream.delete(4, 5)
        sketch = MinCutSketch(8, epsilon=0.5, source=HashSource(42))
        sketch.consume(stream)
        assert sketch.estimate().value == 0  # nodes 4..7 are isolated
