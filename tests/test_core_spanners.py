"""Tests for the adaptive spanner constructions (Section 5)."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    BaswanaSenSpanner,
    ClusterState,
    NeighborhoodSketch,
    RecurseConnectSpanner,
    recurse_connect_stretch_bound,
)
from repro.graphs import Graph, measure_stretch, verify_subgraph
from repro.streams import (
    DynamicGraphStream,
    churn_stream,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    stream_from_edges,
)


class TestClusterState:
    def test_initial_all_singletons(self):
        st = ClusterState(5)
        assert st.roots() == set(range(5))
        assert all(st.alive(v) for v in range(5))

    def test_finish(self):
        st = ClusterState(4)
        st.finish(2)
        assert not st.alive(2)
        assert st.roots() == {0, 1, 3}

    def test_members(self):
        st = ClusterState(4)
        st.root[1] = 0
        st.root[2] = 0
        assert st.members() == {0: [0, 1, 2], 3: [3]}


class TestNeighborhoodSketch:
    def test_one_edge_per_cluster(self, source):
        n = 8
        # Clusters: {0}, {1,2}, {3,4,5}; vertex 6, 7 isolated-cluster.
        state = ClusterState(n)
        state.root[2] = 1
        state.root[4] = 3
        state.root[5] = 3
        st = DynamicGraphStream(n)
        for u, v in [(0, 1), (0, 2), (0, 4), (0, 5), (6, 7)]:
            st.insert(u, v)
        hood = NeighborhoodSketch(n, buckets=16, source=source.derive(1))
        hood.consume(st, state)
        per = hood.edges_per_cluster(0, state)
        assert set(per) == {1, 3}
        for root, (a, x) in per.items():
            assert a == 0
            assert state.root[x] == root

    def test_restricted_roots(self, source):
        n = 6
        state = ClusterState(n)
        st = DynamicGraphStream(n)
        st.insert(0, 1)
        st.insert(0, 2)
        hood = NeighborhoodSketch(
            n, buckets=8, source=source.derive(2), restrict_roots={1}
        )
        hood.consume(st, state)
        per = hood.edges_per_cluster(0, state)
        assert set(per) == {1}

    def test_dead_vertices_ignored(self, source):
        n = 6
        state = ClusterState(n)
        state.finish(2)
        st = DynamicGraphStream(n)
        st.insert(0, 2)
        hood = NeighborhoodSketch(n, buckets=8, source=source.derive(3))
        hood.consume(st, state)
        assert hood.edges_per_cluster(0, state) == {}


class TestBaswanaSenSpanner:
    @pytest.mark.parametrize("k", [2, 3])
    def test_stretch_bound_on_grid(self, k, source):
        n = 36
        edges = grid_graph(6, 6)
        g = Graph.from_edges(n, edges)
        rep = BaswanaSenSpanner(n, k=k, source=source.derive(10, k)).build(
            churn_stream(n, edges, seed=k)
        )
        sr = measure_stretch(g, rep.spanner)
        assert sr.disconnected_pairs == 0
        assert sr.max_stretch <= 2 * k - 1

    def test_spanner_is_subgraph(self, source):
        n = 30
        edges = erdos_renyi_graph(n, 0.3, seed=11)
        g = Graph.from_edges(n, edges)
        rep = BaswanaSenSpanner(n, k=3, source=source.derive(11)).build(
            churn_stream(n, edges, seed=12)
        )
        verify_subgraph(g, rep.spanner)  # raises on violation

    def test_batches_equal_k(self, source):
        n = 20
        edges = erdos_renyi_graph(n, 0.3, seed=13)
        for k in (2, 3, 4):
            rep = BaswanaSenSpanner(n, k=k, source=source.derive(12, k)).build(
                stream_from_edges(n, edges)
            )
            assert rep.batches == k
            assert rep.stretch_bound == 2 * k - 1

    def test_dense_graph_compressed(self, source):
        n = 24
        edges = complete_graph(n)
        g = Graph.from_edges(n, edges)
        rep = BaswanaSenSpanner(n, k=2, source=source.derive(13)).build(
            stream_from_edges(n, edges)
        )
        assert rep.edges < g.num_edges()
        sr = measure_stretch(g, rep.spanner)
        assert sr.max_stretch <= 3

    def test_disconnected_graph_handled(self, source):
        n = 12
        edges = path_graph(6) + [(6 + u, 6 + v) for u, v in path_graph(6)]
        g = Graph.from_edges(n, edges)
        rep = BaswanaSenSpanner(n, k=2, source=source.derive(14)).build(
            stream_from_edges(n, edges)
        )
        sr = measure_stretch(g, rep.spanner)
        assert sr.disconnected_pairs == 0

    def test_rejects_bad_k(self, source):
        with pytest.raises(ValueError):
            BaswanaSenSpanner(10, k=1, source=source)

    def test_universe_mismatch(self, source):
        sp = BaswanaSenSpanner(10, k=2, source=source.derive(15))
        with pytest.raises(ValueError):
            sp.build(DynamicGraphStream(12))

    def test_memory_reported(self, source):
        n = 16
        rep = BaswanaSenSpanner(n, k=2, source=source.derive(16)).build(
            stream_from_edges(n, cycle_graph(n))
        )
        assert rep.memory_cells > 0


class TestRecurseConnectSpanner:
    def test_stretch_bound_formula(self):
        assert recurse_connect_stretch_bound(2) == pytest.approx(
            2 ** math.log2(5) - 1
        )
        assert recurse_connect_stretch_bound(4) == pytest.approx(24.0, abs=1e-9)

    @pytest.mark.parametrize("k", [2, 4])
    def test_stretch_within_bound(self, k, source):
        n = 36
        edges = grid_graph(6, 6)
        g = Graph.from_edges(n, edges)
        rep = RecurseConnectSpanner(n, k=k, source=source.derive(20, k)).build(
            churn_stream(n, edges, seed=k + 1)
        )
        sr = measure_stretch(g, rep.spanner)
        assert sr.disconnected_pairs == 0
        assert sr.max_stretch <= rep.stretch_bound

    def test_adaptivity_is_log_k(self, source):
        n = 30
        edges = erdos_renyi_graph(n, 0.4, seed=21)
        for k in (2, 4, 8):
            rep = RecurseConnectSpanner(n, k=k, source=source.derive(21, k)).build(
                stream_from_edges(n, edges)
            )
            assert rep.batches <= math.ceil(math.log2(k)) + 1

    def test_contraction_trajectory_monotone(self, source):
        n = 36
        edges = erdos_renyi_graph(n, 0.5, seed=22)
        spanner = RecurseConnectSpanner(n, k=4, source=source.derive(22))
        spanner.build(stream_from_edges(n, edges))
        traj = spanner.contraction_trajectory
        assert traj[0] == n
        assert all(a >= b for a, b in zip(traj, traj[1:]))

    def test_spanner_is_subgraph(self, source):
        n = 25
        edges = erdos_renyi_graph(n, 0.35, seed=23)
        g = Graph.from_edges(n, edges)
        rep = RecurseConnectSpanner(n, k=4, source=source.derive(23)).build(
            churn_stream(n, edges, seed=24)
        )
        verify_subgraph(g, rep.spanner)

    def test_connectivity_preserved(self, source):
        n = 20
        edges = cycle_graph(n)
        g = Graph.from_edges(n, edges)
        rep = RecurseConnectSpanner(n, k=2, source=source.derive(24)).build(
            stream_from_edges(n, edges)
        )
        sr = measure_stretch(g, rep.spanner)
        assert sr.disconnected_pairs == 0

    def test_rejects_bad_k(self, source):
        with pytest.raises(ValueError):
            RecurseConnectSpanner(10, k=1, source=source)

    def test_universe_mismatch(self, source):
        sp = RecurseConnectSpanner(10, k=2, source=source.derive(25))
        with pytest.raises(ValueError):
            sp.build(DynamicGraphStream(12))
