"""Tests for repro.hashing: field arithmetic, mixing, k-wise, Nisan PRG."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import (
    MERSENNE31,
    KWiseHash,
    NisanPRG,
    horner_mod,
    mod_mersenne31,
    mulmod,
    powmod,
    splitmix64,
)
from repro.hashing.field import powmod_array


class TestField:
    def test_mod_scalar(self):
        assert mod_mersenne31(MERSENNE31) == 0
        assert mod_mersenne31(MERSENNE31 + 5) == 5
        assert mod_mersenne31(3) == 3

    def test_mod_array_matches_numpy_mod(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 2**62, size=1000, dtype=np.int64)
        assert (mod_mersenne31(x) == x % MERSENNE31).all()

    def test_mulmod_scalar(self):
        a, b = 123456789, 987654321
        assert mulmod(a, b) == a * b % MERSENNE31

    def test_mulmod_array(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, MERSENNE31, size=500, dtype=np.int64)
        b = rng.integers(0, MERSENNE31, size=500, dtype=np.int64)
        assert (mulmod(a, b) == (a.astype(object) * b) % MERSENNE31).all()

    def test_powmod_matches_builtin(self):
        for base, exp in [(3, 10), (12345, 0), (MERSENNE31 - 1, 7), (2, 61)]:
            assert powmod(base, exp) == pow(base, exp, MERSENNE31)

    def test_powmod_array_matches_scalar(self):
        exps = np.array([0, 1, 2, 31, 1000, 2**30], dtype=np.int64)
        got = powmod_array(7, exps)
        want = [pow(7, int(e), MERSENNE31) for e in exps]
        assert got.tolist() == want

    def test_horner_matches_direct_evaluation(self):
        coeffs = np.array([3, 1, 4, 1, 5], dtype=np.int64)
        xs = np.array([0, 1, 2, 100, MERSENNE31 - 1], dtype=np.int64)
        got = horner_mod(coeffs, xs)
        for x, g in zip(xs, got):
            want = sum(
                int(c) * pow(int(x), len(coeffs) - 1 - i, MERSENNE31)
                for i, c in enumerate(coeffs)
            ) % MERSENNE31
            assert int(g) == want


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(42, seed=7) == splitmix64(42, seed=7)

    def test_seed_changes_output(self):
        assert splitmix64(42, seed=7) != splitmix64(42, seed=8)

    def test_scalar_matches_array(self):
        xs = np.arange(100, dtype=np.uint64)
        arr = splitmix64(xs, seed=123)
        for i in range(100):
            assert int(arr[i]) == splitmix64(i, seed=123)

    def test_bijection_no_collisions(self):
        xs = np.arange(100_000, dtype=np.uint64)
        out = splitmix64(xs, seed=5)
        assert len(np.unique(out)) == len(xs)


class TestHashSource:
    def test_derive_is_deterministic(self, source):
        assert source.derive(1, 2).seed == source.derive(1, 2).seed

    def test_derive_order_matters(self, source):
        assert source.derive(1, 2).seed != source.derive(2, 1).seed

    def test_uniform_in_range(self, source):
        u = source.uniform(np.arange(1000))
        assert (0 <= u).all() and (u < 1).all()
        # Roughly uniform: mean near 0.5.
        assert 0.4 < u.mean() < 0.6

    def test_bucket_scalar_matches_array(self, source):
        keys = np.arange(500, dtype=np.int64)
        arr = source.bucket(keys, 17)
        for i in range(500):
            assert int(arr[i]) == source.bucket(i, 17)

    def test_bucket_range(self, source):
        b = source.bucket(np.arange(2000), 7)
        assert set(np.unique(b)) <= set(range(7))

    def test_levels_geometric_distribution(self, source):
        lv = source.levels(np.arange(200_000), 30)
        # P(level >= 1) ≈ 1/2, P(level >= 2) ≈ 1/4.
        frac1 = (lv >= 1).mean()
        frac2 = (lv >= 2).mean()
        assert 0.48 < frac1 < 0.52
        assert 0.23 < frac2 < 0.27

    def test_levels_scalar_matches_array(self, source):
        arr = source.levels(np.arange(300), 20)
        for i in range(300):
            assert int(arr[i]) == source.levels(i, 20)

    def test_levels_capped(self, source):
        assert (source.levels(np.arange(10_000), 3) <= 3).all()

    def test_bernoulli_consistency(self, source):
        # Same key gives the same coin — required for consistent sampling.
        for key in range(50):
            assert source.bernoulli(key, 0.3) == source.bernoulli(key, 0.3)

    def test_bernoulli_rate(self, source):
        hits = source.bernoulli(np.arange(100_000), 0.2)
        assert 0.19 < hits.mean() < 0.21


class TestKWiseHash:
    def test_deterministic(self, source):
        h1 = KWiseHash(3, source.derive(9))
        h2 = KWiseHash(3, source.derive(9))
        assert h1.coeffs == h2.coeffs
        assert h1.hash64(12345) == h2.hash64(12345)

    def test_output_below_prime(self, source):
        h = KWiseHash(4, source.derive(10))
        vals = h.hash64(np.arange(1000))
        assert (vals >= 0).all() and (vals < MERSENNE31).all()

    def test_scalar_matches_array(self, source):
        h = KWiseHash(5, source.derive(11))
        arr = h.hash64(np.arange(200))
        for i in range(200):
            assert int(arr[i]) == h.hash64(i)

    def test_pairwise_collision_rate(self, source):
        h = KWiseHash(2, source.derive(12))
        vals = h.bucket(np.arange(1000), 100)
        counts = np.bincount(vals, minlength=100)
        # Expected ~10 per bucket; no bucket should be wildly off.
        assert counts.max() < 40

    def test_rejects_bad_k(self, source):
        with pytest.raises(ValueError):
            KWiseHash(0, source)

    def test_levels_geometric(self, source):
        h = KWiseHash(4, source.derive(13))
        lv = h.levels(np.arange(50_000), 20)
        assert 0.4 < (np.asarray(lv) >= 1).mean() < 0.6


class TestNisanPRG:
    def test_block_deterministic(self, source):
        g1 = NisanPRG(10, source.derive(20))
        g2 = NisanPRG(10, source.derive(20))
        assert [g1.block(j) for j in range(32)] == [g2.block(j) for j in range(32)]

    def test_blocks_vectorised_matches_scalar(self, source):
        g = NisanPRG(12, source.derive(21))
        idx = np.arange(200, dtype=np.int64)
        assert g.blocks(idx).tolist() == [g.block(int(j)) for j in idx]

    def test_num_blocks(self, source):
        assert NisanPRG(8, source).num_blocks == 256

    def test_block_out_of_range(self, source):
        g = NisanPRG(4, source)
        with pytest.raises(ValueError):
            g.block(16)
        with pytest.raises(ValueError):
            g.block(-1)

    def test_rejects_bad_levels(self, source):
        with pytest.raises(ValueError):
            NisanPRG(0, source)
        with pytest.raises(ValueError):
            NisanPRG(63, source)

    def test_seed_size_is_logarithmic(self, source):
        # The seed is one start block plus (a, b) per level: 2l+1 field
        # elements for 2^l blocks — exponential stretch (Theorem 3.5 shape).
        g = NisanPRG(20, source.derive(22))
        seed_elements = 1 + 2 * g.depth
        assert seed_elements == 41
        assert g.num_blocks == 2**20

    def test_output_statistics(self, source):
        g = NisanPRG(16, source.derive(23))
        vals = g.blocks(np.arange(4096))
        # Mean of uniform [0, p) is p/2; allow generous tolerance.
        assert 0.4 < vals.mean() / MERSENNE31 < 0.6

    def test_hash_protocol(self, source):
        g = NisanPRG(12, source.derive(24))
        assert g.bucket(5, 10) == g.bucket(5, 10)
        u = g.uniform(np.arange(100))
        assert (0 <= u).all() and (u < 1).all()
        lv = g.levels(np.arange(1000), 10)
        assert (np.asarray(lv) <= 10).all()
