"""Tests for patterns and the Section 4 subgraph sketch."""

from __future__ import annotations

import pytest

from repro.core import (
    CLIQUE_4,
    CYCLE_4,
    EMPTY_3,
    PATH_3,
    PATH_4,
    SINGLE_EDGE_3,
    STAR_4,
    TRIANGLE,
    Pattern,
    SubgraphSketch,
    encoding_class,
    named_patterns,
)
from repro.errors import NotSupportedError
from repro.graphs import Graph, gamma_exact
from repro.streams import (
    DynamicGraphStream,
    churn_stream,
    complete_graph,
    erdos_renyi_graph,
    stream_from_edges,
    triangle_planted_graph,
)


class TestPatterns:
    def test_triangle_class_is_all_ones(self):
        assert encoding_class(TRIANGLE) == frozenset({7})

    def test_path3_class(self):
        assert encoding_class(PATH_3) == frozenset({3, 5, 6})

    def test_single_edge_class(self):
        assert encoding_class(SINGLE_EDGE_3) == frozenset({1, 2, 4})

    def test_empty_class(self):
        assert encoding_class(EMPTY_3) == frozenset({0})

    def test_order3_classes_partition_all_masks(self):
        union = set()
        for p in (TRIANGLE, PATH_3, SINGLE_EDGE_3, EMPTY_3):
            cls = encoding_class(p)
            assert not (union & cls), "classes must be disjoint"
            union |= cls
        assert union == set(range(8))

    def test_clique4_single_encoding(self):
        assert encoding_class(CLIQUE_4) == frozenset({63})

    def test_cycle4_class_size(self):
        # 3 labelled 4-cycles on 4 vertices.
        assert len(encoding_class(CYCLE_4)) == 3

    def test_path4_class_size(self):
        # 4!/2 = 12 labelled paths on 4 vertices.
        assert len(encoding_class(PATH_4)) == 12

    def test_star4_class_size(self):
        # 4 choices of centre.
        assert len(encoding_class(STAR_4)) == 4

    def test_named_patterns_registry(self):
        reg = named_patterns()
        assert "triangle" in reg and reg["triangle"] is TRIANGLE

    def test_rejects_large_order(self):
        with pytest.raises(NotSupportedError):
            Pattern(name="big", order=6, edges=frozenset())

    def test_rejects_non_canonical_edges(self):
        with pytest.raises(ValueError):
            Pattern(name="bad", order=3, edges=frozenset({(2, 1)}))


class TestSubgraphSketch:
    def test_complete_graph_all_triangles(self, source):
        n = 10
        sk = SubgraphSketch(n, order=3, samplers=48, source=source.derive(1))
        sk.consume(stream_from_edges(n, complete_graph(n)))
        est = sk.estimate(TRIANGLE)
        assert est.gamma == 1.0
        assert est.invalid_encodings == 0

    def test_single_edge_graph(self, source):
        n = 8
        st = DynamicGraphStream(n)
        st.insert(0, 1)
        sk = SubgraphSketch(n, order=3, samplers=32, source=source.derive(2))
        sk.consume(st)
        # Every non-empty column is the single-edge pattern.
        assert sk.estimate(SINGLE_EDGE_3).gamma == 1.0
        assert sk.estimate(TRIANGLE).gamma == 0.0

    def test_additive_error_bounded(self, source):
        n = 28
        edges = triangle_planted_graph(n, 0.15, 5, seed=3)
        g = Graph.from_edges(n, edges)
        sk = SubgraphSketch(n, order=3, samplers=160, source=source.derive(3))
        sk.consume(churn_stream(n, edges, seed=4))
        for pattern in (TRIANGLE, PATH_3, SINGLE_EDGE_3):
            est = sk.estimate(pattern)
            exact = gamma_exact(g, encoding_class(pattern), 3)
            assert abs(est.gamma - exact) < 0.12, pattern.name

    def test_deletions_cancel(self, source):
        """Decoys inserted then deleted must not affect the estimate."""
        n = 12
        base = [(0, 1), (1, 2), (2, 0)]
        clean = stream_from_edges(n, base)
        churny = DynamicGraphStream(n)
        for u, v in base:
            churny.insert(u, v)
        churny.insert(5, 6)
        churny.insert(6, 7)
        churny.delete(5, 6)
        churny.delete(6, 7)
        a = SubgraphSketch(n, order=3, samplers=32, source=source.derive(4))
        b = SubgraphSketch(n, order=3, samplers=32, source=source.derive(4))
        a.consume(clean)
        b.consume(churny)
        assert (a.bank.bank.phi == b.bank.bank.phi).all()
        assert (a.bank.bank.fp1 == b.bank.bank.fp1).all()

    def test_merge_distributed(self, source):
        n = 14
        edges = erdos_renyi_graph(n, 0.4, seed=5)
        st = churn_stream(n, edges, seed=6)
        direct = SubgraphSketch(n, order=3, samplers=24, source=source.derive(5))
        direct.consume(st)
        merged = SubgraphSketch(n, order=3, samplers=24, source=source.derive(5))
        for part in st.partition(3, seed=7):
            site = SubgraphSketch(n, order=3, samplers=24, source=source.derive(5))
            merged.merge(site.consume(part))
        assert (direct.bank.bank.phi == merged.bank.bank.phi).all()

    def test_order4_on_clique(self, source):
        n = 8
        sk = SubgraphSketch(n, order=4, samplers=24, source=source.derive(6))
        sk.consume(stream_from_edges(n, complete_graph(n)))
        assert sk.estimate(CLIQUE_4).gamma == 1.0

    def test_estimate_many_shares_samples(self, source):
        n = 16
        edges = erdos_renyi_graph(n, 0.3, seed=8)
        sk = SubgraphSketch(n, order=3, samplers=40, source=source.derive(7))
        sk.consume(stream_from_edges(n, edges))
        out = sk.estimate_many([TRIANGLE, PATH_3, SINGLE_EDGE_3, EMPTY_3])
        # Non-empty classes partition the samples: fractions sum to 1.
        total = out["triangle"].gamma + out["path3"].gamma + out["single-edge3"].gamma
        assert total == pytest.approx(1.0)
        assert out["empty3"].gamma == 0.0  # empty columns are never sampled

    def test_pattern_order_mismatch(self, source):
        sk = SubgraphSketch(10, order=3, samplers=8, source=source.derive(8))
        with pytest.raises(ValueError):
            sk.estimate(CLIQUE_4)

    def test_rejects_bad_parameters(self, source):
        with pytest.raises(NotSupportedError):
            SubgraphSketch(10, order=6, source=source)
        with pytest.raises(ValueError):
            SubgraphSketch(10, order=3, samplers=0, source=source)
        with pytest.raises(ValueError):
            SubgraphSketch(2, order=3, source=source)

    def test_empty_graph_all_fail(self, source):
        sk = SubgraphSketch(8, order=3, samplers=16, source=source.derive(9))
        est = sk.estimate(TRIANGLE)
        assert est.gamma == 0.0
        assert est.samples_failed == 16
        assert est.samples_used == 0
