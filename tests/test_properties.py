"""Property-based tests (hypothesis) on the library's core invariants.

These target the *exact* algebraic properties the paper's machinery
rests on — linearity, order-invariance, support membership, recovery
exactness, Gomory–Hu agreement — under adversarially generated inputs.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import RecoveryFailed, SamplerFailed
from repro.graphs import (
    Graph,
    MaxFlow,
    brute_force_min_cut,
    gomory_hu_tree,
    sparse_certificate,
    stoer_wagner,
)
from repro.hashing import HashSource
from repro.sketch import L0Sampler, OneSparseCell, SparseRecovery
from repro.streams import DynamicGraphStream, EdgeUpdate
from repro.util import pair_rank, pair_unrank, subset_rank, subset_unrank

# Compact update strategy: (index, delta) pairs over a small domain.
updates_strategy = st.lists(
    st.tuples(st.integers(0, 199), st.integers(-5, 5).filter(lambda d: d != 0)),
    min_size=0,
    max_size=60,
)

common_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _vector_of(updates: list[tuple[int, int]]) -> dict[int, int]:
    acc: dict[int, int] = {}
    for i, d in updates:
        acc[i] = acc.get(i, 0) + d
        if acc[i] == 0:
            del acc[i]
    return acc


class TestSketchProperties:
    @common_settings
    @given(updates=updates_strategy)
    def test_onesparse_decodes_iff_one_sparse(self, updates):
        cell = OneSparseCell(200, HashSource(1).derive(7))
        for i, d in updates:
            cell.update(i, d)
        truth = _vector_of(updates)
        decoded = cell.try_decode()
        if len(truth) == 1:
            ((i, v),) = truth.items()
            assert decoded == (i, v)
        elif len(truth) == 0:
            assert decoded is None and cell.is_zero()
        else:
            # Fingerprints make false accepts essentially impossible.
            assert decoded is None

    @common_settings
    @given(updates=updates_strategy)
    def test_l0_sample_is_support_member(self, updates):
        s = L0Sampler(200, HashSource(2).derive(3))
        for i, d in updates:
            s.update(i, d)
        truth = _vector_of(updates)
        try:
            i, v = s.sample()
        except SamplerFailed as exc:
            if not truth:
                assert exc.vector_is_zero
            return
        assert truth.get(i) == v

    @common_settings
    @given(updates=updates_strategy, split=st.integers(0, 60))
    def test_l0_linearity_merge_equals_concat(self, updates, split):
        a = L0Sampler(200, HashSource(3).derive(1))
        b = L0Sampler(200, HashSource(3).derive(1))
        c = L0Sampler(200, HashSource(3).derive(1))
        for i, d in updates[:split]:
            a.update(i, d)
        for i, d in updates[split:]:
            b.update(i, d)
        for i, d in updates:
            c.update(i, d)
        a.merge(b)
        # Compare every cell of the merged and direct sketches.
        for lv in range(a.levels + 1):
            for r in range(a.rows):
                for bkt in range(a.buckets):
                    ca = a._cells[lv][r][bkt]
                    cc = c._cells[lv][r][bkt]
                    assert (ca.phi, ca.iota, ca.fp1, ca.fp2) == (
                        cc.phi, cc.iota, cc.fp1, cc.fp2,
                    )

    @common_settings
    @given(updates=updates_strategy)
    def test_l0_order_invariance(self, updates):
        a = L0Sampler(200, HashSource(4).derive(1))
        b = L0Sampler(200, HashSource(4).derive(1))
        for i, d in updates:
            a.update(i, d)
        for i, d in reversed(updates):
            b.update(i, d)
        for lv in range(a.levels + 1):
            for r in range(a.rows):
                for bkt in range(a.buckets):
                    ca, cb = a._cells[lv][r][bkt], b._cells[lv][r][bkt]
                    assert (ca.phi, ca.iota, ca.fp1, ca.fp2) == (
                        cb.phi, cb.iota, cb.fp1, cb.fp2,
                    )

    @common_settings
    @given(updates=updates_strategy)
    def test_sparse_recovery_exact_or_honest(self, updates):
        """Theorem 2.2 contract: never wrong; FAIL only with small probability.

        The guarantee is over the *hash randomness*, so a fixed seed
        admits adversarial inputs (hypothesis will find all-rows
        collisions).  Accordingly: any successful decode must be exact,
        and a FAIL on a ≤ k support must disappear under reseeding.
        """
        truth = _vector_of(updates)
        failures = 0
        for attempt in range(4):
            sr = SparseRecovery(200, k=12, source=HashSource(5).derive(2, attempt))
            for i, d in updates:
                sr.update(i, d)
            try:
                decoded = sr.decode()
            except RecoveryFailed:
                failures += 1
                continue
            # Any reported answer must be the exact vector, within cap.
            assert decoded == truth
            assert len(decoded) <= 12
        if len(truth) <= 12:
            assert failures < 4, "every seed failed on a recoverable vector"
        # Over-capacity supports may legitimately FAIL on every seed; the
        # in-loop assertions already forbid wrong successes.


class TestRankingProperties:
    @common_settings
    @given(
        n=st.integers(2, 60),
        data=st.data(),
    )
    def test_pair_rank_bijection(self, n, data):
        u = data.draw(st.integers(0, n - 1))
        v = data.draw(st.integers(0, n - 1).filter(lambda x: x != u))
        r = pair_rank(u, v, n)
        assert 0 <= r < n * (n - 1) // 2
        assert pair_unrank(r, n) == (min(u, v), max(u, v))

    @common_settings
    @given(n=st.integers(3, 20), k=st.integers(2, 5), data=st.data())
    def test_subset_rank_bijection(self, n, k, data):
        if k > n:
            return
        subset = tuple(
            sorted(
                data.draw(
                    st.sets(st.integers(0, n - 1), min_size=k, max_size=k)
                )
            )
        )
        assert subset_unrank(subset_rank(subset, n), n, k) == subset


graph_strategy = st.builds(
    lambda n, pairs: (n, [(u % n, v % n) for u, v in pairs if u % n != v % n]),
    st.integers(4, 10),
    st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=25),
)


class TestGraphProperties:
    @common_settings
    @given(graph_strategy)
    def test_stoer_wagner_matches_brute_force(self, spec):
        n, edges = spec
        g = Graph.from_edges(n, edges) if edges else Graph(n)
        sw, _ = stoer_wagner(g)
        bf, _ = brute_force_min_cut(g)
        assert sw == pytest.approx(bf)

    @common_settings
    @given(graph_strategy)
    def test_gomory_hu_matches_maxflow(self, spec):
        n, edges = spec
        g = Graph.from_edges(n, edges) if edges else Graph(n)
        tree = gomory_hu_tree(g)
        flow = MaxFlow(g)
        for u in range(n):
            for v in range(u + 1, n):
                assert tree.min_cut_value(u, v) == pytest.approx(
                    flow.max_flow(u, v)
                )

    @common_settings
    @given(graph_strategy, st.integers(1, 4))
    def test_certificate_preserves_cuts_up_to_k(self, spec, k):
        n, edges = spec
        g = Graph.from_edges(n, edges) if edges else Graph(n)
        cert = sparse_certificate(g, k)
        cut_g, _ = stoer_wagner(g)
        cut_h, _ = stoer_wagner(cert)
        assert min(cut_h, k) == pytest.approx(min(cut_g, k))


class TestStreamProperties:
    @common_settings
    @given(
        tokens=st.lists(
            st.tuples(
                st.integers(0, 7),
                st.integers(0, 7),
                st.integers(-3, 3),
            ).filter(lambda t: t[0] != t[1] and t[2] != 0),
            max_size=40,
        )
    )
    def test_multiplicities_order_invariant(self, tokens):
        a = DynamicGraphStream(8, (EdgeUpdate(u, v, d) for u, v, d in tokens))
        b = a.shuffled(seed=3)
        c = a.sorted_by_edge()
        try:
            ma = a.multiplicities()
        except Exception:
            return  # negative aggregates: nothing to compare
        assert b.multiplicities() == ma
        assert c.multiplicities() == ma

    @common_settings
    @given(
        tokens=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)).filter(
                lambda t: t[0] != t[1]
            ),
            max_size=40,
        ),
        sites=st.integers(1, 5),
    )
    def test_partition_is_lossless(self, tokens, sites):
        stream = DynamicGraphStream(8, (EdgeUpdate(u, v) for u, v in tokens))
        parts = stream.partition(sites, seed=1)
        total = sum(len(p) for p in parts)
        assert total == len(stream)
