"""Cross-shard equivalence harness (PAPER.md §1.1).

The contract of multi-site sketching: for *every* sketch class, *every*
partition strategy, and *every* shard count, the coordinator's merged
sketch is **byte-identical** to a single-site sketch of the full
stream.  Linearity makes this exact — not approximate — so the harness
compares serialised bytes, which pins cell arrays, parameters, and
seeds all at once.

The workload streams contain deletions, and for the position-based
strategies the harness verifies that insert/delete pairs of the same
edge really do land on different shards — the case a non-linear
summary would get wrong.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.core import (
    BaswanaSenSpanner,
    BipartitenessSketch,
    CutEdgesSketch,
    EdgeConnectivitySketch,
    MinCutSketch,
    MSTWeightSketch,
    SimpleSparsification,
    Sparsification,
    SpanningForestSketch,
    SubgraphSketch,
    WeightedSparsification,
)
from repro.distributed import (
    PARTITION_STRATEGIES,
    ShardedSketchRunner,
    partition_batch,
    partition_stream,
    partition_stream_by,
    shard_assignment,
)
from repro.errors import StreamError
from repro.hashing import HashSource
from repro.sketch import dump_sketch
from repro.streams import (
    DynamicGraphStream,
    churn_stream,
    erdos_renyi_graph,
    random_weighted_edges,
    weighted_churn_stream,
)

N = 12
SITE_COUNTS = (1, 2, 3, 7)


@pytest.fixture(scope="module")
def stream() -> DynamicGraphStream:
    """Unweighted churny stream: every edge inserted, many churned."""
    st = churn_stream(
        N, erdos_renyi_graph(N, 0.4, seed=5), churn_fraction=0.6, seed=6
    )
    assert any(u.delta < 0 for u in st), "harness needs deletions"
    return st


@pytest.fixture(scope="module")
def weighted_stream() -> DynamicGraphStream:
    """Weight-atomic churny stream for the weighted consumers."""
    return weighted_churn_stream(
        N, random_weighted_edges(N, 0.4, 3, seed=7), churn_fraction=0.6,
        seed=8,
    )


def _forest_n(n, seed):
    return SpanningForestSketch(n, HashSource(seed))


def _forest(seed):
    return _forest_n(N, seed)


def _edge_connect(seed):
    return EdgeConnectivitySketch(N, 3, HashSource(seed))


def _mincut(seed):
    return MinCutSketch(N, epsilon=0.5, source=HashSource(seed), c_k=0.4)


def _simple_sparsify(seed):
    return SimpleSparsification(
        N, epsilon=0.5, source=HashSource(seed), c_k=0.15
    )


def _sparsify(seed):
    return Sparsification(
        N, epsilon=0.5, source=HashSource(seed), c_k=0.3, c_rough=0.05
    )


def _weighted(seed):
    return WeightedSparsification(
        N, max_weight=3, epsilon=0.5, source=HashSource(seed), c_k=0.15
    )


def _subgraph(seed):
    return SubgraphSketch(N, order=3, samplers=8, source=HashSource(seed))


def _cut_edges(seed):
    return CutEdgesSketch(N, k=8, source=HashSource(seed))


def _bipartite(seed):
    return BipartitenessSketch(N, HashSource(seed))


def _mst(seed):
    return MSTWeightSketch(N, max_weight=3, source=HashSource(seed))


#: (name, factory maker, needs weighted stream) — every serialisable class.
SKETCH_CASES = [
    ("spanning_forest", _forest, False),
    ("edge_connectivity", _edge_connect, False),
    ("mincut", _mincut, False),
    ("simple_sparsification", _simple_sparsify, False),
    ("sparsification", _sparsify, False),
    ("weighted_sparsification", _weighted, True),
    ("subgraph_count", _subgraph, False),
    ("cut_edges", _cut_edges, False),
    ("bipartiteness", _bipartite, False),
    ("mst_weight", _mst, True),
]


class TestShardCountInvariance:
    @pytest.mark.parametrize(
        "name,maker,weighted", SKETCH_CASES, ids=[c[0] for c in SKETCH_CASES]
    )
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    def test_merged_equals_single_site(
        self, name, maker, weighted, strategy, stream, weighted_stream
    ):
        st = weighted_stream if weighted else stream
        case_index = [c[0] for c in SKETCH_CASES].index(name)
        factory = functools.partial(maker, 1000 + case_index)
        reference = dump_sketch(factory().consume(st))
        for sites in SITE_COUNTS:
            report = ShardedSketchRunner(
                factory, sites=sites, strategy=strategy, seed=3
            ).run(st)
            assert dump_sketch(report.sketch) == reference, (
                f"{name}: coordinator sketch differs from single-site at "
                f"K={sites}, strategy={strategy}"
            )
            assert sum(s.tokens for s in report.sites) == len(st)

    @pytest.mark.parametrize("strategy", ["round-robin", "contiguous"])
    def test_deletions_cross_shard_boundaries(self, strategy, stream):
        """Position-based strategies split an edge's insert/delete pair."""
        batch = stream.as_batch()
        assignment = shard_assignment(batch, 2, strategy, seed=3)
        split_edges = 0
        for rank in np.unique(batch.ranks[batch.delta < 0]):
            sites = set(assignment[batch.ranks == rank].tolist())
            if len(sites) > 1:
                split_edges += 1
        assert split_edges > 0, (
            f"{strategy} never separated an insert from its deletion — "
            "the harness would not be exercising cross-shard cancellation"
        )

    def test_edge_keyed_strategies_keep_edges_local(self, stream):
        """hash-edge routes all tokens of one edge to one site."""
        batch = stream.as_batch()
        assignment = shard_assignment(batch, 3, "hash-edge", seed=3)
        for rank in np.unique(batch.ranks):
            sites = set(assignment[batch.ranks == rank].tolist())
            assert len(sites) == 1


class TestShardedSpanner:
    def test_spanner_identical_for_all_shard_counts(self, stream):
        direct = BaswanaSenSpanner(N, k=2, source=HashSource(77)).build(stream)
        for sites in SITE_COUNTS:
            shards = partition_stream(stream, sites, "round-robin")
            rep = BaswanaSenSpanner(
                N, k=2, source=HashSource(77)
            ).build_sharded(shards)
            assert sorted(rep.spanner.edges()) == sorted(direct.spanner.edges())
            if sites > 1:
                assert rep.shipped_bytes > 0
            else:
                assert rep.shipped_bytes == 0


class TestRandomizedPartitions:
    def test_merge_invariance_over_random_assignments(self):
        """Random streams, random shard maps — 20+ seeds, exact equality."""
        for seed in range(24):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(8, 16))
            edges = erdos_renyi_graph(n, 0.45, seed=seed)
            if not edges:
                continue
            st = churn_stream(
                n, edges, churn_fraction=0.7, decoy_fraction=0.5, seed=seed
            )
            sites = int(rng.integers(2, 6))
            assignment = rng.integers(0, sites, size=len(st))
            shards = partition_stream_by(st, assignment, sites)
            assert sum(len(s) for s in shards) == len(st)

            factory = functools.partial(_forest_n, n, 4000 + seed)
            direct = dump_sketch(factory().consume(st))
            runner = ShardedSketchRunner(factory, sites=sites)
            merged = dump_sketch(runner.run_shards(shards).sketch)
            assert merged == direct, f"seed {seed} broke merge-invariance"

    def test_partition_stream_by_validates(self):
        st = churn_stream(8, erdos_renyi_graph(8, 0.5, seed=1), seed=2)
        with pytest.raises(StreamError):
            partition_stream_by(st, np.zeros(len(st) + 1, dtype=np.int64), 2)
        with pytest.raises(StreamError):
            partition_stream_by(st, np.full(len(st), 5, dtype=np.int64), 2)


class TestPartitionBasics:
    def test_unknown_strategy_rejected(self, stream):
        with pytest.raises(StreamError):
            shard_assignment(stream.as_batch(), 2, "no-such-strategy")

    def test_bad_site_count_rejected(self, stream):
        with pytest.raises(StreamError):
            shard_assignment(stream.as_batch(), 0, "round-robin")

    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    def test_partition_batch_is_exhaustive(self, strategy, stream):
        batch = stream.as_batch()
        parts = partition_batch(batch, 3, strategy, seed=1)
        assert sum(len(p) for p in parts) == len(batch)

    def test_process_mode_matches_sequential(self, stream):
        factory = functools.partial(_forest, 909)
        seq = ShardedSketchRunner(factory, sites=3, mode="sequential")
        with ShardedSketchRunner(factory, sites=3, mode="process") as par:
            assert dump_sketch(seq.run(stream).sketch) == dump_sketch(
                par.run(stream).sketch
            )


class TestProcessModeEquivalence:
    """Shared-memory process mode against the single-site reference.

    The same contract as :class:`TestShardCountInvariance`, but through
    the persistent-pool shared-memory path: every sketch kind, every
    partition strategy, one warm runner per kind (``run(st,
    strategy=...)`` re-targets a live pool, so the matrix also proves
    strategy changes never require a respawn).
    """

    @pytest.mark.parametrize(
        "name,maker,weighted", SKETCH_CASES, ids=[c[0] for c in SKETCH_CASES]
    )
    def test_shm_merged_equals_single_site(
        self, name, maker, weighted, stream, weighted_stream
    ):
        st = weighted_stream if weighted else stream
        case_index = [c[0] for c in SKETCH_CASES].index(name)
        factory = functools.partial(maker, 2000 + case_index)
        reference = dump_sketch(factory().consume(st))
        with ShardedSketchRunner(
            factory, sites=3, seed=3, mode="process"
        ) as runner:
            for strategy in PARTITION_STRATEGIES:
                report = runner.run(st, strategy=strategy)
                assert dump_sketch(report.sketch) == reference, (
                    f"{name}: process-mode coordinator differs from "
                    f"single-site at K=3, strategy={strategy}"
                )
                assert report.mode == "process"
                assert sum(s.tokens for s in report.sites) == len(st)
