"""Every merge-compatibility failure is a single, catchable type.

The satellite contract: no matter which sketch class or which mismatch
(shape, parameter, or seed), an incompatible ``merge`` raises
:class:`~repro.errors.SketchCompatibilityError` — which also subclasses
``ValueError``, so pre-existing callers keep working.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BipartitenessSketch,
    CutEdgesSketch,
    EdgeConnectivitySketch,
    MinCutSketch,
    MSTWeightSketch,
    SimpleSparsification,
    Sparsification,
    SpanningForestSketch,
    SubgraphSketch,
    WeightedSparsification,
)
from repro.errors import ReproError, SketchCompatibilityError
from repro.hashing import HashSource
from repro.sketch import (
    L0Sampler,
    L0SamplerBank,
    OneSparseCell,
    SparseRecovery,
    SparseRecoveryBank,
)

SRC = HashSource(0xA11CE)


#: (name, a-builder, incompatible-b-builder) — one mismatch per class.
MISMATCH_CASES = [
    ("one_sparse_cell",
     lambda: OneSparseCell(50, SRC.derive(1)),
     lambda: OneSparseCell(50, SRC.derive(2))),
    ("l0_sampler",
     lambda: L0Sampler(100, SRC.derive(3)),
     lambda: L0Sampler(200, SRC.derive(3))),
    ("l0_bank_shape",
     lambda: L0SamplerBank(2, 3, 100, SRC.derive(4)),
     lambda: L0SamplerBank(2, 4, 100, SRC.derive(4))),
    ("l0_bank_seed",
     lambda: L0SamplerBank(2, 3, 100, SRC.derive(5)),
     lambda: L0SamplerBank(2, 3, 100, SRC.derive(6))),
    ("sparse_recovery",
     lambda: SparseRecovery(100, k=4, source=SRC.derive(7)),
     lambda: SparseRecovery(100, k=5, source=SRC.derive(7))),
    ("recovery_bank_shape",
     lambda: SparseRecoveryBank(2, 3, 100, k=4, source=SRC.derive(8)),
     lambda: SparseRecoveryBank(3, 3, 100, k=4, source=SRC.derive(8))),
    ("recovery_bank_seed",
     lambda: SparseRecoveryBank(2, 3, 100, k=4, source=SRC.derive(9)),
     lambda: SparseRecoveryBank(2, 3, 100, k=4, source=SRC.derive(10))),
    ("spanning_forest",
     lambda: SpanningForestSketch(10, SRC.derive(11)),
     lambda: SpanningForestSketch(10, SRC.derive(11), rounds=3)),
    ("edge_connectivity",
     lambda: EdgeConnectivitySketch(10, 2, SRC.derive(12)),
     lambda: EdgeConnectivitySketch(10, 3, SRC.derive(12))),
    ("mincut",
     lambda: MinCutSketch(10, source=SRC.derive(13), c_k=1.0),
     lambda: MinCutSketch(10, source=SRC.derive(13), c_k=3.0)),
    ("simple_sparsification",
     lambda: SimpleSparsification(10, source=SRC.derive(14), c_k=0.2),
     lambda: SimpleSparsification(12, source=SRC.derive(14), c_k=0.2)),
    ("sparsification",
     lambda: Sparsification(10, source=SRC.derive(15), levels=4),
     lambda: Sparsification(10, source=SRC.derive(15), levels=5)),
    ("weighted_sparsification",
     lambda: WeightedSparsification(10, 4, source=SRC.derive(16)),
     lambda: WeightedSparsification(10, 8, source=SRC.derive(16))),
    ("subgraph_count",
     lambda: SubgraphSketch(10, samplers=4, source=SRC.derive(17)),
     lambda: SubgraphSketch(10, samplers=5, source=SRC.derive(17))),
    ("cut_edges",
     lambda: CutEdgesSketch(10, k=4, source=SRC.derive(18)),
     lambda: CutEdgesSketch(10, k=5, source=SRC.derive(18))),
    ("bipartiteness",
     lambda: BipartitenessSketch(10, SRC.derive(19)),
     lambda: BipartitenessSketch(11, SRC.derive(19))),
    ("mst_weight",
     lambda: MSTWeightSketch(10, max_weight=4, source=SRC.derive(20)),
     lambda: MSTWeightSketch(10, max_weight=6, source=SRC.derive(20))),
]


class TestSketchCompatibilityError:
    def test_is_value_error_and_repro_error(self):
        assert issubclass(SketchCompatibilityError, ValueError)
        assert issubclass(SketchCompatibilityError, ReproError)

    @pytest.mark.parametrize(
        "name,build_a,build_b", MISMATCH_CASES,
        ids=[c[0] for c in MISMATCH_CASES],
    )
    def test_incompatible_merge_raises_single_type(
        self, name, build_a, build_b
    ):
        a, b = build_a(), build_b()
        with pytest.raises(SketchCompatibilityError):
            a.merge(b)
        # Legacy callers that catch ValueError still work.
        with pytest.raises(ValueError):
            a.merge(b)

    @pytest.mark.parametrize(
        "name,build_a,build_b", MISMATCH_CASES[:3],
        ids=[c[0] for c in MISMATCH_CASES[:3]],
    )
    def test_compatible_merge_still_fine(self, name, build_a, build_b):
        build_a().merge(build_a())

    def test_message_names_the_field(self):
        a = EdgeConnectivitySketch(10, 2, SRC.derive(30))
        b = EdgeConnectivitySketch(10, 3, SRC.derive(30))
        with pytest.raises(SketchCompatibilityError, match="k differs"):
            a.merge(b)

    def test_seed_mismatch_detected_in_banks(self):
        """Same shape, different hashes: refused before corrupting cells."""
        a = L0SamplerBank(1, 1, 64, HashSource(1))
        b = L0SamplerBank(1, 1, 64, HashSource(2))
        a.update(np.array([0]), np.array([0]), np.array([5]), np.array([1]))
        b.update(np.array([0]), np.array([0]), np.array([5]), np.array([1]))
        with pytest.raises(SketchCompatibilityError, match="seed"):
            a.merge(b)


#: Mismatch cases whose classes implement subtract() (the arena-backed
#: banks and every registry sketch class; the scalar reference sketches
#: OneSparseCell / L0Sampler / SparseRecovery deliberately do not).
SUBTRACTABLE_CASES = [
    c for c in MISMATCH_CASES
    if c[0] not in ("one_sparse_cell", "l0_sampler", "sparse_recovery")
]


class TestOperationNaming:
    """The compatibility message names the operation that was refused.

    A failure surfaced from a temporal-window subtraction or a codec
    ``like=`` reconciliation must not misleadingly claim that a *merge*
    was attempted (the ``errors.incompatible(op=...)`` contract).
    """

    @pytest.mark.parametrize(
        "name,build_a,build_b", MISMATCH_CASES,
        ids=[c[0] for c in MISMATCH_CASES],
    )
    def test_merge_message_names_merge(self, name, build_a, build_b):
        with pytest.raises(SketchCompatibilityError, match="merge"):
            build_a().merge(build_b())

    @pytest.mark.parametrize(
        "name,build_a,build_b", SUBTRACTABLE_CASES,
        ids=[c[0] for c in SUBTRACTABLE_CASES],
    )
    def test_subtract_message_names_subtract(self, name, build_a, build_b):
        with pytest.raises(SketchCompatibilityError) as err:
            build_a().subtract(build_b())
        assert "subtract" in str(err.value)
        assert "merge" not in str(err.value)

    def test_codec_load_message_names_load(self):
        from repro.sketch import dump_sketch, load_sketch

        blob = dump_sketch(SpanningForestSketch(10, SRC.derive(40)))
        reference = SpanningForestSketch(12, SRC.derive(40))
        with pytest.raises(SketchCompatibilityError) as err:
            load_sketch(blob, like=reference)
        assert "load" in str(err.value)
        assert "cannot merge" not in str(err.value)

    def test_combine_bytes_messages_name_their_operation(self):
        from repro.sketch import (
            dump_sketch,
            merge_sketch_bytes,
            subtract_sketch_bytes,
        )

        blob = dump_sketch(SpanningForestSketch(10, SRC.derive(41)))
        reference = SpanningForestSketch(12, SRC.derive(41))
        with pytest.raises(SketchCompatibilityError, match="cannot merge"):
            merge_sketch_bytes(reference, blob)
        with pytest.raises(SketchCompatibilityError, match="cannot subtract"):
            subtract_sketch_bytes(reference, blob)
