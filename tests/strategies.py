"""Shared hypothesis strategies for the repro test suite.

The temporal equivalence harness needs *legal* dynamic graph streams —
prefix-valid insert/delete sequences (no deletion of an absent edge,
matching ``DynamicGraphStream.validate``) — together with epoch grids
drawn independently of the stream content.  Strategies here are plain
data builders: they return token lists / boundary lists, and tests
construct the streams, so a failing example shrinks to a readable
sequence of ``(u, v, delta)`` triples.
"""

from __future__ import annotations

from hypothesis import strategies as st

__all__ = ["edge_token_lists", "epoch_grids", "streams_with_epochs"]


@st.composite
def edge_token_lists(
    draw,
    n: int = 8,
    min_tokens: int = 0,
    max_tokens: int = 40,
    max_copies: int = 2,
):
    """A prefix-valid list of ``(u, v, delta)`` tokens over ``[0, n)``.

    Deletions are drawn only from edges currently present (with
    multiplicity bounded by what is present), so every prefix of the
    returned list keeps all aggregate multiplicities non-negative.
    """
    size = draw(st.integers(min_tokens, max_tokens))
    tokens: list[tuple[int, int, int]] = []
    present: dict[tuple[int, int], int] = {}
    for _ in range(size):
        can_delete = bool(present)
        delete = can_delete and draw(st.booleans())
        if delete:
            edge = draw(st.sampled_from(sorted(present)))
            copies = draw(st.integers(1, min(present[edge], max_copies)))
            present[edge] -= copies
            if present[edge] == 0:
                del present[edge]
            tokens.append((edge[0], edge[1], -copies))
        else:
            u = draw(st.integers(0, n - 2))
            v = draw(st.integers(u + 1, n - 1))
            copies = draw(st.integers(1, max_copies))
            present[(u, v)] = present.get((u, v), 0) + copies
            tokens.append((u, v, copies))
    return tokens


@st.composite
def epoch_grids(draw, tokens: int, max_epochs: int = 4):
    """Epoch-end boundaries for a ``tokens``-long stream.

    Non-decreasing positions ending exactly at ``tokens`` — empty
    epochs included on purpose (a service may seal a checkpoint during
    a quiet period, and the algebra must not care).
    """
    epochs = draw(st.integers(1, max_epochs))
    interior = draw(
        st.lists(st.integers(0, tokens), min_size=epochs - 1,
                 max_size=epochs - 1)
    )
    return sorted(interior) + [tokens]


@st.composite
def streams_with_epochs(
    draw,
    n: int = 8,
    max_tokens: int = 40,
    max_epochs: int = 4,
):
    """A ``(token list, epoch boundaries)`` pair ready for a manager."""
    tokens = draw(edge_token_lists(n=n, max_tokens=max_tokens))
    boundaries = draw(epoch_grids(len(tokens), max_epochs=max_epochs))
    return tokens, boundaries
