"""Wire schema v1: round-trip-exact dict encoding of queries/results.

Two contracts are pinned here.  First, **round-trip exactness**: for
every query kind and every capability's result,
``from_dict(to_dict(x)) == x`` and re-encoding yields byte-identical
canonical JSON.  Second, **wire stability**: the envelope and per-kind
field names are snapshotted — renaming any of them is a wire break that
must fail a test before it reaches a client.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro
from repro.api import (
    GraphSketchEngine,
    Query,
    QueryResult,
    QueryTelemetry,
    SketchSpec,
    WIRE_VERSION,
    query_from_dict,
    query_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.api.wire import blob_from_wire, blob_to_wire
from repro.core import named_patterns
from repro.errors import WireFormatError
from repro.streams import churn_stream, erdos_renyi_graph

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")

N = 8

SPECS = {
    "spanning_forest": SketchSpec.of("spanning_forest", N, seed=31),
    "edge_connectivity": SketchSpec.of("edge_connectivity", N, seed=32, k=2),
    "mincut": SketchSpec.of("mincut", N, seed=33, epsilon=0.5, c_k=0.4),
    "simple_sparsification": SketchSpec.of(
        "simple_sparsification", N, seed=34, epsilon=0.5, c_k=0.15),
    "sparsification": SketchSpec.of(
        "sparsification", N, seed=35, epsilon=0.5, c_k=0.3, c_rough=0.05),
    "weighted_sparsification": SketchSpec.of(
        "weighted_sparsification", N, seed=36, max_weight=2, epsilon=0.5,
        c_k=0.15),
    "subgraph_count": SketchSpec.of(
        "subgraph_count", N, seed=37, order=3, samplers=6),
    "cut_edges": SketchSpec.of("cut_edges", N, seed=38, k=16),
    "bipartiteness": SketchSpec.of("bipartiteness", N, seed=39),
    "mst_weight": SketchSpec.of("mst_weight", N, seed=40, max_weight=2),
    "baswana_sen_spanner": SketchSpec.of(
        "baswana_sen_spanner", N, seed=41, k=2),
    "recurse_connect_spanner": SketchSpec.of(
        "recurse_connect_spanner", N, seed=42, k=2),
}

CANONICAL_QUERIES = {
    "connectivity": repro.ConnectivityQuery(u=0, v=N - 1),
    "k-edge-connectivity": repro.KEdgeConnectivityQuery(),
    "mincut": repro.MinCutQuery(),
    "cut-query": repro.CutQuery(side=frozenset({0, 1})),
    "sparsifier": repro.SparsifierQuery(),
    "spanner-distance": repro.SpannerDistanceQuery(source=0, target=1),
    "subgraph-count": repro.SubgraphCountQuery("triangle"),
    "properties": repro.PropertiesQuery(),
}

#: Every (kind, capability) pair the registry dispatches.
KIND_CAPABILITY = [
    (kind, cap)
    for kind in sorted(SPECS)
    for cap in sorted(repro.capability_entry(kind).queries)
]


def canonical_json(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def roundtrip_query(query: Query) -> None:
    payload = query.to_dict()
    decoded = query_from_dict(payload)
    assert decoded == query
    assert canonical_json(decoded.to_dict()) == canonical_json(payload)


# -- hypothesis strategies -----------------------------------------------------

windows = st.one_of(
    st.none(),
    st.tuples(st.integers(0, 50), st.integers(0, 50)).map(
        lambda p: (min(p), max(p) + 1)
    ),
)
nodes = st.one_of(st.none(), st.integers(0, N - 1))


class TestQueryRoundTrip:
    """Property-tested per kind: from_dict(to_dict(q)) == q exactly."""

    @given(u=nodes, v=nodes, window=windows)
    def test_connectivity(self, u, v, window):
        roundtrip_query(repro.ConnectivityQuery(u=u, v=v, window=window))

    @given(window=windows)
    def test_k_edge_connectivity(self, window):
        roundtrip_query(repro.KEdgeConnectivityQuery(window=window))

    @given(window=windows)
    def test_mincut(self, window):
        roundtrip_query(repro.MinCutQuery(window=window))

    @given(
        side=st.frozensets(st.integers(0, N - 1), min_size=1),
        window=windows,
    )
    def test_cut_query(self, side, window):
        roundtrip_query(repro.CutQuery(side=side, window=window))

    @given(window=windows)
    def test_sparsifier(self, window):
        roundtrip_query(repro.SparsifierQuery(window=window))

    @given(source=nodes, target=nodes, window=windows)
    def test_spanner_distance(self, source, target, window):
        roundtrip_query(
            repro.SpannerDistanceQuery(
                source=source, target=target, window=window
            )
        )

    @given(
        pattern=st.sampled_from(sorted(named_patterns())),
        window=windows,
    )
    def test_subgraph_count(self, pattern, window):
        roundtrip_query(repro.SubgraphCountQuery(pattern, window=window))

    @given(window=windows)
    def test_properties(self, window):
        roundtrip_query(repro.PropertiesQuery(window=window))

    def test_pattern_object_encodes_as_its_name(self):
        query = repro.SubgraphCountQuery(named_patterns()["clique4"])
        payload = query.to_dict()
        assert payload["args"]["pattern"] == "clique4"
        assert query_from_dict(payload).pattern == "clique4"

    def test_unnamed_pattern_is_refused(self):
        from repro.core.patterns import Pattern

        bespoke = Pattern("bespoke", 3, frozenset({(0, 1)}))
        with pytest.raises(WireFormatError):
            repro.SubgraphCountQuery(bespoke).to_dict()


class TestResultRoundTrip:
    """Engine answers for every (kind, capability) survive the wire."""

    @pytest.fixture(scope="class")
    def engines(self):
        edges = erdos_renyi_graph(N, 0.5, seed=5)
        stream = churn_stream(N, edges, seed=6)
        built = {
            kind: GraphSketchEngine.for_spec(spec).ingest(stream)
            for kind, spec in SPECS.items()
        }
        yield built
        for engine in built.values():
            engine.close()

    @pytest.mark.parametrize("kind,capability", KIND_CAPABILITY)
    def test_roundtrip_exact(self, kind, capability, engines):
        result = engines[kind].query(CANONICAL_QUERIES[capability])
        payload = result.to_dict()
        decoded = result_from_dict(payload)
        assert decoded == result
        assert canonical_json(decoded.to_dict()) == canonical_json(payload)

    @pytest.mark.parametrize("kind,capability", KIND_CAPABILITY)
    def test_payload_is_strict_json(self, kind, capability, engines):
        # allow_nan=False: the payload must be valid strict JSON even
        # when the result holds non-finite floats (encoded as strings).
        result = engines[kind].query(CANONICAL_QUERIES[capability])
        json.dumps(result.to_dict(), allow_nan=False)

    def test_disconnected_distance_is_infinity_string(self, engines):
        # Querying a pair in a sketch of an (almost surely) connected
        # graph rarely yields inf, so pin the encoding directly.
        result = repro.SpannerDistanceResult(
            kind="baswana_sen_spanner",
            capability="spanner-distance",
            edges=0,
            batches=1,
            stretch_bound=3.0,
            shipped_bytes=0,
            distance=math.inf,
        )
        payload = result.to_dict()
        assert payload["body"]["distance"] == "Infinity"
        json.dumps(payload, allow_nan=False)
        assert result_from_dict(payload).distance == math.inf


class TestWireStability:
    """The envelope and field names are frozen — this is the contract."""

    def test_query_envelope(self):
        payload = repro.ConnectivityQuery(u=0, v=7, window=(0, 2)).to_dict()
        assert payload == {
            "v": 1,
            "query": "connectivity",
            "window": [0, 2],
            "args": {"u": 0, "v": 7},
        }

    def test_result_envelope_keys(self):
        result = repro.MinCutQueryResult(
            kind="mincut", capability="mincut", value=3.0, stop_level=2
        )
        payload = result.to_dict()
        assert set(payload) == {
            "v", "result", "kind", "capability", "window", "telemetry", "body",
        }
        assert payload["v"] == WIRE_VERSION
        assert payload["telemetry"] == {"seconds": 0.0, "payload_bytes": 0}

    @pytest.mark.parametrize("capability,expected_args", [
        ("connectivity", {"u", "v"}),
        ("k-edge-connectivity", set()),
        ("mincut", set()),
        ("cut-query", {"side"}),
        ("sparsifier", set()),
        ("spanner-distance", {"source", "target"}),
        ("subgraph-count", {"pattern"}),
        ("properties", set()),
    ])
    def test_query_args_fields(self, capability, expected_args):
        payload = CANONICAL_QUERIES[capability].to_dict()
        assert payload["query"] == capability
        assert set(payload["args"]) == expected_args

    BODY_FIELDS = {
        "connectivity": {
            "connected", "components", "forest_edges", "same_component",
        },
        "k-edge-connectivity": {"k", "witness_edges", "is_k_connected"},
        "mincut": {"value", "stop_level"},
        "cut-query": {"crossing_edges", "cut_value"},
        "sparsifier": {"edges", "epsilon", "sparsifier"},
        "spanner-distance": {
            "edges", "batches", "stretch_bound", "shipped_bytes",
            "distance", "spanner",
        },
        "subgraph-count": {
            "pattern", "gamma", "samples_used", "samples_failed",
        },
        "properties": {"values"},
    }

    def test_body_field_snapshot_covers_every_capability(self):
        assert set(self.BODY_FIELDS) == set(repro.CAPABILITIES)

    @pytest.mark.parametrize("kind,capability", KIND_CAPABILITY)
    def test_result_body_fields(self, kind, capability):
        spec = SPECS[kind]
        edges = erdos_renyi_graph(N, 0.5, seed=5)
        stream = churn_stream(N, edges, seed=6)
        with GraphSketchEngine.for_spec(spec) as engine:
            engine.ingest(stream)
            payload = engine.query(CANONICAL_QUERIES[capability]).to_dict()
        assert payload["result"] == capability
        assert set(payload["body"]) == self.BODY_FIELDS[capability]


class TestMalformedPayloads:
    """Every malformed payload fails as WIRE_INVALID, never KeyError."""

    def test_non_mapping(self):
        with pytest.raises(WireFormatError):
            query_from_dict([1, 2, 3])

    def test_missing_version(self):
        with pytest.raises(WireFormatError, match="version"):
            query_from_dict({"query": "mincut"})

    def test_future_version(self):
        with pytest.raises(WireFormatError, match="version"):
            query_from_dict({"v": 2, "query": "mincut"})

    def test_unknown_query_kind(self):
        with pytest.raises(WireFormatError, match="unknown query kind"):
            query_from_dict({"v": 1, "query": "page-rank"})

    def test_unknown_result_kind(self):
        with pytest.raises(WireFormatError, match="unknown result kind"):
            result_from_dict({"v": 1, "result": "page-rank"})

    def test_missing_discriminator(self):
        with pytest.raises(WireFormatError, match="query"):
            query_from_dict({"v": 1})

    def test_bool_is_not_an_int(self):
        with pytest.raises(WireFormatError):
            query_from_dict({
                "v": 1, "query": "connectivity", "window": None,
                "args": {"u": True, "v": 1},
            })

    def test_bad_window_shape(self):
        with pytest.raises(WireFormatError, match="window"):
            query_from_dict({
                "v": 1, "query": "mincut", "window": [1], "args": {},
            })

    def test_empty_cut_side(self):
        with pytest.raises(WireFormatError, match="side"):
            query_from_dict({
                "v": 1, "query": "cut-query", "window": None,
                "args": {"side": []},
            })

    def test_missing_result_body(self):
        with pytest.raises(WireFormatError, match="body"):
            result_from_dict({
                "v": 1, "result": "mincut", "kind": "mincut",
                "capability": "mincut", "window": None,
                "telemetry": {"seconds": 0.0, "payload_bytes": 0},
            })

    def test_missing_body_field(self):
        with pytest.raises(WireFormatError, match="stop_level"):
            result_from_dict({
                "v": 1, "result": "mincut", "kind": "mincut",
                "capability": "mincut", "window": None,
                "telemetry": {"seconds": 0.0, "payload_bytes": 0},
                "body": {"value": 3.0},
            })

    def test_errors_carry_the_wire_code(self):
        with pytest.raises(WireFormatError) as excinfo:
            query_from_dict({})
        assert excinfo.value.code == "WIRE_INVALID"

    def test_subclass_from_dict_rejects_wrong_kind(self):
        payload = repro.MinCutQuery().to_dict()
        with pytest.raises(WireFormatError, match="MinCutQuery"):
            repro.ConnectivityQuery.from_dict(payload)
        assert repro.MinCutQuery.from_dict(payload) == repro.MinCutQuery()

    def test_base_class_from_dict_accepts_any_kind(self):
        payload = repro.MinCutQuery().to_dict()
        assert Query.from_dict(payload) == repro.MinCutQuery()

    def test_result_subclass_mismatch(self):
        result = repro.MinCutQueryResult(
            kind="mincut", capability="mincut", value=1.0, stop_level=0
        )
        with pytest.raises(WireFormatError, match="MinCutQueryResult"):
            repro.ConnectivityResult.from_dict(result.to_dict())
        assert QueryResult.from_dict(result.to_dict()) == result


class TestBlobTransport:
    def test_roundtrip(self):
        blob = bytes(range(256))
        assert blob_from_wire(blob_to_wire(blob)) == blob

    def test_snapshot_blob_roundtrip(self):
        edges = erdos_renyi_graph(N, 0.5, seed=5)
        stream = churn_stream(N, edges, seed=6)
        with GraphSketchEngine.for_spec(SPECS["spanning_forest"]) as engine:
            engine.ingest(stream)
            blob = engine.snapshot()
        assert blob_from_wire(blob_to_wire(blob)) == blob

    def test_invalid_base64(self):
        with pytest.raises(WireFormatError, match="base64"):
            blob_from_wire("not/valid base64!!")

    def test_non_string(self):
        with pytest.raises(WireFormatError):
            blob_from_wire(b"bytes already")


class TestTelemetryRoundTrip:
    def test_telemetry_survives(self):
        result = repro.MinCutQueryResult(
            kind="mincut",
            capability="mincut",
            value=2.0,
            stop_level=1,
            telemetry=QueryTelemetry(seconds=0.125, payload_bytes=4096),
        )
        decoded = result_from_dict(result.to_dict())
        assert decoded.telemetry == result.telemetry
