"""Process-mode lifecycle: segments, pool reuse, and crash cleanup.

The shared-memory rebuild of ``mode="process"`` adds real resources to
the runner — a persistent worker pool and named shared segments — and
with them real failure surfaces.  This suite pins the lifecycle
contract: one pool per runner reused across ``run()``/``run_epochs()``,
no orphaned segment after worker exceptions, ``close()``, context
exit, or a ``KeyboardInterrupt`` mid-fan-out, and loud validation for
broken configurations (``processes=0``, unknown start methods, closed
runners).  Byte-identity of the results themselves is pinned by
``tests/test_distributed_equivalence.py``.
"""

from __future__ import annotations

import functools
import os
from multiprocessing import shared_memory

import pytest

from repro.core import SpanningForestSketch
from repro.distributed import ShardedSketchRunner, forest_sketch
from repro.distributed import coordinator as coordinator_mod
from repro.distributed import shm as shm_mod
from repro.errors import StreamError
from repro.hashing import HashSource
from repro.sketch import dump_sketch
from repro.streams import churn_stream, erdos_renyi_graph

N = 12


@pytest.fixture(scope="module")
def stream():
    st = churn_stream(
        N, erdos_renyi_graph(N, 0.4, seed=5), churn_fraction=0.6, seed=6
    )
    assert any(u.delta < 0 for u in st)
    return st


class _ExplodingForestSketch(SpanningForestSketch):
    """A site sketch that dies mid-fold (worker-crash injection)."""

    def consume_batch(self, batch):
        raise RuntimeError("injected site failure")


def _exploding_forest(n: int, seed: int) -> _ExplodingForestSketch:
    return _ExplodingForestSketch(n, HashSource(seed))


def _assert_unlinked(names: list[str]) -> None:
    """Every name must be gone from the OS namespace, not just untracked."""
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestSegmentLifecycle:
    def test_pool_and_segments_reused_across_runs(self, stream):
        factory = functools.partial(forest_sketch, N, 31)
        reference = dump_sketch(
            ShardedSketchRunner(factory, sites=3).run(stream).sketch
        )
        with ShardedSketchRunner(factory, sites=3, mode="process") as runner:
            first = runner.run(stream)
            pool = runner._pool
            assert pool is not None
            segments = shm_mod.active_segment_names()
            assert segments, "process run should have created segments"

            second = runner.run(stream)
            assert runner._pool is pool, "pool must persist across runs"
            assert shm_mod.active_segment_names() == segments
            assert dump_sketch(first.sketch) == reference
            assert dump_sketch(second.sketch) == reference

            # run() -> run_epochs() on the same runner: same pool, same
            # segments, and the timeline matches the sequential one.
            epoch_report = runner.run_epochs(stream, epochs=4)
            assert runner._pool is pool
            assert shm_mod.active_segment_names() == segments
        sequential = ShardedSketchRunner(factory, sites=3).run_epochs(
            stream, epochs=4
        )
        assert (
            epoch_report.timeline.to_bytes() == sequential.timeline.to_bytes()
        )
        assert shm_mod.active_segment_names() == []
        _assert_unlinked(segments)

    def test_worker_exception_then_close_leaves_no_segments(self, stream):
        factory = functools.partial(_exploding_forest, N, 7)
        runner = ShardedSketchRunner(factory, sites=2, mode="process")
        with pytest.raises(RuntimeError, match="injected site failure"):
            runner.run(stream)
        leaked = shm_mod.active_segment_names()
        assert leaked, "segments exist until the registry cleans up"
        runner.close()
        assert shm_mod.active_segment_names() == []
        _assert_unlinked(leaked)

    def test_keyboard_interrupt_tears_everything_down(self, stream):
        factory = functools.partial(forest_sketch, N, 13)
        runner = ShardedSketchRunner(factory, sites=2, mode="process")
        runner.run(stream)
        segments = shm_mod.active_segment_names()
        assert segments

        class _InterruptingPool:
            terminated = False
            joined = False

            def map(self, fn, tasks):
                raise KeyboardInterrupt

            def terminate(self):
                self.terminated = True

            def join(self):
                self.joined = True

        real_pool, stub = runner._pool, _InterruptingPool()
        real_pool.terminate()
        real_pool.join()
        runner._pool = stub
        with pytest.raises(KeyboardInterrupt):
            runner.run(stream)
        assert stub.terminated and stub.joined
        assert shm_mod.active_segment_names() == []
        _assert_unlinked(segments)
        # close() tore the runner down; it must refuse further work.
        with pytest.raises(RuntimeError, match="closed"):
            runner.run(stream)

    def test_close_is_idempotent_and_sequential_noop(self, stream):
        factory = functools.partial(forest_sketch, N, 5)
        runner = ShardedSketchRunner(factory, sites=2, mode="sequential")
        runner.run(stream)
        runner.close()
        runner.close()
        assert shm_mod.active_segment_names() == []

    def test_registry_grows_by_generation(self):
        registry = shm_mod.SegmentRegistry()
        try:
            view = registry.ensure("input", 16)
            assert view.size == 16
            name_small = registry.name("input")
            view[:] = 7
            grown = registry.ensure("input", 64)
            name_big = registry.name("input")
            assert name_big != name_small, "growth must bump the name"
            assert grown.size == 64
            assert shm_mod.active_segment_names() == [name_big]
            # An adequate segment is reused, not replaced.
            again = registry.ensure("input", 32)
            assert registry.name("input") == name_big
            assert again.size == 32
        finally:
            registry.close()
        assert shm_mod.active_segment_names() == []


class TestConfigurationValidation:
    def test_zero_processes_rejected(self):
        factory = functools.partial(forest_sketch, N, 1)
        with pytest.raises(StreamError, match="processes must be >= 1"):
            ShardedSketchRunner(factory, mode="process", processes=0)
        with pytest.raises(StreamError, match="processes must be >= 1"):
            ShardedSketchRunner(factory, mode="process", processes=-2)

    def test_unknown_start_method_rejected(self):
        factory = functools.partial(forest_sketch, N, 1)
        with pytest.raises(ValueError, match="unknown start method"):
            ShardedSketchRunner(factory, mode="process", start_method="warp")

    def test_default_worker_count_capped_at_cpus(self):
        factory = functools.partial(forest_sketch, N, 1)
        runner = ShardedSketchRunner(factory, sites=64, mode="process")
        cpus = (
            len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1)
        )
        assert runner._worker_count() == min(64, cpus)
        explicit = ShardedSketchRunner(
            factory, sites=4, mode="process", processes=2
        )
        assert explicit._worker_count() == 2

    def test_non_arena_factory_rejected_before_spawn(self, stream):
        runner = ShardedSketchRunner(dict, sites=2, mode="process")
        with pytest.raises(TypeError, match="not arena-backed"):
            runner.run(stream)
        assert runner._pool is None, "validation must precede pool spawn"
        runner.close()
        assert shm_mod.active_segment_names() == []

    def test_cli_rejects_zero_processes(self, capsys):
        from repro.cli import main

        code = main([
            "distribute", "--mode", "process", "--processes", "0",
        ])
        assert code == 2
        assert "--processes must be >= 1" in capsys.readouterr().err


class TestWorkerPathInProcess:
    """Drive the worker functions in this process over real segments.

    Covers the exact code a pool child runs — warm-state init, slot
    adoption, sparse/dense handoff — without spawn cost, and proves the
    fold is byte-identical to sequential merging.
    """

    def test_inline_worker_matches_sequential(self, stream):
        factory = functools.partial(forest_sketch, N, 77)
        reference = dump_sketch(
            ShardedSketchRunner(factory, sites=3).run(stream).sketch
        )

        class _InlinePool:
            def map(self, fn, tasks):
                return [fn(t) for t in tasks]

            def terminate(self):
                return None

            def join(self):
                return None

        runner = ShardedSketchRunner(factory, sites=3, mode="process")
        coordinator_mod._shm_worker_init(factory)
        runner._pool = _InlinePool()
        try:
            report = runner.run(stream)
            assert dump_sketch(report.sketch) == reference
            assert report.mode == "process"
            assert sum(s.tokens for s in report.sites) == len(stream)
            assert all(s.payload_bytes >= 0 for s in report.sites)
            epoch_report = runner.run_epochs(stream, epochs=3)
            sequential = ShardedSketchRunner(factory, sites=3).run_epochs(
                stream, epochs=3
            )
            assert (
                epoch_report.timeline.to_bytes()
                == sequential.timeline.to_bytes()
            )
        finally:
            runner.close()
            coordinator_mod._reset_worker_state()
        assert shm_mod.active_segment_names() == []
