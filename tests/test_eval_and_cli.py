"""Tests for the eval harness (tables, metrics, workloads, runners) and CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.eval import (
    EXPERIMENTS,
    Table,
    WORKLOADS,
    make_workload,
    relative_error,
    run_experiment,
    summarize,
)


class TestTable:
    def test_render_contains_rows(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_row("x", True)
        out = t.render()
        assert "### demo" in out
        assert "| a" in out
        assert "2.5" in out
        assert "yes" in out

    def test_row_width_mismatch(self):
        t = Table("demo", ["a"])
        with pytest.raises(ValueError):
            t.add_row(1, 2)

    def test_notes_rendered(self):
        t = Table("demo", ["a"])
        t.add_row(1)
        t.add_note("caveat")
        assert "> caveat" in t.render()

    def test_float_formatting(self):
        t = Table("demo", ["v"])
        t.add_row(0.000001)
        t.add_row(123456.0)
        t.add_row(0.25)
        out = t.render()
        assert "1e-06" in out
        assert "0.25" in out


class TestMetrics:
    def test_relative_error(self):
        assert relative_error(11, 10) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert relative_error(1, 0) == float("inf")

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.median == 2.0
        assert s.maximum == 3.0
        assert s.runs == 3

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestWorkloads:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workload_consistency(self, name):
        """Every workload's stream must end exactly at its graph."""
        wl = make_workload(name, seed=1)
        wl.stream.validate()
        from repro.baselines import graph_from_stream

        assert graph_from_stream(wl.stream) == wl.graph

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            make_workload("nope")

    def test_seeds_change_workload(self):
        a = make_workload("er-small", seed=1)
        b = make_workload("er-small", seed=2)
        assert sorted(a.graph.edges()) != sorted(b.graph.edges())


class TestExperimentRunners:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {f"e{i}" for i in range(1, 13)}

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("e99")

    @pytest.mark.parametrize("exp_id", ["e8", "e9"])
    def test_fast_experiments_produce_rows(self, exp_id):
        table = run_experiment(exp_id, quick=True, seed=0)
        assert table.rows
        assert table.columns


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out and "workloads" in out

    def test_run_e9(self, capsys):
        assert main(["run", "e9"]) == 0
        out = capsys.readouterr().out
        assert "E9" in out and "completed" in out

    def test_run_unknown_experiment_exits_cleanly(self, capsys):
        """``run e99`` must fail with a clear message, not a KeyError."""
        assert main(["run", "e99"]) == 2
        captured = capsys.readouterr()
        assert "unknown experiment 'e99'" in captured.err
        for exp_id in EXPERIMENTS:
            assert exp_id in captured.err
        assert "all" in captured.err

    def test_run_accepts_uppercase_id(self, capsys):
        assert main(["run", "E9"]) == 0
        assert "E9" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_run_e11_reports_bytes(self, capsys):
        assert main(["run", "e11"]) == 0
        out = capsys.readouterr().out
        assert "E11" in out and "sketch B/site" in out
        assert "yes" in out and "| no " not in out  # merged==direct everywhere

    def test_distribute_rejects_bad_strategy(self, capsys):
        assert main(["distribute", "--strategy", "bogus"]) == 2
        assert "unknown strategy" in capsys.readouterr().err

    def test_distribute_rejects_bad_sites(self, capsys):
        assert main(["distribute", "--sites", "0"]) == 2
        assert "--sites" in capsys.readouterr().err


class TestCliDemo:
    def test_demo_runs_end_to_end(self, capsys):
        assert main(["demo", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "min cut" in out and "spanner" in out


class TestCliTemporal:
    def test_epochs_prints_checkpoints(self, capsys):
        assert main(["epochs", "--epochs", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 epochs" in out
        assert "checkpoint-bytes" in out
        assert "manifest:" in out

    def test_epochs_sharded_matches_format(self, capsys):
        assert main(["epochs", "--epochs", "2", "--sites", "3"]) == 0
        out = capsys.readouterr().out
        assert "sharded across 3 sites" in out

    def test_epochs_rejects_bad_args(self, capsys):
        assert main(["epochs", "--epochs", "0"]) == 2
        assert "--epochs" in capsys.readouterr().err
        assert main(["epochs", "--sites", "0"]) == 2
        assert "--sites" in capsys.readouterr().err

    def test_epochs_explicit_boundaries(self, capsys):
        # Demo stream is 487 tokens; an increasing grid ending there works.
        assert main(["epochs", "--boundaries", "100,300,487"]) == 0
        assert "3 explicit epochs" in capsys.readouterr().out
        assert main([
            "epochs", "--boundaries", "100,300,487", "--sites", "2",
        ]) == 0
        assert "sharded across 2 sites" in capsys.readouterr().out

    def test_epochs_rejects_bad_boundary_grids(self, capsys):
        """A bad grid exits 2 with a clear message, never a traceback."""
        assert main(["epochs", "--boundaries", "300,100,487"]) == 2
        assert "non-decreasing" in capsys.readouterr().err
        assert main(["epochs", "--boundaries", "100,300"]) == 2
        assert "final boundary" in capsys.readouterr().err
        assert main(["epochs", "--boundaries", "100,abc"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err
        assert main(["epochs", "--boundaries", ""]) == 2
        assert "at least one" in capsys.readouterr().err

    def test_window_query_roundtrip_through_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "forest.manifest"
        assert main(["epochs", "--epochs", "4", "--out", str(manifest)]) == 0
        assert manifest.exists()
        capsys.readouterr()
        assert main([
            "window-query", "--manifest", str(manifest),
            "--from", "1", "--to", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "window [1, 3)" in out
        assert "2 loads + subtraction" in out
        assert "components" in out

    def test_window_query_demo_timeline(self, capsys):
        assert main(["window-query", "--epochs", "3", "--from", "0"]) == 0
        out = capsys.readouterr().out
        assert "window [0, 3)" in out and "1 load" in out

    def test_window_query_rejects_bad_window(self, capsys):
        assert main(["window-query", "--epochs", "3", "--from", "5"]) == 2
        assert "not a valid epoch range" in capsys.readouterr().err

    def test_window_query_rejects_bad_epoch_count(self, capsys):
        assert main(["window-query", "--epochs", "0"]) == 2
        assert "--epochs" in capsys.readouterr().err

    def test_window_query_rejects_garbage_manifest(self, tmp_path, capsys):
        bad = tmp_path / "bad.manifest"
        bad.write_bytes(b"not a manifest at all")
        assert main(["window-query", "--manifest", str(bad)]) == 2
        assert "cannot load manifest" in capsys.readouterr().err

    def test_run_e12_reports_equivalence(self, capsys):
        assert main(["run", "e12"]) == 0
        out = capsys.readouterr().out
        assert "E12" in out and "sub==replay" in out
        assert "yes" in out and "| no " not in out
