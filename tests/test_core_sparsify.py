"""Tests for SIMPLE-SPARSIFICATION, SPARSIFICATION, weighted, Sparsifier."""

from __future__ import annotations

import pytest

from repro.core import (
    SimpleSparsification,
    Sparsification,
    Sparsifier,
    WeightedSparsification,
    cut_approximation_report,
    default_sparsifier_k,
    weight_class_of,
)
from repro.errors import GraphError
from repro.graphs import Graph
from repro.streams import (
    DynamicGraphStream,
    churn_stream,
    erdos_renyi_graph,
    path_graph,
    random_weighted_edges,
    stream_from_edges,
    weighted_churn_stream,
)


class TestDefaultSparsifierK:
    def test_log_squared_growth(self):
        assert default_sparsifier_k(256, 0.5, 1.0) > default_sparsifier_k(16, 0.5, 1.0)

    def test_epsilon_scaling(self):
        assert default_sparsifier_k(64, 0.25, 1.0) == pytest.approx(
            4 * default_sparsifier_k(64, 0.5, 1.0), rel=0.1
        )

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            default_sparsifier_k(10, 2.0, 1.0)


class TestSimpleSparsification:
    def test_sparse_graph_kept_exactly(self, source):
        """Graphs with connectivity < k everywhere are kept verbatim."""
        n = 14
        edges = path_graph(n)
        sk = SimpleSparsification(n, source=source.derive(1), c_k=1.0).consume(
            stream_from_edges(n, edges)
        )
        sp = sk.sparsifier()
        assert sorted(sp.graph.edges()) == sorted(edges)
        rep = cut_approximation_report(
            Graph.from_edges(n, edges), sp, exhaustive_limit=14
        )
        assert rep.max_relative_error == 0.0
        assert rep.exhaustive

    def test_all_weights_power_of_two_multiples(self, source):
        n = 20
        edges = erdos_renyi_graph(n, 0.5, seed=2)
        sk = SimpleSparsification(
            n, source=source.derive(2), c_k=0.15
        ).consume(churn_stream(n, edges, seed=3))
        sp = sk.sparsifier()
        for (u, v), level in sp.edge_levels.items():
            assert sp.graph.weight(u, v) == 2**level

    def test_sparsifier_is_subgraph(self, source):
        n = 20
        edges = erdos_renyi_graph(n, 0.5, seed=4)
        g = Graph.from_edges(n, edges)
        sk = SimpleSparsification(
            n, source=source.derive(3), c_k=0.15
        ).consume(churn_stream(n, edges, seed=5))
        for u, v in sk.sparsifier().graph.edges():
            assert g.has_edge(u, v)

    def test_quality_improves_with_k(self, source):
        n = 24
        edges = erdos_renyi_graph(n, 0.8, seed=6)
        g = Graph.from_edges(n, edges)
        st = churn_stream(n, edges, seed=7)
        errs = []
        for c_k in (0.05, 0.4):
            sk = SimpleSparsification(
                n, source=source.derive(4), c_k=c_k
            ).consume(st)
            rep = cut_approximation_report(g, sk.sparsifier(), sample_cuts=150)
            errs.append(rep.max_relative_error)
        assert errs[1] <= errs[0]

    def test_denser_graph_gets_compressed(self, source):
        n = 24
        edges = erdos_renyi_graph(n, 0.9, seed=8)
        sk = SimpleSparsification(
            n, source=source.derive(5), c_k=0.05
        ).consume(stream_from_edges(n, edges))
        sp = sk.sparsifier()
        assert sp.num_edges < len(edges)

    def test_level_histogram_consistent(self, source):
        n = 20
        edges = erdos_renyi_graph(n, 0.7, seed=9)
        sk = SimpleSparsification(
            n, source=source.derive(6), c_k=0.1
        ).consume(stream_from_edges(n, edges))
        sp = sk.sparsifier()
        assert sum(sp.level_histogram().values()) == sp.num_edges

    def test_merge_matches_direct(self, source):
        n = 16
        edges = erdos_renyi_graph(n, 0.4, seed=10)
        st = churn_stream(n, edges, seed=11)
        direct = SimpleSparsification(n, source=source.derive(7)).consume(st)
        merged = SimpleSparsification(n, source=source.derive(7))
        for part in st.partition(2, seed=12):
            merged.merge(
                SimpleSparsification(n, source=source.derive(7)).consume(part)
            )
        assert sorted(direct.sparsifier().graph.weighted_edges()) == sorted(
            merged.sparsifier().graph.weighted_edges()
        )

    def test_rejects_bad_weight_scale(self, source):
        with pytest.raises(ValueError):
            SimpleSparsification(10, weight_scale=0.5, source=source)


class TestSparsification:
    def test_quality_on_dense_graph(self, source):
        n = 24
        edges = erdos_renyi_graph(n, 0.8, seed=13)
        g = Graph.from_edges(n, edges)
        sk = Sparsification(
            n, source=source.derive(8), c_k=0.4, c_rough=0.1, c_level=4.0
        ).consume(churn_stream(n, edges, seed=14))
        sp = sk.sparsifier()
        rep = cut_approximation_report(g, sp, sample_cuts=150)
        assert rep.max_relative_error < 1.0
        assert sk.diagnostics.cuts_processed == n - 1

    def test_edges_are_subgraph_with_dyadic_weights(self, source):
        n = 20
        edges = erdos_renyi_graph(n, 0.6, seed=15)
        g = Graph.from_edges(n, edges)
        sk = Sparsification(
            n, source=source.derive(9), c_k=0.3, c_rough=0.1, c_level=4.0
        ).consume(stream_from_edges(n, edges))
        sp = sk.sparsifier()
        for (u, v), level in sp.edge_levels.items():
            assert g.has_edge(u, v)
            assert sp.graph.weight(u, v) == 2**level

    def test_empty_stream(self, source):
        sk = Sparsification(8, source=source.derive(10))
        sp = sk.sparsifier()
        assert sp.num_edges == 0

    def test_memory_below_simple_at_same_target(self, source):
        """The Fig. 3 point: fewer cells than Fig. 2 at matched accuracy."""
        n = 24
        simple = SimpleSparsification(n, source=source.derive(11), c_k=0.2)
        better = Sparsification(
            n, source=source.derive(12), c_k=0.3, c_rough=0.05
        )
        assert better.memory_cells() < simple.memory_cells()

    def test_merge(self, source):
        n = 14
        edges = erdos_renyi_graph(n, 0.5, seed=16)
        st = churn_stream(n, edges, seed=17)
        direct = Sparsification(n, source=source.derive(13)).consume(st)
        merged = Sparsification(n, source=source.derive(13))
        for part in st.partition(2, seed=18):
            merged.merge(Sparsification(n, source=source.derive(13)).consume(part))
        assert sorted(direct.sparsifier().graph.weighted_edges()) == sorted(
            merged.sparsifier().graph.weighted_edges()
        )


class TestWeightedSparsification:
    def test_weight_class_of(self):
        assert weight_class_of(1) == 0
        assert weight_class_of(2) == 1
        assert weight_class_of(3) == 1
        assert weight_class_of(4) == 2
        assert weight_class_of(-5) == 2
        with pytest.raises(ValueError):
            weight_class_of(0)

    def test_weighted_cuts_preserved_small(self, source):
        n = 16
        wedges = random_weighted_edges(n, 0.5, 10, seed=19)
        st = weighted_churn_stream(n, wedges, seed=20)
        g = Graph.from_multiplicities(n, st.multiplicities())
        sk = WeightedSparsification(
            n, max_weight=16, source=source.derive(14), c_k=0.5
        ).consume(st)
        rep = cut_approximation_report(g, sk.sparsifier(), sample_cuts=150)
        assert rep.max_relative_error <= 0.75

    def test_low_connectivity_weighted_graph_exact(self, source):
        n = 10
        wedges = [(i, i + 1, i + 1) for i in range(n - 1)]  # weighted path
        st = weighted_churn_stream(n, wedges, seed=21)
        sk = WeightedSparsification(
            n, max_weight=16, source=source.derive(15), c_k=1.0
        ).consume(st)
        sp = sk.sparsifier()
        g = Graph.from_multiplicities(n, st.multiplicities())
        rep = cut_approximation_report(g, sp, exhaustive_limit=10)
        assert rep.max_relative_error == 0.0

    def test_token_weight_guard(self, source):
        sk = WeightedSparsification(8, max_weight=4, source=source.derive(16))
        st = DynamicGraphStream(8)
        st.insert(0, 1, copies=9)
        with pytest.raises(ValueError):
            sk.consume(st)

    def test_class_count(self, source):
        sk = WeightedSparsification(8, max_weight=1, source=source.derive(17))
        assert sk.num_classes == 1
        sk = WeightedSparsification(8, max_weight=15, source=source.derive(18))
        assert sk.num_classes == 4

    def test_merge_mismatch(self, source):
        a = WeightedSparsification(8, max_weight=4, source=source.derive(19))
        b = WeightedSparsification(8, max_weight=8, source=source.derive(19))
        with pytest.raises(ValueError):
            a.merge(b)


class TestSparsifierReport:
    def test_exhaustive_for_small_graphs(self, source):
        g = Graph.from_edges(6, path_graph(6))
        rep = cut_approximation_report(g, Sparsifier(graph=g.copy(), epsilon=0.1))
        assert rep.exhaustive
        assert rep.cuts_evaluated == 2**5 - 1
        assert rep.max_relative_error == 0.0
        assert rep.satisfies(0.1)

    def test_detects_bad_sparsifier(self):
        g = Graph.from_edges(6, path_graph(6))
        bad = Graph(6)
        for u, v in path_graph(6):
            bad.add_edge(u, v, 3.0)  # cut values off by 3x
        rep = cut_approximation_report(g, bad)
        assert rep.max_relative_error == pytest.approx(2.0)
        assert not rep.satisfies(0.5)

    def test_positive_weight_on_empty_cut_rejected(self):
        g = Graph.from_edges(4, [(0, 1)])
        fake = Graph(4)
        fake.add_edge(2, 3, 1.0)  # crosses a cut empty in the reference
        with pytest.raises(GraphError):
            cut_approximation_report(g, fake)

    def test_size_mismatch_rejected(self):
        with pytest.raises(GraphError):
            cut_approximation_report(Graph(4), Graph(5))

    def test_sampled_mode_for_large_graphs(self):
        n = 30
        g = Graph.from_edges(n, erdos_renyi_graph(n, 0.3, seed=22))
        rep = cut_approximation_report(g, g.copy(), sample_cuts=50)
        assert not rep.exhaustive
        assert rep.max_relative_error == 0.0
