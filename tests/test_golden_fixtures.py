"""Golden-fixture regression tests for persisted checkpoint manifests.

``tests/fixtures/*_v1.manifest`` are epoch manifests serialised by the
original npz codec (n=10 Erdős–Rényi churn workload, 3 epochs; seeds
recorded below); ``*_v2.manifest`` are the same checkpoints migrated
through the arena codec (``load_sketch`` of each v1 payload,
re-``dump_sketch``).  Today's code must keep *loading* both and keep
giving the *same answers* — the compatibility promise for sketches
persisted by a long-running service.  A codec change that cannot read
old bytes, or reads them into different cell arrays, fails here
instead of silently corrupting stored checkpoints.

If the format ever changes intentionally, add a new fixture version
(``*_v3.manifest``) and a migration path — do not regenerate these.
"""

from __future__ import annotations

import functools
import pathlib

import pytest

from repro.distributed import forest_sketch, mincut_sketch
from repro.sketch import dump_sketch, peek_sketch_meta
from repro.temporal import EpochTimeline, TemporalQueryEngine

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

#: Workload the fixtures were sealed from (for regeneration reference).
FIXTURE_N = 10
FIXTURE_TOKENS = 62
FOREST_SEED = 424242
MINCUT_SEED = 515151


@pytest.fixture(scope="module")
def forest_timeline() -> EpochTimeline:
    data = (FIXTURES / "forest_epochs_v1.manifest").read_bytes()
    return EpochTimeline.from_bytes(data)


@pytest.fixture(scope="module")
def mincut_timeline() -> EpochTimeline:
    data = (FIXTURES / "mincut_epochs_v1.manifest").read_bytes()
    return EpochTimeline.from_bytes(data)


class TestForestFixture:
    def test_loads_with_expected_shape(self, forest_timeline):
        assert forest_timeline.n == FIXTURE_N
        assert forest_timeline.epochs == 3
        assert forest_timeline.boundaries[-1] == FIXTURE_TOKENS
        assert forest_timeline.sketch_kind == "sketch:spanning_forest"
        meta = peek_sketch_meta(forest_timeline.checkpoint(1).payload)
        assert meta["seed"] == FOREST_SEED
        assert meta["epoch"] == {
            "epoch": 1, "tokens": 20, "cumulative_tokens": 20,
        }

    def test_connectivity_answers_unchanged(self, forest_timeline):
        engine = TemporalQueryEngine(forest_timeline)
        for t in (1, 2, 3):
            answer = engine.answer(0, t)
            assert answer["components"] == 1, f"prefix [0,{t}) changed"
            assert answer["forest_edges"] == 9
        assert engine.answer(1, 3) == {
            "sketch": "SpanningForestSketch",
            "components": 7,
            "forest_edges": 3,
        }
        assert engine.was_connected(0, 1, through_epoch=3)

    def test_checkpoints_stay_subtractable_and_mergeable(self, forest_timeline):
        """Persisted checkpoints keep behaving like live sketches."""
        engine = TemporalQueryEngine(forest_timeline)
        window = engine.window_sketch(1, 3)
        window.merge(engine.window_sketch(0, 1))
        assert dump_sketch(window) == dump_sketch(engine.prefix_sketch(3))

    def test_fresh_twin_is_byte_compatible(self, forest_timeline):
        """An empty identically-seeded sketch still merges with fixtures."""
        from repro.sketch import load_sketch

        twin = functools.partial(forest_sketch, FIXTURE_N, FOREST_SEED)()
        restored = load_sketch(
            forest_timeline.checkpoint(3).payload, like=twin
        )
        twin.merge(restored)  # no SketchCompatibilityError
        assert dump_sketch(twin) == dump_sketch(restored)


class TestV2Fixtures:
    """The arena-codec fixtures answer identically to their v1 twins."""

    @pytest.mark.parametrize("name", ["forest_epochs", "mincut_epochs"])
    def test_v2_fixture_answers_match_v1(self, name):
        v1 = EpochTimeline.from_bytes(
            (FIXTURES / f"{name}_v1.manifest").read_bytes()
        )
        v2 = EpochTimeline.from_bytes(
            (FIXTURES / f"{name}_v2.manifest").read_bytes()
        )
        assert v2.n == v1.n
        assert v2.boundaries == v1.boundaries
        e1, e2 = TemporalQueryEngine(v1), TemporalQueryEngine(v2)
        for t in range(1, v1.epochs + 1):
            assert e2.answer(0, t) == e1.answer(0, t)
        # Cross-version algebra: a v1 checkpoint merges into a sketch
        # loaded from the v2 fixture (same parameters and seed).
        mixed = e2.prefix_sketch(1)
        mixed.merge(e1.prefix_sketch(1))
        assert dump_sketch(mixed) != dump_sketch(e2.prefix_sketch(1))

    @pytest.mark.parametrize("name", ["forest_epochs", "mincut_epochs"])
    def test_v1_payload_redumps_to_v2_fixture_state(self, name):
        v1 = EpochTimeline.from_bytes(
            (FIXTURES / f"{name}_v1.manifest").read_bytes()
        )
        v2 = EpochTimeline.from_bytes(
            (FIXTURES / f"{name}_v2.manifest").read_bytes()
        )
        from repro.sketch import load_sketch

        for chk_v1, chk_v2 in zip(v1.checkpoints, v2.checkpoints):
            migrated = load_sketch(chk_v1.payload)
            restored = load_sketch(chk_v2.payload, like=migrated)
            assert dump_sketch(migrated) == dump_sketch(restored)


class TestMinCutFixture:
    def test_loads_with_expected_shape(self, mincut_timeline):
        assert mincut_timeline.n == FIXTURE_N
        assert mincut_timeline.epochs == 3
        assert mincut_timeline.sketch_kind == "sketch:mincut"
        assert peek_sketch_meta(
            mincut_timeline.checkpoint(2).payload
        )["seed"] == MINCUT_SEED

    def test_mincut_answers_unchanged(self, mincut_timeline):
        engine = TemporalQueryEngine(mincut_timeline)
        expected = {1: 1.0, 2: 2.0, 3: 3.0}
        for t, value in expected.items():
            answer = engine.answer(0, t)
            assert answer["mincut"] == value, f"prefix [0,{t}) changed"
            assert answer["stop_level"] == 0

    def test_like_verification_against_wrong_seed(self, mincut_timeline):
        from repro.errors import SketchCompatibilityError
        from repro.sketch import load_sketch

        stranger = functools.partial(
            mincut_sketch, FIXTURE_N, MINCUT_SEED + 1, c_k=0.3
        )()
        with pytest.raises(SketchCompatibilityError):
            load_sketch(mincut_timeline.checkpoint(1).payload, like=stranger)
