"""Declarative sketch specifications.

A :class:`SketchSpec` is everything needed to build an
identically-seeded sketch anywhere — this process, a worker process, a
remote site: the registry ``kind``, the node universe ``n``, the master
``seed``, and the (kind-specific) constructor parameters.  Specs are
frozen, hashable, and picklable, which is what lets one spec drive all
three deployment modes of :class:`~repro.api.GraphSketchEngine`: the
sharded runner ships ``functools.partial(build_sketch, spec)`` to its
sites, and linearity demands every site build the *same* measurement
matrix — the spec is that guarantee made explicit.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, replace
from typing import Any

__all__ = ["SketchSpec", "build_sketch"]


@dataclass(frozen=True)
class SketchSpec:
    """A declarative recipe for one sketch instance.

    Attributes
    ----------
    kind:
        Capability-registry kind name (``"spanning_forest"``,
        ``"mincut"``, ...; see :func:`repro.api.registered_kinds`).
    n:
        Node universe size.
    seed:
        Master hash seed; two sketches built from equal specs are
        identically seeded and therefore mergeable/subtractable.
    params:
        Kind-specific constructor parameters, stored as a sorted tuple
        of ``(name, value)`` pairs so the spec stays hashable; pass a
        dict (or use :meth:`of`) and it is normalised.
    """

    kind: str
    n: int
    seed: int = 0
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        params = self.params
        if isinstance(params, Mapping):
            pairs = params.items()
        else:
            pairs = tuple(params)
        object.__setattr__(
            self, "params",
            tuple(sorted((str(k), v) for k, v in pairs)),
        )

    @classmethod
    def of(cls, kind: str, n: int, seed: int = 0, **params: Any) -> "SketchSpec":
        """Build a spec with keyword constructor parameters."""
        return cls(kind, n, seed, tuple(params.items()))

    def param_dict(self) -> dict[str, Any]:
        """The constructor parameters as a plain dict."""
        return dict(self.params)

    def with_params(self, **params: Any) -> "SketchSpec":
        """A copy with extra/overridden constructor parameters."""
        merged = {**self.param_dict(), **params}
        return replace(self, params=tuple(merged.items()))

    def with_seed(self, seed: int) -> "SketchSpec":
        """A copy with a different master seed (same measurement shape)."""
        return replace(self, seed=seed)

    @property
    def capabilities(self) -> frozenset[str]:
        """Queries the spec's sketch class declares it can answer."""
        from .capabilities import capability_entry

        return capability_entry(self.kind).queries

    def build(self) -> Any:
        """Construct the fresh, empty, seeded sketch the spec describes."""
        from .capabilities import capability_entry
        from ..hashing import HashSource

        entry = capability_entry(self.kind)
        try:
            return entry.cls(
                self.n, source=HashSource(self.seed), **self.param_dict()
            )
        except TypeError as err:
            raise ValueError(
                f"cannot build a {self.kind!r} sketch from spec params "
                f"{self.param_dict()!r}: {err}"
            ) from None


def build_sketch(spec: SketchSpec) -> Any:
    """Module-level spec factory (picklable for ``mode="process"`` sites)."""
    return spec.build()
