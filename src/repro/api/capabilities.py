"""The capability registry: which sketch kind answers which queries.

Every registry sketch class declares the queries it supports in its
``CAPABILITIES`` class attribute (e.g. ``frozenset({"connectivity"})``
on :class:`~repro.core.forest.SpanningForestSketch`); this module
collects those declarations into one table keyed by the same stable
kind names the serialisation codec registry uses, plus the two adaptive
spanner drivers (which are multi-batch *builders*, not serialisable
linear state, and therefore support neither epochs nor snapshots).

:class:`~repro.api.GraphSketchEngine` consults the table on every
``query()`` — a query whose capability the kind does not declare raises
:class:`~repro.errors.NotSupportedError` — and future backends register
the same way (:func:`register_capability`), which is what keeps the
facade open for new sketch families without touching the engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import (
    BaswanaSenSpanner,
    BipartitenessSketch,
    CutEdgesSketch,
    EdgeConnectivitySketch,
    MinCutSketch,
    MSTWeightSketch,
    RecurseConnectSpanner,
    SimpleSparsification,
    SpanningForestSketch,
    Sparsification,
    SubgraphSketch,
    WeightedSparsification,
)
from ..errors import NotSupportedError
from .queries import CAPABILITIES

__all__ = [
    "CapabilityEntry",
    "capability_entry",
    "kind_of_sketch",
    "register_capability",
    "registered_kinds",
]


@dataclass(frozen=True)
class CapabilityEntry:
    """One registered sketch kind.

    Attributes
    ----------
    kind:
        Stable kind name (identical to the codec-registry name for the
        serialisable classes).
    cls:
        The sketch class; built from a spec as
        ``cls(n, source=HashSource(seed), **params)``.
    queries:
        Capability names the class declares (its ``CAPABILITIES``).
    serialisable:
        Whether the kind has a registered codec — i.e. supports
        snapshots, sharded byte-shipping, and epoch checkpoints.
    adaptive:
        Whether the kind is a multi-batch driver that must see a
        replayable stream (the spanner builders).
    """

    kind: str
    cls: type
    queries: frozenset[str]
    serialisable: bool = True
    adaptive: bool = False


_REGISTRY: dict[str, CapabilityEntry] = {}
_KIND_BY_CLASS: dict[type, str] = {}


def register_capability(entry: CapabilityEntry) -> None:
    """Register a sketch kind (idempotent for identical re-registration).

    Refuses unknown capability names — the query vocabulary is closed
    over :data:`~repro.api.queries.CAPABILITIES` so a typo in a class
    declaration fails at import time, not at first dispatch.
    """
    unknown = entry.queries - set(CAPABILITIES)
    if unknown:
        raise ValueError(
            f"kind {entry.kind!r} declares unknown capabilities "
            f"{sorted(unknown)}; known: {', '.join(CAPABILITIES)}"
        )
    existing = _REGISTRY.get(entry.kind)
    if existing is not None and existing != entry:
        raise ValueError(
            f"kind {entry.kind!r} already registered for "
            f"{existing.cls.__name__} with a different entry; "
            "re-registration must be identical"
        )
    _REGISTRY[entry.kind] = entry
    _KIND_BY_CLASS[entry.cls] = entry.kind


def capability_entry(kind: str) -> CapabilityEntry:
    """Look a kind up, with the known-kind list in the error."""
    entry = _REGISTRY.get(kind)
    if entry is None:
        raise NotSupportedError(
            f"unknown sketch kind {kind!r}; "
            f"known kinds: {', '.join(sorted(_REGISTRY))}"
        )
    return entry


def registered_kinds() -> tuple[str, ...]:
    """Every registered kind name, sorted."""
    return tuple(sorted(_REGISTRY))


def kind_of_sketch(sketch: object) -> str:
    """The registered kind of a live sketch instance."""
    kind = _KIND_BY_CLASS.get(type(sketch))
    if kind is None:
        raise NotSupportedError(
            f"{type(sketch).__name__} is not a capability-registry class"
        )
    return kind


def _register_builtin() -> None:
    serialisable = {
        "spanning_forest": SpanningForestSketch,
        "edge_connectivity": EdgeConnectivitySketch,
        "mincut": MinCutSketch,
        "simple_sparsification": SimpleSparsification,
        "sparsification": Sparsification,
        "weighted_sparsification": WeightedSparsification,
        "subgraph_count": SubgraphSketch,
        "cut_edges": CutEdgesSketch,
        "bipartiteness": BipartitenessSketch,
        "mst_weight": MSTWeightSketch,
    }
    for kind, cls in serialisable.items():
        register_capability(CapabilityEntry(
            kind=kind, cls=cls, queries=frozenset(cls.CAPABILITIES),
        ))
    for kind, cls in (
        ("baswana_sen_spanner", BaswanaSenSpanner),
        ("recurse_connect_spanner", RecurseConnectSpanner),
    ):
        register_capability(CapabilityEntry(
            kind=kind, cls=cls, queries=frozenset(cls.CAPABILITIES),
            serialisable=False, adaptive=True,
        ))


_register_builtin()
