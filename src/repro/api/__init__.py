"""`repro.api` — the one public entry point for graph sketching.

Declare *what* to sketch with a :class:`SketchSpec`, *where* it runs
with the fluent :class:`GraphSketchEngine` builder (local single-pass,
§1.1 multi-site sharding, temporal epoch checkpoints — or sharding and
epochs combined), and *ask* through one typed ``query()`` dispatch
backed by the capability registry.  The engine routes to the library's
existing pipelines, so its answers are byte-identical to the hand-wired
equivalents; legacy entry points remain as deprecated shims (see
``docs/MIGRATION.md``).
"""

from .capabilities import (
    CapabilityEntry,
    capability_entry,
    kind_of_sketch,
    register_capability,
    registered_kinds,
)
from .engine import GraphSketchEngine
from .queries import (
    CAPABILITIES,
    ConnectivityQuery,
    ConnectivityResult,
    CutQuery,
    CutQueryResult,
    KEdgeConnectivityQuery,
    KEdgeConnectivityResult,
    MinCutQuery,
    MinCutQueryResult,
    PropertiesQuery,
    PropertiesResult,
    Query,
    QueryResult,
    QueryTelemetry,
    SpannerDistanceQuery,
    SpannerDistanceResult,
    SparsifierQuery,
    SparsifierResult,
    SubgraphCountQuery,
    SubgraphCountResult,
    capability_of,
)
from .spec import SketchSpec, build_sketch
from .wire import (
    WIRE_VERSION,
    query_from_dict,
    query_to_dict,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "CAPABILITIES",
    "CapabilityEntry",
    "ConnectivityQuery",
    "ConnectivityResult",
    "CutQuery",
    "CutQueryResult",
    "GraphSketchEngine",
    "KEdgeConnectivityQuery",
    "KEdgeConnectivityResult",
    "MinCutQuery",
    "MinCutQueryResult",
    "PropertiesQuery",
    "PropertiesResult",
    "Query",
    "QueryResult",
    "QueryTelemetry",
    "SketchSpec",
    "SpannerDistanceQuery",
    "SpannerDistanceResult",
    "SparsifierQuery",
    "SparsifierResult",
    "SubgraphCountQuery",
    "SubgraphCountResult",
    "WIRE_VERSION",
    "build_sketch",
    "capability_entry",
    "capability_of",
    "kind_of_sketch",
    "query_from_dict",
    "query_to_dict",
    "register_capability",
    "registered_kinds",
    "result_from_dict",
    "result_to_dict",
]
