"""`GraphSketchEngine` — one facade over local, sharded, and temporal
sketching.

The AGM paper's pitch is that *one* linear-sketch abstraction serves
every deployment mode; the engine makes that literal.  A declarative
:class:`~repro.api.SketchSpec` names the sketch once, the fluent
builder names the deployment once, and the same ingestion handles and
the same single ``query()`` dispatch work in every combination::

    spec = SketchSpec.of("spanning_forest", n=64, seed=7)

    # local, single-pass
    local = GraphSketchEngine.for_spec(spec).ingest(stream)

    # the §1.1 multi-site deployment (identical answers, by linearity)
    sharded = (GraphSketchEngine.for_spec(spec)
               .sharded(sites=4, strategy="hash-edge")
               .workers(mode="process")
               .ingest(stream))

    # temporal epoch checkpoints + windowed queries by subtraction
    windowed = (GraphSketchEngine.for_spec(spec)
                .epochs(count=6)
                .ingest(stream))
    windowed.query(ConnectivityQuery(window=(2, 5)))

Internally the engine routes to the exact pipelines the library always
had — the columnar batch path, :class:`~repro.distributed.
ShardedSketchRunner`, :class:`~repro.temporal.EpochManager` — so its
results are *byte-identical* to the hand-wired equivalents (pinned by
``tests/test_api_engine.py``) and the facade adds no hot-path work.
``snapshot()``/``restore()`` ride codec v2: a local or sharded engine
snapshots to one ``dump_sketch`` blob, a temporal engine to one epoch
manifest, and ``restore`` rebuilds a queryable engine from either.
"""

from __future__ import annotations

import functools
import os
import time
from collections.abc import Mapping
from types import TracebackType
from typing import Any

from ..distributed.coordinator import EXECUTION_MODES, ShardedSketchRunner
from ..distributed.partition import PARTITION_STRATEGIES, partition_stream
from ..errors import NotSupportedError, SketchCompatibilityError
from ..sketch.serialize import (
    _MANIFEST_KIND,
    dump_sketch,
    load_sketch,
    peek_sketch_meta,
)
from ..streams import DynamicGraphStream, StreamBatch
from ..temporal.epochs import EpochCheckpoint, EpochManager, EpochTimeline
from ..temporal.query import materialise_window, window_payload_bytes
from ..temporal.store import STORE_POINTER_KIND, EpochStore, RetentionPolicy
from .capabilities import CapabilityEntry, capability_entry
from .dispatch import _answer_query
from .queries import (
    Query,
    QueryResult,
    QueryTelemetry,
    SpannerDistanceQuery,
    SpannerDistanceResult,
    capability_of,
)
from .spec import SketchSpec, build_sketch
from .wire import query_from_dict

__all__ = ["GraphSketchEngine"]

_SKETCH_PREFIX = "sketch:"


def _require_spec_kind(spec: SketchSpec | None, blob_kind: str) -> None:
    """Refuse a restore() override spec whose kind contradicts the blob.

    Dispatching (say) mincut handlers on a loaded MST-weight sketch
    would fail deep inside a query with a baffling AttributeError;
    refuse up front instead.
    """
    if spec is not None and spec.kind != blob_kind:
        raise SketchCompatibilityError(
            f"cannot restore: blob holds a {blob_kind!r} sketch but the "
            f"override spec declares {spec.kind!r}"
        )


class GraphSketchEngine:
    """The public entry point: spec in, typed answers out.

    Build with :meth:`for_spec`, optionally configure a deployment with
    the fluent :meth:`sharded` / :meth:`epochs` / :meth:`workers`
    (before the first ingest), feed data through :meth:`ingest` /
    :meth:`ingest_batch` / :meth:`seal_epoch`, and ask questions
    through :meth:`query` — which dispatches on the capability registry
    and refuses (:class:`~repro.errors.NotSupportedError`) queries the
    spec's sketch class does not declare.
    """

    def __init__(self, spec: SketchSpec):
        self.spec = spec
        self._entry: CapabilityEntry = capability_entry(spec.kind)
        # deployment configuration (frozen at first ingest)
        self._sites: int | None = None
        self._strategy: str = "hash-edge"
        self._partition_seed: int = 0
        self._mode: str = "sequential"
        self._processes: int | None = None
        self._start_method: str | None = None
        self._runner_obj: ShardedSketchRunner | None = None
        self._temporal: bool = False
        self._epoch_count: int | None = None
        self._epoch_boundaries: tuple[int, ...] | None = None
        self._store: EpochStore | None = None
        self._store_path: "str | os.PathLike[str] | None" = None
        self._store_retention: RetentionPolicy | None = None
        self._store_horizon: int | None = None
        # runtime state
        self._started = False
        self._sketch: Any = None
        self._manager: EpochManager | None = None
        self._timeline: EpochTimeline | None = None
        self._shards: list[DynamicGraphStream] | None = None
        self._spanner_report: Any = None
        self._last_report: Any = None
        self._shipped_bytes: int = 0

    # -- fluent configuration ---------------------------------------------------

    @classmethod
    def for_spec(cls, spec: SketchSpec) -> "GraphSketchEngine":
        """Start a fluent engine build for one spec."""
        return cls(spec)

    def _require_unstarted(self, what: str) -> None:
        if self._started:
            raise NotSupportedError(
                f"cannot configure {what} after ingestion has started"
            )

    def sharded(
        self,
        sites: int = 4,
        strategy: str = "hash-edge",
        seed: int = 0,
    ) -> "GraphSketchEngine":
        """Deploy across ``sites`` simulated sites (§1.1).

        ``strategy`` picks the deterministic partition; ``seed`` feeds
        the hash-based strategies.  Ingested streams are partitioned,
        consumed per site, shipped as serialised bytes, and merged at
        the coordinator — answers are byte-identical to a local run.
        """
        self._require_unstarted("sharding")
        if strategy not in PARTITION_STRATEGIES:
            raise NotSupportedError(
                f"unknown partition strategy {strategy!r}; choose from "
                f"{', '.join(PARTITION_STRATEGIES)}"
            )
        if sites < 1:
            raise ValueError(f"need at least one site, got {sites}")
        self._sites = sites
        self._strategy = strategy
        self._partition_seed = seed
        return self

    def epochs(
        self,
        count: int | None = None,
        boundaries: "list[int] | tuple[int, ...] | None" = None,
        store: "EpochStore | str | os.PathLike[str] | None" = None,
        retention: RetentionPolicy | None = None,
        horizon: int | None = None,
    ) -> "GraphSketchEngine":
        """Seal cumulative checkpoints and answer windowed queries.

        Pass ``count`` for an even epoch grid or ``boundaries`` for
        explicit epoch-end token positions (applied by :meth:`ingest`);
        pass neither to seal manually with :meth:`ingest_batch` +
        :meth:`seal_epoch`.  Not available for the adaptive spanner
        builders, which hold no serialisable linear state.

        With ``store=`` (a directory path or an
        :class:`~repro.temporal.EpochStore`) checkpoints are sealed
        *durably*: appended to the on-disk store with dyadic compaction
        instead of accumulating in an in-memory timeline, with
        ``retention`` (a :class:`~repro.temporal.RetentionPolicy`) and
        ``horizon`` forwarded to the store.  Windowed queries then page
        O(log T) span blobs from disk.
        """
        self._require_unstarted("epochs")
        if not self._entry.serialisable:
            raise NotSupportedError(
                f"{self.spec.kind!r} is an adaptive builder; it has no "
                "checkpointable linear state, so temporal mode does not apply"
            )
        if count is not None and boundaries is not None:
            raise ValueError("pass at most one of count= or boundaries=")
        if store is None and (retention is not None or horizon is not None):
            raise ValueError(
                "retention=/horizon= configure the durable store; pass "
                "store= as well"
            )
        self._temporal = True
        self._epoch_count = count
        self._epoch_boundaries = (
            tuple(int(b) for b in boundaries) if boundaries is not None else None
        )
        if isinstance(store, EpochStore):
            self._store = store
        else:
            self._store_path = store
        self._store_retention = retention
        self._store_horizon = horizon
        return self

    def workers(
        self,
        mode: str = "sequential",
        processes: int | None = None,
        start_method: str | None = None,
    ) -> "GraphSketchEngine":
        """Pick the site execution mode (``"sequential"``/``"process"``).

        ``mode="process"`` runs sites on one persistent shared-memory
        worker pool, reused across every ingest on this engine;
        ``processes`` sizes it (default: ``min(sites, CPUs)``) and
        ``start_method`` overrides the platform default
        (``"forkserver"`` on Linux, else ``"spawn"`` — the documented
        portable fallback).  Release
        the pool and its shared segments with :meth:`close` or by using
        the engine as a context manager.
        """
        self._require_unstarted("workers")
        if mode not in EXECUTION_MODES:
            raise NotSupportedError(
                f"unknown execution mode {mode!r}; choose from "
                f"{', '.join(EXECUTION_MODES)}"
            )
        if mode == "process" and self._entry.adaptive:
            raise NotSupportedError(
                f"{self.spec.kind!r} is an adaptive builder; its sharded "
                "build is a coordinator-driven round protocol and does not "
                "run sites in worker processes"
            )
        if processes is not None and processes < 1:
            raise ValueError(
                f"processes must be >= 1, got {processes} (omit it for "
                "the min(sites, cpus) default)"
            )
        self._mode = mode
        self._processes = processes
        self._start_method = start_method
        return self

    def kernels(self, backend: str = "auto") -> "GraphSketchEngine":
        """Select the compiled-kernel backend for the sketch hot loops.

        Thin fluent wrapper over :func:`repro.kernels.use`.  The
        selection is process-wide (kernels are stateless pure
        functions) and safe to change at any point: every backend
        produces byte-identical sketch state, pinned by the parity
        harness — see ``docs/KERNELS.md``.  ``"auto"`` prefers the
        fastest available backend; requesting an unavailable one warns
        and falls back to the numpy reference.
        """
        from .. import kernels as _kernels

        _kernels.use(backend)
        return self

    def kernel_stats(self) -> list[dict]:
        """Per-kernel call-count/seconds telemetry (process-wide)."""
        from .. import kernels as _kernels

        return _kernels.kernel_stats()

    # -- introspection ----------------------------------------------------------

    @property
    def deployment(self) -> str:
        """``"local"``, ``"sharded"``, ``"temporal"`` or ``"sharded-temporal"``."""
        if self._sites is not None and self._temporal:
            return "sharded-temporal"
        if self._sites is not None:
            return "sharded"
        if self._temporal:
            return "temporal"
        return "local"

    @property
    def capabilities(self) -> frozenset[str]:
        """Queries the spec's sketch class declares."""
        return self._entry.queries

    @property
    def epochs_sealed(self) -> int:
        """Sealed epochs addressable by window queries (0 outside temporal)."""
        source = self._window_source()
        return source.epochs if source is not None else 0

    @property
    def timeline(self) -> EpochTimeline | None:
        """The sealed checkpoint timeline (``None`` outside temporal mode).

        Store-backed engines deliberately hold no in-memory timeline
        (bounded RAM is the point) — use :attr:`store` instead.
        """
        return self._current_timeline()

    @property
    def store(self) -> EpochStore | None:
        """The attached durable epoch store (``None`` unless store-backed)."""
        return self._store

    def window_tokens(self, t1: int, t2: int) -> int:
        """Number of stream tokens the epoch window ``[t1, t2)`` spans."""
        source = self._window_source()
        if source is None:
            raise NotSupportedError("no epochs sealed yet")
        from ..temporal.query import window_tokens

        return window_tokens(source, t1, t2)

    @property
    def shipped_bytes(self) -> int:
        """Serialised bytes shipped site → coordinator across all ingests."""
        return self._shipped_bytes

    @property
    def last_report(self) -> Any:
        """The most recent sharded run/epoch report (``None`` if local)."""
        return self._last_report

    # -- ingestion --------------------------------------------------------------

    def _factory(self):
        """The picklable identically-seeded sketch factory for this spec."""
        return functools.partial(build_sketch, self.spec)

    def _runner(self) -> ShardedSketchRunner:
        """The configured sharded runner, built once and reused.

        Reuse is what makes repeated process-mode ingests cheap: the
        runner keeps its worker pool and shared segments warm across
        ``ingest()`` calls.  :meth:`close` releases them (and drops the
        runner, so a later ingest transparently builds a fresh one).
        """
        if self._runner_obj is None:
            self._runner_obj = ShardedSketchRunner(
                self._factory(),
                sites=self._sites,
                strategy=self._strategy,
                mode=self._mode,
                seed=self._partition_seed,
                processes=self._processes,
                start_method=self._start_method,
            )
        return self._runner_obj

    def close(self) -> None:
        """Release process-mode resources (worker pool, shared segments).

        Safe on any engine (a no-op outside process mode) and
        idempotent; the engine stays queryable — only the execution
        resources are torn down, to be lazily rebuilt if needed.
        """
        runner, self._runner_obj = self._runner_obj, None
        if runner is not None:
            runner.close()

    def __enter__(self) -> "GraphSketchEngine":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def _require_manual_temporal(self, what: str) -> None:
        """Manual epoch sealing is local-only and pre-restore-only."""
        if self._timeline is not None:
            raise NotSupportedError(
                f"cannot {what}: this engine's timeline is already sealed "
                "(restored from a snapshot or built along a configured grid)"
            )
        if self._sites is not None:
            raise NotSupportedError(
                f"cannot {what}: manual epoch sealing is local-only; "
                "sharded temporal engines need an epoch grid "
                "(.epochs(count=...) or .epochs(boundaries=...))"
            )

    def ingest(self, stream: DynamicGraphStream) -> "GraphSketchEngine":
        """Consume a whole dynamic graph stream through the configured
        deployment (columnar path everywhere).

        ``_started`` flips only once the ingest succeeded — a failed
        ingest leaves the engine configurable and still refusing
        queries, rather than claiming data it never absorbed.
        """
        if self._entry.adaptive:
            self._ingest_adaptive(stream)
        elif self._temporal and (
            self._epoch_count is not None or self._epoch_boundaries is not None
        ):
            self._ingest_epoch_grid(stream)
        elif self._temporal:
            self._require_manual_temporal("ingest")
            self._ensure_manager().extend(stream.as_batch())
        elif self._sites is not None:
            report = self._runner().run(stream)
            if self._sketch is None:
                self._sketch = report.sketch
            else:
                self._sketch.merge(report.sketch)
            self._last_report = report
            self._shipped_bytes += report.total_payload_bytes
        else:
            self._ensure_sketch().consume_batch(stream.as_batch())
        self._started = True
        return self

    def ingest_batch(self, batch: StreamBatch) -> "GraphSketchEngine":
        """Feed one columnar batch (local and incremental-temporal modes)."""
        if self._entry.adaptive:
            raise NotSupportedError(
                f"{self.spec.kind!r} is an adaptive multi-batch builder; "
                "ingest a whole replayable stream with ingest()"
            )
        if self._sites is not None:
            raise NotSupportedError(
                "sharded engines partition whole streams; use ingest()"
            )
        if self._temporal:
            if self._epoch_count is not None or \
                    self._epoch_boundaries is not None:
                raise NotSupportedError(
                    "this engine seals epochs along a configured grid; "
                    "use ingest() once, or configure .epochs() without a "
                    "grid for manual sealing"
                )
            self._require_manual_temporal("ingest_batch")
            self._ensure_manager().extend(batch)
        else:
            self._ensure_sketch().consume_batch(batch)
        self._started = True
        return self

    def seal_epoch(self) -> EpochCheckpoint:
        """Close the open epoch and checkpoint the cumulative sketch
        (incremental-temporal mode)."""
        if not self._temporal:
            raise NotSupportedError(
                "seal_epoch() needs temporal mode; configure .epochs() first"
            )
        if self._epoch_count is not None or self._epoch_boundaries is not None:
            raise NotSupportedError(
                "this engine seals epochs along its configured grid at "
                "ingest(); manual sealing needs .epochs() without a grid"
            )
        self._require_manual_temporal("seal_epoch")
        checkpoint = self._ensure_manager().seal_epoch()
        self._started = True
        return checkpoint

    def _ingest_adaptive(self, stream: DynamicGraphStream) -> "GraphSketchEngine":
        if self._shards is not None:
            raise NotSupportedError(
                "adaptive spanner engines take one full-stream ingest"
            )
        if self._sites is not None:
            self._shards = list(partition_stream(
                stream, self._sites, self._strategy, self._partition_seed
            ))
        else:
            self._shards = [stream]
        self._spanner_report = None
        return self

    def _ingest_epoch_grid(self, stream: DynamicGraphStream) -> "GraphSketchEngine":
        if self._timeline is not None:
            raise NotSupportedError(
                "the epoch grid has been applied; this engine's timeline "
                "is already sealed"
            )
        boundaries = (
            list(self._epoch_boundaries)
            if self._epoch_boundaries is not None else None
        )
        store = self._ensure_store()
        if self._sites is not None:
            report = self._runner().run_epochs(
                stream, epochs=self._epoch_count, boundaries=boundaries,
                store=store,
            )
            if store is None:
                self._timeline = report.timeline
            self._last_report = report
            self._shipped_bytes += report.total_payload_bytes
        elif store is not None:
            EpochManager.consume(
                self._factory(), stream,
                epochs=self._epoch_count, boundaries=boundaries, store=store,
            )
        else:
            timeline = EpochManager.consume(
                self._factory(), stream,
                epochs=self._epoch_count, boundaries=boundaries,
            )
            assert isinstance(timeline, EpochTimeline)
            self._timeline = timeline
        return self

    def _ensure_sketch(self) -> Any:
        if self._sketch is None:
            self._sketch = self.spec.build()
        return self._sketch

    def _ensure_store(self) -> EpochStore | None:
        """Open/create the configured durable store on first use."""
        if self._store is None and self._store_path is not None:
            self._store = EpochStore(
                self._store_path,
                retention=self._store_retention,
                horizon=self._store_horizon,
            )
            self._store_path = None
        return self._store

    def _ensure_manager(self) -> EpochManager:
        if self._manager is None:
            store = self._ensure_store()
            if store is not None and store.epochs > 0:
                self._manager = EpochManager.resume(self._factory(), store)
            else:
                self._manager = EpochManager(self._factory(), store=store)
        return self._manager

    def _current_timeline(self) -> EpochTimeline | None:
        if self._timeline is not None:
            return self._timeline
        if self._manager is not None and self._manager.store is None and \
                self._manager.sealed_epochs > 0:
            return self._manager.timeline()
        return None

    def _window_source(self) -> "EpochStore | EpochTimeline | None":
        """Whatever windowed queries should read: store first, else timeline."""
        store = self._store
        if store is not None and store.epochs > 0:
            return store
        return self._current_timeline()

    # -- queries ----------------------------------------------------------------

    def query(self, query: "Query | Mapping[str, Any]") -> QueryResult:
        """Answer one typed query through the capability registry.

        ``query`` is a typed :class:`Query` or its wire-stable dict
        form (schema v1, :mod:`repro.api.wire`) — a network caller can
        pass a decoded JSON body straight through; malformed dicts
        raise :class:`~repro.errors.WireFormatError`.

        Dispatch is uniform across deployments: a temporal engine
        materialises the query's epoch window (default: the full sealed
        prefix) by checkpoint subtraction first; local and sharded
        engines answer straight off the live/merged sketch.  The result
        is a frozen dataclass carrying wall-clock and payload-byte
        telemetry.
        """
        if isinstance(query, Mapping):
            query = query_from_dict(query)
        capability = capability_of(query)
        if capability not in self._entry.queries:
            raise NotSupportedError(
                f"sketch kind {self.spec.kind!r} does not declare the "
                f"{capability!r} capability; it declares "
                f"{', '.join(sorted(self._entry.queries)) or 'none'}"
            )
        t0 = time.perf_counter()
        if self._entry.adaptive:
            return self._answer_spanner(query, t0)
        payload_bytes = 0
        window: tuple[int, int] | None = None
        if self._temporal:
            source = self._window_source()
            if source is None:
                raise NotSupportedError(
                    "no epochs sealed yet; ingest a stream or seal_epoch() "
                    "before querying a temporal engine"
                )
            # A store under retention may have evicted a prefix; the
            # default full window starts at its floor.
            t1, t2 = query.window if query.window is not None \
                else (getattr(source, "base", 0), source.epochs)
            sketch = materialise_window(source, t1, t2)
            payload_bytes = window_payload_bytes(source, t1, t2)
            window = (t1, t2)
        else:
            if query.window is not None:
                raise NotSupportedError(
                    "window queries need a temporal engine; configure "
                    ".epochs(...) before ingesting"
                )
            if not self._started:
                raise NotSupportedError(
                    "no data ingested; call ingest()/ingest_batch() before "
                    "querying"
                )
            sketch = self._ensure_sketch()
        result_cls, fields = _answer_query(capability, sketch, query)
        telemetry = QueryTelemetry(time.perf_counter() - t0, payload_bytes)
        return result_cls(
            **fields,
            kind=self.spec.kind,
            capability=capability,
            window=window,
            telemetry=telemetry,
        )

    def _answer_spanner(self, query: Query, t0: float) -> QueryResult:
        if query.window is not None:
            raise NotSupportedError(
                "adaptive spanner builders do not support temporal windows"
            )
        if self._shards is None:
            raise NotSupportedError(
                "no stream ingested; adaptive builders need ingest(stream) "
                "before querying"
            )
        if self._spanner_report is None:
            builder = self.spec.build()
            if len(self._shards) == 1:
                self._spanner_report = builder.build(self._shards[0])
            elif hasattr(builder, "build_sharded"):
                self._spanner_report = builder.build_sharded(self._shards)
            else:
                raise NotSupportedError(
                    f"{self.spec.kind!r} has no sharded build protocol; "
                    "use a local (unsharded) engine"
                )
            self._shipped_bytes += self._spanner_report.shipped_bytes
        report = self._spanner_report
        distance: float | None = None
        if isinstance(query, SpannerDistanceQuery) and \
                query.source is not None and query.target is not None:
            from ..graphs import bfs_distances

            distance = bfs_distances(report.spanner, query.source)[query.target]
        telemetry = QueryTelemetry(
            time.perf_counter() - t0, report.shipped_bytes
        )
        return SpannerDistanceResult(
            edges=report.edges,
            batches=report.batches,
            stretch_bound=report.stretch_bound,
            shipped_bytes=report.shipped_bytes,
            distance=distance,
            spanner=report.spanner,
            kind=self.spec.kind,
            capability="spanner-distance",
            telemetry=telemetry,
        )

    # -- persistence ------------------------------------------------------------

    def snapshot(self) -> bytes:
        """Serialise the engine's state on codec v2.

        Local/sharded engines snapshot to one ``dump_sketch`` blob;
        temporal engines to one epoch-manifest blob.  Either restores —
        with full integrity verification — via :meth:`restore`.
        """
        if self._entry.adaptive:
            raise NotSupportedError(
                "adaptive spanner builders hold no serialisable linear state"
            )
        if self._store is not None and self._store.epochs > 0:
            # Store-backed state lives on disk already; the snapshot is
            # a verified pointer at the catalog, not a copy of it.
            return self._store.pointer_bytes()
        if self._temporal:
            timeline = self._current_timeline()
            if timeline is None:
                raise NotSupportedError("no epochs sealed yet; nothing to snapshot")
            return timeline.to_bytes()
        return dump_sketch(self._ensure_sketch())

    @classmethod
    def restore(
        cls, data: bytes, spec: SketchSpec | None = None
    ) -> "GraphSketchEngine":
        """Rebuild a queryable engine from :meth:`snapshot` bytes.

        Sketch blobs restore a local engine; epoch manifests restore a
        temporal engine (windowed queries work immediately); store
        pointers (:meth:`~repro.temporal.EpochStore.pointer_bytes`)
        reopen the on-disk store and attach it.  ``spec`` optionally
        overrides the spec reconstructed from the blob header (kind, n,
        seed) — e.g. to re-attach constructor params.
        """
        header = peek_sketch_meta(data)
        kind = str(header.get("__kind__", ""))
        if kind == STORE_POINTER_KIND:
            return cls.attach_store(EpochStore.from_pointer(data), spec=spec)
        if kind == _MANIFEST_KIND:
            timeline = EpochTimeline.from_bytes(data)
            sketch_kind = timeline.sketch_kind
            if sketch_kind.startswith(_SKETCH_PREFIX):
                sketch_kind = sketch_kind[len(_SKETCH_PREFIX):]
            _require_spec_kind(spec, sketch_kind)
            first = peek_sketch_meta(timeline.checkpoints[0].payload)
            engine = cls(spec or SketchSpec(
                kind=sketch_kind,
                n=int(first.get("n", timeline.n)),
                seed=int(first.get("seed", 0)),
            ))
            engine._temporal = True
            engine._timeline = timeline
            engine._started = True
            return engine
        if kind.startswith(_SKETCH_PREFIX):
            _require_spec_kind(spec, kind[len(_SKETCH_PREFIX):])
            sketch = load_sketch(data)
            engine = cls(spec or SketchSpec(
                kind=kind[len(_SKETCH_PREFIX):],
                n=int(header.get("n", getattr(sketch, "n", 0))),
                seed=int(header.get("seed", 0)),
            ))
            engine._sketch = sketch
            engine._started = True
            return engine
        raise ValueError(
            f"blob holds a {kind!r}, not an engine snapshot "
            "(sketch blob, epoch manifest, or store pointer)"
        )

    @classmethod
    def attach_store(
        cls,
        store: "EpochStore | str | os.PathLike[str]",
        spec: SketchSpec | None = None,
    ) -> "GraphSketchEngine":
        """Build a queryable temporal engine over an existing store.

        The spec is reconstructed from the store's recorded sketch
        kind, universe, and seed (overridable with ``spec``, checked
        for kind agreement); windowed queries work immediately, and
        further :meth:`ingest_batch` + :meth:`seal_epoch` calls resume
        appending where the store left off.
        """
        if not isinstance(store, EpochStore):
            store = EpochStore.open(store)
        if store.epochs == 0:
            raise NotSupportedError(
                f"store at {store.root!s} is empty; it records no sketch "
                "kind to build an engine from — seal epochs into it first"
            )
        sketch_kind = store.sketch_kind
        if sketch_kind.startswith(_SKETCH_PREFIX):
            sketch_kind = sketch_kind[len(_SKETCH_PREFIX):]
        _require_spec_kind(spec, sketch_kind)
        engine = cls(spec or SketchSpec(
            kind=sketch_kind, n=store.n, seed=store.seed,
        ))
        engine._temporal = True
        engine._store = store
        engine._started = True
        return engine

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphSketchEngine(kind={self.spec.kind!r}, n={self.spec.n}, "
            f"deployment={self.deployment!r})"
        )
