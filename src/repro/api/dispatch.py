"""Capability handlers: route a live sketch through its query surface.

One handler per capability name.  A handler receives the materialised
sketch (live, merged, or a subtracted temporal window — it cannot
tell, which is the point) and the typed query, and returns the result
class plus its payload fields; the engine stamps kind/capability/
window/telemetry on top.  Handlers only ever use the sketch classes'
*existing* post-processing surfaces, so facade answers are the legacy
answers by construction.
"""

from __future__ import annotations

from typing import Any

from ..core import (
    BipartitenessSketch,
    MSTWeightSketch,
    named_patterns,
)
from ..errors import NotSupportedError
from ..graphs import UnionFind, global_min_cut_value
from .queries import (
    ConnectivityQuery,
    ConnectivityResult,
    CutQuery,
    CutQueryResult,
    KEdgeConnectivityResult,
    MinCutQueryResult,
    PropertiesResult,
    Query,
    QueryResult,
    SparsifierResult,
    SubgraphCountQuery,
    SubgraphCountResult,
)

__all__ = ["answer_query"]


def _components_of(sketch: Any) -> list[set[int]]:
    """Connected components via the sketch's own extraction surface.

    Forest-family sketches extract directly; the k-EDGECONNECT sketch
    answers through its witness (which contains a spanning forest of
    the graph, so component structure is preserved w.h.p.).
    """
    if hasattr(sketch, "connected_components"):
        return sketch.connected_components()
    witness = sketch.witness()
    uf = UnionFind(sketch.n)
    for u, v in witness.edges():
        uf.union(u, v)
    return [set(members) for members in uf.groups().values()]


def _answer_connectivity(sketch: Any, query: Query):
    components = _components_of(sketch)
    same: bool | None = None
    if isinstance(query, ConnectivityQuery) and \
            query.u is not None and query.v is not None:
        same = any(
            query.u in comp and query.v in comp for comp in components
        )
    return ConnectivityResult, {
        "connected": len(components) == 1,
        "components": len(components),
        "forest_edges": sketch.n - len(components),
        "same_component": same,
    }


def _answer_k_edge_connectivity(sketch: Any, query: Query):
    witness = sketch.witness()
    edges = witness.num_edges()
    is_k = bool(edges) and global_min_cut_value(witness) >= sketch.k
    return KEdgeConnectivityResult, {
        "k": sketch.k,
        "witness_edges": edges,
        "is_k_connected": is_k,
    }


def _answer_mincut(sketch: Any, query: Query):
    estimate = sketch.estimate()
    return MinCutQueryResult, {
        "value": estimate.value,
        "stop_level": estimate.stop_level,
    }


def _answer_cut_query(sketch: Any, query: Query):
    assert isinstance(query, CutQuery)
    crossing = sketch.crossing_edges(set(query.side))
    triples = tuple(sorted(
        (u, v, int(mult)) for (u, v), mult in crossing.items()
    ))
    return CutQueryResult, {
        "crossing_edges": triples,
        "cut_value": sum(t[2] for t in triples),
    }


def _answer_sparsifier(sketch: Any, query: Query):
    sparsifier = sketch.sparsifier()
    return SparsifierResult, {
        "edges": sparsifier.num_edges,
        "epsilon": sparsifier.epsilon,
        "sparsifier": sparsifier,
    }


def _answer_subgraph_count(sketch: Any, query: Query):
    assert isinstance(query, SubgraphCountQuery)
    pattern = query.pattern
    if isinstance(pattern, str):
        patterns = named_patterns()
        if pattern not in patterns:
            raise NotSupportedError(
                f"unknown pattern {pattern!r}; built-ins: "
                f"{', '.join(sorted(patterns))}"
            )
        pattern = patterns[pattern]
    estimate = sketch.estimate(pattern)
    return SubgraphCountResult, {
        "pattern": pattern.name,
        "gamma": estimate.gamma,
        "samples_used": estimate.samples_used,
        "samples_failed": estimate.samples_failed,
    }


def _answer_properties(sketch: Any, query: Query):
    values: dict[str, Any] = {}
    if isinstance(sketch, BipartitenessSketch):
        values["bipartite"] = sketch.is_bipartite()
    elif isinstance(sketch, MSTWeightSketch):
        values["mst_weight"] = sketch.estimate()
    elif hasattr(sketch, "connected_components"):
        components = sketch.connected_components()
        values["connected"] = len(components) == 1
        values["components"] = len(components)
    else:  # pragma: no cover - every declaring class is handled above
        raise NotSupportedError(
            f"{type(sketch).__name__} declares 'properties' but no "
            "handler branch exists for it"
        )
    return PropertiesResult, {"values": values}


_HANDLERS = {
    "connectivity": _answer_connectivity,
    "k-edge-connectivity": _answer_k_edge_connectivity,
    "mincut": _answer_mincut,
    "cut-query": _answer_cut_query,
    "sparsifier": _answer_sparsifier,
    "subgraph-count": _answer_subgraph_count,
    "properties": _answer_properties,
}


def _answer_query(
    capability: str, sketch: Any, query: Query
) -> "tuple[type[QueryResult], dict[str, Any]]":
    """Dispatch ``query`` on ``sketch``; returns ``(result_cls, fields)``.

    ``spanner-distance`` is handled by the engine itself (it needs the
    ingested stream, not a linear sketch).
    """
    handler = _HANDLERS.get(capability)
    if handler is None:  # pragma: no cover - closed vocabulary
        raise NotSupportedError(f"no handler for capability {capability!r}")
    return handler(sketch, query)


def answer_query(
    capability: str, sketch: Any, query: Query
) -> "tuple[type[QueryResult], dict[str, Any]]":
    """Deprecated import path for the capability dispatcher.

    .. deprecated::
        Use :meth:`GraphSketchEngine.query` — the engine stamps
        kind/capability/window/telemetry on the answer and is the only
        supported dispatch surface (see ``docs/MIGRATION.md``).
    """
    from .deprecation import warn_deprecated

    warn_deprecated(
        "repro.api.dispatch.answer_query()",
        "GraphSketchEngine.query()",
    )
    return _answer_query(capability, sketch, query)
