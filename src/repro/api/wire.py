"""Wire-stable dict encoding of queries and results (schema v1).

The engine's typed :class:`~repro.api.Query`/:class:`~repro.api.
QueryResult` dataclasses gain a stable JSON-able form here — the
contract the :mod:`repro.serve` HTTP API speaks and the form
:meth:`GraphSketchEngine.query` accepts directly.  Every payload is an
envelope carrying the schema version (``"v": 1``), a discriminator
(``"query"`` / ``"result"``: the capability name), the epoch
``"window"``, and the kind-specific fields nested under ``"args"``
(queries) or ``"body"`` (results, alongside ``"kind"``,
``"capability"`` and ``"telemetry"``).  The nesting keeps per-kind
field names out of the envelope namespace; all names are **frozen** —
renaming one is a wire break and fails the snapshot test in
``tests/test_wire.py``.

Encoding rules
--------------
* Scalars are canonicalised to plain Python types (numpy scalars via
  ``.item()``) so ``json.dumps`` of the dict is deterministic.
* Non-finite floats — a spanner distance of ``inf`` on a disconnected
  pair — encode as the strings ``"Infinity"``/``"-Infinity"``/``"NaN"``
  (strict JSON has no spelling for them).
* Node sets and edge dicts encode as *sorted* lists, so equal values
  produce byte-identical JSON.
* Structured payloads (the sparsifier, the spanner graph) encode as
  explicit JSON objects; round-trips are exact because graph weights
  survive JSON's shortest-repr floats exactly.
* Opaque sketch state never rides a result — snapshots travel as
  codec-v2 blobs wrapped with :func:`blob_to_wire` (base64).

Malformed payloads raise :class:`~repro.errors.WireFormatError`
(code ``WIRE_INVALID``), never an arbitrary ``KeyError``/``TypeError``.
"""

from __future__ import annotations

import base64
import binascii
import math
from collections.abc import Callable, Mapping
from typing import Any

import numpy as np

from ..errors import WireFormatError
from .queries import (
    ConnectivityQuery,
    ConnectivityResult,
    CutQuery,
    CutQueryResult,
    KEdgeConnectivityQuery,
    KEdgeConnectivityResult,
    MinCutQuery,
    MinCutQueryResult,
    PropertiesQuery,
    PropertiesResult,
    Query,
    QueryResult,
    QueryTelemetry,
    SpannerDistanceQuery,
    SpannerDistanceResult,
    SparsifierQuery,
    SparsifierResult,
    SubgraphCountQuery,
    SubgraphCountResult,
)

__all__ = [
    "WIRE_VERSION",
    "blob_from_wire",
    "blob_to_wire",
    "query_from_dict",
    "query_to_dict",
    "result_from_dict",
    "result_to_dict",
]

#: Current (and only) wire schema version.
WIRE_VERSION = 1


# -- scalar helpers ------------------------------------------------------------


def _fail(msg: str) -> "WireFormatError":
    return WireFormatError(f"wire schema v{WIRE_VERSION}: {msg}")


def _canon(value: Any) -> Any:
    """Canonicalise one scalar to a plain JSON-able Python value."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "Infinity" if value > 0 else "-Infinity"
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise _fail(f"cannot encode scalar of type {type(value).__name__}")


_NONFINITE = {"Infinity": math.inf, "-Infinity": -math.inf, "NaN": math.nan}


def _dec_float(value: Any, field: str) -> float:
    if isinstance(value, str) and value in _NONFINITE:
        return _NONFINITE[value]
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    raise _fail(f"field {field!r} must be a number, got {value!r}")


def _dec_int(value: Any, field: str) -> int:
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    raise _fail(f"field {field!r} must be an integer, got {value!r}")


def _dec_opt_int(value: Any, field: str) -> int | None:
    return None if value is None else _dec_int(value, field)


def _dec_bool(value: Any, field: str) -> bool:
    if isinstance(value, bool):
        return value
    raise _fail(f"field {field!r} must be a boolean, got {value!r}")


def _dec_str(value: Any, field: str) -> str:
    if isinstance(value, str):
        return value
    raise _fail(f"field {field!r} must be a string, got {value!r}")


def _get(payload: Mapping[str, Any], field: str) -> Any:
    if field not in payload:
        raise _fail(f"missing required field {field!r}")
    return payload[field]


def _enc_window(window: "tuple[int, int] | None") -> "list[int] | None":
    return None if window is None else [int(window[0]), int(window[1])]


def _dec_window(value: Any) -> "tuple[int, int] | None":
    if value is None:
        return None
    if not isinstance(value, (list, tuple)) or len(value) != 2:
        raise _fail(f"field 'window' must be null or a [t1, t2] pair, got {value!r}")
    return (_dec_int(value[0], "window[0]"), _dec_int(value[1], "window[1]"))


# -- base64 codec-v2 transport -------------------------------------------------


def blob_to_wire(blob: bytes) -> str:
    """Wrap an opaque codec-v2 blob (sketch/manifest bytes) for JSON."""
    return base64.b64encode(blob).decode("ascii")


def blob_from_wire(text: str) -> bytes:
    """Decode a :func:`blob_to_wire` string back to codec-v2 bytes."""
    if not isinstance(text, str):
        raise _fail(f"blob must be a base64 string, got {type(text).__name__}")
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as err:
        raise _fail(f"invalid base64 blob: {err}") from None


# -- structured payloads: graphs, sparsifiers, patterns ------------------------


def _enc_graph(graph: Any) -> dict[str, Any]:
    edges = sorted(
        (int(u), int(v), _canon(float(w))) for u, v, w in graph.weighted_edges()
    )
    return {"n": int(graph.n), "edges": [list(e) for e in edges]}


def _dec_graph(value: Any, field: str) -> Any:
    from ..graphs import Graph

    if not isinstance(value, Mapping):
        raise _fail(f"field {field!r} must be a graph object")
    n = _dec_int(_get(value, "n"), f"{field}.n")
    raw = _get(value, "edges")
    if not isinstance(raw, (list, tuple)):
        raise _fail(f"field {field!r}.edges must be a list")
    edges = []
    for item in raw:
        if not isinstance(item, (list, tuple)) or len(item) != 3:
            raise _fail(f"field {field!r}.edges entries must be [u, v, w]")
        edges.append((
            _dec_int(item[0], f"{field}.edges[][0]"),
            _dec_int(item[1], f"{field}.edges[][1]"),
            _dec_float(item[2], f"{field}.edges[][2]"),
        ))
    try:
        return Graph.from_weighted_edges(n, edges)
    except Exception as err:
        raise _fail(f"field {field!r} holds an invalid graph: {err}") from None


def _enc_sparsifier(sparsifier: Any) -> dict[str, Any]:
    levels = sorted(
        (int(u), int(v), int(level))
        for (u, v), level in sparsifier.edge_levels.items()
    )
    return {
        "graph": _enc_graph(sparsifier.graph),
        "epsilon": _canon(float(sparsifier.epsilon)),
        "edge_levels": [list(e) for e in levels],
        "memory_cells": int(sparsifier.memory_cells),
    }


def _dec_sparsifier(value: Any, field: str) -> Any:
    from ..core.sparsifier import Sparsifier

    if not isinstance(value, Mapping):
        raise _fail(f"field {field!r} must be a sparsifier object")
    raw_levels = _get(value, "edge_levels")
    if not isinstance(raw_levels, (list, tuple)):
        raise _fail(f"field {field!r}.edge_levels must be a list")
    edge_levels: dict[tuple[int, int], int] = {}
    for item in raw_levels:
        if not isinstance(item, (list, tuple)) or len(item) != 3:
            raise _fail(f"field {field!r}.edge_levels entries must be [u, v, level]")
        key = (
            _dec_int(item[0], f"{field}.edge_levels[][0]"),
            _dec_int(item[1], f"{field}.edge_levels[][1]"),
        )
        edge_levels[key] = _dec_int(item[2], f"{field}.edge_levels[][2]")
    return Sparsifier(
        graph=_dec_graph(_get(value, "graph"), f"{field}.graph"),
        epsilon=_dec_float(_get(value, "epsilon"), f"{field}.epsilon"),
        edge_levels=edge_levels,
        memory_cells=_dec_int(_get(value, "memory_cells"), f"{field}.memory_cells"),
    )


def _enc_pattern(pattern: Any) -> str:
    if isinstance(pattern, str):
        return pattern
    from ..core import named_patterns

    for name, builtin in named_patterns().items():
        if builtin == pattern:
            return name
    raise _fail(
        "only built-in (named) patterns have a wire form; got "
        f"{getattr(pattern, 'name', pattern)!r}"
    )


# -- query codecs --------------------------------------------------------------


def _enc_query_connectivity(query: ConnectivityQuery) -> dict[str, Any]:
    return {"u": _canon(query.u), "v": _canon(query.v)}


def _dec_query_connectivity(args: Mapping[str, Any], window: Any) -> ConnectivityQuery:
    return ConnectivityQuery(
        u=_dec_opt_int(args.get("u"), "args.u"),
        v=_dec_opt_int(args.get("v"), "args.v"),
        window=window,
    )


def _enc_query_cut(query: CutQuery) -> dict[str, Any]:
    return {"side": sorted(int(node) for node in query.side)}


def _dec_query_cut(args: Mapping[str, Any], window: Any) -> CutQuery:
    raw = _get(args, "side")
    if not isinstance(raw, (list, tuple)):
        raise _fail("field 'args.side' must be a list of node ids")
    side = frozenset(_dec_int(node, "args.side[]") for node in raw)
    if not side:
        raise _fail("field 'args.side' must be a non-empty list of node ids")
    return CutQuery(side=side, window=window)


def _enc_query_spanner(query: SpannerDistanceQuery) -> dict[str, Any]:
    return {"source": _canon(query.source), "target": _canon(query.target)}


def _dec_query_spanner(args: Mapping[str, Any], window: Any) -> SpannerDistanceQuery:
    return SpannerDistanceQuery(
        source=_dec_opt_int(args.get("source"), "args.source"),
        target=_dec_opt_int(args.get("target"), "args.target"),
        window=window,
    )


def _enc_query_subgraph(query: SubgraphCountQuery) -> dict[str, Any]:
    return {"pattern": _enc_pattern(query.pattern)}


def _dec_query_subgraph(args: Mapping[str, Any], window: Any) -> SubgraphCountQuery:
    return SubgraphCountQuery(
        pattern=_dec_str(_get(args, "pattern"), "args.pattern"),
        window=window,
    )


def _enc_query_bare(query: Query) -> dict[str, Any]:
    return {}


def _make_dec_bare(
    cls: "type[Query]",
) -> "Callable[[Mapping[str, Any], Any], Query]":
    def decode(args: Mapping[str, Any], window: Any) -> Query:
        return cls(window=window)

    return decode


_QUERY_ENCODERS: "dict[type, tuple[str, Callable[[Any], dict[str, Any]]]]" = {
    ConnectivityQuery: ("connectivity", _enc_query_connectivity),
    KEdgeConnectivityQuery: ("k-edge-connectivity", _enc_query_bare),
    MinCutQuery: ("mincut", _enc_query_bare),
    CutQuery: ("cut-query", _enc_query_cut),
    SparsifierQuery: ("sparsifier", _enc_query_bare),
    SpannerDistanceQuery: ("spanner-distance", _enc_query_spanner),
    SubgraphCountQuery: ("subgraph-count", _enc_query_subgraph),
    PropertiesQuery: ("properties", _enc_query_bare),
}

_QUERY_DECODERS: "dict[str, Callable[[Mapping[str, Any], Any], Query]]" = {
    "connectivity": _dec_query_connectivity,
    "k-edge-connectivity": _make_dec_bare(KEdgeConnectivityQuery),
    "mincut": _make_dec_bare(MinCutQuery),
    "cut-query": _dec_query_cut,
    "sparsifier": _make_dec_bare(SparsifierQuery),
    "spanner-distance": _dec_query_spanner,
    "subgraph-count": _dec_query_subgraph,
    "properties": _make_dec_bare(PropertiesQuery),
}


def query_to_dict(query: Query) -> dict[str, Any]:
    """Encode one typed query as its wire-stable dict."""
    entry = _QUERY_ENCODERS.get(type(query))
    if entry is None:
        raise _fail(f"{type(query).__name__} has no wire form")
    name, encode = entry
    return {
        "v": WIRE_VERSION,
        "query": name,
        "window": _enc_window(query.window),
        "args": encode(query),
    }


def _check_envelope(payload: Any, discriminator: str) -> Mapping[str, Any]:
    if not isinstance(payload, Mapping):
        raise _fail(
            f"payload must be a mapping, got {type(payload).__name__}"
        )
    version = payload.get("v")
    if version != WIRE_VERSION:
        raise _fail(
            f"unsupported schema version {version!r} (this library speaks "
            f"v{WIRE_VERSION})"
        )
    if discriminator not in payload:
        raise _fail(f"missing discriminator field {discriminator!r}")
    return payload


def query_from_dict(payload: "Mapping[str, Any]") -> Query:
    """Decode a wire dict back to the typed query it names."""
    payload = _check_envelope(payload, "query")
    name = _dec_str(payload["query"], "query")
    decode = _QUERY_DECODERS.get(name)
    if decode is None:
        raise _fail(
            f"unknown query kind {name!r}; known: "
            f"{', '.join(sorted(_QUERY_DECODERS))}"
        )
    args = payload.get("args", {})
    if not isinstance(args, Mapping):
        raise _fail("field 'args' must be a mapping")
    return decode(args, _dec_window(payload.get("window")))


# -- result codecs -------------------------------------------------------------


def _enc_result_connectivity(result: ConnectivityResult) -> dict[str, Any]:
    return {
        "connected": _canon(result.connected),
        "components": _canon(result.components),
        "forest_edges": _canon(result.forest_edges),
        "same_component": _canon(result.same_component),
    }


def _dec_result_connectivity(p: Mapping[str, Any]) -> dict[str, Any]:
    same = p.get("same_component")
    return {
        "connected": _dec_bool(_get(p, "connected"), "connected"),
        "components": _dec_int(_get(p, "components"), "components"),
        "forest_edges": _dec_int(_get(p, "forest_edges"), "forest_edges"),
        "same_component": None if same is None else _dec_bool(same, "same_component"),
    }


def _enc_result_k_edge(result: KEdgeConnectivityResult) -> dict[str, Any]:
    return {
        "k": _canon(result.k),
        "witness_edges": _canon(result.witness_edges),
        "is_k_connected": _canon(result.is_k_connected),
    }


def _dec_result_k_edge(p: Mapping[str, Any]) -> dict[str, Any]:
    return {
        "k": _dec_int(_get(p, "k"), "k"),
        "witness_edges": _dec_int(_get(p, "witness_edges"), "witness_edges"),
        "is_k_connected": _dec_bool(_get(p, "is_k_connected"), "is_k_connected"),
    }


def _enc_result_mincut(result: MinCutQueryResult) -> dict[str, Any]:
    return {
        "value": _canon(float(result.value)),
        "stop_level": _canon(result.stop_level),
    }


def _dec_result_mincut(p: Mapping[str, Any]) -> dict[str, Any]:
    return {
        "value": _dec_float(_get(p, "value"), "value"),
        "stop_level": _dec_int(_get(p, "stop_level"), "stop_level"),
    }


def _enc_result_cut(result: CutQueryResult) -> dict[str, Any]:
    return {
        "crossing_edges": [
            [int(u), int(v), int(mult)] for u, v, mult in result.crossing_edges
        ],
        "cut_value": _canon(result.cut_value),
    }


def _dec_result_cut(p: Mapping[str, Any]) -> dict[str, Any]:
    raw = _get(p, "crossing_edges")
    if not isinstance(raw, (list, tuple)):
        raise _fail("field 'crossing_edges' must be a list")
    triples = []
    for item in raw:
        if not isinstance(item, (list, tuple)) or len(item) != 3:
            raise _fail("field 'crossing_edges' entries must be [u, v, mult]")
        triples.append((
            _dec_int(item[0], "crossing_edges[][0]"),
            _dec_int(item[1], "crossing_edges[][1]"),
            _dec_int(item[2], "crossing_edges[][2]"),
        ))
    return {
        "crossing_edges": tuple(triples),
        "cut_value": _dec_int(_get(p, "cut_value"), "cut_value"),
    }


def _enc_result_sparsifier(result: SparsifierResult) -> dict[str, Any]:
    return {
        "edges": _canon(result.edges),
        "epsilon": _canon(float(result.epsilon)),
        "sparsifier": _enc_sparsifier(result.sparsifier),
    }


def _dec_result_sparsifier(p: Mapping[str, Any]) -> dict[str, Any]:
    return {
        "edges": _dec_int(_get(p, "edges"), "edges"),
        "epsilon": _dec_float(_get(p, "epsilon"), "epsilon"),
        "sparsifier": _dec_sparsifier(_get(p, "sparsifier"), "sparsifier"),
    }


def _enc_result_spanner(result: SpannerDistanceResult) -> dict[str, Any]:
    return {
        "edges": _canon(result.edges),
        "batches": _canon(result.batches),
        "stretch_bound": _canon(float(result.stretch_bound)),
        "shipped_bytes": _canon(result.shipped_bytes),
        "distance": (
            None if result.distance is None else _canon(float(result.distance))
        ),
        "spanner": (
            None if result.spanner is None else _enc_graph(result.spanner)
        ),
    }


def _dec_result_spanner(p: Mapping[str, Any]) -> dict[str, Any]:
    distance = p.get("distance")
    spanner = p.get("spanner")
    return {
        "edges": _dec_int(_get(p, "edges"), "edges"),
        "batches": _dec_int(_get(p, "batches"), "batches"),
        "stretch_bound": _dec_float(_get(p, "stretch_bound"), "stretch_bound"),
        "shipped_bytes": _dec_int(_get(p, "shipped_bytes"), "shipped_bytes"),
        "distance": None if distance is None else _dec_float(distance, "distance"),
        "spanner": None if spanner is None else _dec_graph(spanner, "spanner"),
    }


def _enc_result_subgraph(result: SubgraphCountResult) -> dict[str, Any]:
    return {
        "pattern": _canon(result.pattern),
        "gamma": _canon(float(result.gamma)),
        "samples_used": _canon(result.samples_used),
        "samples_failed": _canon(result.samples_failed),
    }


def _dec_result_subgraph(p: Mapping[str, Any]) -> dict[str, Any]:
    return {
        "pattern": _dec_str(_get(p, "pattern"), "pattern"),
        "gamma": _dec_float(_get(p, "gamma"), "gamma"),
        "samples_used": _dec_int(_get(p, "samples_used"), "samples_used"),
        "samples_failed": _dec_int(_get(p, "samples_failed"), "samples_failed"),
    }


def _enc_result_properties(result: PropertiesResult) -> dict[str, Any]:
    return {
        "values": {
            str(key): _canon(value) for key, value in result.values.items()
        },
    }


def _dec_result_properties(p: Mapping[str, Any]) -> dict[str, Any]:
    raw = _get(p, "values")
    if not isinstance(raw, Mapping):
        raise _fail("field 'values' must be a mapping")
    values: dict[str, Any] = {}
    for key, value in raw.items():
        name = _dec_str(key, "values key")
        if isinstance(value, str) and value in _NONFINITE:
            value = _NONFINITE[value]
        elif not (value is None or isinstance(value, (bool, int, float, str))):
            raise _fail(f"field 'values[{name}]' must be a JSON scalar")
        values[name] = value
    return {"values": values}


_RESULT_CODECS: "dict[type, tuple[str, Callable[[Any], dict[str, Any]], Callable[[Mapping[str, Any]], dict[str, Any]]]]" = {  # noqa: E501
    ConnectivityResult: (
        "connectivity", _enc_result_connectivity, _dec_result_connectivity,
    ),
    KEdgeConnectivityResult: (
        "k-edge-connectivity", _enc_result_k_edge, _dec_result_k_edge,
    ),
    MinCutQueryResult: ("mincut", _enc_result_mincut, _dec_result_mincut),
    CutQueryResult: ("cut-query", _enc_result_cut, _dec_result_cut),
    SparsifierResult: (
        "sparsifier", _enc_result_sparsifier, _dec_result_sparsifier,
    ),
    SpannerDistanceResult: (
        "spanner-distance", _enc_result_spanner, _dec_result_spanner,
    ),
    SubgraphCountResult: (
        "subgraph-count", _enc_result_subgraph, _dec_result_subgraph,
    ),
    PropertiesResult: (
        "properties", _enc_result_properties, _dec_result_properties,
    ),
}

_RESULT_BY_NAME: "dict[str, type]" = {
    name: cls for cls, (name, _enc, _dec) in _RESULT_CODECS.items()
}


def result_to_dict(result: QueryResult) -> dict[str, Any]:
    """Encode one typed result as its wire-stable dict."""
    entry = _RESULT_CODECS.get(type(result))
    if entry is None:
        raise _fail(f"{type(result).__name__} has no wire form")
    name, encode, _decode = entry
    return {
        "v": WIRE_VERSION,
        "result": name,
        "kind": str(result.kind),
        "capability": str(result.capability),
        "window": _enc_window(result.window),
        "telemetry": {
            "seconds": _canon(float(result.telemetry.seconds)),
            "payload_bytes": _canon(int(result.telemetry.payload_bytes)),
        },
        "body": encode(result),
    }


def result_from_dict(payload: "Mapping[str, Any]") -> QueryResult:
    """Decode a wire dict back to the typed result it names."""
    payload = _check_envelope(payload, "result")
    name = _dec_str(payload["result"], "result")
    cls = _RESULT_BY_NAME.get(name)
    if cls is None:
        raise _fail(
            f"unknown result kind {name!r}; known: "
            f"{', '.join(sorted(_RESULT_BY_NAME))}"
        )
    _name, _encode, decode = _RESULT_CODECS[cls]
    raw_telemetry = _get(payload, "telemetry")
    if not isinstance(raw_telemetry, Mapping):
        raise _fail("field 'telemetry' must be a mapping")
    telemetry = QueryTelemetry(
        seconds=_dec_float(_get(raw_telemetry, "seconds"), "telemetry.seconds"),
        payload_bytes=_dec_int(
            _get(raw_telemetry, "payload_bytes"), "telemetry.payload_bytes"
        ),
    )
    body = _get(payload, "body")
    if not isinstance(body, Mapping):
        raise _fail("field 'body' must be a mapping")
    fields = decode(body)
    return cls(
        **fields,
        kind=_dec_str(_get(payload, "kind"), "kind"),
        capability=_dec_str(_get(payload, "capability"), "capability"),
        window=_dec_window(payload.get("window")),
        telemetry=telemetry,
    )
