"""Typed queries and results for :class:`~repro.api.GraphSketchEngine`.

One frozen dataclass per query the capability registry knows about,
plus one frozen dataclass per result.  Every result carries a
:class:`QueryTelemetry` — wall-clock seconds and the serialised payload
bytes that had to be loaded to answer (for a temporal window: the
checkpoint blobs; zero when the answer came straight off live sketch
state) — so the paper's space/accuracy trade-offs are first-class in
the API rather than something a caller reconstructs from logs.

Queries map to capability names (the vocabulary the registry sketch
classes declare in their ``CAPABILITIES`` attribute) via
:func:`capability_of`; an engine whose sketch kind does not declare a
query's capability raises :class:`~repro.errors.NotSupportedError`
instead of guessing.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from ..errors import NotSupportedError

__all__ = [
    "CAPABILITIES",
    "ConnectivityQuery",
    "ConnectivityResult",
    "CutQuery",
    "CutQueryResult",
    "KEdgeConnectivityQuery",
    "KEdgeConnectivityResult",
    "MinCutQuery",
    "MinCutQueryResult",
    "PropertiesQuery",
    "PropertiesResult",
    "Query",
    "QueryResult",
    "QueryTelemetry",
    "SpannerDistanceQuery",
    "SpannerDistanceResult",
    "SparsifierQuery",
    "SparsifierResult",
    "SubgraphCountQuery",
    "SubgraphCountResult",
    "capability_of",
]

#: The full capability vocabulary a registry sketch class may declare.
CAPABILITIES = (
    "connectivity",
    "k-edge-connectivity",
    "mincut",
    "cut-query",
    "sparsifier",
    "spanner-distance",
    "subgraph-count",
    "properties",
)


# -- queries -------------------------------------------------------------------


@dataclass(frozen=True, kw_only=True)
class Query:
    """Base class of every engine query.

    ``window`` addresses an epoch window ``[t1, t2)`` on a temporal
    engine (``None`` means the full sealed prefix); non-temporal
    engines refuse windowed queries.
    """

    window: tuple[int, int] | None = None

    def to_dict(self) -> dict[str, Any]:
        """Wire-stable dict form (schema v1, see :mod:`repro.api.wire`)."""
        from .wire import query_to_dict

        return query_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Query":
        """Decode a wire dict; raises ``WireFormatError`` when malformed.

        Called on a subclass, the decoded query must be of that
        subclass — ``ConnectivityQuery.from_dict`` refuses a mincut
        payload rather than silently returning the wrong type.
        """
        from ..errors import WireFormatError
        from .wire import query_from_dict

        query = query_from_dict(payload)
        if not isinstance(query, cls):
            raise WireFormatError(
                f"payload decodes to {type(query).__name__}, "
                f"not {cls.__name__}"
            )
        return query


@dataclass(frozen=True)
class ConnectivityQuery(Query):
    """Connected components; optionally "are ``u`` and ``v`` connected?"."""

    u: int | None = None
    v: int | None = None


@dataclass(frozen=True)
class KEdgeConnectivityQuery(Query):
    """Is the graph k-edge-connected (k fixed by the sketch)?"""


@dataclass(frozen=True)
class MinCutQuery(Query):
    """(1+ε) global minimum cut estimate (paper Fig. 1)."""


@dataclass(frozen=True)
class CutQuery(Query):
    """List the exact edges crossing ``(side, V - side)``."""

    side: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        if not isinstance(self.side, frozenset):
            object.__setattr__(self, "side", frozenset(self.side))
        if not self.side:
            raise ValueError("CutQuery needs a non-empty node set `side`")


@dataclass(frozen=True)
class SparsifierQuery(Query):
    """Extract the cut sparsifier (paper Figs. 2/3, §3.5)."""


@dataclass(frozen=True)
class SpannerDistanceQuery(Query):
    """Build the spanner; optionally a source→target distance through it."""

    source: int | None = None
    target: int | None = None


@dataclass(frozen=True)
class SubgraphCountQuery(Query):
    """γ_H frequency of an order-k pattern (paper §4).

    ``pattern`` is a :class:`~repro.core.patterns.Pattern` or the name
    of a built-in one (``"triangle"``, ``"path3"``...).
    """

    pattern: Any = "triangle"


@dataclass(frozen=True)
class PropertiesQuery(Query):
    """The sketch class's canonical scalar properties (bipartiteness,
    MST weight...), keyed by property name."""


#: Query type → the capability name a sketch class must declare.
_CAPABILITY_OF_QUERY: dict[type, str] = {
    ConnectivityQuery: "connectivity",
    KEdgeConnectivityQuery: "k-edge-connectivity",
    MinCutQuery: "mincut",
    CutQuery: "cut-query",
    SparsifierQuery: "sparsifier",
    SpannerDistanceQuery: "spanner-distance",
    SubgraphCountQuery: "subgraph-count",
    PropertiesQuery: "properties",
}


def capability_of(query: Query) -> str:
    """The capability name a sketch must declare to answer ``query``."""
    cap = _CAPABILITY_OF_QUERY.get(type(query))
    if cap is None:
        raise NotSupportedError(
            f"{type(query).__name__} is not a registered query type; "
            f"known: {', '.join(c.__name__ for c in _CAPABILITY_OF_QUERY)}"
        )
    return cap


# -- results -------------------------------------------------------------------


@dataclass(frozen=True)
class QueryTelemetry:
    """Per-query cost accounting.

    Attributes
    ----------
    seconds:
        Wall-clock time spent answering, dispatch included.
    payload_bytes:
        Serialised sketch bytes loaded to materialise the answer — the
        checkpoint blobs of a temporal window, zero for answers straight
        off live sketch state.
    """

    seconds: float
    payload_bytes: int


@dataclass(frozen=True, kw_only=True)
class QueryResult:
    """Base class of every engine answer.

    Attributes
    ----------
    kind:
        Registry kind of the sketch that answered.
    capability:
        The capability that dispatched.
    window:
        The epoch window the answer describes (``None``: live state /
        the full prefix).
    telemetry:
        Time and payload-byte accounting for this query.
    """

    kind: str
    capability: str
    window: tuple[int, int] | None = None
    telemetry: QueryTelemetry = field(
        default_factory=lambda: QueryTelemetry(0.0, 0)
    )

    def to_dict(self) -> dict[str, Any]:
        """Wire-stable dict form (schema v1, see :mod:`repro.api.wire`)."""
        from .wire import result_to_dict

        return result_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueryResult":
        """Decode a wire dict; raises ``WireFormatError`` when malformed."""
        from ..errors import WireFormatError
        from .wire import result_from_dict

        result = result_from_dict(payload)
        if not isinstance(result, cls):
            raise WireFormatError(
                f"payload decodes to {type(result).__name__}, "
                f"not {cls.__name__}"
            )
        return result


@dataclass(frozen=True, kw_only=True)
class ConnectivityResult(QueryResult):
    connected: bool
    components: int
    forest_edges: int
    #: Whether the queried ``(u, v)`` pair shares a component (``None``
    #: when the query named no pair).
    same_component: bool | None = None


@dataclass(frozen=True, kw_only=True)
class KEdgeConnectivityResult(QueryResult):
    k: int
    witness_edges: int
    is_k_connected: bool


@dataclass(frozen=True, kw_only=True)
class MinCutQueryResult(QueryResult):
    value: float
    stop_level: int


@dataclass(frozen=True, kw_only=True)
class CutQueryResult(QueryResult):
    #: ``(u, v, multiplicity)`` triples crossing the cut, sorted.
    crossing_edges: tuple[tuple[int, int, int], ...]
    cut_value: int


@dataclass(frozen=True, kw_only=True)
class SparsifierResult(QueryResult):
    edges: int
    epsilon: float
    #: The full :class:`~repro.core.sparsifier.Sparsifier` (graph,
    #: per-edge levels, provenance) for downstream cut evaluation.
    sparsifier: Any


@dataclass(frozen=True, kw_only=True)
class SpannerDistanceResult(QueryResult):
    edges: int
    batches: int
    stretch_bound: float
    shipped_bytes: int
    #: BFS distance source→target through the spanner (``None`` when
    #: the query named no pair; ``inf`` when disconnected).
    distance: float | None = None
    #: The spanner :class:`~repro.graphs.Graph` itself.
    spanner: Any = None


@dataclass(frozen=True, kw_only=True)
class SubgraphCountResult(QueryResult):
    pattern: str
    gamma: float
    samples_used: int
    samples_failed: int


@dataclass(frozen=True, kw_only=True)
class PropertiesResult(QueryResult):
    #: Scalar properties keyed by name (``bipartite``, ``mst_weight``...).
    values: Mapping[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.values[key]
