"""Deprecation plumbing for the pre-engine entry points.

The legacy surfaces (``sharded_consume``, direct
``TemporalQueryEngine`` construction, per-class ``consume``) keep
working as thin shims, but each emits a :class:`DeprecationWarning`
pointing at its :class:`~repro.api.GraphSketchEngine` equivalent (the
full mapping lives in ``docs/MIGRATION.md``).  CI promotes these
warnings to errors inside ``src/repro/api`` and the ``test_api_*``
suites, so the new surface can never quietly re-grow a dependency on
the old one.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_deprecated"]


def warn_deprecated(old: str, new: str, stacklevel: int = 3) -> None:
    """Emit the standard migration warning for a legacy entry point."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead (see docs/MIGRATION.md)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
