"""The analysis engine: parse once, run every rule, collect findings.

:func:`run_analysis` walks a source root (by default the installed
:mod:`repro` package itself), parses each module once, and dispatches
the tree to every per-module rule plus the whole-project deprecation
pass; the live-registry introspection checks run on top when analysing
the real package (they import it).  Fixture trees in the test suite run
through the same entry point with ``introspect=False``.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from . import deprecation, determinism, hygiene, purity, registry
from .astutil import ImportMap
from .findings import FAMILIES, Finding

__all__ = ["AnalysisReport", "default_source_root", "run_analysis"]

#: Per-module rule entry points, in report order.
_MODULE_CHECKS: tuple[
    Callable[[str, ast.Module, ImportMap], Iterable[Finding]], ...
] = (
    determinism.check_module,
    registry.check_module,
    purity.check_module,
    hygiene.check_module,
)


@dataclass(frozen=True)
class AnalysisReport:
    """Everything one analysis run produced.

    Attributes
    ----------
    findings:
        All findings, sorted by (path, line, rule).
    files_scanned:
        Number of ``.py`` files parsed.
    source_root:
        The directory the relative finding paths are anchored to.
    """

    findings: tuple[Finding, ...]
    files_scanned: int
    source_root: str

    def family_counts(self) -> dict[str, int]:
        """Finding count per family, every family always present."""
        counts = {family: 0 for family in FAMILIES}
        for finding in self.findings:
            counts[finding.family] += 1
        return counts

    def to_dict(self) -> dict[str, object]:
        """JSON-able report (the ``--json`` payload)."""
        return {
            "source_root": self.source_root,
            "files_scanned": self.files_scanned,
            "family_counts": self.family_counts(),
            "findings": [f.to_dict() for f in self.findings],
        }


def default_source_root() -> Path:
    """The :mod:`repro` package directory this module was imported from."""
    return Path(__file__).resolve().parents[1]


def iter_source_files(source_root: Path) -> Iterator[Path]:
    """Every ``.py`` file under ``source_root``, deterministic order."""
    yield from sorted(source_root.rglob("*.py"))


def run_analysis(
    source_root: Path | None = None, introspect: bool = True
) -> AnalysisReport:
    """Run every rule over the tree rooted at ``source_root``.

    Parameters
    ----------
    source_root:
        Directory to scan; defaults to the live ``repro`` package.
        Finding paths are relative to it, POSIX separators.
    introspect:
        Also run the import-and-introspect registry cross-checks
        (:func:`repro.analysis.registry.check_registries`).  Leave off
        when analysing fixture trees that are not the real package.

    Raises
    ------
    ValueError
        For a file that does not parse — the analyser refuses to
        silently skip code it cannot see.
    """
    root = (source_root or default_source_root()).resolve()
    findings: list[Finding] = []
    modules: dict[str, ast.Module] = {}
    for path in iter_source_files(root):
        relpath = path.relative_to(root).as_posix()
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError as err:
            raise ValueError(
                f"{relpath} does not parse ({err.msg} at line {err.lineno}); "
                "fix the syntax error before analysing"
            ) from err
        modules[relpath] = tree
        imports = ImportMap(tree)
        for check in _MODULE_CHECKS:
            findings.extend(check(relpath, tree, imports))
    findings.extend(deprecation.check_project(modules))
    if introspect:
        findings.extend(registry.check_registries())
    findings.sort()
    return AnalysisReport(
        findings=tuple(findings),
        files_scanned=len(modules),
        source_root=str(root),
    )
