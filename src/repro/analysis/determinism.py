"""Determinism rules (REP-D): seeded randomness, no wall-clock, no set order.

Sketch linearity is only useful because two sketches built anywhere —
another process, another site, another epoch — are *byte-identical*
when built from the same spec.  That guarantee dies the moment any code
on the sketch path consults an unseeded RNG, the wall clock, or Python
set iteration order (which varies with insertion history and, for
strings, with the per-process hash seed).  These rules make such code a
lint failure instead of a heisenbug in the cross-shard/temporal
equivalence suites.

Rules
-----
REP-D001
    ``np.random.default_rng()`` (or ``random.Random()``) called without
    a seed argument, anywhere in ``src/``.
REP-D002
    Use of the process-global RNG: ``random.<fn>()`` module functions
    or the legacy ``np.random.<fn>()`` global-state API, anywhere in
    ``src/``.
REP-D003
    Wall-clock reads (``time.time``, ``datetime.now``, ...) inside the
    deterministic directories (``sketch/``, ``core/``, ``distributed/``,
    ``temporal/``, ``hashing/``, ``streams/``).  ``time.perf_counter``
    stays legal: it times work, it never feeds sketch state.
REP-D004
    Iterating a ``set``/``frozenset`` in the codec/merge/serialise
    paths (``sketch/serialize.py``, ``sketch/arena.py``,
    ``core/codecs.py``, ``distributed/``, ``temporal/``) without an
    ordering wrapper — serialised bytes must not depend on set order.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .astutil import ImportMap
from .findings import FAMILY_DETERMINISM, Finding

__all__ = ["DETERMINISTIC_DIRS", "SET_ORDER_PATHS", "check_module"]

#: Directories (path prefixes) where sketch state is computed and any
#: nondeterminism breaks byte-identity.
DETERMINISTIC_DIRS = (
    "sketch/",
    "core/",
    "distributed/",
    "temporal/",
    "hashing/",
    "streams/",
)

#: Files/dirs whose byte output must not depend on set iteration order.
SET_ORDER_PATHS = (
    "sketch/serialize.py",
    "sketch/arena.py",
    "core/codecs.py",
    "distributed/",
    "temporal/",
)

#: Unseeded-constructor spellings (REP-D001).
_RNG_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "random.Random",
})

#: Legacy numpy global-state functions (REP-D002).  Seed-taking
#: constructors and types are excluded — those are REP-D001's concern.
_NP_RANDOM_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
    "BitGenerator", "RandomState",
})

#: Wall-clock callables (REP-D003), by resolved dotted name.
_WALL_CLOCK = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: Consumers whose result depends on the argument's iteration order.
_ORDER_SENSITIVE_CALLEES = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def check_module(
    relpath: str, tree: ast.Module, imports: ImportMap
) -> Iterator[Finding]:
    """Run every determinism rule over one parsed module."""
    in_deterministic_dir = relpath.startswith(DETERMINISTIC_DIRS)
    in_set_order_path = relpath.startswith(SET_ORDER_PATHS)

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            resolved = imports.resolve(node.func)
            if resolved in _RNG_CONSTRUCTORS and not node.args and not node.keywords:
                yield Finding(
                    relpath, node.lineno, "REP-D001", FAMILY_DETERMINISM,
                    f"{resolved}() called without a seed — unseeded "
                    "randomness breaks sketch byte-identity; thread an "
                    "explicit seed through",
                )
            if resolved is not None:
                if (
                    resolved.startswith("random.")
                    and resolved.count(".") == 1
                    and resolved != "random.Random"
                ):
                    yield Finding(
                        relpath, node.lineno, "REP-D002", FAMILY_DETERMINISM,
                        f"{resolved}() uses the process-global RNG; build a "
                        "seeded generator instead",
                    )
                elif (
                    resolved.startswith("numpy.random.")
                    and resolved.split(".")[-1] not in _NP_RANDOM_OK
                ):
                    yield Finding(
                        relpath, node.lineno, "REP-D002", FAMILY_DETERMINISM,
                        f"{resolved}() is the legacy numpy global-state RNG; "
                        "use a seeded np.random.default_rng(seed)",
                    )
                elif in_deterministic_dir and resolved in _WALL_CLOCK:
                    yield Finding(
                        relpath, node.lineno, "REP-D003", FAMILY_DETERMINISM,
                        f"{resolved}() reads the wall clock inside a "
                        "deterministic directory — sketch state must be a "
                        "pure function of the stream and the seed",
                    )
            if (
                in_set_order_path
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_SENSITIVE_CALLEES
                and node.args
                and _is_set_expr(node.args[0])
            ):
                yield Finding(
                    relpath, node.lineno, "REP-D004", FAMILY_DETERMINISM,
                    f"{node.func.id}() over a set on a serialise/merge path "
                    "leaks set iteration order into the output; sort first",
                )
            if (
                in_set_order_path
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
                and _is_set_expr(node.args[0])
            ):
                yield Finding(
                    relpath, node.lineno, "REP-D004", FAMILY_DETERMINISM,
                    "join() over a set on a serialise/merge path leaks set "
                    "iteration order into the output; sort first",
                )
        elif in_set_order_path and isinstance(node, ast.For):
            if _is_set_expr(node.iter):
                yield Finding(
                    relpath, node.lineno, "REP-D004", FAMILY_DETERMINISM,
                    "for-loop over a set on a serialise/merge path — "
                    "iteration order is not deterministic; sort first",
                )
        elif in_set_order_path and isinstance(
            node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)
        ):
            for generator in node.generators:
                if _is_set_expr(generator.iter):
                    yield Finding(
                        relpath, node.lineno, "REP-D004", FAMILY_DETERMINISM,
                        "comprehension over a set on a serialise/merge path "
                        "— iteration order is not deterministic; sort first",
                    )
