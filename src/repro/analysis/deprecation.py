"""Deprecation containment rules (REP-X): shims never re-grow roots.

PR 5 left the legacy entry points (``sharded_consume``, per-class
``consume``, direct ``TemporalQueryEngine`` construction) in place as
warning shims.  The engine and everything under it must never route
through them again — otherwise the warning fires inside library code
and, worse, the deprecated surface regains load-bearing callers.  These
are whole-project rules: shims are discovered in a first pass over
every module, then call sites are checked in a second.

Rules
-----
REP-X001
    A call to a deprecation shim (any function/method whose body calls
    ``warn_deprecated``, or a class whose ``__init__`` does) from a
    ``src/`` module other than the one defining it.  Method-name shims
    that collide with a same-named *non-shim* callable elsewhere in the
    tree are skipped rather than guessed at — the rule reports only
    unambiguous regressions.
REP-X002
    A direct ``warnings.warn(..., DeprecationWarning)`` outside
    ``api/deprecation.py`` — every deprecation goes through
    ``warn_deprecated`` so the message format and stacklevel policy
    live in exactly one place.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .astutil import ImportMap, dotted_name
from .findings import FAMILY_DEPRECATION, Finding

__all__ = ["DEPRECATION_HOME", "check_project"]

#: The one module allowed to emit DeprecationWarning directly.
DEPRECATION_HOME = "api/deprecation.py"


def _calls_warn_deprecated(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func) or ""
            if name == "warn_deprecated" or name.endswith(".warn_deprecated"):
                return True
    return False


def _collect_shims(
    modules: dict[str, ast.Module],
) -> tuple[dict[str, set[str]], set[str]]:
    """First pass: names of shim callables and of non-shim collisions.

    Returns ``(shims, non_shims)`` where ``shims`` maps a callable name
    to the modules defining it as a shim, and ``non_shims`` holds every
    name also defined as a regular (non-warning) function/method
    somewhere — those are ambiguous at a call site and skipped.
    """
    shims: dict[str, set[str]] = {}
    non_shims: set[str] = set()
    for relpath, tree in modules.items():
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if not isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    is_shim = _calls_warn_deprecated(stmt)
                    # A shim __init__ makes the *class name* the shim:
                    # the deprecated act is constructing the object.
                    name = node.name if stmt.name == "__init__" else stmt.name
                    if is_shim:
                        shims.setdefault(name, set()).add(relpath)
                    elif stmt.name != "__init__":
                        non_shims.add(stmt.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _calls_warn_deprecated(node):
                    shims.setdefault(node.name, set()).add(relpath)
                else:
                    non_shims.add(node.name)
    return shims, non_shims


def check_project(modules: dict[str, ast.Module]) -> Iterator[Finding]:
    """Run the whole-project deprecation rules.

    ``modules`` maps source-root-relative POSIX paths to parsed trees.
    """
    shims, non_shims = _collect_shims(modules)
    flaggable = {
        name: defining
        for name, defining in shims.items()
        if name not in non_shims
    }
    for relpath, tree in modules.items():
        imports = ImportMap(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            called = dotted_name(node.func)
            if called is not None and relpath != DEPRECATION_HOME:
                resolved = imports.resolve(node.func) or called
                leaf = called.split(".")[-1]
                if (
                    leaf == "warn"
                    and resolved in ("warnings.warn", "warn")
                    and any(
                        (dotted_name(arg) or "").endswith("DeprecationWarning")
                        for arg in list(node.args) + [
                            kw.value for kw in node.keywords
                        ]
                    )
                ):
                    yield Finding(
                        relpath, node.lineno, "REP-X002", FAMILY_DEPRECATION,
                        "DeprecationWarning emitted directly; route it "
                        "through api/deprecation.warn_deprecated so the "
                        "policy lives in one place",
                    )
            if called is None:
                continue
            leaf = called.split(".")[-1]
            defining = flaggable.get(leaf)
            if not defining or relpath in defining:
                continue
            if relpath == DEPRECATION_HOME:
                continue
            yield Finding(
                relpath, node.lineno, "REP-X001", FAMILY_DEPRECATION,
                f"call to deprecated shim {leaf}() (defined in "
                f"{', '.join(sorted(defining))}) from library code — "
                "library internals must use the GraphSketchEngine surface",
            )
