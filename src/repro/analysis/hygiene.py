"""API hygiene rules (REP-H): annotations, excepts, frozen dataclasses.

The engine facade is the public contract of the repo; the exception
hierarchy is the error contract.  These rules keep both honest: public
API callables carry complete type annotations (the mypy ratchet depends
on it), no handler silently swallows everything, and frozen dataclasses
stay frozen outside their construction hooks.

Rules
-----
REP-H001
    A public (non-underscore) function/method in the public-surface
    directories (``api/``, ``analysis/``, ``serve/``, ``errors.py``)
    missing a parameter or return annotation.
REP-H002
    A bare ``except:`` anywhere in ``src/``, or an ``except`` handler
    whose entire body is ``pass`` (a silent swallow).
REP-H003
    Mutation of a frozen dataclass: ``self.attr = ...`` in a method of
    a class decorated ``@dataclass(frozen=True)``, or
    ``object.__setattr__`` outside the construction hooks
    (``__init__``/``__post_init__``/``__new__``) where frozen
    dataclasses legitimately use it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .astutil import ImportMap, dotted_name, iter_parents, walk_with_parents
from .findings import FAMILY_HYGIENE, Finding

__all__ = ["ANNOTATED_PATHS", "check_module"]

#: Paths whose public callables must be fully annotated (REP-H001).
ANNOTATED_PATHS = ("api/", "analysis/", "errors.py", "serve/")

_CONSTRUCTION_HOOKS = frozenset({"__init__", "__post_init__", "__new__"})


def _is_frozen_dataclass(node: ast.ClassDef, imports: ImportMap) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        resolved = imports.resolve(target) or dotted_name(target) or ""
        if resolved not in ("dataclasses.dataclass", "dataclass"):
            continue
        if not isinstance(deco, ast.Call):
            return False  # bare @dataclass: frozen defaults to False
        for kw in deco.keywords:
            if kw.arg == "frozen":
                return (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                )
        return False
    return False


def _missing_annotations(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    missing: list[str] = []
    args = fn.args
    positional = list(args.posonlyargs) + list(args.args)
    is_method = bool(positional) and positional[0].arg in ("self", "cls")
    for arg in positional[1 if is_method else 0:] + list(args.kwonlyargs):
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    if fn.returns is None:
        missing.append("return")
    return missing


def check_module(
    relpath: str, tree: ast.Module, imports: ImportMap
) -> Iterator[Finding]:
    """Run every hygiene rule over one parsed module."""
    annotations_required = relpath.startswith(ANNOTATED_PATHS)

    frozen_classes: set[ast.ClassDef] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and _is_frozen_dataclass(node, imports):
            frozen_classes.add(node)

    for node, parents in walk_with_parents(tree):
        if isinstance(node, ast.ExceptHandler):
            if node.type is None:
                yield Finding(
                    relpath, node.lineno, "REP-H002", FAMILY_HYGIENE,
                    "bare except: catches SystemExit/KeyboardInterrupt too; "
                    "name the exception types",
                )
            elif all(isinstance(stmt, ast.Pass) for stmt in node.body):
                yield Finding(
                    relpath, node.lineno, "REP-H002", FAMILY_HYGIENE,
                    "except handler silently swallows the exception "
                    "(body is just pass); handle it or let it propagate",
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not annotations_required or node.name.startswith("_"):
                continue
            enclosing_defs = list(
                iter_parents(parents, ast.FunctionDef, ast.AsyncFunctionDef)
            )
            if enclosing_defs:
                continue  # nested helpers are implementation detail
            owner = next(iter(iter_parents(parents, ast.ClassDef)), None)
            if owner is not None and owner.name.startswith("_"):
                continue
            missing = _missing_annotations(node)
            if missing:
                where = f"{owner.name}.{node.name}" if owner else node.name
                yield Finding(
                    relpath, node.lineno, "REP-H001", FAMILY_HYGIENE,
                    f"public callable {where}() is missing annotations for: "
                    f"{', '.join(missing)} — the public surface must be "
                    "fully typed",
                )
        elif isinstance(node, ast.Assign):
            owner = next(iter(iter_parents(parents, ast.ClassDef)), None)
            if owner is None or owner not in frozen_classes:
                continue
            method = next(
                iter(iter_parents(parents, ast.FunctionDef, ast.AsyncFunctionDef)),
                None,
            )
            if method is None or method.name in _CONSTRUCTION_HOOKS:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    yield Finding(
                        relpath, node.lineno, "REP-H003", FAMILY_HYGIENE,
                        f"method {owner.name}.{method.name}() assigns "
                        f"self.{target.attr} on a frozen dataclass — this "
                        "raises FrozenInstanceError at runtime",
                    )
        elif isinstance(node, ast.Call):
            resolved = dotted_name(node.func)
            if resolved != "object.__setattr__":
                continue
            method = next(
                iter(iter_parents(parents, ast.FunctionDef, ast.AsyncFunctionDef)),
                None,
            )
            if method is not None and method.name in _CONSTRUCTION_HOOKS:
                continue
            yield Finding(
                relpath, node.lineno, "REP-H003", FAMILY_HYGIENE,
                "object.__setattr__ outside __init__/__post_init__/__new__ "
                "mutates a frozen object behind the type checker's back",
            )
