"""repro.analysis — the repo-specific invariant linter.

Pure-Python :mod:`ast` passes (plus one import-and-introspect registry
cross-check) that enforce the invariants every correctness claim in
this reproduction rests on: deterministic seeded randomness, complete
four-site registration of every sketch kind, batched hot paths, a
fully-annotated public API, and contained deprecation shims.  See
``docs/INVARIANTS.md`` for the full catalogue and rationale, and run
``python -m repro.analysis --check`` for the CI gate.
"""

from __future__ import annotations

from .baseline import Baseline, compare_to_baseline
from .cli import main
from .engine import AnalysisReport, default_source_root, run_analysis
from .findings import (
    FAMILIES,
    FAMILY_DEPRECATION,
    FAMILY_DETERMINISM,
    FAMILY_HYGIENE,
    FAMILY_PURITY,
    FAMILY_REGISTRY,
    ZERO_TOLERANCE_FAMILIES,
    Finding,
)
from .registry import check_registries

__all__ = [
    "AnalysisReport",
    "Baseline",
    "FAMILIES",
    "FAMILY_DEPRECATION",
    "FAMILY_DETERMINISM",
    "FAMILY_HYGIENE",
    "FAMILY_PURITY",
    "FAMILY_REGISTRY",
    "Finding",
    "ZERO_TOLERANCE_FAMILIES",
    "check_registries",
    "compare_to_baseline",
    "default_source_root",
    "main",
    "run_analysis",
]
