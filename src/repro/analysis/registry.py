"""Registry completeness rules (REP-R): no half-registered sketch kinds.

Adding a sketch kind touches four places: the serialisation codec
registry (``sketch/serialize.py`` via ``core/codecs.py``), the
``CAPABILITIES`` declaration on the class, the ``_cell_banks()`` arena
hook, and the capability registry in ``api/capabilities.py``.  Miss one
and the failure is a *runtime* surprise — a kind that shards but cannot
snapshot, or answers queries locally but explodes under
``merge_sketch_bytes``.  These rules turn each gap into a lint failure.

Two halves:

* **AST** (:func:`check_module`) — structural checks that need no
  imports: every class subclassing ``ArenaBacked`` must define
  ``_cell_banks`` in its own body (REP-R004), and ``CAPABILITIES``
  declarations must be literal ``frozenset({...})`` of string constants
  so the import-time vocabulary check cannot be bypassed (REP-R005).
* **Introspection** (:func:`check_registries`) — imports the live
  package and cross-checks the codec registry against the capability
  registry: every codec kind must declare a non-empty ``CAPABILITIES``
  (REP-R001), override ``_cell_banks`` (REP-R002), and be reachable
  from ``api/capabilities.py`` under the same kind name and class —
  and vice versa for serialisable capability entries (REP-R003).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .astutil import ImportMap
from .findings import FAMILY_REGISTRY, Finding

__all__ = ["check_module", "check_registries"]

#: Path findings from the live-registry cross-check are attributed to.
_REGISTRY_PATH = "<registry>"


# -- AST half ------------------------------------------------------------------


def _is_frozenset_of_strings(node: ast.expr) -> bool:
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "frozenset"
    ):
        return False
    if not node.args:
        return not node.keywords  # frozenset() — empty is structurally fine
    if len(node.args) != 1 or node.keywords:
        return False
    arg = node.args[0]
    if not isinstance(arg, (ast.Set, ast.List, ast.Tuple)):
        return False
    return all(
        isinstance(elt, ast.Constant) and isinstance(elt.value, str)
        for elt in arg.elts
    )


def check_module(
    relpath: str, tree: ast.Module, imports: ImportMap
) -> Iterator[Finding]:
    """AST-side registry checks for one module."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        base_names = {imports.resolve(base) or "" for base in node.bases}
        is_arena_backed = any(
            name == "ArenaBacked" or name.endswith(".ArenaBacked")
            for name in base_names
        )
        defines_cell_banks = any(
            isinstance(stmt, ast.FunctionDef) and stmt.name == "_cell_banks"
            for stmt in node.body
        )
        if is_arena_backed and not defines_cell_banks:
            yield Finding(
                relpath, node.lineno, "REP-R004", FAMILY_REGISTRY,
                f"class {node.name} subclasses ArenaBacked but does not "
                "define _cell_banks(); the arena cannot adopt its state "
                "and codec v2 / zero-copy merge will fail at runtime",
            )
        for stmt in node.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not any(
                isinstance(t, ast.Name) and t.id == "CAPABILITIES"
                for t in targets
            ):
                continue
            if not _is_frozenset_of_strings(value):
                yield Finding(
                    relpath, stmt.lineno, "REP-R005", FAMILY_REGISTRY,
                    f"class {node.name} declares CAPABILITIES as something "
                    "other than a literal frozenset of capability-name "
                    "strings; the registry's import-time vocabulary check "
                    "needs the literal form",
                )


# -- introspection half --------------------------------------------------------


def check_registries() -> list[Finding]:
    """Cross-check the live codec and capability registries.

    Imports :mod:`repro` — run this against the installed/source tree
    being analysed, not against fixtures.  Every finding names the kind
    and the missing registration site.
    """
    from ..api.capabilities import capability_entry, registered_kinds
    from ..errors import NotSupportedError
    from ..sketch.arena import ArenaBacked
    from ..sketch.serialize import serializable_sketch_kinds, sketch_codec

    findings: list[Finding] = []
    codec_kinds = serializable_sketch_kinds()
    for kind in codec_kinds:
        cls = sketch_codec(kind).cls
        declared = cls.__dict__.get("CAPABILITIES")
        if declared is None or not frozenset(declared):
            findings.append(Finding(
                _REGISTRY_PATH, 0, "REP-R001", FAMILY_REGISTRY,
                f"codec kind {kind!r} ({cls.__name__}) does not declare a "
                "non-empty CAPABILITIES frozenset on the class itself — "
                "the engine would register it with no answerable queries",
            ))
        cell_banks = getattr(cls, "_cell_banks", None)
        if cell_banks is None or cell_banks is ArenaBacked._cell_banks:
            findings.append(Finding(
                _REGISTRY_PATH, 0, "REP-R002", FAMILY_REGISTRY,
                f"codec kind {kind!r} ({cls.__name__}) does not override "
                "_cell_banks(); its arena cannot be adopted and codec v2 "
                "payloads cannot be folded into it",
            ))
        try:
            entry = capability_entry(kind)
        except NotSupportedError:
            findings.append(Finding(
                _REGISTRY_PATH, 0, "REP-R003", FAMILY_REGISTRY,
                f"codec kind {kind!r} is serialisable but unreachable from "
                "api/capabilities.py — register a CapabilityEntry so the "
                "engine can build and query it",
            ))
        else:
            if entry.cls is not cls:
                findings.append(Finding(
                    _REGISTRY_PATH, 0, "REP-R003", FAMILY_REGISTRY,
                    f"kind {kind!r} maps to {cls.__name__} in the codec "
                    f"registry but {entry.cls.__name__} in the capability "
                    "registry — the two registries disagree",
                ))
            elif not entry.serialisable:
                findings.append(Finding(
                    _REGISTRY_PATH, 0, "REP-R003", FAMILY_REGISTRY,
                    f"kind {kind!r} has a codec but its capability entry "
                    "says serialisable=False — snapshots and sharding "
                    "would be refused despite working",
                ))
    codec_kind_set = frozenset(codec_kinds)
    for kind in registered_kinds():
        entry = capability_entry(kind)
        if entry.serialisable and kind not in codec_kind_set:
            findings.append(Finding(
                _REGISTRY_PATH, 0, "REP-R003", FAMILY_REGISTRY,
                f"capability kind {kind!r} claims serialisable=True but "
                "has no codec in sketch/serialize.py — snapshot(), "
                "sharding, and epochs would fail at runtime",
            ))
    return findings
