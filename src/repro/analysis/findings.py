"""Finding records shared by every analysis rule.

A :class:`Finding` is one violation of one rule at one source location.
Rules are grouped into *families* (determinism, registry, purity,
hygiene, deprecation — see ``docs/INVARIANTS.md`` for what each family
protects and why sketch linearity needs it).  Two families are
*zero-tolerance*: determinism and registry findings always fail
``--check`` regardless of any committed baseline, because each one is a
latent correctness bug — an unseeded RNG or a half-registered sketch
kind silently breaks the byte-identity guarantees the cross-shard and
temporal equivalence suites pin.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = [
    "FAMILIES",
    "FAMILY_DEPRECATION",
    "FAMILY_DETERMINISM",
    "FAMILY_HYGIENE",
    "FAMILY_PURITY",
    "FAMILY_REGISTRY",
    "Finding",
    "ZERO_TOLERANCE_FAMILIES",
]

FAMILY_DETERMINISM = "determinism"
FAMILY_REGISTRY = "registry"
FAMILY_PURITY = "purity"
FAMILY_HYGIENE = "hygiene"
FAMILY_DEPRECATION = "deprecation"

#: Every rule family, in report order.
FAMILIES = (
    FAMILY_DETERMINISM,
    FAMILY_REGISTRY,
    FAMILY_PURITY,
    FAMILY_HYGIENE,
    FAMILY_DEPRECATION,
)

#: Families whose findings always fail ``--check``, baseline or not.
ZERO_TOLERANCE_FAMILIES = frozenset({FAMILY_DETERMINISM, FAMILY_REGISTRY})


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        Path relative to the analysed source root, POSIX separators
        (``"sketch/serialize.py"``); ``"<registry>"`` for findings from
        the import-and-introspect checks, which have no single source
        line.
    line:
        1-based line number (0 for introspection findings).
    rule:
        Stable rule id (``"REP-D001"``); the leading letter after
        ``REP-`` names the family.
    family:
        Rule family name (one of :data:`FAMILIES`).
    message:
        Human-readable description of the violation.
    """

    path: str
    line: int
    rule: str
    family: str
    message: str

    def to_dict(self) -> dict[str, object]:
        """JSON-able representation (``--json`` output, baselines)."""
        return asdict(self)

    def render(self) -> str:
        """One-line human rendering: ``path:line: RULE message``."""
        location = self.path if self.line == 0 else f"{self.path}:{self.line}"
        return f"{location}: {self.rule} [{self.family}] {self.message}"
