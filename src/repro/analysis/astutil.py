"""Small shared AST helpers for the analysis rules.

Every rule works on plain :mod:`ast` trees — no runtime imports, no
third-party parsers — so the analyser can lint a module whose imports
would fail (or would execute side effects) in the linting environment.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

__all__ = [
    "ImportMap",
    "call_name",
    "dotted_name",
    "iter_parents",
    "walk_with_parents",
]


class ImportMap:
    """What each local name refers to, from a module's import statements.

    Maps local aliases to fully-qualified dotted names: after
    ``import numpy as np`` the map holds ``{"np": "numpy"}``; after
    ``from numpy.random import default_rng as rng`` it holds
    ``{"rng": "numpy.random.default_rng"}``.  Good enough for the
    module-level idioms this codebase uses; rules fall back to literal
    attribute chains for anything fancier.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, expr: ast.expr) -> str | None:
        """The fully-qualified dotted name ``expr`` refers to, if known.

        ``np.random.default_rng`` resolves to
        ``"numpy.random.default_rng"`` under ``import numpy as np``;
        unknown roots resolve through unchanged (``foo.bar`` stays
        ``"foo.bar"``), so callers can match both imported and literal
        spellings with one string compare.
        """
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        resolved_root = self.aliases.get(root, root)
        return f"{resolved_root}.{rest}" if rest else resolved_root


def dotted_name(expr: ast.expr) -> str | None:
    """``a.b.c`` as a string for Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def call_name(node: ast.Call) -> str | None:
    """The called function's dotted spelling (``"np.random.default_rng"``)."""
    return dotted_name(node.func)


def walk_with_parents(
    tree: ast.AST,
) -> Iterator[tuple[ast.AST, tuple[ast.AST, ...]]]:
    """Yield ``(node, parents)`` pairs, parents innermost-last."""

    def visit(
        node: ast.AST, parents: tuple[ast.AST, ...]
    ) -> Iterator[tuple[ast.AST, tuple[ast.AST, ...]]]:
        yield node, parents
        for child in ast.iter_child_nodes(node):
            yield from visit(child, parents + (node,))

    return visit(tree, ())


def iter_parents(
    parents: tuple[ast.AST, ...], *types: type
) -> Iterator[ast.AST]:
    """Enclosing nodes of the given types, innermost first."""
    for node in reversed(parents):
        if isinstance(node, types):
            yield node
