"""``python -m repro.analysis`` — the invariant linter's command line.

Modes
-----
``python -m repro.analysis``
    Report every finding; exit 1 if there are any (plain linter mode,
    no baseline allowance).
``python -m repro.analysis --check``
    The CI gate: exit 0 when every finding is either fixed or within
    the committed baseline, with determinism/registry findings always
    fatal.  A baseline bucket that grew fails; one that shrank prints
    an advisory to regenerate.
``python -m repro.analysis --json``
    Machine-readable report on stdout (combinable with ``--check``).
``python -m repro.analysis --write-baseline``
    Regenerate the baseline file from the current findings (excluding
    the zero-tolerance families, which are never baselined).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import Baseline, compare_to_baseline
from .engine import AnalysisReport, default_source_root, run_analysis
from .findings import FAMILIES

__all__ = ["main"]

_BASELINE_NAME = "analysis_baseline.json"


def _find_default_baseline(start: Path) -> Path | None:
    """Walk up from ``start`` looking for the committed baseline file."""
    for directory in (start, *start.parents):
        candidate = directory / _BASELINE_NAME
        if candidate.is_file():
            return candidate
        if (directory / "pyproject.toml").is_file():
            # Repo root reached; the baseline lives here or nowhere.
            return candidate if candidate.is_file() else None
    return None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Repo-specific invariant linter for the sketch stack: "
            "determinism, registry completeness, hot-path purity, API "
            "hygiene, deprecation containment (see docs/INVARIANTS.md)."
        ),
    )
    parser.add_argument(
        "--src",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "source root to analyse (default: the imported repro package "
            "directory)"
        ),
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "gate mode: exit 0 iff findings are within the baseline and "
            "the zero-tolerance families are clean"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full report as JSON on stdout",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            f"baseline file (default: {_BASELINE_NAME} found by walking up "
            "from the current directory)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit",
    )
    parser.add_argument(
        "--no-introspect",
        action="store_true",
        help=(
            "skip the import-and-introspect registry cross-checks (for "
            "analysing trees that are not the live repro package)"
        ),
    )
    return parser


def _print_report(report: AnalysisReport) -> None:
    for finding in report.findings:
        print(finding.render())
    counts = report.family_counts()
    summary = ", ".join(f"{family}={counts[family]}" for family in FAMILIES)
    print(
        f"repro.analysis: {len(report.findings)} finding(s) across "
        f"{report.files_scanned} file(s) [{summary}]"
    )


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    baseline_path = args.baseline or _find_default_baseline(Path.cwd())

    report = run_analysis(
        source_root=args.src or default_source_root(),
        introspect=not args.no_introspect,
    )

    if args.write_baseline:
        target = args.baseline or baseline_path or Path.cwd() / _BASELINE_NAME
        Baseline.from_findings(report.findings).dump(target)
        print(
            f"repro.analysis: wrote baseline ({len(report.findings)} "
            f"finding(s) considered) to {target}"
        )
        return 0

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        _print_report(report)

    if not args.check:
        return 1 if report.findings else 0

    baseline = (
        Baseline.load(baseline_path)
        if baseline_path is not None and baseline_path.is_file()
        else Baseline()
    )
    blocking, notes = compare_to_baseline(report.findings, baseline)
    for note in notes:
        print(f"repro.analysis: note: {note}")
    if blocking:
        if not args.json:
            print(
                f"repro.analysis: FAIL — {len(blocking)} finding(s) not "
                "covered by the baseline (determinism/registry findings "
                "are never baselined):"
            )
            for finding in blocking:
                print(f"  {finding.render()}")
        return 1
    print("repro.analysis: OK — all invariants hold")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
