"""Hot-path purity rules (REP-P): batched ingestion, pickling at seams only.

PR 1 made columnar ``consume_batch``/``ingest_batch`` the only
sanctioned ingestion path (25–60× over per-token loops); PR 4 made the
arena codec the only sanctioned byte format.  Code that quietly loops
``update()``/``consume()`` over individual stream tokens, or pickles
sketch state outside the process-spawn seam, re-opens exactly the
performance and compatibility holes those PRs closed.

Rules
-----
REP-P001
    A ``for``/``while`` loop over a stream-like iterable (an expression
    mentioning ``updates``/``stream``/``tokens``) whose body feeds the
    loop variable to ``.update()`` or ``.consume()`` — the per-token
    anti-pattern.  Applies to the hot-path directories (``sketch/``,
    ``core/``, ``distributed/``, ``temporal/``, ``api/``); the scalar
    reference fallback in ``sketch/base.py`` is exempt by design.
REP-P002
    ``pickle``/``cPickle``/``dill`` imported or used outside the
    sanctioned process-spawn seam (``distributed/coordinator.py``,
    ``distributed/factories.py``).  Sketch bytes travel through the
    versioned codec, never through pickle.
REP-P003
    An element subscript of a cell-field array (``.phi``/``.iota``/
    ``.fp1``/``.fp2`` attributes, or the unambiguous bare names
    ``fp1``/``fp2``) inside a Python ``for``/``while`` loop, anywhere
    outside ``repro/kernels/``.  Per-cell Python loops are exactly what
    the kernel subsystem exists to own — vectorised call sites pass
    whole index arrays, they never walk cells one at a time.  Whole-
    array slice assignments (``bank.phi[:] = ...``) are fine.  The
    pre-kernel scalar decoders in ``sketch/sparse_recovery.py`` are
    tolerated via the baseline ratchet (shrink-only); new per-cell
    loops are not (see ``docs/KERNELS.md``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .astutil import ImportMap, dotted_name, iter_parents, walk_with_parents
from .findings import FAMILY_PURITY, Finding

__all__ = ["HOT_PATH_DIRS", "PICKLE_SEAMS", "check_module"]

#: Directories where per-token ingestion loops are forbidden.
HOT_PATH_DIRS = ("sketch/", "core/", "distributed/", "temporal/", "api/")

#: Files allowed to touch pickle (the multiprocessing spawn seam).
PICKLE_SEAMS = ("distributed/coordinator.py", "distributed/factories.py")

#: Files exempt from REP-P001 (documented scalar reference fallbacks).
_P001_EXEMPT = ("sketch/base.py",)

_PICKLE_MODULES = frozenset({"pickle", "cPickle", "dill"})

_STREAMISH_FRAGMENTS = ("stream", "updates", "tokens")

_PER_TOKEN_METHODS = frozenset({"update", "consume"})

#: The four cell-field arrays every bank/arena exposes (REP-P003).
_CELL_FIELDS = frozenset({"phi", "iota", "fp1", "fp2"})

#: Bare local names that unambiguously mean a cell array.  ``phi`` and
#: ``iota`` double as paper notation for other vectors (e.g. the
#: spanner's partition map), so only attribute access identifies them.
_CELL_NAMES = frozenset({"fp1", "fp2"})

#: The only directory allowed to loop over individual cells.
_P003_KERNEL_DIR = "kernels/"


def _is_cell_array(expr: ast.expr) -> bool:
    """Is the expression a cell-field array (``x.phi``, or bare ``fp1``)?"""
    if isinstance(expr, ast.Attribute):
        return expr.attr in _CELL_FIELDS
    return isinstance(expr, ast.Name) and expr.id in _CELL_NAMES


def _is_streamish(expr: ast.expr) -> bool:
    """Does the iterable expression look like a stream of tokens?"""
    dotted = dotted_name(expr)
    if dotted is None:
        # stream.updates()[...] , list(stream) , stream.updates() ...
        for node in ast.walk(expr):
            sub = dotted_name(node) if isinstance(node, ast.expr) else None
            if sub and any(f in sub.lower() for f in _STREAMISH_FRAGMENTS):
                return True
        return False
    return any(f in dotted.lower() for f in _STREAMISH_FRAGMENTS)


def _loop_target_names(target: ast.expr) -> frozenset[str]:
    return frozenset(
        node.id for node in ast.walk(target) if isinstance(node, ast.Name)
    )


def check_module(
    relpath: str, tree: ast.Module, imports: ImportMap
) -> Iterator[Finding]:
    """Run both purity rules over one parsed module."""
    in_hot_path = relpath.startswith(HOT_PATH_DIRS) and not relpath.startswith(
        _P001_EXEMPT
    )
    pickle_allowed = relpath.startswith(PICKLE_SEAMS)
    cell_loops_allowed = relpath.startswith(_P003_KERNEL_DIR)
    p003_lines: set[int] = set()

    for node, parents in walk_with_parents(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)) and not pickle_allowed:
            module = node.module if isinstance(node, ast.ImportFrom) else None
            names = [alias.name for alias in node.names]
            roots = (
                {(module or "").split(".")[0]}
                if isinstance(node, ast.ImportFrom)
                else {name.split(".")[0] for name in names}
            )
            if roots & _PICKLE_MODULES:
                yield Finding(
                    relpath, node.lineno, "REP-P002", FAMILY_PURITY,
                    "pickle imported outside the sanctioned process-spawn "
                    f"seam ({', '.join(PICKLE_SEAMS)}); sketch bytes travel "
                    "through the versioned codec, never pickle",
                )
        elif isinstance(node, ast.Call) and not pickle_allowed:
            resolved = imports.resolve(node.func)
            if resolved and resolved.split(".")[0] in _PICKLE_MODULES:
                yield Finding(
                    relpath, node.lineno, "REP-P002", FAMILY_PURITY,
                    f"{resolved}() called outside the sanctioned "
                    "process-spawn seam; use dump_sketch/load_sketch",
                )
        if (
            not cell_loops_allowed
            and isinstance(node, ast.Subscript)
            and _is_cell_array(node.value)
            and not isinstance(node.slice, ast.Slice)
            and node.lineno not in p003_lines
            and any(iter_parents(parents, ast.For, ast.While))
        ):
            p003_lines.add(node.lineno)
            yield Finding(
                relpath, node.lineno, "REP-P003", FAMILY_PURITY,
                "per-cell subscript of a cell-field array inside a Python "
                "loop — per-cell hot loops belong to repro/kernels/ "
                "(vectorised call sites pass whole index arrays; see "
                "docs/KERNELS.md)",
            )
        if (
            in_hot_path
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _PER_TOKEN_METHODS
        ):
            arg_names = {
                arg.id for arg in node.args if isinstance(arg, ast.Name)
            }
            if not arg_names:
                continue
            for loop in iter_parents(parents, ast.For):
                assert isinstance(loop, ast.For)
                if not _is_streamish(loop.iter):
                    continue
                if arg_names & _loop_target_names(loop.target):
                    yield Finding(
                        relpath, node.lineno, "REP-P001", FAMILY_PURITY,
                        f".{node.func.attr}() called once per stream token "
                        "inside a loop — use the columnar consume_batch/"
                        "ingest_batch path (25-60x faster, same bytes)",
                    )
                    break
