"""The strictness ratchet: a committed baseline that may only shrink.

A baseline records, per ``rule:path`` bucket, how many findings were
known (and tolerated) when it was written.  ``--check`` fails when any
bucket *grows* or a new bucket appears; shrinking is always allowed —
fix a finding and CI stays green, then ``--write-baseline`` records the
smaller count so it can never come back.  The zero-tolerance families
(determinism, registry) ignore the baseline entirely: those findings
fail ``--check`` even if a stale baseline lists them.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Iterable
from pathlib import Path

from .findings import ZERO_TOLERANCE_FAMILIES, Finding

__all__ = [
    "Baseline",
    "baseline_key",
    "compare_to_baseline",
]

_VERSION = 1


def baseline_key(finding: Finding) -> str:
    """The ratchet bucket a finding counts against (line numbers drift)."""
    return f"{finding.rule}:{finding.path}"


class Baseline:
    """A committed ``rule:path -> tolerated count`` map."""

    def __init__(self, counts: dict[str, int] | None = None) -> None:
        self.counts: dict[str, int] = dict(counts or {})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """A baseline tolerating exactly the given findings.

        Zero-tolerance findings are never written into a baseline —
        they must be fixed, not ratcheted.
        """
        counter = Counter(
            baseline_key(f)
            for f in findings
            if f.family not in ZERO_TOLERANCE_FAMILIES
        )
        return cls(dict(sorted(counter.items())))

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file, validating its shape."""
        data = json.loads(path.read_text(encoding="utf-8"))
        if (
            not isinstance(data, dict)
            or data.get("version") != _VERSION
            or not isinstance(data.get("counts"), dict)
        ):
            raise ValueError(
                f"{path} is not a version-{_VERSION} analysis baseline"
            )
        counts: dict[str, int] = {}
        for key, value in data["counts"].items():
            if not isinstance(key, str) or not isinstance(value, int) or value <= 0:
                raise ValueError(
                    f"{path}: baseline entry {key!r}: {value!r} is not a "
                    "positive finding count"
                )
            counts[key] = value
        return cls(counts)

    def dump(self, path: Path) -> None:
        """Write the baseline as stable, reviewable JSON."""
        payload = {
            "version": _VERSION,
            "comment": (
                "Findings tolerated by `python -m repro.analysis --check`. "
                "This file may only shrink: fix a finding, then regenerate "
                "with --write-baseline. Determinism and registry findings "
                "are never baselined."
            ),
            "counts": dict(sorted(self.counts.items())),
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )


def compare_to_baseline(
    findings: Iterable[Finding], baseline: Baseline
) -> tuple[list[Finding], list[str]]:
    """Split findings into (blocking, shrunk-bucket notes).

    A finding blocks when its family is zero-tolerance, or when its
    ``rule:path`` bucket exceeds the baselined count.  Buckets whose
    live count dropped below the baseline produce advisory notes
    suggesting a baseline refresh (the ratchet's "only shrink" half is
    enforced by regenerating the file, not by failing the build).
    """
    findings = list(findings)
    blocking: list[Finding] = []
    over_budget: Counter[str] = Counter()
    live: Counter[str] = Counter()
    for finding in findings:
        if finding.family in ZERO_TOLERANCE_FAMILIES:
            blocking.append(finding)
            continue
        key = baseline_key(finding)
        live[key] += 1
        if live[key] > baseline.counts.get(key, 0):
            blocking.append(finding)
            over_budget[key] += 1
    notes = [
        f"baseline bucket {key} tolerates {allowed} finding(s) but only "
        f"{live.get(key, 0)} remain — shrink it with --write-baseline"
        for key, allowed in sorted(baseline.counts.items())
        if live.get(key, 0) < allowed
    ]
    return blocking, notes
