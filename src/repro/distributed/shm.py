"""Shared-memory segments for process-mode site execution.

Process mode used to pickle numpy columns into every worker and pickle
serialised sketch payloads back out — faithful to the paper's
communication accounting, but it pushed ~2× the sketch bytes through
pipes on every run and made ``mode="process"`` *slower* than
sequential.  This module is the zero-copy alternative: the coordinator
owns a small set of named ``multiprocessing.shared_memory`` segments,
each worker maps them once and folds its site's deltas straight into a
per-site slot, and the only thing a site "ships" back through the pool
is a ``(site, tokens, nbytes, seconds)`` tuple.

Segment naming
--------------
``rsk<pid hex>-<seq hex>`` — the creating process id plus a
module-level monotonic counter.  Unique within a machine without
consulting an RNG (unseeded randomness is banned repo-wide, REP-D001)
and comfortably inside macOS's ~31-character POSIX shm name limit.
Growing a segment allocates a *new* name (a generation bump): workers
detect staleness by comparing names, never by guessing whether an old
mapping moved or resized underneath them.

Lifetime and crash cleanup
--------------------------
A :class:`SegmentRegistry` is the single owner of every segment it
creates.  ``close()`` unlinks deterministically; a ``weakref.finalize``
covers registries that are garbage-collected without ``close()``; and
because the creating process keeps its ``resource_tracker``
registration, segments are unlinked even if the coordinator process
dies hard.  Workers only *attach*, and attaching stays ownership-free
without any extra bookkeeping: pool children inherit the parent's
resource-tracker process, whose per-type ledger is a *set* of names —
the attach-side ``register`` of an already-registered name is a no-op,
a worker's death triggers nothing (only the tracker's own shutdown
sweeps leaks), and the one ``unregister`` happens exactly once, inside
the coordinator's ``unlink``.  (The bpo-38119 double-unlink bug needs
an attacher with a *separate* tracker — an unrelated process — which
the pool never creates.)
"""

from __future__ import annotations

import contextlib
import os
import weakref
from itertools import count
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "SegmentRegistry",
    "active_segment_names",
    "reset_worker_cache",
    "worker_view",
]

#: Monotonic per-process counter feeding :func:`_segment_name`.
_SEQUENCE = count()

#: Names of segments currently owned by live registries in this
#: process, in creation order (introspection/test surface).
_LIVE_NAMES: list[str] = []

#: Unlinked segments whose local mapping is still pinned by exported
#: numpy views (e.g. an exception traceback keeping a run frame — and
#: its slot view — alive).  Holding them here stops ``__del__`` from
#: retrying ``close()`` mid-GC and warning; they are reaped on the
#: next release once the views are gone.
_ZOMBIES: list[shared_memory.SharedMemory] = []


def _segment_name() -> str:
    """A fresh, deterministic, tracker-friendly segment name."""
    return f"rsk{os.getpid():x}-{next(_SEQUENCE):x}"


def _reap_zombies() -> None:
    """Close any graveyard segment whose pinning views have since died."""
    survivors = []
    while _ZOMBIES:
        seg = _ZOMBIES.pop()
        try:
            seg.close()
        except BufferError:
            survivors.append(seg)
    _ZOMBIES.extend(survivors)


def _release(
    segments: dict[str, shared_memory.SharedMemory],
    views: dict[str, np.ndarray],
) -> None:
    """Unlink every owned segment (the close() and GC-finalizer path)."""
    views.clear()
    while segments:
        _role, seg = segments.popitem()
        with contextlib.suppress(FileNotFoundError):
            seg.unlink()
        if seg.name in _LIVE_NAMES:
            _LIVE_NAMES.remove(seg.name)
        try:
            # A still-exported numpy view pins the local mapping; the
            # unlink above removed the *name* regardless, and a pinned
            # mapping is parked until its views die (or the process
            # exits, which frees it unconditionally).
            seg.close()
        except BufferError:
            _ZOMBIES.append(seg)
    _reap_zombies()


class SegmentRegistry:
    """Coordinator-owned shared segments, one per role.

    Roles are short strings (``"input"``, ``"result"``); each maps to
    one named segment plus a whole-segment ``int64`` view.  Segments
    grow by *replacement* under a new name, and every creation path is
    paired with a guaranteed unlink: explicit :meth:`close`, the
    ``weakref.finalize`` below, or — for a hard coordinator crash —
    the process's resource tracker.
    """

    __slots__ = ("_segments", "_views", "_finalizer", "__weakref__")

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._views: dict[str, np.ndarray] = {}
        self._finalizer = weakref.finalize(
            self, _release, self._segments, self._views
        )

    def ensure(self, role: str, elements: int) -> np.ndarray:
        """An ``int64`` view of ``elements`` cells backing ``role``.

        Creates the segment on first use and re-creates it under a new
        name when ``elements`` outgrows the current one; an adequate
        existing segment is reused as-is (its contents are whatever the
        last run left — callers overwrite their region).
        """
        nbytes = max(8 * int(elements), 8)
        seg = self._segments.get(role)
        if seg is not None and seg.size < nbytes:
            _release(
                {role: self._segments.pop(role)},
                {role: self._views.pop(role)},
            )
            seg = None
        if seg is None:
            seg = shared_memory.SharedMemory(
                create=True, size=nbytes, name=_segment_name()
            )
            self._segments[role] = seg
            self._views[role] = np.frombuffer(seg.buf, dtype=np.int64)
            _LIVE_NAMES.append(seg.name)
        return self._views[role][: int(elements)]

    def name(self, role: str) -> str:
        """The current segment name backing ``role``."""
        return self._segments[role].name

    def close(self) -> None:
        """Unlink every owned segment now.  Idempotent."""
        _release(self._segments, self._views)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        roles = ", ".join(
            f"{role}={seg.name}" for role, seg in self._segments.items()
        )
        return f"SegmentRegistry({roles})"


def active_segment_names() -> list[str]:
    """Names of registry-owned segments still linked by this process."""
    return list(_LIVE_NAMES)


# -- worker (attach) side -------------------------------------------------------

#: Per-process attachment cache: role -> (segment, whole-segment view).
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}

#: Evicted segments whose mappings are still pinned by live views (the
#: worker's warm sketch state); parked here so their ``__del__`` does
#: not retry ``close()`` and warn.  Reclaimed when the views die.
_PINNED: list[shared_memory.SharedMemory] = []


def worker_view(role: str, name: str) -> np.ndarray:
    """This process's ``int64`` view of segment ``name``, cached per role.

    A cached attachment for ``role`` under an older name is a stale
    generation (the coordinator grew the segment): it is dropped — or
    parked if live views still pin it — and the new name attached.
    Attaching never takes ownership: the worker shares the
    coordinator's resource tracker, where the attach-side registration
    of an existing name is a set no-op (see the module docstring), so
    worker exit — clean, crashed, or terminated — cannot unlink
    coordinator state.
    """
    cached = _ATTACHED.get(role)
    if cached is not None:
        seg, view = cached
        if seg.name == name:
            return view
        del _ATTACHED[role]
        try:
            seg.close()
        except BufferError:
            _PINNED.append(seg)
    seg = shared_memory.SharedMemory(name=name)
    view = np.frombuffer(seg.buf, dtype=np.int64)
    _ATTACHED[role] = (seg, view)
    return view


def reset_worker_cache() -> None:
    """Drop every cached attachment.

    For tests that exercise the worker path in-process; a real pool
    worker keeps its cache for its whole life.
    """
    while _ATTACHED:
        _role, (seg, _view) = _ATTACHED.popitem()
        _PINNED.append(seg)
    survivors = []
    while _PINNED:
        seg = _PINNED.pop()
        try:
            seg.close()
        except BufferError:
            # Still pinned (a warm sketch's views may die in a later GC
            # pass); keep the reference so ``__del__`` stays quiet.
            survivors.append(seg)
    _PINNED.extend(survivors)
