"""Deterministic stream-sharding strategies.

A partition strategy assigns every stream token to one of ``K`` sites.
Because the sketches are linear, *any* assignment preserves the merged
sketch exactly — including assignments that separate an edge's
insertion from its deletion (the deltas cancel only after the
coordinator adds the site sketches).  The strategies differ in the
system properties they model:

* ``round-robin`` — load balancing with zero routing state;
* ``hash-edge`` — all tokens of one edge land on one site (a deletion
  meets its insertion locally; models edge-keyed ingestion);
* ``hash-endpoint`` — tokens are routed by their lower endpoint
  (node-locality, as in a vertex-partitioned graph store);
* ``contiguous`` — K consecutive chunks (models a time-sliced log or
  file split, the MapReduce default).

All strategies are pure functions of ``(token, position, sites, seed)``
so shards are reproducible across processes and machines.
"""

from __future__ import annotations

import numpy as np

from ..errors import StreamError
from ..hashing import HashSource
from ..streams import DynamicGraphStream, StreamBatch

__all__ = [
    "PARTITION_STRATEGIES",
    "shard_assignment",
    "partition_batch",
    "partition_stream",
    "partition_stream_by",
]

#: Names of the built-in strategies, in documentation order.
PARTITION_STRATEGIES = (
    "round-robin",
    "hash-edge",
    "hash-endpoint",
    "contiguous",
)


def shard_assignment(
    batch: StreamBatch, sites: int, strategy: str = "hash-edge", seed: int = 0
) -> np.ndarray:
    """Site id per token for a columnar batch.

    Returns an ``int64`` array of length ``len(batch)`` with values in
    ``[0, sites)``.  Raises :class:`StreamError` for an unknown strategy
    or a non-positive site count.
    """
    if sites < 1:
        raise StreamError(f"need at least one site, got {sites}")
    m = len(batch)
    positions = np.arange(m, dtype=np.int64)
    if strategy == "round-robin":
        return positions % sites
    if strategy == "contiguous":
        if m == 0:
            return positions
        return np.minimum(positions * sites // m, sites - 1)
    if strategy == "hash-edge":
        source = HashSource(seed).derive(0xED6E)
        return np.asarray(source.bucket(batch.ranks, sites), dtype=np.int64)
    if strategy == "hash-endpoint":
        source = HashSource(seed).derive(0xE9D)
        return np.asarray(source.bucket(batch.lo, sites), dtype=np.int64)
    raise StreamError(
        f"unknown partition strategy {strategy!r}; "
        f"choose from {', '.join(PARTITION_STRATEGIES)}"
    )


def partition_batch(
    batch: StreamBatch, sites: int, strategy: str = "hash-edge", seed: int = 0
) -> list[StreamBatch]:
    """Split a columnar batch into ``sites`` per-site batches.

    Token order within each shard follows stream order, so a site
    consuming its shard sees a legal (prefix-consistent) sub-stream.
    """
    assignment = shard_assignment(batch, sites, strategy, seed)
    return [batch.select(assignment == s) for s in range(sites)]


def partition_stream(
    stream: DynamicGraphStream,
    sites: int,
    strategy: str = "hash-edge",
    seed: int = 0,
) -> list[DynamicGraphStream]:
    """Split a token stream into ``sites`` per-site streams."""
    assignment = shard_assignment(stream.as_batch(), sites, strategy, seed)
    return partition_stream_by(stream, assignment, sites)


def partition_stream_by(
    stream: DynamicGraphStream, assignment: np.ndarray, sites: int
) -> list[DynamicGraphStream]:
    """Split a stream along an explicit per-token site assignment.

    The escape hatch for adversarial / randomised partition tests:
    ``assignment`` may be any array of site ids in ``[0, sites)`` of
    length ``len(stream)``.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (len(stream),):
        raise StreamError(
            f"assignment length {assignment.shape} does not match the "
            f"stream's {len(stream)} tokens"
        )
    if len(assignment) and not (
        (assignment >= 0).all() and (assignment < sites).all()
    ):
        raise StreamError(f"assignment contains site ids outside [0, {sites})")
    parts = [DynamicGraphStream(stream.n) for _ in range(sites)]
    for site, update in zip(assignment, stream):
        parts[int(site)].append(update)
    return parts
