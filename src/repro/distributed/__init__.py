"""Multi-site sharded sketching (PAPER.md §1.1, "distributed streams").

The defining property of the paper's sketches is *linearity*:
``sketch(S1 || S2) = sketch(S1) + sketch(S2)``.  Section 1.1 turns this
into a distributed-computation model — the simultaneous-communication
setting: a stream is split across ``K`` sites, each site runs the same
linear sketch over only its local sub-stream, ships the *sketch* (not
the stream) to a coordinator, and the coordinator reconstitutes the
global sketch by addition and answers queries as if it had seen the
whole stream.  The communication per site is the sketch size —
``O(n · polylog n)`` — independent of the stream length, which is the
paper's headline claim for MapReduce / multi-site deployments.

This package is that model made executable:

* :mod:`repro.distributed.partition` — deterministic strategies for
  splitting a :class:`~repro.streams.DynamicGraphStream` (or its
  columnar :class:`~repro.streams.StreamBatch`) into per-site shards;
* :mod:`repro.distributed.coordinator` — the
  :class:`~repro.distributed.coordinator.ShardedSketchRunner`: fan a
  workload out to ``K`` simulated sites (in-process or via a
  ``multiprocessing`` pool), serialise each site's sketch to bytes,
  and merge at the coordinator with parameter/seed verification.

The cross-shard equivalence harness
(``tests/test_distributed_equivalence.py``) pins the model's promise
exactly: for every sketch class and every partition strategy the
coordinator's merged sketch is *byte-identical* to a single-site sketch
of the full stream — deletions crossing shard boundaries included.
"""

from .coordinator import (
    ShardedEpochReport,
    ShardedRunReport,
    ShardedSketchRunner,
    SiteReport,
    sharded_consume,
)
from .factories import forest_sketch, mincut_sketch, sparsifier_sketch
from .partition import (
    PARTITION_STRATEGIES,
    partition_batch,
    partition_stream,
    partition_stream_by,
    shard_assignment,
)

__all__ = [
    "PARTITION_STRATEGIES",
    "ShardedEpochReport",
    "ShardedRunReport",
    "ShardedSketchRunner",
    "SiteReport",
    "forest_sketch",
    "mincut_sketch",
    "partition_batch",
    "partition_stream",
    "partition_stream_by",
    "shard_assignment",
    "sharded_consume",
    "sparsifier_sketch",
]
