"""Picklable seeded sketch factories for sharded runs.

Every site of a :class:`~repro.distributed.coordinator.
ShardedSketchRunner` — possibly in another process — must build an
*identically-seeded* sketch, so factories have to be module-level
(picklable) and fully determined by their arguments.  These cover the
sketches the CLI, the e11 experiment, the distribute benchmark, and the
examples all fan out; bind the arguments with ``functools.partial``:

    functools.partial(mincut_sketch, n, seed, c_k=1.0)
"""

from __future__ import annotations

from ..core import MinCutSketch, SimpleSparsification, SpanningForestSketch
from ..hashing import HashSource

__all__ = ["forest_sketch", "mincut_sketch", "sparsifier_sketch"]


def forest_sketch(n: int, seed: int) -> SpanningForestSketch:
    """Spanning-forest / connectivity sketch."""
    return SpanningForestSketch(n, HashSource(seed))


def mincut_sketch(
    n: int, seed: int, epsilon: float = 0.5, c_k: float = 1.0
) -> MinCutSketch:
    """MINCUT hierarchy (Fig. 1)."""
    return MinCutSketch(n, epsilon=epsilon, source=HashSource(seed), c_k=c_k)


def sparsifier_sketch(
    n: int, seed: int, epsilon: float = 0.5, c_k: float = 0.3
) -> SimpleSparsification:
    """SIMPLE-SPARSIFICATION hierarchy (Fig. 2)."""
    return SimpleSparsification(
        n, epsilon=epsilon, source=HashSource(seed), c_k=c_k
    )
