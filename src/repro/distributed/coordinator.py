"""The coordinator side of multi-site sketching.

:class:`ShardedSketchRunner` simulates the Section 1.1 deployment end
to end: partition the stream, let each of ``K`` sites consume its shard
through the columnar path, serialise every site's sketch to bytes (the
only thing that crosses the site → coordinator boundary), and
reconstitute + linearly merge at the coordinator — with parameter/seed
verification on every received payload.

Execution modes:

* ``"sequential"`` — sites run in-process, one after another.  Zero
  overhead; the default for tests and small workloads.
* ``"process"`` — sites run in a ``multiprocessing.Pool``, one task per
  site.  The sketch factory and the shard columns must be picklable
  (module-level factories / ``functools.partial`` qualify).  Site
  results still travel as serialised bytes, so the measured payload is
  exactly what a networked deployment would ship.

Either mode produces a byte-identical coordinator sketch — pinned by
``tests/test_distributed_equivalence.py``.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..errors import StreamError
from ..sketch.serialize import dump_sketch, load_sketch
from ..streams import DynamicGraphStream, StreamBatch
from .partition import partition_batch

__all__ = [
    "SiteReport",
    "ShardedRunReport",
    "ShardedSketchRunner",
    "sharded_consume",
]

#: Execution modes accepted by :class:`ShardedSketchRunner`.
EXECUTION_MODES = ("sequential", "process")


@dataclass(frozen=True, slots=True)
class SiteReport:
    """What one site did and shipped.

    ``payload_bytes`` is the serialised sketch size — the per-site
    communication cost, *independent of* ``tokens`` (the point of the
    model).
    """

    site: int
    tokens: int
    payload_bytes: int
    seconds: float


@dataclass(frozen=True, slots=True)
class ShardedRunReport:
    """Outcome of one sharded run.

    Attributes
    ----------
    sketch:
        The coordinator's merged sketch — query it exactly as if it had
        consumed the whole stream.
    sites:
        Per-site consumption/communication reports.
    strategy, mode:
        The partition strategy and execution mode used.
    wall_seconds:
        End-to-end wall-clock of the run (partition through merge).
    """

    sketch: object
    sites: list[SiteReport] = field(default_factory=list)
    strategy: str = "hash-edge"
    mode: str = "sequential"
    wall_seconds: float = 0.0

    @property
    def total_payload_bytes(self) -> int:
        """Total bytes shipped from all sites to the coordinator."""
        return sum(s.payload_bytes for s in self.sites)

    @property
    def max_payload_bytes(self) -> int:
        """Largest single-site payload (the per-link bandwidth cost)."""
        return max((s.payload_bytes for s in self.sites), default=0)


def _consume_shard(args: tuple) -> tuple[int, bytes, int, float]:
    """Site worker: build the sketch, consume the shard, serialise.

    Module-level so ``multiprocessing`` can pickle it; takes/returns
    only picklable values (numpy columns in, sketch bytes out).
    """
    site, factory, n, lo, hi, delta, ranks = args
    t0 = time.perf_counter()
    sketch = factory()
    batch = StreamBatch(n, lo, hi, delta, ranks=ranks)
    if hasattr(sketch, "consume_batch"):
        sketch.consume_batch(batch)
    else:  # pragma: no cover - every shipped sketch has the columnar path
        raise TypeError(
            f"{type(sketch).__name__} has no consume_batch; the sharded "
            "runner requires the columnar ingestion path"
        )
    payload = dump_sketch(sketch)
    return site, payload, len(batch), time.perf_counter() - t0


class ShardedSketchRunner:
    """Fan a stream out to ``K`` sites and merge their sketches.

    Parameters
    ----------
    factory:
        Zero-argument callable returning a fresh sketch.  Every site
        (and the coordinator) calls it, so it must produce
        *identically-seeded* sketches — linearity demands it, and the
        coordinator verifies it on every received payload.  For
        ``mode="process"`` it must be picklable.
    sites:
        Number of simulated sites ``K >= 1``.
    strategy:
        Partition strategy name (see
        :data:`~repro.distributed.partition.PARTITION_STRATEGIES`).
    mode:
        ``"sequential"`` or ``"process"``.
    seed:
        Seed for the hash-based partition strategies.
    processes:
        Pool size for ``mode="process"`` (default: one per site).
    """

    def __init__(
        self,
        factory: Callable[[], object],
        sites: int = 4,
        strategy: str = "hash-edge",
        mode: str = "sequential",
        seed: int = 0,
        processes: int | None = None,
    ):
        if sites < 1:
            raise StreamError(f"need at least one site, got {sites}")
        if mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {mode!r}; "
                f"choose from {', '.join(EXECUTION_MODES)}"
            )
        self.factory = factory
        self.sites = sites
        self.strategy = strategy
        self.mode = mode
        self.seed = seed
        self.processes = processes

    def run(self, stream: DynamicGraphStream) -> ShardedRunReport:
        """Partition, consume per site, ship bytes, merge, report."""
        t_start = time.perf_counter()
        shards = partition_batch(
            stream.as_batch(), self.sites, self.strategy, self.seed
        )
        payloads = [
            (s, self.factory, stream.n, shard.lo, shard.hi, shard.delta,
             shard.ranks)
            for s, shard in enumerate(shards)
        ]
        results = self._execute(payloads)
        return self._merge_results(results, self.strategy, self.mode, t_start)

    def run_shards(
        self, shards: Sequence[DynamicGraphStream]
    ) -> ShardedRunReport:
        """Run over pre-partitioned shards (arbitrary external split)."""
        if len(shards) != self.sites:
            raise StreamError(
                f"runner configured for {self.sites} sites, got "
                f"{len(shards)} shards"
            )
        if len({shard.n for shard in shards}) > 1:
            raise StreamError("shards span different node universes")
        t_start = time.perf_counter()
        payloads = []
        for s, shard in enumerate(shards):
            batch = shard.as_batch()
            payloads.append(
                (s, self.factory, shard.n, batch.lo, batch.hi, batch.delta,
                 batch.ranks)
            )
        results = self._execute(payloads)
        return self._merge_results(results, "external", self.mode, t_start)

    def _execute(self, payloads: list[tuple]) -> list[tuple]:
        """Dispatch site work according to the configured mode."""
        if self.mode == "process" and self.sites > 1:
            workers = self.processes or self.sites
            with multiprocessing.Pool(workers) as pool:
                return pool.map(_consume_shard, payloads)
        return [_consume_shard(p) for p in payloads]

    def _merge_results(
        self,
        results: list[tuple[int, bytes, int, float]],
        strategy: str,
        mode: str,
        t_start: float,
    ) -> ShardedRunReport:
        """Coordinator side: load each payload, verify, merge, report."""
        coordinator = self.factory()
        reports: list[SiteReport] = []
        for site, payload, tokens, seconds in results:
            received = load_sketch(payload, like=coordinator)
            coordinator.merge(received)
            reports.append(SiteReport(site, tokens, len(payload), seconds))
        return ShardedRunReport(
            sketch=coordinator,
            sites=reports,
            strategy=strategy,
            mode=mode,
            wall_seconds=time.perf_counter() - t_start,
        )


def sharded_consume(
    stream: DynamicGraphStream,
    factory: Callable[[], object],
    sites: int = 4,
    strategy: str = "hash-edge",
    mode: str = "sequential",
    seed: int = 0,
) -> ShardedRunReport:
    """One-call convenience wrapper around :class:`ShardedSketchRunner`."""
    return ShardedSketchRunner(
        factory, sites=sites, strategy=strategy, mode=mode, seed=seed
    ).run(stream)
