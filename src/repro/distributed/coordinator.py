"""The coordinator side of multi-site sketching.

:class:`ShardedSketchRunner` simulates the Section 1.1 deployment end
to end: partition the stream, let each of ``K`` sites consume its shard
through the columnar path, ship the site state to the coordinator, and
linearly merge there.  Either execution mode produces a byte-identical
coordinator sketch — pinned by ``tests/test_distributed_equivalence.py``.

Execution modes:

* ``"sequential"`` — sites run in-process, one after another.  Each
  site serialises its sketch through codec v2 (the only thing that
  crosses the site → coordinator boundary), so the measured payload is
  exactly what a networked deployment would ship.  Zero setup cost;
  the default for tests and small workloads.
* ``"process"`` — sites run concurrently on a **persistent** worker
  pool over **shared memory** (see :mod:`repro.distributed.shm`).  The
  partitioned stream columns are published once into a shared input
  segment; each worker keeps a warm, identically-seeded sketch whose
  cell banks are re-pointed (:meth:`SketchArena.adopt_external`) at its
  site's slot of a shared result segment, folds its shard in place, and
  returns only a ``(site, tokens, nbytes, seconds)`` handle.  The
  coordinator merges slots through arena views — ``O(nnz)`` for
  lightly-loaded sites — with no serialise/verify/inflate round-trip.

The pool is created lazily on the first process-mode run and reused by
every subsequent ``run()``/``run_epochs()`` on the same runner; the
default start method is ``"forkserver"`` where the platform offers it
(Linux — cheap worker startup once the fork server has warmed, and the
server process is single-threaded so the fork is safe) and ``"spawn"``
everywhere else (identical semantics on every platform, immune to
fork-vs-threaded-BLAS corruption).  Pass ``start_method="spawn"`` to
force the portable behaviour on Linux too.  Call :meth:`ShardedSketchRunner.close` —
or use the runner as a context manager — to terminate the pool and
unlink every shared segment; a ``KeyboardInterrupt`` mid-run tears both
down automatically, and garbage collection is a safety net for the
rest (see :mod:`repro.distributed.shm` for the crash story).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from types import TracebackType
from typing import TYPE_CHECKING

import numpy as np

from ..errors import SketchCompatibilityError, StreamError
from ..sketch.arena import SketchArena, ensure_arena
from ..sketch.serialize import dump_sketch, merge_sketch_bytes
from ..streams import DynamicGraphStream, StreamBatch
from ..temporal.epochs import (
    EpochCheckpoint,
    EpochManager,
    EpochTimeline,
    normalize_boundaries,
)
from .partition import partition_batch, shard_assignment
from .shm import SegmentRegistry, reset_worker_cache, worker_view

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from ..temporal.store import EpochStore

__all__ = [
    "SiteReport",
    "ShardedRunReport",
    "ShardedEpochReport",
    "ShardedSketchRunner",
    "default_start_method",
    "sharded_consume",
]

#: Execution modes accepted by :class:`ShardedSketchRunner`.
EXECUTION_MODES = ("sequential", "process")


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def default_start_method() -> str:
    """The pool start method used when none is requested.

    ``"forkserver"`` where the platform offers it (Linux): workers fork
    from a warmed single-threaded server, so startup is cheap and the
    fork cannot snapshot a threaded (BLAS) parent.  ``"spawn"``
    elsewhere — the portable fallback with identical semantics on every
    platform.
    """
    if "forkserver" in multiprocessing.get_all_start_methods():
        return "forkserver"
    return "spawn"


@dataclass(frozen=True, slots=True)
class SiteReport:
    """What one site did and shipped.

    ``payload_bytes`` is the per-site communication cost, *independent
    of* ``tokens`` (the point of the model).  In sequential mode it is
    the codec-v2 serialised sketch size; in process mode it is the
    bytes the coordinator reads from the site's shared slot — the
    sparse ``(index, value)`` pairs for a lightly-loaded site, the
    dense cell buffer otherwise.
    """

    site: int
    tokens: int
    payload_bytes: int
    seconds: float


@dataclass(frozen=True, slots=True)
class ShardedRunReport:
    """Outcome of one sharded run.

    Attributes
    ----------
    sketch:
        The coordinator's merged sketch — query it exactly as if it had
        consumed the whole stream.
    sites:
        Per-site consumption/communication reports.
    strategy, mode:
        The partition strategy and execution mode used.
    wall_seconds:
        End-to-end wall-clock of the run (partition through merge).
    """

    sketch: object
    sites: list[SiteReport] = field(default_factory=list)
    strategy: str = "hash-edge"
    mode: str = "sequential"
    wall_seconds: float = 0.0

    @property
    def total_payload_bytes(self) -> int:
        """Total bytes shipped from all sites to the coordinator."""
        return sum(s.payload_bytes for s in self.sites)

    @property
    def max_payload_bytes(self) -> int:
        """Largest single-site payload (the per-link bandwidth cost)."""
        return max((s.payload_bytes for s in self.sites), default=0)


@dataclass(frozen=True, slots=True)
class ShardedEpochReport:
    """Outcome of one sharded *temporal* run (sites × epochs).

    Attributes
    ----------
    timeline:
        The coordinator's merged checkpoint timeline — byte-identical
        to the timeline a single site consuming the whole stream would
        have sealed, so every epoch-window query gives the single-site
        answer exactly.
    sites:
        Per-site reports; ``payload_bytes`` totals all of a site's
        epoch shipments (one per epoch).
    """

    timeline: EpochTimeline
    sites: list[SiteReport] = field(default_factory=list)
    strategy: str = "hash-edge"
    mode: str = "sequential"
    wall_seconds: float = 0.0

    @property
    def epochs(self) -> int:
        """Number of sealed epochs."""
        return self.timeline.epochs

    @property
    def total_payload_bytes(self) -> int:
        """Total checkpoint bytes shipped from all sites."""
        return sum(s.payload_bytes for s in self.sites)


# -- sequential-mode site workers ----------------------------------------------


def _consume_shard_epochs(args: tuple) -> tuple[int, list[bytes], int, float]:
    """Site worker for sequential temporal runs: one checkpoint per epoch.

    The site's epoch boundaries arrive pre-translated into shard-local
    positions.
    """
    site, factory, n, lo, hi, delta, ranks, site_bounds = args
    t0 = time.perf_counter()
    manager = EpochManager(factory)
    batch = StreamBatch(n, lo, hi, delta, ranks=ranks)
    start = 0
    payloads: list[bytes] = []
    for end in site_bounds:
        manager.extend(batch.slice(start, int(end)))
        payloads.append(manager.seal_epoch().payload)
        start = int(end)
    return site, payloads, len(batch), time.perf_counter() - t0


def _consume_shard(args: tuple) -> tuple[int, bytes, int, float]:
    """Sequential site worker: build the sketch, consume, serialise."""
    site, factory, n, lo, hi, delta, ranks = args
    t0 = time.perf_counter()
    sketch = factory()
    batch = StreamBatch(n, lo, hi, delta, ranks=ranks)
    if hasattr(sketch, "consume_batch"):
        sketch.consume_batch(batch)
    else:  # pragma: no cover - every shipped sketch has the columnar path
        raise TypeError(
            f"{type(sketch).__name__} has no consume_batch; the sharded "
            "runner requires the columnar ingestion path"
        )
    payload = dump_sketch(sketch)
    return site, payload, len(batch), time.perf_counter() - t0


# -- process-mode site workers (shared memory) ---------------------------------

#: Per-worker warm state installed by :func:`_shm_worker_init`: one
#: identically-seeded sketch whose banks get re-pointed at whichever
#: site slot this worker serves next.  Module-level because pool
#: workers have no other per-process home.
_WORKER: dict = {}


def _shm_worker_init(factory: Callable[[], object]) -> None:
    """Pool initializer: build this worker's warm sketch exactly once.

    Runs in the child process.  The factory is the same one the
    coordinator uses, so bank layout and seeds match by construction;
    consuming onto a zeroed shared slot then yields exactly the site's
    delta sketch (linearity).
    """
    sketch = factory()
    banks = tuple(sketch._cell_banks())
    _WORKER["sketch"] = sketch
    _WORKER["banks"] = banks
    _WORKER["cells"] = sum(b.size for b in banks)


def _reset_worker_state() -> None:
    """Test hook: drop in-process warm state and cached attachments."""
    _WORKER.clear()
    reset_worker_cache()


def _shm_consume_task(task: tuple) -> tuple[int, int, int, float]:
    """Fold one site-shard slice into the site's shared result slot.

    ``task`` is ``(site, n, input_name, col_base, ntok, start, stop,
    result_name, slot)``: map the input segment, view the four shard
    columns ``[start, stop)``, zero the slot, re-point the warm
    sketch's banks at it, consume in place, and publish the slot's
    nonzero index (when sparse enough) so the coordinator can fold in
    ``O(nnz)``.  Returns ``(site, tokens, payload_bytes, seconds)`` —
    the entire inter-process result traffic.
    """
    site, n, in_name, col_base, ntok, start, stop, res_name, slot = task
    t0 = time.perf_counter()
    sketch = _WORKER["sketch"]
    banks = _WORKER["banks"]
    cells = _WORKER["cells"]
    res = worker_view("result", res_name)
    dense = res[slot:slot + 4 * cells]
    head = slot + 4 * cells
    dense[:] = 0
    sketch._arena = SketchArena.adopt_external(banks, dense)
    inp = worker_view("input", in_name)
    lo, hi, delta, ranks = (
        inp[col_base + f * ntok + start:col_base + f * ntok + stop]
        for f in range(4)
    )
    sketch.consume_batch(StreamBatch._from_owned(n, lo, hi, delta, ranks))
    idx = np.flatnonzero(dense)
    if 2 * idx.size <= 4 * cells:
        # Sparse handoff: the coordinator reads nnz (index, value)
        # pairs instead of scanning the whole slot.
        res[head + 1:head + 1 + idx.size] = idx
        res[head] = idx.size
        shipped = 16 * idx.size
    else:
        res[head] = -1
        shipped = 8 * (4 * cells)
    return site, stop - start, int(shipped), time.perf_counter() - t0


class ShardedSketchRunner:
    """Fan a stream out to ``K`` sites and merge their sketches.

    Parameters
    ----------
    factory:
        Zero-argument callable returning a fresh sketch.  Every site
        (and the coordinator) calls it, so it must produce
        *identically-seeded* sketches — linearity demands it.  For
        ``mode="process"`` it must be picklable (module-level
        factories / ``functools.partial`` qualify) and its sketches
        arena-backed (every registry sketch is).
    sites:
        Number of simulated sites ``K >= 1``.
    strategy:
        Partition strategy name (see
        :data:`~repro.distributed.partition.PARTITION_STRATEGIES`).
    mode:
        ``"sequential"`` or ``"process"``.
    seed:
        Seed for the hash-based partition strategies.
    processes:
        Pool size for ``mode="process"``; must be ``>= 1`` when given.
        Default: ``min(sites, available CPUs)`` — K sites on a smaller
        machine share workers instead of oversubscribing it.
    start_method:
        Multiprocessing start method for the pool.  Default:
        ``"forkserver"`` where available (Linux), else ``"spawn"`` —
        the documented portable fallback, selectable explicitly when
        identical start semantics across platforms matter more than
        worker startup cost.

    A runner with ``mode="process"`` holds two kinds of resources once
    it has run: the persistent worker pool and its shared-memory
    segments.  Release them deterministically with :meth:`close` or a
    ``with`` block; a garbage-collected runner is cleaned up by
    finalizers, and a hard coordinator crash by the resource tracker.
    """

    def __init__(
        self,
        factory: Callable[[], object],
        sites: int = 4,
        strategy: str = "hash-edge",
        mode: str = "sequential",
        seed: int = 0,
        processes: int | None = None,
        start_method: str | None = None,
    ):
        if sites < 1:
            raise StreamError(f"need at least one site, got {sites}")
        if mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {mode!r}; "
                f"choose from {', '.join(EXECUTION_MODES)}"
            )
        if processes is not None and processes < 1:
            raise StreamError(
                f"processes must be >= 1, got {processes} (omit it for "
                "the min(sites, cpus) default)"
            )
        if start_method is not None and \
                start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"unknown start method {start_method!r}; choose from "
                f"{', '.join(multiprocessing.get_all_start_methods())}"
            )
        self.factory = factory
        self.sites = sites
        self.strategy = strategy
        self.mode = mode
        self.seed = seed
        self.processes = processes
        self.start_method = start_method
        self._pool: multiprocessing.pool.Pool | None = None
        self._registry: SegmentRegistry | None = None
        self._slot_cells: int | None = None
        self._closed = False

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Terminate the worker pool and unlink every shared segment.

        Idempotent, and safe whatever state a run left behind —
        ``terminate()`` (not a graceful ``close()``) so a wedged or
        crashed worker cannot block shutdown; site state lives in the
        segments, which are unlinked here regardless.  After ``close``
        the runner refuses further process-mode runs.
        """
        self._closed = True
        pool, self._pool = self._pool, None
        registry, self._registry = self._registry, None
        if pool is not None:
            pool.terminate()
            pool.join()
        if registry is not None:
            registry.close()

    def __enter__(self) -> "ShardedSketchRunner":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "this ShardedSketchRunner is closed; create a new runner"
            )

    def _use_processes(self) -> bool:
        return self.mode == "process" and self.sites > 1

    def _worker_count(self) -> int:
        """Pool size: explicit ``processes``, else min(sites, CPUs)."""
        if self.processes is not None:
            return self.processes
        return max(1, min(self.sites, _available_cpus()))

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        """The persistent pool, created lazily on first process run."""
        self._require_open()
        if self._pool is None:
            ctx = multiprocessing.get_context(
                self.start_method or default_start_method()
            )
            self._pool = ctx.Pool(
                self._worker_count(),
                initializer=_shm_worker_init,
                initargs=(self.factory,),
            )
        return self._pool

    def _ensure_result(self) -> tuple[str, np.ndarray, int]:
        """The shared result segment: one ``8*cells + 1`` slot per site.

        Each slot is ``[dense cells | header | sparse index]``: the
        site's full 4-field cell buffer, then one header cell (nnz, or
        -1 for "read the dense region"), then room for the nonzero
        index.  Also validates — in the parent, before any pool is
        spawned — that the factory's sketches support the arena path.
        """
        self._require_open()
        if self._slot_cells is None:
            template = self.factory()
            if not hasattr(template, "_cell_banks") or \
                    not hasattr(template, "consume_batch"):
                raise TypeError(
                    f"{type(template).__name__} is not arena-backed; "
                    "mode='process' needs _cell_banks() and consume_batch() "
                    "(every registry sketch class qualifies)"
                )
            self._slot_cells = sum(b.size for b in template._cell_banks())
        if self._registry is None:
            self._registry = SegmentRegistry()
        stride = 8 * self._slot_cells + 1
        view = self._registry.ensure("result", self.sites * stride)
        return self._registry.name("result"), view, self._slot_cells

    def _publish_shards(
        self, shards: Sequence[StreamBatch]
    ) -> tuple[str, list[tuple[int, int]]]:
        """Write the shard columns into the shared input segment.

        Layout: per shard, its four ``int64`` columns back to back
        (``lo | hi | delta | ranks``).  Returns the segment name and a
        ``(base, ntok)`` per shard.  One memcpy of the stream per run;
        workers slice it zero-copy.
        """
        assert self._registry is not None
        total = sum(4 * len(batch) for batch in shards)
        view = self._registry.ensure("input", total)
        bases: list[tuple[int, int]] = []
        off = 0
        for batch in shards:
            ntok = len(batch)
            for f, col in enumerate(
                (batch.lo, batch.hi, batch.delta, batch.ranks)
            ):
                view[off + f * ntok:off + (f + 1) * ntok] = col
            bases.append((off, ntok))
            off += 4 * ntok
        return self._registry.name("input"), bases

    def _map(self, pool: multiprocessing.pool.Pool, tasks: list[tuple]) -> list:
        try:
            return pool.map(_shm_consume_task, tasks)
        except (KeyboardInterrupt, SystemExit):
            # Interrupted mid-fan-out: slots are half-written and
            # workers may be wedged — tear the pool and segments down
            # before re-raising so nothing outlives the run.
            self.close()
            raise

    def _fold_slot(
        self, arena: SketchArena, res: np.ndarray, cells: int, site: int
    ) -> None:
        """Fold one site's result slot into the coordinator arena."""
        stride = 8 * cells + 1
        slot = site * stride
        head = slot + 4 * cells
        nnz = int(res[head])
        if nnz < 0:
            arena._combine_raw(res[slot:head], subtract=False)
        elif nnz > 0:
            idx = res[head + 1:head + 1 + nnz]
            arena._combine_sparse(idx, res[slot:head][idx], subtract=False)

    # -- runs -------------------------------------------------------------------

    def run(
        self, stream: DynamicGraphStream, strategy: str | None = None
    ) -> ShardedRunReport:
        """Partition, consume per site, ship, merge, report.

        ``strategy`` optionally overrides the runner's configured
        partition strategy for this run only — so one warm pool can
        serve runs under every strategy.
        """
        strategy = self.strategy if strategy is None else strategy
        t_start = time.perf_counter()
        shards = partition_batch(
            stream.as_batch(), self.sites, strategy, self.seed
        )
        if self._use_processes():
            return self._run_process(stream.n, shards, strategy, t_start)
        payloads = [
            (s, self.factory, stream.n, shard.lo, shard.hi, shard.delta,
             shard.ranks)
            for s, shard in enumerate(shards)
        ]
        results = [_consume_shard(p) for p in payloads]
        return self._merge_results(results, strategy, self.mode, t_start)

    def run_shards(
        self, shards: Sequence[DynamicGraphStream]
    ) -> ShardedRunReport:
        """Run over pre-partitioned shards (arbitrary external split)."""
        if len(shards) != self.sites:
            raise StreamError(
                f"runner configured for {self.sites} sites, got "
                f"{len(shards)} shards"
            )
        if len({shard.n for shard in shards}) > 1:
            raise StreamError("shards span different node universes")
        t_start = time.perf_counter()
        batches = [shard.as_batch() for shard in shards]
        if self._use_processes():
            return self._run_process(
                shards[0].n, batches, "external", t_start
            )
        payloads = [
            (s, self.factory, shard.n, batch.lo, batch.hi, batch.delta,
             batch.ranks)
            for s, (shard, batch) in enumerate(zip(shards, batches))
        ]
        results = [_consume_shard(p) for p in payloads]
        return self._merge_results(results, "external", self.mode, t_start)

    def _run_process(
        self,
        n: int,
        shards: Sequence[StreamBatch],
        strategy: str,
        t_start: float,
    ) -> ShardedRunReport:
        """One shared-memory fan-out round + O(nnz) coordinator merge."""
        res_name, res_view, cells = self._ensure_result()
        in_name, bases = self._publish_shards(shards)
        pool = self._ensure_pool()
        stride = 8 * cells + 1
        tasks = [
            (site, n, in_name, base, ntok, 0, ntok, res_name, site * stride)
            for site, (base, ntok) in enumerate(bases)
        ]
        results = self._map(pool, tasks)
        coordinator = self.factory()
        arena = ensure_arena(coordinator)
        if arena.cells != cells:
            raise SketchCompatibilityError(
                "factory produced sketches with differing cell counts "
                f"({arena.cells} vs {cells}); sites and coordinator must "
                "be identically parameterised"
            )
        reports: list[SiteReport] = []
        for site, tokens, shipped, seconds in sorted(results):
            self._fold_slot(arena, res_view, cells, site)
            reports.append(SiteReport(site, tokens, shipped, seconds))
        return ShardedRunReport(
            sketch=coordinator,
            sites=reports,
            strategy=strategy,
            mode=self.mode,
            wall_seconds=time.perf_counter() - t_start,
        )

    def run_epochs(
        self,
        stream: DynamicGraphStream,
        epochs: int | None = None,
        boundaries: Sequence[int] | None = None,
        store: "EpochStore | None" = None,
    ) -> ShardedEpochReport:
        """Sharded temporal run: per-site, per-epoch checkpoints.

        The stream is partitioned across sites as in :meth:`run`, but
        every site additionally observes each *global* epoch boundary
        (translated to its shard-local token positions), and the
        coordinator seals one global cumulative checkpoint per epoch.
        The returned timeline supports window queries by subtraction
        that are byte-identical to a single-site timeline of the whole
        stream.  Pass ``epochs`` for an even grid or ``boundaries`` for
        explicit epoch-end token positions.  With ``store=`` every
        sealed checkpoint is *also* appended durably to an
        :class:`~repro.temporal.store.EpochStore` as it is produced —
        in either execution mode — so the stored timeline matches the
        returned one exactly.
        """
        bounds = normalize_boundaries(len(stream), epochs, boundaries)
        t_start = time.perf_counter()
        batch = stream.as_batch()
        assignment = shard_assignment(batch, self.sites, self.strategy, self.seed)
        bounds_arr = np.asarray(bounds, dtype=np.int64)
        shard_batches: list[StreamBatch] = []
        site_bounds: list[np.ndarray] = []
        for s in range(self.sites):
            mask = assignment == s
            positions = np.flatnonzero(mask)
            shard_batches.append(batch.select(mask))
            # Global boundary b → number of this site's tokens before b.
            site_bounds.append(
                np.searchsorted(positions, bounds_arr, side="left")
            )
        if self._use_processes():
            return self._run_process_epochs(
                stream.n, shard_batches, site_bounds, bounds, t_start,
                store=store,
            )
        payloads = [
            (s, self.factory, stream.n, shard.lo, shard.hi, shard.delta,
             shard.ranks, site_bounds[s])
            for s, shard in enumerate(shard_batches)
        ]
        results = [_consume_shard_epochs(p) for p in payloads]
        results.sort(key=lambda r: r[0])
        # Site checkpoints are *cumulative*, so each epoch merges into a
        # fresh coordinator sketch (re-merging into one accumulator
        # would double-count earlier prefixes).  merge_sketch_bytes
        # verifies each payload against the coordinator and folds it
        # straight into the arena — no per-site twin reconstruction.
        checkpoints: list[EpochCheckpoint] = []
        previous_bound = 0
        for t, bound in enumerate(bounds):
            coordinator = self.factory()
            for _site, site_payloads, _tokens, _secs in results:
                merge_sketch_bytes(coordinator, site_payloads[t])
            checkpoints.append(EpochCheckpoint(
                epoch=t + 1,
                tokens=bound - previous_bound,
                cumulative_tokens=bound,
                payload=dump_sketch(coordinator, epoch_meta={
                    "epoch": t + 1,
                    "tokens": bound - previous_bound,
                    "cumulative_tokens": bound,
                }),
            ))
            if store is not None:
                store.append_checkpoint(checkpoints[-1])
            previous_bound = bound
        reports = [
            SiteReport(site, tokens, sum(len(p) for p in site_payloads), secs)
            for site, site_payloads, tokens, secs in results
        ]
        return ShardedEpochReport(
            timeline=EpochTimeline(stream.n, checkpoints),
            sites=reports,
            strategy=self.strategy,
            mode=self.mode,
            wall_seconds=time.perf_counter() - t_start,
        )

    def _run_process_epochs(
        self,
        n: int,
        shards: Sequence[StreamBatch],
        site_bounds: Sequence[np.ndarray],
        bounds: Sequence[int],
        t_start: float,
        store: "EpochStore | None" = None,
    ) -> ShardedEpochReport:
        """Shared-memory temporal run: one pool round per epoch.

        Each round, every site folds only its epoch's *delta* slice
        onto a zeroed slot; the coordinator folds all K deltas into one
        running cumulative sketch and seals it.  By linearity the
        sealed state equals the sequential (cumulative-checkpoint)
        merge exactly — while the sites never serialise anything.
        """
        res_name, res_view, cells = self._ensure_result()
        in_name, bases = self._publish_shards(shards)
        pool = self._ensure_pool()
        stride = 8 * cells + 1
        running = self.factory()
        arena = ensure_arena(running)
        if arena.cells != cells:
            raise SketchCompatibilityError(
                "factory produced sketches with differing cell counts "
                f"({arena.cells} vs {cells}); sites and coordinator must "
                "be identically parameterised"
            )
        tokens = [0] * self.sites
        shipped = [0] * self.sites
        seconds = [0.0] * self.sites
        prev = [0] * self.sites
        checkpoints: list[EpochCheckpoint] = []
        previous_bound = 0
        for t, bound in enumerate(bounds):
            tasks = []
            for s, (base, ntok) in enumerate(bases):
                stop = int(site_bounds[s][t])
                tasks.append(
                    (s, n, in_name, base, ntok, prev[s], stop, res_name,
                     s * stride)
                )
                prev[s] = stop
            for site, round_tokens, round_bytes, secs in sorted(
                self._map(pool, tasks)
            ):
                self._fold_slot(arena, res_view, cells, site)
                tokens[site] += round_tokens
                shipped[site] += round_bytes
                seconds[site] += secs
            checkpoints.append(EpochCheckpoint(
                epoch=t + 1,
                tokens=bound - previous_bound,
                cumulative_tokens=bound,
                payload=dump_sketch(running, epoch_meta={
                    "epoch": t + 1,
                    "tokens": bound - previous_bound,
                    "cumulative_tokens": bound,
                }),
            ))
            if store is not None:
                store.append_checkpoint(checkpoints[-1])
            previous_bound = bound
        reports = [
            SiteReport(s, tokens[s], shipped[s], seconds[s])
            for s in range(self.sites)
        ]
        return ShardedEpochReport(
            timeline=EpochTimeline(n, checkpoints),
            sites=reports,
            strategy=self.strategy,
            mode=self.mode,
            wall_seconds=time.perf_counter() - t_start,
        )

    def _merge_results(
        self,
        results: list[tuple[int, bytes, int, float]],
        strategy: str,
        mode: str,
        t_start: float,
    ) -> ShardedRunReport:
        """Coordinator side: verify each payload and fold it in, report."""
        coordinator = self.factory()
        reports: list[SiteReport] = []
        for site, payload, tokens, seconds in results:
            merge_sketch_bytes(coordinator, payload)
            reports.append(SiteReport(site, tokens, len(payload), seconds))
        return ShardedRunReport(
            sketch=coordinator,
            sites=reports,
            strategy=strategy,
            mode=mode,
            wall_seconds=time.perf_counter() - t_start,
        )


def sharded_consume(
    stream: DynamicGraphStream,
    factory: Callable[[], object],
    sites: int = 4,
    strategy: str = "hash-edge",
    mode: str = "sequential",
    seed: int = 0,
) -> ShardedRunReport:
    """One-call convenience wrapper around :class:`ShardedSketchRunner`.

    .. deprecated::
        Use ``GraphSketchEngine.for_spec(spec).sharded(...)`` — the
        engine runs the identical pipeline and adds the uniform query
        dispatch on top (see ``docs/MIGRATION.md``).
    """
    from ..api.deprecation import warn_deprecated

    warn_deprecated(
        "sharded_consume()",
        "GraphSketchEngine.for_spec(spec).sharded(sites=K).ingest(stream)",
    )
    with ShardedSketchRunner(
        factory, sites=sites, strategy=strategy, mode=mode, seed=seed
    ) as runner:
        return runner.run(stream)
