"""The coordinator side of multi-site sketching.

:class:`ShardedSketchRunner` simulates the Section 1.1 deployment end
to end: partition the stream, let each of ``K`` sites consume its shard
through the columnar path, serialise every site's sketch to bytes (the
only thing that crosses the site → coordinator boundary), and
reconstitute + linearly merge at the coordinator — with parameter/seed
verification on every received payload.

Execution modes:

* ``"sequential"`` — sites run in-process, one after another.  Zero
  overhead; the default for tests and small workloads.
* ``"process"`` — sites run in a ``multiprocessing.Pool``, one task per
  site.  The sketch factory and the shard columns must be picklable
  (module-level factories / ``functools.partial`` qualify).  Site
  results still travel as serialised bytes, so the measured payload is
  exactly what a networked deployment would ship.

Either mode produces a byte-identical coordinator sketch — pinned by
``tests/test_distributed_equivalence.py``.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..errors import StreamError
from ..sketch.serialize import dump_sketch, merge_sketch_bytes
from ..streams import DynamicGraphStream, StreamBatch
from ..temporal.epochs import (
    EpochCheckpoint,
    EpochManager,
    EpochTimeline,
    normalize_boundaries,
)
from .partition import partition_batch, shard_assignment

__all__ = [
    "SiteReport",
    "ShardedRunReport",
    "ShardedEpochReport",
    "ShardedSketchRunner",
    "sharded_consume",
]

#: Execution modes accepted by :class:`ShardedSketchRunner`.
EXECUTION_MODES = ("sequential", "process")


@dataclass(frozen=True, slots=True)
class SiteReport:
    """What one site did and shipped.

    ``payload_bytes`` is the serialised sketch size — the per-site
    communication cost, *independent of* ``tokens`` (the point of the
    model).
    """

    site: int
    tokens: int
    payload_bytes: int
    seconds: float


@dataclass(frozen=True, slots=True)
class ShardedRunReport:
    """Outcome of one sharded run.

    Attributes
    ----------
    sketch:
        The coordinator's merged sketch — query it exactly as if it had
        consumed the whole stream.
    sites:
        Per-site consumption/communication reports.
    strategy, mode:
        The partition strategy and execution mode used.
    wall_seconds:
        End-to-end wall-clock of the run (partition through merge).
    """

    sketch: object
    sites: list[SiteReport] = field(default_factory=list)
    strategy: str = "hash-edge"
    mode: str = "sequential"
    wall_seconds: float = 0.0

    @property
    def total_payload_bytes(self) -> int:
        """Total bytes shipped from all sites to the coordinator."""
        return sum(s.payload_bytes for s in self.sites)

    @property
    def max_payload_bytes(self) -> int:
        """Largest single-site payload (the per-link bandwidth cost)."""
        return max((s.payload_bytes for s in self.sites), default=0)


@dataclass(frozen=True, slots=True)
class ShardedEpochReport:
    """Outcome of one sharded *temporal* run (sites × epochs).

    Attributes
    ----------
    timeline:
        The coordinator's merged checkpoint timeline — byte-identical
        to the timeline a single site consuming the whole stream would
        have sealed, so every epoch-window query gives the single-site
        answer exactly.
    sites:
        Per-site reports; ``payload_bytes`` totals all of a site's
        epoch checkpoints (the site ships one payload per epoch).
    """

    timeline: EpochTimeline
    sites: list[SiteReport] = field(default_factory=list)
    strategy: str = "hash-edge"
    mode: str = "sequential"
    wall_seconds: float = 0.0

    @property
    def epochs(self) -> int:
        """Number of sealed epochs."""
        return self.timeline.epochs

    @property
    def total_payload_bytes(self) -> int:
        """Total checkpoint bytes shipped from all sites."""
        return sum(s.payload_bytes for s in self.sites)


def _consume_shard_epochs(args: tuple) -> tuple[int, list[bytes], int, float]:
    """Site worker for temporal runs: seal one checkpoint per epoch.

    Module-level and picklable (see :func:`_consume_shard`); the site's
    epoch boundaries arrive pre-translated into shard-local positions.
    """
    site, factory, n, lo, hi, delta, ranks, site_bounds = args
    t0 = time.perf_counter()
    manager = EpochManager(factory)
    batch = StreamBatch(n, lo, hi, delta, ranks=ranks)
    start = 0
    payloads: list[bytes] = []
    for end in site_bounds:
        manager.extend(batch.slice(start, int(end)))
        payloads.append(manager.seal_epoch().payload)
        start = int(end)
    return site, payloads, len(batch), time.perf_counter() - t0


def _consume_shard(args: tuple) -> tuple[int, bytes, int, float]:
    """Site worker: build the sketch, consume the shard, serialise.

    Module-level so ``multiprocessing`` can pickle it; takes/returns
    only picklable values (numpy columns in, sketch bytes out).
    """
    site, factory, n, lo, hi, delta, ranks = args
    t0 = time.perf_counter()
    sketch = factory()
    batch = StreamBatch(n, lo, hi, delta, ranks=ranks)
    if hasattr(sketch, "consume_batch"):
        sketch.consume_batch(batch)
    else:  # pragma: no cover - every shipped sketch has the columnar path
        raise TypeError(
            f"{type(sketch).__name__} has no consume_batch; the sharded "
            "runner requires the columnar ingestion path"
        )
    payload = dump_sketch(sketch)
    return site, payload, len(batch), time.perf_counter() - t0


class ShardedSketchRunner:
    """Fan a stream out to ``K`` sites and merge their sketches.

    Parameters
    ----------
    factory:
        Zero-argument callable returning a fresh sketch.  Every site
        (and the coordinator) calls it, so it must produce
        *identically-seeded* sketches — linearity demands it, and the
        coordinator verifies it on every received payload.  For
        ``mode="process"`` it must be picklable.
    sites:
        Number of simulated sites ``K >= 1``.
    strategy:
        Partition strategy name (see
        :data:`~repro.distributed.partition.PARTITION_STRATEGIES`).
    mode:
        ``"sequential"`` or ``"process"``.
    seed:
        Seed for the hash-based partition strategies.
    processes:
        Pool size for ``mode="process"`` (default: one per site).
    """

    def __init__(
        self,
        factory: Callable[[], object],
        sites: int = 4,
        strategy: str = "hash-edge",
        mode: str = "sequential",
        seed: int = 0,
        processes: int | None = None,
    ):
        if sites < 1:
            raise StreamError(f"need at least one site, got {sites}")
        if mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {mode!r}; "
                f"choose from {', '.join(EXECUTION_MODES)}"
            )
        self.factory = factory
        self.sites = sites
        self.strategy = strategy
        self.mode = mode
        self.seed = seed
        self.processes = processes

    def run(self, stream: DynamicGraphStream) -> ShardedRunReport:
        """Partition, consume per site, ship bytes, merge, report."""
        t_start = time.perf_counter()
        shards = partition_batch(
            stream.as_batch(), self.sites, self.strategy, self.seed
        )
        payloads = [
            (s, self.factory, stream.n, shard.lo, shard.hi, shard.delta,
             shard.ranks)
            for s, shard in enumerate(shards)
        ]
        results = self._execute(payloads)
        return self._merge_results(results, self.strategy, self.mode, t_start)

    def run_shards(
        self, shards: Sequence[DynamicGraphStream]
    ) -> ShardedRunReport:
        """Run over pre-partitioned shards (arbitrary external split)."""
        if len(shards) != self.sites:
            raise StreamError(
                f"runner configured for {self.sites} sites, got "
                f"{len(shards)} shards"
            )
        if len({shard.n for shard in shards}) > 1:
            raise StreamError("shards span different node universes")
        t_start = time.perf_counter()
        payloads = []
        for s, shard in enumerate(shards):
            batch = shard.as_batch()
            payloads.append(
                (s, self.factory, shard.n, batch.lo, batch.hi, batch.delta,
                 batch.ranks)
            )
        results = self._execute(payloads)
        return self._merge_results(results, "external", self.mode, t_start)

    def run_epochs(
        self,
        stream: DynamicGraphStream,
        epochs: int | None = None,
        boundaries: Sequence[int] | None = None,
    ) -> ShardedEpochReport:
        """Sharded temporal run: per-site, per-epoch checkpoints.

        The stream is partitioned across sites as in :meth:`run`, but
        every site additionally seals a cumulative checkpoint at each
        *global* epoch boundary (translated to its shard-local token
        positions).  The coordinator merges the ``K`` site checkpoints
        of each epoch into a global cumulative checkpoint — so the
        returned timeline supports window queries by subtraction that
        are byte-identical to a single-site timeline of the whole
        stream.  Pass ``epochs`` for an even grid or ``boundaries`` for
        explicit epoch-end token positions.
        """
        bounds = normalize_boundaries(len(stream), epochs, boundaries)
        t_start = time.perf_counter()
        batch = stream.as_batch()
        assignment = shard_assignment(batch, self.sites, self.strategy, self.seed)
        bounds_arr = np.asarray(bounds, dtype=np.int64)
        payloads = []
        for s in range(self.sites):
            mask = assignment == s
            positions = np.flatnonzero(mask)
            shard = batch.select(mask)
            # Global boundary b → number of this site's tokens before b.
            site_bounds = np.searchsorted(positions, bounds_arr, side="left")
            payloads.append(
                (s, self.factory, stream.n, shard.lo, shard.hi, shard.delta,
                 shard.ranks, site_bounds)
            )
        results = self._execute(payloads, worker=_consume_shard_epochs)
        results.sort(key=lambda r: r[0])
        # Site checkpoints are *cumulative*, so each epoch merges into a
        # fresh coordinator sketch (re-merging into one accumulator
        # would double-count earlier prefixes).  merge_sketch_bytes
        # verifies each payload against the coordinator and folds it
        # straight into the arena — no per-site twin reconstruction.
        checkpoints: list[EpochCheckpoint] = []
        previous_bound = 0
        for t, bound in enumerate(bounds):
            coordinator = self.factory()
            for _site, site_payloads, _tokens, _secs in results:
                merge_sketch_bytes(coordinator, site_payloads[t])
            checkpoints.append(EpochCheckpoint(
                epoch=t + 1,
                tokens=bound - previous_bound,
                cumulative_tokens=bound,
                payload=dump_sketch(coordinator, epoch_meta={
                    "epoch": t + 1,
                    "tokens": bound - previous_bound,
                    "cumulative_tokens": bound,
                }),
            ))
            previous_bound = bound
        reports = [
            SiteReport(site, tokens, sum(len(p) for p in site_payloads), secs)
            for site, site_payloads, tokens, secs in results
        ]
        return ShardedEpochReport(
            timeline=EpochTimeline(stream.n, checkpoints),
            sites=reports,
            strategy=self.strategy,
            mode=self.mode,
            wall_seconds=time.perf_counter() - t_start,
        )

    def _execute(
        self, payloads: list[tuple], worker: Callable[[tuple], tuple] = _consume_shard
    ) -> list[tuple]:
        """Dispatch site work according to the configured mode."""
        if self.mode == "process" and self.sites > 1:
            workers = self.processes or self.sites
            with multiprocessing.Pool(workers) as pool:
                return pool.map(worker, payloads)
        return [worker(p) for p in payloads]

    def _merge_results(
        self,
        results: list[tuple[int, bytes, int, float]],
        strategy: str,
        mode: str,
        t_start: float,
    ) -> ShardedRunReport:
        """Coordinator side: verify each payload and fold it in, report."""
        coordinator = self.factory()
        reports: list[SiteReport] = []
        for site, payload, tokens, seconds in results:
            merge_sketch_bytes(coordinator, payload)
            reports.append(SiteReport(site, tokens, len(payload), seconds))
        return ShardedRunReport(
            sketch=coordinator,
            sites=reports,
            strategy=strategy,
            mode=mode,
            wall_seconds=time.perf_counter() - t_start,
        )


def sharded_consume(
    stream: DynamicGraphStream,
    factory: Callable[[], object],
    sites: int = 4,
    strategy: str = "hash-edge",
    mode: str = "sequential",
    seed: int = 0,
) -> ShardedRunReport:
    """One-call convenience wrapper around :class:`ShardedSketchRunner`.

    .. deprecated::
        Use ``GraphSketchEngine.for_spec(spec).sharded(...)`` — the
        engine runs the identical pipeline and adds the uniform query
        dispatch on top (see ``docs/MIGRATION.md``).
    """
    from ..api.deprecation import warn_deprecated

    warn_deprecated(
        "sharded_consume()",
        "GraphSketchEngine.for_spec(spec).sharded(sites=K).ingest(stream)",
    )
    return ShardedSketchRunner(
        factory, sites=sites, strategy=strategy, mode=mode, seed=seed
    ).run(stream)
