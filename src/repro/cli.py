"""Command-line interface: ``python -m repro.cli`` / ``repro-graph-sketches``.

Sub-commands:

* ``list`` — show the experiment registry and workloads;
* ``run <id> [--full] [--seed N]`` — run one experiment (e1–e12) and
  print its table (``all`` runs every experiment);
* ``demo`` — a 30-second end-to-end tour: build a churny stream,
  sketch it, report min cut, sparsifier quality, triangle frequency,
  and a spanner;
* ``distribute --sites K`` — the Section 1.1 multi-site deployment:
  partition a stream across K sites, consume locally, ship serialised
  sketches to a coordinator, and answer connectivity / min-cut /
  sparsifier-cut / spanner-distance queries from the merged sketches;
* ``epochs --epochs E`` — temporal checkpointing: consume a stream in
  E epochs, seal immutable cumulative checkpoints, optionally write the
  manifest to a file (and, with ``--sites K``, checkpoint per-site and
  merge across sites);
* ``window-query --from T1 --to T2`` — materialise the epoch window
  [T1, T2) by checkpoint subtraction (from ``--manifest FILE`` or a
  freshly built demo timeline) and answer through the sketch's query
  surface.
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    from .eval import EXPERIMENTS, WORKLOADS

    print("experiments:")
    for exp_id, (desc, _fn) in sorted(EXPERIMENTS.items()):
        print(f"  {exp_id}: {desc}")
    print("workloads:")
    for name in sorted(WORKLOADS):
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .eval import EXPERIMENTS, run_experiment

    requested = args.experiment.lower()
    if requested != "all" and requested not in EXPERIMENTS:
        valid = ", ".join(sorted(EXPERIMENTS))
        print(
            f"error: unknown experiment {args.experiment!r} "
            f"(choose from {valid}, or 'all')",
            file=sys.stderr,
        )
        return 2
    ids = sorted(EXPERIMENTS) if requested == "all" else [requested]
    for exp_id in ids:
        t0 = time.perf_counter()
        table = run_experiment(exp_id, quick=not args.full, seed=args.seed)
        dt = time.perf_counter() - t0
        print(table.render())
        print(f"\n[{exp_id} completed in {dt:.1f}s]\n")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .core import (
        TRIANGLE,
        BaswanaSenSpanner,
        MinCutSketch,
        SimpleSparsification,
        SubgraphSketch,
        cut_approximation_report,
        encoding_class,
    )
    from .graphs import Graph, gamma_exact, global_min_cut_value, measure_stretch
    from .hashing import HashSource
    from .streams import churn_stream, planted_partition_graph

    seed = args.seed
    n = 36
    edges = planted_partition_graph(n, 0.6, 0.12, seed=seed)
    graph = Graph.from_edges(n, edges)
    stream = churn_stream(n, edges, seed=seed + 1)
    print(f"workload: planted partition, n={n}, m={graph.num_edges()}, "
          f"{len(stream)} stream tokens (with deletions)")

    mc = MinCutSketch(n, epsilon=0.5, source=HashSource(seed + 2)).consume(stream)
    res = mc.estimate()
    print(f"min cut: sketch={res.value} exact={global_min_cut_value(graph)} "
          f"(stop level {res.stop_level})")

    sp = SimpleSparsification(
        n, epsilon=0.5, source=HashSource(seed + 3), c_k=0.3
    ).consume(stream)
    s = sp.sparsifier()
    rep = cut_approximation_report(graph, s, sample_cuts=200, seed=seed)
    print(f"sparsifier: {s.num_edges}/{graph.num_edges()} edges, "
          f"max cut error {rep.max_relative_error:.3f}")

    sub = SubgraphSketch(
        n, order=3, samplers=96, source=HashSource(seed + 4)
    ).consume(stream)
    est = sub.estimate(TRIANGLE)
    print(f"triangles: γ sketch={est.gamma:.4f} "
          f"exact={gamma_exact(graph, encoding_class(TRIANGLE), 3):.4f}")

    span = BaswanaSenSpanner(n, k=2, source=HashSource(seed + 5)).build(stream)
    sr = measure_stretch(graph, span.spanner)
    print(f"spanner (k=2): {span.edges} edges, max stretch {sr.max_stretch} "
          f"(bound 3), batches {span.batches}")
    return 0


def _cmd_distribute(args: argparse.Namespace) -> int:
    """Simulate the Section 1.1 multi-site deployment end to end."""
    import functools

    from .core import BaswanaSenSpanner
    from .distributed import (
        PARTITION_STRATEGIES,
        ShardedSketchRunner,
        forest_sketch,
        mincut_sketch,
        partition_stream,
        sparsifier_sketch,
    )
    from .graphs import Graph, global_min_cut_value, measure_stretch
    from .hashing import HashSource
    from .streams import churn_stream, planted_partition_graph

    if args.sites < 1:
        print("error: --sites must be >= 1", file=sys.stderr)
        return 2
    if args.strategy not in PARTITION_STRATEGIES:
        print(
            f"error: unknown strategy {args.strategy!r} "
            f"(choose from {', '.join(PARTITION_STRATEGIES)})",
            file=sys.stderr,
        )
        return 2

    seed = args.seed
    n = 36
    edges = planted_partition_graph(n, 0.6, 0.12, seed=seed)
    graph = Graph.from_edges(n, edges)
    stream = churn_stream(n, edges, seed=seed + 1)
    print(
        f"workload: planted partition, n={n}, m={graph.num_edges()}, "
        f"{len(stream)} tokens → {args.sites} site(s), "
        f"strategy={args.strategy}, mode={args.mode}"
    )
    # 3 × int64 per token on the wire, split across the sites.
    stream_bytes = 24 * len(stream) // args.sites
    print(f"shipping the raw stream would cost ~{stream_bytes} bytes per site")

    runners = [
        ("connectivity (forest)", functools.partial(forest_sketch, n, seed + 2),
         lambda sk: f"components={len(sk.connected_components())}"),
        ("min cut", functools.partial(mincut_sketch, n, seed + 3),
         lambda sk: f"estimate={sk.estimate().value} "
                    f"exact={global_min_cut_value(graph)}"),
        ("sparsifier", functools.partial(sparsifier_sketch, n, seed + 4),
         lambda sk: _sparsifier_answer(sk, graph, seed)),
    ]
    for name, factory, answer in runners:
        runner = ShardedSketchRunner(
            factory, sites=args.sites, strategy=args.strategy,
            mode=args.mode, seed=seed,
        )
        report = runner.run(stream)
        per_site = ", ".join(str(s.payload_bytes) for s in report.sites)
        print(f"{name}: {answer(report.sketch)}")
        print(
            f"  bytes/site [{per_site}]  total={report.total_payload_bytes}  "
            f"wall={report.wall_seconds:.2f}s"
        )

    shards = partition_stream(stream, args.sites, args.strategy, seed)
    span = BaswanaSenSpanner(n, k=2, source=HashSource(seed + 5))
    rep = span.build_sharded(shards)
    sr = measure_stretch(graph, rep.spanner)
    print(
        f"spanner distances (k=2): {rep.edges} edges, max stretch "
        f"{sr.max_stretch} (bound {rep.stretch_bound}), "
        f"{rep.batches} adaptive rounds, {rep.shipped_bytes} bytes shipped"
    )
    return 0


def _sparsifier_answer(sk, graph, seed: int) -> str:
    from .core import cut_approximation_report

    sp = sk.sparsifier()
    rep = cut_approximation_report(graph, sp, sample_cuts=200, seed=seed)
    return (
        f"{sp.num_edges}/{graph.num_edges()} edges, "
        f"max cut error {rep.max_relative_error:.3f}"
    )


def _demo_workload(seed: int):
    """The shared demo workload (graph, stream) used by epochs/window-query."""
    from .graphs import Graph
    from .streams import churn_stream, planted_partition_graph

    n = 36
    edges = planted_partition_graph(n, 0.6, 0.12, seed=seed)
    return Graph.from_edges(n, edges), churn_stream(n, edges, seed=seed + 1)


def _parse_boundaries(spec: str) -> list[int]:
    """Parse a ``--boundaries`` CSV into epoch-end token positions.

    Raises ``ValueError`` with a readable message on non-integer parts;
    ordering/coverage validation happens in ``normalize_boundaries``.
    """
    try:
        return [int(part) for part in spec.split(",") if part.strip() != ""]
    except ValueError:
        raise ValueError(
            f"--boundaries must be comma-separated integers, got {spec!r}"
        ) from None


def _cmd_epochs(args: argparse.Namespace) -> int:
    """Seal per-epoch checkpoints of the demo stream (optionally sharded)."""
    import functools
    import pathlib

    from .distributed import ShardedSketchRunner, forest_sketch
    from .temporal import EpochManager

    if args.epochs < 1:
        print("error: --epochs must be >= 1", file=sys.stderr)
        return 2
    if args.sites < 1:
        print("error: --sites must be >= 1", file=sys.stderr)
        return 2
    seed = args.seed
    graph, stream = _demo_workload(seed)
    # Validate the epoch grid up front: a decreasing or short grid must
    # exit 2 with a clear message, not a traceback from deep inside the
    # epoch manager (the `cli run <bad-id>` contract).
    boundaries = None
    epochs = args.epochs
    if args.boundaries is not None:
        from .temporal import normalize_boundaries

        try:
            boundaries = _parse_boundaries(args.boundaries)
            normalize_boundaries(len(stream), None, boundaries)
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        epochs = None
    factory = functools.partial(forest_sketch, stream.n, seed + 2)
    grid = (f"{len(boundaries)} explicit epochs" if boundaries is not None
            else f"{epochs} epochs")
    print(
        f"workload: planted partition, n={stream.n}, m={graph.num_edges()}, "
        f"{len(stream)} tokens → {grid}"
    )
    if args.sites > 1:
        report = ShardedSketchRunner(
            factory, sites=args.sites, seed=seed
        ).run_epochs(stream, epochs=epochs, boundaries=boundaries)
        timeline = report.timeline
        print(
            f"sharded across {args.sites} sites: "
            f"{report.total_payload_bytes} checkpoint bytes shipped, "
            f"wall={report.wall_seconds:.2f}s"
        )
    else:
        timeline = EpochManager.consume(
            factory, stream, epochs=epochs, boundaries=boundaries
        )
    print("epoch  tokens  cumulative  checkpoint-bytes")
    for chk in timeline.checkpoints:
        print(
            f"{chk.epoch:>5}  {chk.tokens:>6}  {chk.cumulative_tokens:>10}  "
            f"{len(chk.payload):>16}"
        )
    manifest = timeline.to_bytes()
    print(
        f"manifest: {timeline.epochs} epochs, {len(manifest)} bytes "
        f"({timeline.total_payload_bytes} raw checkpoint bytes)"
    )
    if args.out:
        pathlib.Path(args.out).write_bytes(manifest)
        print(f"wrote manifest to {args.out}")
    return 0


def _cmd_window_query(args: argparse.Namespace) -> int:
    """Materialise [t1, t2) by checkpoint subtraction and answer it."""
    import functools
    import pathlib

    from .distributed import forest_sketch
    from .temporal import EpochManager, TemporalQueryEngine

    seed = args.seed
    if args.epochs < 1:
        print("error: --epochs must be >= 1", file=sys.stderr)
        return 2
    if args.manifest:
        data = pathlib.Path(args.manifest).read_bytes()
        try:
            engine = TemporalQueryEngine.from_manifest(data)
        except ValueError as err:
            print(f"error: cannot load manifest: {err}", file=sys.stderr)
            return 2
        print(
            f"manifest: {engine.epochs} epochs of "
            f"{engine.timeline.sketch_kind}"
        )
    else:
        _graph, stream = _demo_workload(seed)
        factory = functools.partial(forest_sketch, stream.n, seed + 2)
        timeline = EpochManager.consume(factory, stream, epochs=args.epochs)
        engine = TemporalQueryEngine(timeline)
        print(
            f"demo timeline: planted partition, n={stream.n}, "
            f"{len(stream)} tokens, {engine.epochs} epochs"
        )
    t1 = args.t1
    t2 = args.t2 if args.t2 is not None else engine.epochs
    try:
        answer = engine.answer(t1, t2)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    tokens = engine.window_tokens(t1, t2)
    print(f"window [{t1}, {t2}): {tokens} tokens, materialised by "
          f"{'1 load' if t1 == 0 else '2 loads + subtraction'}")
    for key, value in answer.items():
        print(f"  {key}: {value}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-graph-sketches",
        description="Graph sketches (Ahn-Guha-McGregor, PODS 2012) — "
        "experiments and demos.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiments and workloads")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run an experiment (e1..e12 or 'all')")
    p_run.add_argument("experiment", help="experiment id, e.g. e5, or 'all'")
    p_run.add_argument("--full", action="store_true",
                       help="full parameter sweep (slower)")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.set_defaults(func=_cmd_run)

    p_demo = sub.add_parser("demo", help="30-second end-to-end tour")
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.set_defaults(func=_cmd_demo)

    p_dist = sub.add_parser(
        "distribute",
        help="multi-site sharded sketching (partition → ship → merge)",
    )
    p_dist.add_argument("--sites", type=int, default=4,
                        help="number of simulated sites K (default 4)")
    p_dist.add_argument("--strategy", default="hash-edge",
                        help="partition strategy (round-robin, hash-edge, "
                             "hash-endpoint, contiguous)")
    p_dist.add_argument("--mode", default="sequential",
                        choices=["sequential", "process"],
                        help="site execution mode")
    p_dist.add_argument("--seed", type=int, default=0)
    p_dist.set_defaults(func=_cmd_distribute)

    p_epochs = sub.add_parser(
        "epochs",
        help="temporal checkpointing (consume → seal per-epoch checkpoints)",
    )
    p_epochs.add_argument("--epochs", type=int, default=6,
                          help="number of evenly spaced epochs E (default 6)")
    p_epochs.add_argument("--boundaries", default=None,
                          help="explicit epoch-end token positions as a "
                               "comma-separated non-decreasing list ending "
                               "at the stream length (overrides --epochs)")
    p_epochs.add_argument("--sites", type=int, default=1,
                          help="simulate K sites (per-site checkpoints "
                               "merged across sites; default 1)")
    p_epochs.add_argument("--out", default=None,
                          help="write the epoch manifest to this file")
    p_epochs.add_argument("--seed", type=int, default=0)
    p_epochs.set_defaults(func=_cmd_epochs)

    p_window = sub.add_parser(
        "window-query",
        help="answer an epoch window [T1, T2) by checkpoint subtraction",
    )
    p_window.add_argument("--manifest", default=None,
                          help="epoch manifest file (from `epochs --out`); "
                               "omitted: build a demo timeline")
    p_window.add_argument("--from", dest="t1", type=int, default=0,
                          help="window start epoch T1 (default 0)")
    p_window.add_argument("--to", dest="t2", type=int, default=None,
                          help="window end epoch T2 (default: last epoch)")
    p_window.add_argument("--epochs", type=int, default=6,
                          help="epochs for the demo timeline (default 6)")
    p_window.add_argument("--seed", type=int, default=0)
    p_window.set_defaults(func=_cmd_window_query)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
