"""Command-line interface: ``python -m repro.cli`` / ``repro-graph-sketches``.

Sub-commands:

* ``list`` — show the experiment registry and workloads;
* ``run <id> [--full] [--seed N]`` — run one experiment (e1–e10) and
  print its table (``all`` runs every experiment);
* ``demo`` — a 30-second end-to-end tour: build a churny stream,
  sketch it, report min cut, sparsifier quality, triangle frequency,
  and a spanner.
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    from .eval import EXPERIMENTS, WORKLOADS

    print("experiments:")
    for exp_id, (desc, _fn) in sorted(EXPERIMENTS.items()):
        print(f"  {exp_id}: {desc}")
    print("workloads:")
    for name in sorted(WORKLOADS):
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .eval import EXPERIMENTS, run_experiment

    requested = args.experiment.lower()
    if requested != "all" and requested not in EXPERIMENTS:
        valid = ", ".join(sorted(EXPERIMENTS))
        print(
            f"error: unknown experiment {args.experiment!r} "
            f"(choose from {valid}, or 'all')",
            file=sys.stderr,
        )
        return 2
    ids = sorted(EXPERIMENTS) if requested == "all" else [requested]
    for exp_id in ids:
        t0 = time.perf_counter()
        table = run_experiment(exp_id, quick=not args.full, seed=args.seed)
        dt = time.perf_counter() - t0
        print(table.render())
        print(f"\n[{exp_id} completed in {dt:.1f}s]\n")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .core import (
        TRIANGLE,
        BaswanaSenSpanner,
        MinCutSketch,
        SimpleSparsification,
        SubgraphSketch,
        cut_approximation_report,
        encoding_class,
    )
    from .graphs import Graph, gamma_exact, global_min_cut_value, measure_stretch
    from .hashing import HashSource
    from .streams import churn_stream, planted_partition_graph

    seed = args.seed
    n = 36
    edges = planted_partition_graph(n, 0.6, 0.12, seed=seed)
    graph = Graph.from_edges(n, edges)
    stream = churn_stream(n, edges, seed=seed + 1)
    print(f"workload: planted partition, n={n}, m={graph.num_edges()}, "
          f"{len(stream)} stream tokens (with deletions)")

    mc = MinCutSketch(n, epsilon=0.5, source=HashSource(seed + 2)).consume(stream)
    res = mc.estimate()
    print(f"min cut: sketch={res.value} exact={global_min_cut_value(graph)} "
          f"(stop level {res.stop_level})")

    sp = SimpleSparsification(
        n, epsilon=0.5, source=HashSource(seed + 3), c_k=0.3
    ).consume(stream)
    s = sp.sparsifier()
    rep = cut_approximation_report(graph, s, sample_cuts=200, seed=seed)
    print(f"sparsifier: {s.num_edges}/{graph.num_edges()} edges, "
          f"max cut error {rep.max_relative_error:.3f}")

    sub = SubgraphSketch(
        n, order=3, samplers=96, source=HashSource(seed + 4)
    ).consume(stream)
    est = sub.estimate(TRIANGLE)
    print(f"triangles: γ sketch={est.gamma:.4f} "
          f"exact={gamma_exact(graph, encoding_class(TRIANGLE), 3):.4f}")

    span = BaswanaSenSpanner(n, k=2, source=HashSource(seed + 5)).build(stream)
    sr = measure_stretch(graph, span.spanner)
    print(f"spanner (k=2): {span.edges} edges, max stretch {sr.max_stretch} "
          f"(bound 3), batches {span.batches}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-graph-sketches",
        description="Graph sketches (Ahn-Guha-McGregor, PODS 2012) — "
        "experiments and demos.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiments and workloads")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run an experiment (e1..e10 or 'all')")
    p_run.add_argument("experiment", help="experiment id, e.g. e5, or 'all'")
    p_run.add_argument("--full", action="store_true",
                       help="full parameter sweep (slower)")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.set_defaults(func=_cmd_run)

    p_demo = sub.add_parser("demo", help="30-second end-to-end tour")
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.set_defaults(func=_cmd_demo)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
