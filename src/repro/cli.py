"""Command-line interface: ``python -m repro.cli`` / ``repro-graph-sketches``.

Sub-commands:

* ``list`` — show the experiment registry and workloads;
* ``run <id> [--full] [--seed N]`` — run one experiment (e1–e12) and
  print its table (``all`` runs every experiment);
* ``demo`` — a 30-second end-to-end tour: build a churny stream and
  answer min-cut / sparsifier / triangle / spanner queries through one
  :class:`~repro.api.GraphSketchEngine` per spec;
* ``distribute --sites K`` — the Section 1.1 multi-site deployment:
  the same specs, deployed with ``.sharded(sites=K)`` — partition,
  consume locally, ship serialised sketches, merge, answer;
* ``epochs --epochs E`` — temporal checkpointing: the same spec with
  ``.epochs(...)``, sealing immutable cumulative checkpoints
  (optionally per-site with ``--sites K``), manifest written with
  ``--out``;
* ``window-query --from T1 --to T2`` — restore an engine from a
  manifest (or build a demo timeline) and answer the epoch window
  [T1, T2) by checkpoint subtraction;
* ``serve`` — run the :mod:`repro.serve` async ingestion/query service
  over HTTP (needs the ``repro[serve]`` extra for uvicorn; see
  ``docs/SERVING.md``).

All four demo-flavoured subcommands share one workload/spec helper
(:func:`_demo_setup`): the point of the engine API is that *the same
spec* drives every deployment mode.
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = ["main"]


def _print_error(err: Exception, context: str = "") -> None:
    """Print one CLI error line, surfacing the stable machine code.

    Library failures (:class:`~repro.errors.ReproError`) carry a stable
    ``code`` string — the same one the serve API returns in error
    bodies — so scripted callers can dispatch on ``error[CODE]:``
    without parsing prose.  Non-library errors print the plain prefix.
    """
    from .errors import ReproError

    prefix = f"error[{err.code}]" if isinstance(err, ReproError) else "error"
    lead = f"{context}: " if context else ""
    print(f"{prefix}: {lead}{err}", file=sys.stderr)


def _cmd_list(_args: argparse.Namespace) -> int:
    from .eval import EXPERIMENTS, WORKLOADS

    print("experiments:")
    for exp_id, (desc, _fn) in sorted(EXPERIMENTS.items()):
        print(f"  {exp_id}: {desc}")
    print("workloads:")
    for name in sorted(WORKLOADS):
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .eval import EXPERIMENTS, run_experiment

    requested = args.experiment.lower()
    if requested != "all" and requested not in EXPERIMENTS:
        valid = ", ".join(sorted(EXPERIMENTS))
        print(
            f"error: unknown experiment {args.experiment!r} "
            f"(choose from {valid}, or 'all')",
            file=sys.stderr,
        )
        return 2
    ids = sorted(EXPERIMENTS) if requested == "all" else [requested]
    for exp_id in ids:
        t0 = time.perf_counter()
        table = run_experiment(exp_id, quick=not args.full, seed=args.seed)
        dt = time.perf_counter() - t0
        print(table.render())
        print(f"\n[{exp_id} completed in {dt:.1f}s]\n")
    return 0


def _demo_setup(seed: int):
    """The shared demo workload and engine specs of every subcommand.

    One planted-partition churn stream plus one :class:`~repro.api.
    SketchSpec` per demo sketch — ``demo`` runs them locally,
    ``distribute`` shards the *same* specs, ``epochs``/``window-query``
    checkpoint them; nothing but the fluent deployment chain differs.
    """
    from .api import SketchSpec
    from .graphs import Graph
    from .streams import churn_stream, planted_partition_graph

    n = 36
    edges = planted_partition_graph(n, 0.6, 0.12, seed=seed)
    graph = Graph.from_edges(n, edges)
    stream = churn_stream(n, edges, seed=seed + 1)
    specs = {
        "forest": SketchSpec.of("spanning_forest", n, seed=seed + 2),
        "mincut": SketchSpec.of("mincut", n, seed=seed + 3, epsilon=0.5),
        "sparsifier": SketchSpec.of(
            "simple_sparsification", n, seed=seed + 4, epsilon=0.5, c_k=0.3
        ),
        "subgraph": SketchSpec.of(
            "subgraph_count", n, seed=seed + 5, order=3, samplers=96
        ),
        "spanner": SketchSpec.of("baswana_sen_spanner", n, seed=seed + 6, k=2),
    }
    return graph, stream, specs


def _cmd_demo(args: argparse.Namespace) -> int:
    from .api import (
        GraphSketchEngine,
        MinCutQuery,
        SpannerDistanceQuery,
        SparsifierQuery,
        SubgraphCountQuery,
    )
    from .core import TRIANGLE, cut_approximation_report, encoding_class
    from .graphs import gamma_exact, global_min_cut_value, measure_stretch

    seed = args.seed
    graph, stream, specs = _demo_setup(seed)
    print(f"workload: planted partition, n={stream.n}, m={graph.num_edges()}, "
          f"{len(stream)} stream tokens (with deletions)")

    mc = GraphSketchEngine.for_spec(specs["mincut"]).ingest(stream)
    res = mc.query(MinCutQuery())
    print(f"min cut: sketch={res.value} exact={global_min_cut_value(graph)} "
          f"(stop level {res.stop_level})")

    sp = GraphSketchEngine.for_spec(specs["sparsifier"]).ingest(stream)
    sparse = sp.query(SparsifierQuery())
    rep = cut_approximation_report(
        graph, sparse.sparsifier, sample_cuts=200, seed=seed
    )
    print(f"sparsifier: {sparse.edges}/{graph.num_edges()} edges, "
          f"max cut error {rep.max_relative_error:.3f}")

    sub = GraphSketchEngine.for_spec(specs["subgraph"]).ingest(stream)
    tri = sub.query(SubgraphCountQuery("triangle"))
    print(f"triangles: γ sketch={tri.gamma:.4f} "
          f"exact={gamma_exact(graph, encoding_class(TRIANGLE), 3):.4f}")

    span = GraphSketchEngine.for_spec(specs["spanner"]).ingest(stream)
    sd = span.query(SpannerDistanceQuery())
    sr = measure_stretch(graph, sd.spanner)
    print(f"spanner (k=2): {sd.edges} edges, max stretch {sr.max_stretch} "
          f"(bound {sd.stretch_bound:.0f}), batches {sd.batches}")
    return 0


def _cmd_distribute(args: argparse.Namespace) -> int:
    """Simulate the Section 1.1 multi-site deployment end to end."""
    from .api import (
        ConnectivityQuery,
        GraphSketchEngine,
        MinCutQuery,
        SpannerDistanceQuery,
        SparsifierQuery,
    )
    from .core import cut_approximation_report
    from .distributed import PARTITION_STRATEGIES
    from .graphs import global_min_cut_value, measure_stretch

    if args.sites < 1:
        print("error: --sites must be >= 1", file=sys.stderr)
        return 2
    if args.processes is not None and args.processes < 1:
        print("error: --processes must be >= 1", file=sys.stderr)
        return 2
    if args.strategy not in PARTITION_STRATEGIES:
        print(
            f"error: unknown strategy {args.strategy!r} "
            f"(choose from {', '.join(PARTITION_STRATEGIES)})",
            file=sys.stderr,
        )
        return 2

    seed = args.seed
    graph, stream, specs = _demo_setup(seed)
    print(
        f"workload: planted partition, n={stream.n}, m={graph.num_edges()}, "
        f"{len(stream)} tokens → {args.sites} site(s), "
        f"strategy={args.strategy}, mode={args.mode}"
    )
    # 3 × int64 per token on the wire, split across the sites.
    stream_bytes = 24 * len(stream) // args.sites
    print(f"shipping the raw stream would cost ~{stream_bytes} bytes per site")

    def deploy(spec, mode=None):
        # Adaptive spanners run a coordinator-driven round protocol and
        # refuse process workers — their deploys stay sequential even
        # under --mode process.
        return (GraphSketchEngine.for_spec(spec)
                .sharded(sites=args.sites, strategy=args.strategy, seed=seed)
                .workers(mode=mode or args.mode, processes=args.processes)
                .ingest(stream))

    def sparsifier_answer(result):
        rep = cut_approximation_report(
            graph, result.sparsifier, sample_cuts=200, seed=seed
        )
        return (f"{result.edges}/{graph.num_edges()} edges, "
                f"max cut error {rep.max_relative_error:.3f}")

    runs = [
        ("connectivity (forest)", specs["forest"], ConnectivityQuery(),
         lambda r: f"components={r.components}"),
        ("min cut", specs["mincut"], MinCutQuery(),
         lambda r: f"estimate={r.value} exact={global_min_cut_value(graph)}"),
        ("sparsifier", specs["sparsifier"], SparsifierQuery(),
         sparsifier_answer),
    ]
    for name, spec, query, fmt in runs:
        with deploy(spec) as engine:
            report = engine.last_report
            per_site = ", ".join(str(s.payload_bytes) for s in report.sites)
            print(f"{name}: {fmt(engine.query(query))}")
            print(
                f"  bytes/site [{per_site}]  "
                f"total={report.total_payload_bytes}  "
                f"wall={report.wall_seconds:.2f}s"
            )

    span = deploy(specs["spanner"], mode="sequential").query(
        SpannerDistanceQuery()
    )
    sr = measure_stretch(graph, span.spanner)
    print(
        f"spanner distances (k=2): {span.edges} edges, max stretch "
        f"{sr.max_stretch} (bound {span.stretch_bound:.0f}), "
        f"{span.batches} adaptive rounds, {span.shipped_bytes} bytes shipped"
    )
    return 0


def _parse_boundaries(spec: str) -> list[int]:
    """Parse a ``--boundaries`` CSV into epoch-end token positions.

    Raises ``ValueError`` with a readable message on non-integer parts;
    ordering/coverage validation happens in ``normalize_boundaries``.
    """
    try:
        return [int(part) for part in spec.split(",") if part.strip() != ""]
    except ValueError:
        raise ValueError(
            f"--boundaries must be comma-separated integers, got {spec!r}"
        ) from None


def _cmd_epochs(args: argparse.Namespace) -> int:
    """Seal per-epoch checkpoints of the demo stream (optionally sharded)."""
    import pathlib

    from .api import GraphSketchEngine
    from .errors import EpochStoreError
    from .temporal import RetentionPolicy

    if args.epochs < 1:
        print("error: --epochs must be >= 1", file=sys.stderr)
        return 2
    if args.sites < 1:
        print("error: --sites must be >= 1", file=sys.stderr)
        return 2
    retention = None
    if args.store is None and (
        args.horizon is not None or args.max_epochs is not None
        or args.max_bytes is not None or args.granularity is not None
    ):
        print(
            "error: --horizon/--max-epochs/--max-bytes/--granularity "
            "configure the durable store; pass --store DIR as well",
            file=sys.stderr,
        )
        return 2
    if args.store is not None and (
        args.max_epochs is not None or args.max_bytes is not None
        or args.granularity is not None
    ):
        try:
            retention = RetentionPolicy(
                max_epochs=args.max_epochs,
                max_bytes=args.max_bytes,
                min_granularity=args.granularity or 1,
            )
        except ValueError as err:
            _print_error(err)
            return 2
    seed = args.seed
    graph, stream, specs = _demo_setup(seed)
    # Validate the epoch grid up front: a decreasing or short grid must
    # exit 2 with a clear message, not a traceback from deep inside the
    # epoch manager (the `cli run <bad-id>` contract).
    boundaries = None
    epochs = args.epochs
    if args.boundaries is not None:
        from .temporal import normalize_boundaries

        try:
            boundaries = _parse_boundaries(args.boundaries)
            normalize_boundaries(len(stream), None, boundaries)
        except ValueError as err:
            _print_error(err)
            return 2
        epochs = None
    grid = (f"{len(boundaries)} explicit epochs" if boundaries is not None
            else f"{epochs} epochs")
    print(
        f"workload: planted partition, n={stream.n}, m={graph.num_edges()}, "
        f"{len(stream)} tokens → {grid}"
    )
    engine = GraphSketchEngine.for_spec(specs["forest"])
    if args.sites > 1:
        engine.sharded(sites=args.sites, seed=seed)
    try:
        engine.epochs(
            count=epochs, boundaries=boundaries,
            store=args.store, retention=retention, horizon=args.horizon,
        ).ingest(stream)
    except EpochStoreError as err:
        _print_error(err)
        return 2
    if args.sites > 1:
        report = engine.last_report
        print(
            f"sharded across {args.sites} sites: "
            f"{report.total_payload_bytes} checkpoint bytes shipped, "
            f"wall={report.wall_seconds:.2f}s"
        )
    if args.store is not None:
        store = engine.store
        print("span-start  span-end  segment-bytes")
        for entry in store.spans():
            print(f"{entry.start:>10}  {entry.end:>8}  {entry.nbytes:>13}")
        print(
            f"store: {store.epochs} epochs at {store.root} — "
            f"{store.span_count} spans, {store.total_bytes} bytes on disk, "
            f"retention floor {store.base}"
        )
    else:
        timeline = engine.timeline
        print("epoch  tokens  cumulative  checkpoint-bytes")
        for chk in timeline.checkpoints:
            print(
                f"{chk.epoch:>5}  {chk.tokens:>6}  {chk.cumulative_tokens:>10}  "
                f"{len(chk.payload):>16}"
            )
    manifest = engine.snapshot()
    what = "store pointer" if args.store is not None else "manifest"
    print(f"{what}: {engine.epochs_sealed} epochs, {len(manifest)} bytes")
    if args.out:
        pathlib.Path(args.out).write_bytes(manifest)
        print(f"wrote {what} to {args.out}")
    return 0


def _window_queries(engine, window):
    """Canonical windowed queries for the engine's declared capabilities."""
    from .api import (
        ConnectivityQuery,
        CutQuery,
        KEdgeConnectivityQuery,
        MinCutQuery,
        PropertiesQuery,
        SparsifierQuery,
        SubgraphCountQuery,
    )

    canonical = {
        "connectivity": ConnectivityQuery(window=window),
        "k-edge-connectivity": KEdgeConnectivityQuery(window=window),
        "mincut": MinCutQuery(window=window),
        "cut-query": CutQuery(side=frozenset({0}), window=window),
        "sparsifier": SparsifierQuery(window=window),
        "subgraph-count": SubgraphCountQuery("triangle", window=window),
        "properties": PropertiesQuery(window=window),
    }
    return [
        query for cap, query in canonical.items()
        if cap in engine.capabilities
    ]


def _print_result(result) -> None:
    """Render the data fields of a typed query result, one per line."""
    import dataclasses

    skip = {"kind", "capability", "window", "telemetry", "sparsifier", "spanner"}
    for field in dataclasses.fields(result):
        if field.name in skip:
            continue
        value = getattr(result, field.name)
        if isinstance(value, dict):
            for key, val in value.items():
                print(f"  {key}: {val}")
        elif isinstance(value, tuple) and len(value) > 6:
            print(f"  {field.name}: {len(value)} entries")
        elif value is not None:
            print(f"  {field.name}: {value}")


def _cmd_window_query(args: argparse.Namespace) -> int:
    """Materialise [t1, t2) by checkpoint subtraction and answer it."""
    import pathlib

    from .api import GraphSketchEngine
    from .errors import EpochStoreError

    seed = args.seed
    if args.epochs < 1:
        print("error: --epochs must be >= 1", file=sys.stderr)
        return 2
    if args.store and args.manifest:
        print("error: pass at most one of --store / --manifest",
              file=sys.stderr)
        return 2
    if args.store:
        try:
            engine = GraphSketchEngine.attach_store(args.store)
        except (ValueError, EpochStoreError) as err:
            _print_error(err, context="cannot open store")
            return 2
        store = engine.store
        print(
            f"store: {engine.epochs_sealed} epochs of {engine.spec.kind} "
            f"at {store.root} ({store.span_count} spans, "
            f"retention floor {store.base})"
        )
    elif args.manifest:
        data = pathlib.Path(args.manifest).read_bytes()
        try:
            engine = GraphSketchEngine.restore(data)
        except (ValueError, EpochStoreError) as err:
            _print_error(err, context="cannot load manifest")
            return 2
        print(
            f"manifest: {engine.epochs_sealed} epochs of {engine.spec.kind}"
        )
    else:
        _graph, stream, specs = _demo_setup(seed)
        engine = (GraphSketchEngine.for_spec(specs["forest"])
                  .epochs(count=args.epochs)
                  .ingest(stream))
        print(
            f"demo timeline: planted partition, n={stream.n}, "
            f"{len(stream)} tokens, {engine.epochs_sealed} epochs"
        )
    t1 = args.t1
    t2 = args.t2 if args.t2 is not None else engine.epochs_sealed
    try:
        results = [
            engine.query(query)
            for query in _window_queries(engine, (t1, t2))
        ]
        tokens = engine.window_tokens(t1, t2)
    except (ValueError, EpochStoreError) as err:
        # EpochStoreError is not a ValueError: retention refusals
        # (evicted epochs, sub-granularity endpoints) exit 2 too.
        _print_error(err)
        return 2
    if engine.store is not None:
        loads = len(engine.store.plan_window(t1, t2))
        how = f"{loads} dyadic span load{'s' if loads != 1 else ''} merged"
    else:
        how = "1 load" if t1 == 0 else "2 loads + subtraction"
    print(f"window [{t1}, {t2}): {tokens} tokens, materialised by {how}")
    for result in results:
        print(f"  [{result.capability}] "
              f"({result.telemetry.payload_bytes} checkpoint bytes, "
              f"{result.telemetry.seconds * 1e3:.1f} ms)")
        _print_result(result)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the ingestion/query service under uvicorn (repro[serve])."""
    from .serve import ServeConfig, create_app

    try:
        config = ServeConfig(
            queue_capacity=args.queue_capacity,
            idempotency_ttl=args.idempotency_ttl,
        )
    except ValueError as err:
        _print_error(err)
        return 2
    try:
        import uvicorn
    except ImportError:
        print(
            "error: serving over the network needs uvicorn — install the "
            "serve extra (pip install 'repro-graph-sketches[serve]'); "
            "in-process use works without it via repro.serve.create_app()",
            file=sys.stderr,
        )
        return 2
    uvicorn.run(
        create_app(config), host=args.host, port=args.port, log_level="info"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-graph-sketches",
        description="Graph sketches (Ahn-Guha-McGregor, PODS 2012) — "
        "experiments and demos.",
    )
    parser.add_argument(
        "--kernels", default=None, choices=["auto", "numpy", "numba"],
        help="compiled-kernel backend for the sketch hot loops (default: "
             "the REPRO_KERNELS env var, or auto; every backend is "
             "byte-identical — see docs/KERNELS.md)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiments and workloads")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run an experiment (e1..e12 or 'all')")
    p_run.add_argument("experiment", help="experiment id, e.g. e5, or 'all'")
    p_run.add_argument("--full", action="store_true",
                       help="full parameter sweep (slower)")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.set_defaults(func=_cmd_run)

    p_demo = sub.add_parser("demo", help="30-second end-to-end tour")
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.set_defaults(func=_cmd_demo)

    p_dist = sub.add_parser(
        "distribute",
        help="multi-site sharded sketching (partition → ship → merge)",
    )
    p_dist.add_argument("--sites", type=int, default=4,
                        help="number of simulated sites K (default 4)")
    p_dist.add_argument("--strategy", default="hash-edge",
                        help="partition strategy (round-robin, hash-edge, "
                             "hash-endpoint, contiguous)")
    p_dist.add_argument("--mode", default="sequential",
                        choices=["sequential", "process"],
                        help="site execution mode")
    p_dist.add_argument("--processes", type=int, default=None,
                        help="worker pool size for --mode process "
                             "(default: min(sites, cpus))")
    p_dist.add_argument("--seed", type=int, default=0)
    p_dist.set_defaults(func=_cmd_distribute)

    p_epochs = sub.add_parser(
        "epochs",
        help="temporal checkpointing (consume → seal per-epoch checkpoints)",
    )
    p_epochs.add_argument("--epochs", type=int, default=6,
                          help="number of evenly spaced epochs E (default 6)")
    p_epochs.add_argument("--boundaries", default=None,
                          help="explicit epoch-end token positions as a "
                               "comma-separated non-decreasing list ending "
                               "at the stream length (overrides --epochs)")
    p_epochs.add_argument("--sites", type=int, default=1,
                          help="simulate K sites (per-site checkpoints "
                               "merged across sites; default 1)")
    p_epochs.add_argument("--out", default=None,
                          help="write the epoch manifest (or store pointer, "
                               "with --store) to this file")
    p_epochs.add_argument("--store", default=None, metavar="DIR",
                          help="seal checkpoints durably into an EpochStore "
                               "directory (dyadic compaction) instead of an "
                               "in-memory timeline")
    p_epochs.add_argument("--horizon", type=int, default=None,
                          help="epochs kept uncompacted at the tail of the "
                               "store (default 0: compact eagerly)")
    p_epochs.add_argument("--max-epochs", type=int, default=None,
                          help="retention: keep at most this many trailing "
                               "epochs addressable")
    p_epochs.add_argument("--max-bytes", type=int, default=None,
                          help="retention: evict oldest spans past this "
                               "many on-disk bytes")
    p_epochs.add_argument("--granularity", type=int, default=None,
                          help="retention: power-of-two minimum span length "
                               "kept for compacted (old) epochs")
    p_epochs.add_argument("--seed", type=int, default=0)
    p_epochs.set_defaults(func=_cmd_epochs)

    p_window = sub.add_parser(
        "window-query",
        help="answer an epoch window [T1, T2) by checkpoint subtraction",
    )
    p_window.add_argument("--manifest", default=None,
                          help="epoch manifest file (from `epochs --out`); "
                               "omitted: build a demo timeline")
    p_window.add_argument("--store", default=None, metavar="DIR",
                          help="answer from a durable EpochStore directory "
                               "(from `epochs --store`) by merging O(log T) "
                               "dyadic spans")
    p_window.add_argument("--from", dest="t1", type=int, default=0,
                          help="window start epoch T1 (default 0)")
    p_window.add_argument("--to", dest="t2", type=int, default=None,
                          help="window end epoch T2 (default: last epoch)")
    p_window.add_argument("--epochs", type=int, default=6,
                          help="epochs for the demo timeline (default 6)")
    p_window.add_argument("--seed", type=int, default=0)
    p_window.set_defaults(func=_cmd_window_query)

    p_serve = sub.add_parser(
        "serve",
        help="run the async ingestion/query service (needs repro[serve])",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8042)
    p_serve.add_argument("--queue-capacity", type=int, default=64,
                         help="bound on the ingest job queue; full → 429 "
                              "(default 64)")
    p_serve.add_argument("--idempotency-ttl", type=float, default=300.0,
                         help="seconds a client batch id is remembered for "
                              "replay detection (default 300)")
    p_serve.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    if args.kernels is not None:
        from . import kernels as _kernels

        _kernels.use(args.kernels)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
