"""Prometheus text-format rendering of service counters.

Hand-rolled exposition (text format 0.0.4) — the format is a stable,
trivial contract and taking a client-library dependency for counter
lines would invert the cost/benefit.  Tenant names are validated to a
label-safe alphabet at creation, so no escaping is needed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .app import ServeApp

__all__ = ["render_metrics"]


def _line(
    name: str, value: "int | float", labels: "dict[str, str] | None" = None
) -> str:
    if labels:
        inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
        return f"{name}{{{inner}}} {value}"
    return f"{name} {value}"


def render_metrics(app: "ServeApp") -> str:
    """The full exposition for one service instance."""
    out: list[str] = []

    def family(name: str, kind: str, help_text: str) -> None:
        out.append(f"# HELP {name} {help_text}")
        out.append(f"# TYPE {name} {kind}")

    queue = app.queue
    family("repro_serve_queue_depth", "gauge", "Jobs waiting in the ingest queue.")
    out.append(_line("repro_serve_queue_depth", queue.depth()))
    family("repro_serve_queue_capacity", "gauge", "Bound of the ingest queue.")
    out.append(_line("repro_serve_queue_capacity", queue.capacity))
    family(
        "repro_serve_jobs_admitted_total", "counter",
        "Ingest jobs admitted to the queue.",
    )
    out.append(_line("repro_serve_jobs_admitted_total", queue.admitted))
    family(
        "repro_serve_jobs_rejected_total", "counter",
        "Ingest jobs rejected with 429 (queue full).",
    )
    out.append(_line("repro_serve_jobs_rejected_total", queue.rejected))
    family(
        "repro_serve_jobs_drained_total", "counter",
        "Ingest jobs drained into engines.",
    )
    out.append(_line("repro_serve_jobs_drained_total", queue.drained))

    tenants = app.registry.tenants()
    family("repro_serve_tenants", "gauge", "Live tenants.")
    out.append(_line("repro_serve_tenants", len(tenants)))

    family(
        "repro_serve_updates_ingested_total", "counter",
        "Edge updates absorbed into sketch state, per tenant.",
    )
    for t in tenants:
        out.append(_line(
            "repro_serve_updates_ingested_total",
            t.updates_ingested, {"tenant": t.name},
        ))
    family(
        "repro_serve_batches_ingested_total", "counter",
        "Batches absorbed into sketch state, per tenant.",
    )
    for t in tenants:
        out.append(_line(
            "repro_serve_batches_ingested_total",
            t.batches_ingested, {"tenant": t.name},
        ))
    family(
        "repro_serve_batches_deduplicated_total", "counter",
        "Batch submissions answered from the idempotency store.",
    )
    for t in tenants:
        out.append(_line(
            "repro_serve_batches_deduplicated_total",
            t.batches_deduplicated, {"tenant": t.name},
        ))
    family(
        "repro_serve_drain_errors_total", "counter",
        "Admitted jobs that failed while draining.",
    )
    for t in tenants:
        out.append(_line(
            "repro_serve_drain_errors_total",
            t.drain_errors, {"tenant": t.name},
        ))
    family(
        "repro_serve_queries_total", "counter",
        "Queries answered, per tenant and capability.",
    )
    for t in tenants:
        for capability, count in sorted(t.queries.items()):
            out.append(_line(
                "repro_serve_queries_total",
                count, {"tenant": t.name, "capability": capability},
            ))
    family(
        "repro_serve_query_seconds_total", "counter",
        "Wall-clock seconds spent answering queries, per tenant.",
    )
    for t in tenants:
        out.append(_line(
            "repro_serve_query_seconds_total",
            t.query_seconds, {"tenant": t.name},
        ))
    family(
        "repro_serve_query_payload_bytes_total", "counter",
        "Serialised sketch bytes loaded to answer queries, per tenant.",
    )
    for t in tenants:
        out.append(_line(
            "repro_serve_query_payload_bytes_total",
            t.query_payload_bytes, {"tenant": t.name},
        ))

    from .. import kernels

    family(
        "repro_kernel_backend_info", "gauge",
        "Active compiled-kernel backend (value is always 1).",
    )
    out.append(_line(
        "repro_kernel_backend_info", 1, {"backend": kernels.backend_name()},
    ))
    family(
        "repro_kernel_calls_total", "counter",
        "Kernel invocations, per kernel and implementing backend.",
    )
    stats = kernels.kernel_stats()
    for row in stats:
        out.append(_line(
            "repro_kernel_calls_total", row["calls"],
            {"kernel": row["kernel"], "backend": row["backend"]},
        ))
    family(
        "repro_kernel_seconds_total", "counter",
        "Wall-clock seconds inside kernels, per kernel and backend.",
    )
    for row in stats:
        out.append(_line(
            "repro_kernel_seconds_total", row["seconds"],
            {"kernel": row["kernel"], "backend": row["backend"]},
        ))
    return "\n".join(out) + "\n"
