"""``repro.serve`` — async ingestion/query service over graph sketches.

Linearity is what makes sketches *servable*: ingestion is mergeable and
order-insensitive within a tenant, so a bounded queue drained off the
event loop absorbs bursty update streams while queries answer from
whatever prefix has drained — with read-your-writes on demand via the
flush endpoint.  The wire contract is the schema-v1 dict encoding from
:mod:`repro.api.wire` plus the stable error codes from
:mod:`repro.errors`.

The service core is dependency-free (pure ASGI on stdlib asyncio);
running it as a network server needs an ASGI server — install the
``repro[serve]`` extra for ``uvicorn`` and use the ``repro serve`` CLI.
In-process use needs no server at all::

    from repro.serve import ServeConfig, create_app
    from repro.serve.testing import AsgiClient

    app = create_app(ServeConfig(queue_capacity=128))
    async with AsgiClient(app) as client:
        await client.post("/v1/tenants", json={
            "name": "t1", "spec": {"kind": "spanning_forest", "n": 64},
        })
"""

from __future__ import annotations

from .app import ServeApp, create_app
from .config import ServeConfig
from .idempotency import IdempotencyStore
from .queue import IngestJob, IngestQueue, QueueFull
from .tenants import DuplicateTenant, Tenant, TenantRegistry, UnknownTenant

__all__ = [
    "DuplicateTenant",
    "IdempotencyStore",
    "IngestJob",
    "IngestQueue",
    "QueueFull",
    "ServeApp",
    "ServeConfig",
    "Tenant",
    "TenantRegistry",
    "UnknownTenant",
    "create_app",
]
