"""The ASGI application: ingestion/query service over graph sketches.

Pure ASGI 3 on the stdlib event loop — no web framework.  The app is a
plain callable, so it runs under any ASGI server (``uvicorn`` via the
``repro serve`` CLI, the ``repro[serve]`` extra) and is testable
in-process with the bundled :class:`repro.serve.testing.AsgiClient` or
``httpx.ASGITransport``, no sockets involved.

Routes (all bodies JSON; errors are ``{"error": {"code", "message"}}``)::

    GET    /healthz                     liveness
    GET    /metrics                     Prometheus text format
    GET    /v1/tenants                  list tenant names
    POST   /v1/tenants                  declare a tenant (spec + deployment)
    GET    /v1/tenants/{t}              tenant info + counters
    DELETE /v1/tenants/{t}              close the engine, forget the tenant
    POST   /v1/tenants/{t}/batches      submit one update batch (202;
                                        replay of a batch_id -> 200 with
                                        the original receipt; queue full
                                        -> 429 + Retry-After)
    POST   /v1/tenants/{t}/as_batch     same batch semantics, columnar
                                        body: {"lo": [...], "hi": [...],
                                        "delta": [...]} (delta optional
                                        -> unit insertions)
    POST   /v1/tenants/{t}/stream       NDJSON update stream (one JSON
                                        update per line; backpressure by
                                        connection flow control)
    POST   /v1/tenants/{t}/flush        wait until admitted jobs drained
    POST   /v1/tenants/{t}/seal         seal an epoch (temporal tenants)
    POST   /v1/tenants/{t}/query        wire-schema query dict in,
                                        wire-schema result dict out
    GET    /v1/tenants/{t}/snapshot     codec-v2 engine snapshot (base64)

Error codes on the wire are the stable :mod:`repro.errors` codes
(``NOT_SUPPORTED``, ``WIRE_INVALID``, ``STREAM_INVALID``...) plus the
service-level ``TENANT_UNKNOWN``/``TENANT_EXISTS``/``QUEUE_FULL``/
``SHUTTING_DOWN``/``NOT_FOUND``/``METHOD_NOT_ALLOWED``/``BAD_REQUEST``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from collections.abc import Awaitable, Callable, Mapping
from typing import Any

from ..api.wire import blob_to_wire
from ..errors import NotSupportedError, ReproError, StreamError, WireFormatError
from .config import ServeConfig
from .idempotency import IdempotencyStore
from .metrics import render_metrics
from .queue import IngestJob, IngestQueue, QueueFull
from .tenants import (
    DuplicateTenant,
    Tenant,
    TenantRegistry,
    UnknownTenant,
    parse_columns,
    parse_update,
    parse_updates,
)

__all__ = ["ServeApp", "create_app"]

_Receive = Callable[[], Awaitable[Mapping[str, Any]]]
_Send = Callable[[Mapping[str, Any]], Awaitable[None]]


class _HttpError(Exception):
    """Internal: aborts a handler with a mapped HTTP error response."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        headers: "dict[str, str] | None" = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.headers = headers or {}


def _map_exception(err: Exception, retry_after: int) -> _HttpError:
    """Translate library/service exceptions to wire errors."""
    if isinstance(err, _HttpError):
        return err
    if isinstance(err, UnknownTenant):
        return _HttpError(404, "TENANT_UNKNOWN", str(err))
    if isinstance(err, DuplicateTenant):
        return _HttpError(409, "TENANT_EXISTS", str(err))
    if isinstance(err, QueueFull):
        return _HttpError(
            429, "QUEUE_FULL", str(err),
            headers={"retry-after": str(retry_after)},
        )
    if isinstance(err, NotSupportedError):
        return _HttpError(422, err.code, str(err))
    if isinstance(err, (WireFormatError, StreamError)):
        return _HttpError(400, err.code, str(err))
    if isinstance(err, ReproError):
        return _HttpError(500, err.code, str(err))
    if isinstance(err, (ValueError, TypeError)):
        return _HttpError(400, "BAD_REQUEST", str(err))
    raise err


class ServeApp:
    """The service: tenant registry + ingest queue + ASGI surface."""

    def __init__(
        self,
        config: "ServeConfig | None" = None,
        clock: "Callable[[], float]" = time.monotonic,
    ) -> None:
        self.config = config or ServeConfig()
        self.registry = TenantRegistry()
        self.queue = IngestQueue(self.config.queue_capacity)
        self.idempotency = IdempotencyStore(
            self.config.idempotency_ttl, clock
        )
        self._drainer: "asyncio.Task[None] | None" = None
        self._accepting = False

    # -- lifecycle -------------------------------------------------------------

    async def startup(self) -> None:
        """Start the drainer; idempotent."""
        if self._drainer is None:
            self._drainer = asyncio.get_running_loop().create_task(
                self.queue.drain_forever()
            )
        self._accepting = True

    async def shutdown(self) -> None:
        """Graceful: refuse new work, drain the queue, close engines."""
        self._accepting = False
        if self._drainer is not None:
            await self.queue.join()
            self._drainer.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._drainer
            self._drainer = None
        self.registry.close_all()

    def _require_accepting(self) -> None:
        if not self._accepting:
            raise _HttpError(
                503, "SHUTTING_DOWN", "service is shutting down"
            )

    # -- ASGI entry point ------------------------------------------------------

    async def __call__(
        self,
        scope: Mapping[str, Any],
        receive: _Receive,
        send: _Send,
    ) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - server-dependent
            raise NotSupportedError(f"unsupported ASGI scope {scope['type']!r}")
        # Fairness checkpoint: a request that fails fast (e.g. 429 on a
        # full queue) may otherwise never suspend, and over a
        # zero-latency transport a retry loop would starve the drainer.
        await asyncio.sleep(0)
        try:
            status, payload, headers = await self._dispatch(scope, receive)
        except Exception as err:  # noqa: BLE001 - the error boundary
            mapped = _map_exception(err, self.config.retry_after_seconds)
            status = mapped.status
            payload = {"error": {"code": mapped.code, "message": mapped.message}}
            headers = mapped.headers
        await self._respond(send, status, payload, headers)

    async def _lifespan(self, receive: _Receive, send: _Send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await self.startup()
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await self.shutdown()
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _respond(
        self,
        send: _Send,
        status: int,
        payload: "Mapping[str, Any] | str",
        headers: "Mapping[str, str] | None" = None,
    ) -> None:
        if isinstance(payload, str):
            body = payload.encode()
            content_type = b"text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload, sort_keys=True).encode()
            content_type = b"application/json"
        raw_headers = [
            (b"content-type", content_type),
            (b"content-length", str(len(body)).encode()),
        ]
        for key, value in (headers or {}).items():
            raw_headers.append((key.encode(), value.encode()))
        await send({
            "type": "http.response.start",
            "status": status,
            "headers": raw_headers,
        })
        await send({"type": "http.response.body", "body": body})

    # -- request plumbing ------------------------------------------------------

    async def _read_body(self, receive: _Receive) -> bytes:
        chunks: list[bytes] = []
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                raise _HttpError(400, "BAD_REQUEST", "client disconnected")
            chunks.append(message.get("body", b""))
            if not message.get("more_body", False):
                return b"".join(chunks)

    async def _read_json(self, receive: _Receive) -> Any:
        body = await self._read_body(receive)
        if not body:
            return {}
        try:
            return json.loads(body)
        except json.JSONDecodeError as err:
            raise _HttpError(
                400, "BAD_REQUEST", f"request body is not valid JSON: {err}"
            ) from None

    async def _dispatch(
        self, scope: Mapping[str, Any], receive: _Receive
    ) -> "tuple[int, Mapping[str, Any] | str, dict[str, str]]":
        method: str = scope["method"]
        parts = [p for p in scope["path"].split("/") if p]
        if parts == ["healthz"] and method == "GET":
            return 200, {"status": "ok"}, {}
        if parts == ["metrics"] and method == "GET":
            return 200, render_metrics(self), {}
        if len(parts) >= 2 and parts[0] == "v1" and parts[1] == "tenants":
            return await self._dispatch_tenants(method, parts[2:], receive)
        raise _HttpError(404, "NOT_FOUND", f"no route {scope['path']!r}")

    async def _dispatch_tenants(
        self, method: str, rest: "list[str]", receive: _Receive
    ) -> "tuple[int, Mapping[str, Any] | str, dict[str, str]]":
        if not rest:
            if method == "GET":
                return 200, {"tenants": self.registry.names()}, {}
            if method == "POST":
                return await self._create_tenant(receive)
            raise _HttpError(405, "METHOD_NOT_ALLOWED", f"{method} not allowed")
        tenant_name = rest[0]
        action = rest[1] if len(rest) > 1 else None
        if len(rest) > 2:
            raise _HttpError(404, "NOT_FOUND", "no such route")
        if action is None:
            tenant = self.registry.get(tenant_name)
            if method == "GET":
                return 200, tenant.info(), {}
            if method == "DELETE":
                async with tenant.lock:
                    self.registry.remove(tenant_name)
                    self.idempotency.forget_tenant(tenant_name)
                return 200, {"deleted": tenant_name}, {}
            raise _HttpError(405, "METHOD_NOT_ALLOWED", f"{method} not allowed")
        handlers: dict[
            str,
            Callable[
                [Tenant, _Receive],
                Awaitable[tuple[int, Mapping[str, Any], dict[str, str]]],
            ],
        ] = {
            "batches": self._submit_batch,
            "as_batch": self._submit_batch_columnar,
            "stream": self._submit_stream,
            "flush": self._flush,
            "seal": self._seal,
            "query": self._query,
            "snapshot": self._snapshot,
        }
        handler = handlers.get(action)
        if handler is None:
            raise _HttpError(404, "NOT_FOUND", f"no tenant action {action!r}")
        expected = "GET" if action == "snapshot" else "POST"
        if method != expected:
            raise _HttpError(405, "METHOD_NOT_ALLOWED", f"{method} not allowed")
        return await handler(self.registry.get(tenant_name), receive)

    # -- handlers --------------------------------------------------------------

    async def _create_tenant(
        self, receive: _Receive
    ) -> "tuple[int, Mapping[str, Any], dict[str, str]]":
        self._require_accepting()
        payload = await self._read_json(receive)
        tenant = await asyncio.to_thread(self.registry.create, payload)
        return 201, tenant.info(), {}

    async def _submit_batch(
        self, tenant: Tenant, receive: _Receive
    ) -> "tuple[int, Mapping[str, Any], dict[str, str]]":
        return await self._ingest_batch(
            tenant, receive, lambda payload: parse_updates(payload.get("updates"))
        )

    async def _submit_batch_columnar(
        self, tenant: Tenant, receive: _Receive
    ) -> "tuple[int, Mapping[str, Any], dict[str, str]]":
        """Columnar twin of ``batches``: ``lo``/``hi``/``delta`` arrays.

        Decodes to the same update list as the row-wise form (see
        :func:`~repro.serve.tenants.parse_columns`), then shares the
        entire admission path — idempotency, validation, queue, receipt
        shape — so the two endpoints are interchangeable on the wire.
        """
        return await self._ingest_batch(tenant, receive, parse_columns)

    async def _ingest_batch(
        self,
        tenant: Tenant,
        receive: _Receive,
        decode: "Callable[[Mapping[str, Any]], list[Any]]",
    ) -> "tuple[int, Mapping[str, Any], dict[str, str]]":
        self._require_accepting()
        payload = await self._read_json(receive)
        if not isinstance(payload, Mapping):
            raise _HttpError(400, "BAD_REQUEST", "body must be an object")
        batch_id = payload.get("batch_id")
        if batch_id is not None and not isinstance(batch_id, str):
            raise _HttpError(400, "BAD_REQUEST", "batch_id must be a string")
        if batch_id is not None:
            original = self.idempotency.recall(tenant.name, batch_id)
            if original is not None:
                tenant.batches_deduplicated += 1
                return 200, {**original, "replayed": True}, {}
        updates = decode(payload)
        if not updates:
            raise _HttpError(400, "BAD_REQUEST", "the batch must be non-empty")
        for update in updates:
            update.validate_universe(tenant.spec.n)
        job = IngestJob(tenant=tenant, updates=updates)
        seq = self.queue.admit_nowait(job)
        receipt = {
            "tenant": tenant.name,
            "batch_id": batch_id,
            "updates": len(updates),
            "seq": seq,
            "replayed": False,
        }
        job.receipt = receipt
        if batch_id is not None:
            self.idempotency.record(tenant.name, batch_id, receipt)
        return 202, receipt, {}

    async def _submit_stream(
        self, tenant: Tenant, receive: _Receive
    ) -> "tuple[int, Mapping[str, Any], dict[str, str]]":
        """NDJSON ingest: one JSON update per line, chunked admission.

        Jobs are enqueued with ``await`` (not nowait): when the queue is
        full the coroutine — and with it the request body consumption —
        pauses, which is exactly TCP backpressure on the client.
        """
        self._require_accepting()
        buffer = b""
        pending: list[Any] = []
        accepted = 0
        jobs = 0

        async def flush_chunk() -> None:
            nonlocal accepted, jobs, pending
            if not pending:
                return
            chunk, pending = pending, []
            await self.queue.admit(IngestJob(tenant=tenant, updates=chunk))
            accepted += len(chunk)
            jobs += 1

        async def take_line(line: bytes) -> None:
            text = line.strip()
            if not text:
                return
            try:
                raw = json.loads(text)
            except json.JSONDecodeError as err:
                raise _HttpError(
                    400, "BAD_REQUEST",
                    f"NDJSON line is not valid JSON: {err}",
                ) from None
            update = parse_update(raw)
            update.validate_universe(tenant.spec.n)
            pending.append(update)
            if len(pending) >= self.config.stream_chunk_updates:
                await flush_chunk()

        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                raise _HttpError(400, "BAD_REQUEST", "client disconnected")
            buffer += message.get("body", b"")
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                await take_line(line)
            if not message.get("more_body", False):
                break
        await take_line(buffer)
        await flush_chunk()
        return 202, {"tenant": tenant.name, "updates": accepted, "jobs": jobs}, {}

    async def _flush(
        self, tenant: Tenant, receive: _Receive
    ) -> "tuple[int, Mapping[str, Any], dict[str, str]]":
        await self._read_body(receive)
        await tenant.wait_idle()
        return 200, {"tenant": tenant.name, "pending": tenant.pending}, {}

    async def _seal(
        self, tenant: Tenant, receive: _Receive
    ) -> "tuple[int, Mapping[str, Any], dict[str, str]]":
        """Seal an epoch *in admission order*: the seal rides the queue
        behind every batch admitted before it, and the response waits
        for it to drain."""
        self._require_accepting()
        await self._read_body(receive)
        if not tenant.temporal:
            raise NotSupportedError(
                f"tenant {tenant.name!r} is not temporal; declare "
                "\"epochs\": {} at creation to seal windows"
            )
        done: "asyncio.Future[Any]" = asyncio.get_running_loop().create_future()
        job = IngestJob(tenant=tenant, updates=None, done=done)
        self.queue.admit_nowait(job)
        epochs = await done
        return 200, {"tenant": tenant.name, "epochs_sealed": epochs}, {}

    async def _query(
        self, tenant: Tenant, receive: _Receive
    ) -> "tuple[int, Mapping[str, Any], dict[str, str]]":
        payload = await self._read_json(receive)
        async with tenant.lock:
            result = await asyncio.to_thread(tenant.query_sync, payload)
        return 200, result.to_dict(), {}

    async def _snapshot(
        self, tenant: Tenant, receive: _Receive
    ) -> "tuple[int, Mapping[str, Any], dict[str, str]]":
        async with tenant.lock:
            blob = await asyncio.to_thread(tenant.engine.snapshot)
        return 200, {
            "tenant": tenant.name,
            "kind": tenant.spec.kind,
            "codec": "v2",
            "blob": blob_to_wire(blob),
        }, {}


def create_app(
    config: "ServeConfig | None" = None,
    clock: "Callable[[], float]" = time.monotonic,
) -> ServeApp:
    """Build the ASGI application (the ``repro serve`` entry point)."""
    return ServeApp(config, clock)
