"""TTL'd idempotency store for client batch ids.

A client that resubmits a batch after a lost response must not double
-ingest: linearity makes sketch state add-correct, but the *stream* the
service claims to have absorbed would silently diverge from the one the
client sent.  The store remembers ``(tenant, batch_id) -> receipt`` for
a bounded window; a replay returns the original admission receipt
instead of enqueueing the batch again.

The clock is injectable so tests drive expiry deterministically; the
default is ``time.monotonic`` (wall-clock jumps must not expire or
resurrect entries).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from collections.abc import Callable
from typing import Any

__all__ = ["IdempotencyStore"]


class IdempotencyStore:
    """Remembers admission receipts keyed by ``(tenant, batch_id)``."""

    def __init__(
        self,
        ttl: float,
        clock: "Callable[[], float]" = time.monotonic,
    ) -> None:
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self._ttl = ttl
        self._clock = clock
        # Insertion-ordered with a fixed TTL, so expiry order is
        # insertion order: purging pops from the front only.
        self._entries: "OrderedDict[tuple[str, str], tuple[float, dict[str, Any]]]" = (
            OrderedDict()
        )

    def _purge(self) -> None:
        now = self._clock()
        while self._entries:
            _key, (expires, _receipt) = next(iter(self._entries.items()))
            if expires > now:
                break
            self._entries.popitem(last=False)

    def recall(self, tenant: str, batch_id: str) -> "dict[str, Any] | None":
        """The remembered receipt for a live entry, else ``None``."""
        self._purge()
        entry = self._entries.get((tenant, batch_id))
        return None if entry is None else entry[1]

    def record(
        self, tenant: str, batch_id: str, receipt: "dict[str, Any]"
    ) -> None:
        """Remember ``receipt`` for :attr:`ttl` seconds from now."""
        self._purge()
        # Re-recording refreshes the TTL; move to the back to keep
        # expiry order == insertion order.
        key = (tenant, batch_id)
        self._entries[key] = (self._clock() + self._ttl, receipt)
        self._entries.move_to_end(key)

    def forget_tenant(self, tenant: str) -> None:
        """Drop every entry of one tenant (tenant deletion)."""
        for key in [k for k in self._entries if k[0] == tenant]:
            del self._entries[key]

    def __len__(self) -> int:
        self._purge()
        return len(self._entries)
