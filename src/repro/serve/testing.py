"""In-process ASGI test client — drive the app without a server.

The client speaks raw ASGI 3 to any app callable: lifespan on enter/
exit, one ``http`` scope per request.  It exists so the test suite (and
downstream users without ``httpx``) can exercise the full service —
routing, backpressure, streaming bodies, shutdown — with zero sockets;
``httpx.ASGITransport`` works identically for callers who have it.
"""

from __future__ import annotations

import asyncio
import json as json_module
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Any

__all__ = ["AsgiClient", "Response"]


@dataclass
class Response:
    """One materialised HTTP response."""

    status: int
    headers: "dict[str, str]"
    body: bytes

    @property
    def text(self) -> str:
        return self.body.decode()

    def json(self) -> Any:
        return json_module.loads(self.body)


class AsgiClient:
    """``async with AsgiClient(app) as client: await client.get(...)``."""

    def __init__(self, app: Any) -> None:
        self._app = app
        self._lifespan_in: "asyncio.Queue[Mapping[str, Any]]" = asyncio.Queue()
        self._lifespan_out: "asyncio.Queue[Mapping[str, Any]]" = asyncio.Queue()
        self._lifespan_task: "asyncio.Task[None] | None" = None

    # -- lifespan --------------------------------------------------------------

    async def __aenter__(self) -> "AsgiClient":
        scope = {"type": "lifespan", "asgi": {"version": "3.0"}}
        self._lifespan_task = asyncio.get_running_loop().create_task(
            self._app(scope, self._lifespan_in.get, self._lifespan_out.put)
        )
        await self._lifespan_in.put({"type": "lifespan.startup"})
        message = await self._lifespan_out.get()
        if message["type"] != "lifespan.startup.complete":  # pragma: no cover
            raise RuntimeError(f"startup failed: {message}")
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self._lifespan_in.put({"type": "lifespan.shutdown"})
        message = await self._lifespan_out.get()
        if message["type"] != "lifespan.shutdown.complete":  # pragma: no cover
            raise RuntimeError(f"shutdown failed: {message}")
        if self._lifespan_task is not None:
            await self._lifespan_task

    # -- requests --------------------------------------------------------------

    async def request(
        self,
        method: str,
        path: str,
        json: Any = None,
        body: "bytes | None" = None,
        chunks: "Iterable[bytes] | None" = None,
        headers: "Mapping[str, str] | None" = None,
    ) -> Response:
        """Send one request; exactly one of ``json``/``body``/``chunks``.

        ``chunks`` sends a streamed body (one ``http.request`` message
        per chunk with ``more_body``), exercising incremental reads.
        """
        if sum(x is not None for x in (json, body, chunks)) > 1:
            raise TypeError("pass at most one of json=, body=, chunks=")
        if json is not None:
            body = json_module.dumps(json).encode()
        messages: list[dict[str, Any]] = []
        if chunks is not None:
            chunk_list = list(chunks)
            for i, chunk in enumerate(chunk_list):
                messages.append({
                    "type": "http.request",
                    "body": chunk,
                    "more_body": i < len(chunk_list) - 1,
                })
            if not messages:
                messages.append({"type": "http.request", "body": b""})
        else:
            messages.append({"type": "http.request", "body": body or b""})

        incoming = iter(messages)

        async def receive() -> Mapping[str, Any]:
            try:
                return next(incoming)
            except StopIteration:  # pragma: no cover - app over-reads
                return {"type": "http.disconnect"}

        sent: list[Mapping[str, Any]] = []

        async def send(message: Mapping[str, Any]) -> None:
            sent.append(message)

        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": path,
            "raw_path": path.encode(),
            "query_string": b"",
            "headers": [
                (k.lower().encode(), v.encode())
                for k, v in (headers or {}).items()
            ],
        }
        await self._app(scope, receive, send)

        status = 500
        resp_headers: dict[str, str] = {}
        chunks_out: list[bytes] = []
        for message in sent:
            if message["type"] == "http.response.start":
                status = message["status"]
                resp_headers = {
                    k.decode(): v.decode() for k, v in message["headers"]
                }
            elif message["type"] == "http.response.body":
                chunks_out.append(message.get("body", b""))
        return Response(status, resp_headers, b"".join(chunks_out))

    async def get(self, path: str, **kwargs: Any) -> Response:
        return await self.request("GET", path, **kwargs)

    async def post(self, path: str, **kwargs: Any) -> Response:
        return await self.request("POST", path, **kwargs)

    async def delete(self, path: str, **kwargs: Any) -> Response:
        return await self.request("DELETE", path, **kwargs)
