"""Tenant registry: client-declared sketch specs bound to live engines.

A *tenant* is one named :class:`~repro.api.SketchSpec` deployed on a
:class:`~repro.api.GraphSketchEngine` the client configured at creation
time — local, ``sharded`` across simulated sites (optionally on the
process worker pool), or ``epochs`` for manually-sealed temporal
windows.  The service's job queue and query path both funnel through
the tenant's ``asyncio.Lock``, so engine state only ever sees one
operation at a time; the blocking engine calls themselves run off the
event loop (``asyncio.to_thread``).

What a tenant may declare follows the engine's own rules: adaptive
spanner builders hold no linear state and take whole-stream ingests, so
they are refused up front; epoch *grids* (``count``/``boundaries``)
need the full stream at once, so a served temporal tenant seals
manually through the ``seal`` endpoint instead; sharding and epochs
don't combine (the engine's manual-temporal mode is local-only).
"""

from __future__ import annotations

import asyncio
import re
from collections.abc import Mapping
from typing import Any

from ..api import GraphSketchEngine, QueryResult, SketchSpec
from ..api.capabilities import capability_entry
from ..errors import NotSupportedError, WireFormatError
from ..streams import DynamicGraphStream, EdgeUpdate, StreamBatch

__all__ = [
    "DuplicateTenant",
    "Tenant",
    "TenantRegistry",
    "UnknownTenant",
]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


class UnknownTenant(LookupError):
    """No tenant with the requested name (HTTP 404)."""


class DuplicateTenant(ValueError):
    """A tenant with this name already exists (HTTP 409)."""


def _fail(msg: str) -> WireFormatError:
    return WireFormatError(f"tenant declaration: {msg}")


def _req_int(payload: Mapping[str, Any], field: str) -> int:
    value = payload.get(field)
    if not isinstance(value, int) or isinstance(value, bool):
        raise _fail(f"field {field!r} must be an integer, got {value!r}")
    return value


def _opt_int(
    payload: Mapping[str, Any], field: str, default: "int | None" = None
) -> "int | None":
    if payload.get(field) is None:
        return default
    return _req_int(payload, field)


def _req_str(payload: Mapping[str, Any], field: str) -> str:
    value = payload.get(field)
    if not isinstance(value, str):
        raise _fail(f"field {field!r} must be a string, got {value!r}")
    return value


def _opt_section(
    payload: Mapping[str, Any], field: str
) -> "Mapping[str, Any] | None":
    value = payload.get(field)
    if value is None:
        return None
    if not isinstance(value, Mapping):
        raise _fail(f"section {field!r} must be an object")
    return value


def parse_spec(payload: Mapping[str, Any]) -> SketchSpec:
    """Build a :class:`SketchSpec` from its declaration dict."""
    kind = _req_str(payload, "kind")
    capability_entry(kind)  # unknown kind -> NotSupportedError (422)
    n = _req_int(payload, "n")
    seed = _opt_int(payload, "seed", 0)
    raw_params = _opt_section(payload, "params") or {}
    params: dict[str, Any] = {}
    for key, value in raw_params.items():
        if not isinstance(key, str):
            raise _fail(f"params keys must be strings, got {key!r}")
        if not isinstance(value, (int, float, str)) or isinstance(value, bool):
            raise _fail(
                f"params[{key!r}] must be a number or string, got {value!r}"
            )
        params[key] = value
    assert seed is not None
    return SketchSpec.of(kind, n, seed=seed, **params)


def parse_updates(raw: Any) -> "list[EdgeUpdate]":
    """Decode a JSON updates array into validated edge updates.

    Accepts ``[u, v]`` / ``[u, v, delta]`` triples or
    ``{"u":, "v":, "delta":}`` objects; endpoint/delta validation is
    the stream model's own (:class:`~repro.errors.StreamError`).
    """
    if not isinstance(raw, (list, tuple)):
        raise _fail("'updates' must be an array")
    updates: list[EdgeUpdate] = []
    for item in raw:
        updates.append(parse_update(item))
    return updates


def parse_update(item: Any) -> EdgeUpdate:
    """Decode one JSON update — a pair/triple array or an object."""
    if isinstance(item, Mapping):
        u, v = _req_int(item, "u"), _req_int(item, "v")
        delta = _opt_int(item, "delta", 1)
        assert delta is not None
        return EdgeUpdate(u, v, delta)
    if isinstance(item, (list, tuple)) and len(item) in (2, 3):
        fields = {"u": item[0], "v": item[1]}
        if len(item) == 3:
            fields["delta"] = item[2]
        return parse_update(fields)
    raise _fail(
        f"each update must be [u, v], [u, v, delta] or an object, got {item!r}"
    )


def _req_column(payload: Mapping[str, Any], field: str) -> "list[int]":
    values = payload.get(field)
    if not isinstance(values, (list, tuple)):
        raise _fail(f"column {field!r} must be an array of integers")
    for value in values:
        if not isinstance(value, int) or isinstance(value, bool):
            raise _fail(
                f"column {field!r} must contain only integers, got {value!r}"
            )
    return list(values)


def parse_columns(payload: Mapping[str, Any]) -> "list[EdgeUpdate]":
    """Decode columnar ``lo``/``hi``/optional ``delta`` arrays into updates.

    The columnar form carries exactly the row-wise information —
    ``updates[i] == [lo[i], hi[i], delta[i]]`` — so it decodes to the
    identical update list and the two ingest endpoints are
    wire-equivalent (parity pinned by ``tests/test_serve.py``).  An
    omitted ``delta`` column means unit insertions, matching the
    ``[u, v]`` pair form.
    """
    lo = _req_column(payload, "lo")
    hi = _req_column(payload, "hi")
    if len(hi) != len(lo):
        raise _fail(f"column 'hi' length {len(hi)} != 'lo' length {len(lo)}")
    if payload.get("delta") is None:
        delta: "list[int]" = [1] * len(lo)
    else:
        delta = _req_column(payload, "delta")
        if len(delta) != len(lo):
            raise _fail(
                f"column 'delta' length {len(delta)} != 'lo' length {len(lo)}"
            )
    return [EdgeUpdate(u, v, d) for u, v, d in zip(lo, hi, delta)]


class Tenant:
    """One spec + engine + serialisation lock + counters."""

    def __init__(
        self,
        name: str,
        spec: SketchSpec,
        deployment: "dict[str, Any]",
        engine: GraphSketchEngine,
    ) -> None:
        self.name = name
        self.spec = spec
        self.deployment = deployment
        self.engine = engine
        self.sharded = deployment.get("sharded") is not None
        self.temporal = deployment.get("epochs") is not None
        #: Serialises every engine operation (drain, query, snapshot).
        self.lock = asyncio.Lock()
        #: Jobs admitted for this tenant and not yet drained.
        self.pending = 0
        self._idle = asyncio.Condition()
        self.updates_ingested = 0
        self.batches_ingested = 0
        self.batches_deduplicated = 0
        self.epochs_sealed = 0
        self.drain_errors = 0
        self.last_drain_error: "str | None" = None
        self.queries: "dict[str, int]" = {}
        self.query_seconds = 0.0
        self.query_payload_bytes = 0

    # -- drain-side accounting (event loop only) ------------------------------

    def note_admitted(self) -> None:
        self.pending += 1

    async def note_drained(self) -> None:
        self.pending -= 1
        if self.pending == 0:
            async with self._idle:
                self._idle.notify_all()

    async def wait_idle(self) -> None:
        """Block until every admitted job has drained (read-your-writes)."""
        async with self._idle:
            await self._idle.wait_for(lambda: self.pending == 0)

    # -- blocking engine calls (run via asyncio.to_thread, under lock) --------

    def apply_sync(self, updates: "list[EdgeUpdate]") -> None:
        """Ingest one admitted batch through the configured deployment."""
        if self.sharded:
            # Sharded engines partition whole streams; linearity merges
            # the per-ingest reports into the same state one big stream
            # would have produced.
            self.engine.ingest(DynamicGraphStream(self.spec.n, updates))
        else:
            self.engine.ingest_batch(StreamBatch.from_updates(self.spec.n, updates))
        self.updates_ingested += len(updates)
        self.batches_ingested += 1

    def seal_sync(self) -> int:
        """Seal the open epoch; returns the sealed-epoch count."""
        self.engine.seal_epoch()
        self.epochs_sealed = self.engine.epochs_sealed
        return self.epochs_sealed

    def query_sync(self, payload: "Mapping[str, Any]") -> QueryResult:
        result = self.engine.query(payload)
        cap = result.capability
        self.queries[cap] = self.queries.get(cap, 0) + 1
        self.query_seconds += result.telemetry.seconds
        self.query_payload_bytes += result.telemetry.payload_bytes
        return result

    def info(self) -> "dict[str, Any]":
        return {
            "name": self.name,
            "spec": {
                "kind": self.spec.kind,
                "n": self.spec.n,
                "seed": self.spec.seed,
                "params": dict(self.spec.params),
            },
            "deployment": self.deployment,
            "capabilities": sorted(capability_entry(self.spec.kind).queries),
            "pending": self.pending,
            "updates_ingested": self.updates_ingested,
            "batches_ingested": self.batches_ingested,
            "batches_deduplicated": self.batches_deduplicated,
            "epochs_sealed": self.epochs_sealed,
            "drain_errors": self.drain_errors,
            "last_drain_error": self.last_drain_error,
        }


def _parse_deployment(
    raw: "Mapping[str, Any] | None",
) -> "dict[str, Any]":
    """Validate and normalise the deployment declaration."""
    raw = raw or {}
    if not isinstance(raw, Mapping):
        raise _fail("section 'deployment' must be an object")
    unknown = set(raw) - {"sharded", "epochs", "workers"}
    if unknown:
        raise _fail(
            f"unknown deployment sections: {', '.join(sorted(unknown))}"
        )
    deployment: dict[str, Any] = {"sharded": None, "epochs": None, "workers": None}
    sharded = _opt_section(raw, "sharded")
    if sharded is not None:
        deployment["sharded"] = {
            "sites": _opt_int(sharded, "sites", 4),
            "strategy": sharded.get("strategy", "hash-edge"),
            "seed": _opt_int(sharded, "seed", 0),
        }
    epochs = _opt_section(raw, "epochs")
    if epochs is not None:
        if "count" in epochs or "boundaries" in epochs:
            raise NotSupportedError(
                "epoch grids (count/boundaries) need the whole stream at "
                "once; served temporal tenants seal manually through the "
                "seal endpoint — declare \"epochs\": {}"
            )
        deployment["epochs"] = {}
    workers = _opt_section(raw, "workers")
    if workers is not None:
        deployment["workers"] = {
            "mode": workers.get("mode", "sequential"),
            "processes": _opt_int(workers, "processes"),
            "start_method": workers.get("start_method"),
        }
    if deployment["sharded"] is not None and deployment["epochs"] is not None:
        raise NotSupportedError(
            "sharding and manual epochs do not combine on a served tenant; "
            "the engine's incremental temporal mode is local-only"
        )
    return deployment


def _build_engine(
    spec: SketchSpec, deployment: "Mapping[str, Any]"
) -> GraphSketchEngine:
    engine = GraphSketchEngine.for_spec(spec)
    sharded = deployment["sharded"]
    if sharded is not None:
        engine = engine.sharded(
            sites=sharded["sites"],
            strategy=sharded["strategy"],
            seed=sharded["seed"],
        )
    workers = deployment["workers"]
    if workers is not None:
        engine = engine.workers(
            mode=workers["mode"],
            processes=workers["processes"],
            start_method=workers["start_method"],
        )
    if deployment["epochs"] is not None:
        engine = engine.epochs()
    return engine


class TenantRegistry:
    """Name → live tenant, with validated creation and teardown."""

    def __init__(self) -> None:
        self._tenants: "dict[str, Tenant]" = {}

    def create(self, payload: "Mapping[str, Any]") -> Tenant:
        """Validate a declaration, build the engine, register the tenant.

        Raises :class:`WireFormatError` on malformed payloads (400),
        :class:`~repro.errors.NotSupportedError` on undeclarable
        configurations (422), ``ValueError`` on bad spec params (400)
        and :class:`DuplicateTenant` on a name collision (409).
        """
        if not isinstance(payload, Mapping):
            raise _fail("declaration must be an object")
        name = _req_str(payload, "name")
        if not _NAME_RE.match(name):
            raise _fail(
                f"tenant name {name!r} must match {_NAME_RE.pattern}"
            )
        if name in self._tenants:
            raise DuplicateTenant(f"tenant {name!r} already exists")
        spec_section = _opt_section(payload, "spec")
        if spec_section is None:
            raise _fail("missing required section 'spec'")
        spec = parse_spec(spec_section)
        if capability_entry(spec.kind).adaptive:
            raise NotSupportedError(
                f"{spec.kind!r} is an adaptive multi-batch builder with no "
                "linear state; it cannot ingest incrementally and is not "
                "servable"
            )
        spec.build()  # surface bad params now (ValueError -> 400)
        deployment = _parse_deployment(_opt_section(payload, "deployment"))
        engine = _build_engine(spec, deployment)
        tenant = Tenant(name, spec, deployment, engine)
        self._tenants[name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise UnknownTenant(f"no tenant named {name!r}")
        return tenant

    def remove(self, name: str) -> Tenant:
        tenant = self.get(name)
        del self._tenants[name]
        tenant.engine.close()
        return tenant

    def names(self) -> "list[str]":
        return sorted(self._tenants)

    def tenants(self) -> "list[Tenant]":
        return [self._tenants[name] for name in self.names()]

    def close_all(self) -> None:
        for tenant in self._tenants.values():
            tenant.engine.close()
        self._tenants.clear()
