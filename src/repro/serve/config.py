"""Service configuration for :mod:`repro.serve`."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one service instance.

    Attributes
    ----------
    queue_capacity:
        Bound on the shared ingest job queue.  Batch submissions that
        would exceed it are rejected with ``429`` + ``Retry-After``;
        the NDJSON streaming path blocks the connection instead
        (connection-level flow control).
    idempotency_ttl:
        Seconds a client batch id is remembered for replay detection.
    retry_after_seconds:
        The ``Retry-After`` hint sent with ``429`` rejections.
    stream_chunk_updates:
        How many NDJSON updates are grouped into one ingest job before
        being enqueued; bounds per-job latency and memory.
    """

    queue_capacity: int = 64
    idempotency_ttl: float = 300.0
    retry_after_seconds: int = 1
    stream_chunk_updates: int = 256

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.idempotency_ttl <= 0:
            raise ValueError("idempotency_ttl must be positive")
        if self.retry_after_seconds < 0:
            raise ValueError("retry_after_seconds must be >= 0")
        if self.stream_chunk_updates < 1:
            raise ValueError("stream_chunk_updates must be >= 1")
