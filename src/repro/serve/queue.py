"""Bounded ingest job queue with a single async drainer.

Every mutation of tenant sketch state — batch ingests and epoch seals —
flows through one FIFO queue drained by one task, so jobs apply in
admission order and the HTTP handlers never block on sketch work.  The
queue is bounded: batch submissions use :meth:`IngestQueue.admit_nowait`
and surface ``429`` when full (client-visible backpressure), while the
NDJSON streaming path awaits :meth:`IngestQueue.admit` so a slow drain
propagates as connection-level flow control.

The drainer runs blocking engine calls via ``asyncio.to_thread`` while
holding the tenant's lock, so concurrent queries (same lock) serialise
against drains instead of racing them.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from ..streams import EdgeUpdate

__all__ = ["IngestJob", "IngestQueue", "QueueFull"]


class QueueFull(Exception):
    """The bounded ingest queue cannot admit another job (HTTP 429)."""


@dataclass
class IngestJob:
    """One admitted unit of work: a parsed batch, or a seal marker."""

    tenant: Any
    #: Parsed updates; ``None`` marks an epoch-seal job.
    updates: "list[EdgeUpdate] | None"
    receipt: "dict[str, Any]" = field(default_factory=dict)
    #: Set for jobs whose submitter awaits completion (seal).
    done: "asyncio.Future[Any] | None" = None


class IngestQueue:
    """FIFO of :class:`IngestJob` with admission counters."""

    def __init__(self, capacity: int) -> None:
        self._queue: "asyncio.Queue[IngestJob]" = asyncio.Queue(capacity)
        self.capacity = capacity
        self.admitted = 0
        self.rejected = 0
        self.drained = 0
        self._seq = 0

    def depth(self) -> int:
        return self._queue.qsize()

    def _admitted(self, job: IngestJob) -> int:
        self._seq += 1
        self.admitted += 1
        job.tenant.note_admitted()
        return self._seq

    def admit_nowait(self, job: IngestJob) -> int:
        """Admit or raise :class:`QueueFull`; returns the admission seq."""
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.rejected += 1
            raise QueueFull(
                f"ingest queue is full ({self.capacity} jobs)"
            ) from None
        return self._admitted(job)

    async def admit(self, job: IngestJob) -> int:
        """Admit, waiting for space (streaming flow control)."""
        await self._queue.put(job)
        return self._admitted(job)

    async def join(self) -> None:
        """Block until every admitted job has been drained."""
        await self._queue.join()

    async def drain_forever(self) -> None:
        """The drainer loop; run as a task, stopped by cancellation."""
        while True:
            job = await self._queue.get()
            try:
                await self._drain_one(job)
            finally:
                self.drained += 1
                await job.tenant.note_drained()
                self._queue.task_done()

    async def _drain_one(self, job: IngestJob) -> None:
        tenant = job.tenant
        try:
            async with tenant.lock:
                if job.updates is None:
                    result = await asyncio.to_thread(tenant.seal_sync)
                else:
                    result = await asyncio.to_thread(
                        tenant.apply_sync, job.updates
                    )
        except Exception as err:
            # The submitter was already told 202; surface the failure
            # through tenant accounting (and the seal future, if any).
            tenant.drain_errors += 1
            tenant.last_drain_error = f"{type(err).__name__}: {err}"
            if job.done is not None and not job.done.done():
                job.done.set_exception(err)
        else:
            if job.done is not None and not job.done.done():
                job.done.set_result(result)
