"""Hashing substrate: random-oracle mixing, k-wise families, Nisan PRG.

Three interchangeable backends implement the hash protocol
(``hash64 / uniform / bucket / bernoulli / levels``):

* :class:`~repro.hashing.mix.HashSource` — seeded splitmix64, the fast
  default standing in for the paper's random oracle;
* :class:`~repro.hashing.polynomial.KWiseHash` — limited independence
  via random polynomials over ``GF(2^31 - 1)``;
* :class:`~repro.hashing.prg.NisanPRG` — the Section 3.4
  derandomisation, expanding a short truly random seed into the bit
  stream consumed by the sketches.
"""

from .field import MERSENNE31, horner_mod, mod_mersenne31, mulmod, powmod
from .mix import HashSource, splitmix64
from .polynomial import KWiseHash
from .prg import NisanPRG

__all__ = [
    "MERSENNE31",
    "HashSource",
    "KWiseHash",
    "NisanPRG",
    "horner_mod",
    "mod_mersenne31",
    "mulmod",
    "powmod",
    "splitmix64",
]
