"""k-wise independent hash families over ``GF(2^31 - 1)``.

The classical limited-independence construction: a uniformly random
polynomial of degree ``k - 1`` over a prime field, evaluated at the key,
is a k-wise independent function.  The paper states its preliminary
results (Theorems 2.1–2.3) assuming full independence and discharges the
assumption via Nisan's PRG; this module provides the intermediate,
widely used option so users can trade independence for seed size
explicitly.  The family is pluggable wherever :class:`~repro.hashing.mix.
HashSource` is used, via the shared ``hash64 / uniform / bucket /
levels`` protocol.
"""

from __future__ import annotations

import numpy as np

from .field import MERSENNE31, horner_mod
from .mix import HashSource

__all__ = ["KWiseHash"]


class KWiseHash:
    """A k-wise independent hash function ``[p] -> [p]``.

    Parameters
    ----------
    k:
        Independence parameter; ``k = 2`` gives the pairwise-independent
        family used inside Nisan's generator.
    source:
        Seed source used to draw the polynomial's coefficients
        deterministically.

    Notes
    -----
    Keys must be smaller than ``p = 2^31 - 1``; all edge-coordinate
    universes in this package (``C(n, 2)`` for n up to 65536, and the
    induced-subgraph column universes used in tests) satisfy this.
    """

    __slots__ = ("k", "coeffs", "_coeff_arr")

    def __init__(self, k: int, source: HashSource):
        if k < 1:
            raise ValueError(f"independence k must be >= 1, got {k}")
        self.k = k
        raw = [int(source.derive(i).hash64(0)) % MERSENNE31 for i in range(k)]
        # Leading coefficient non-zero keeps the polynomial degree exact.
        if raw[0] == 0:
            raw[0] = 1
        self.coeffs = tuple(raw)
        self._coeff_arr = np.asarray(raw, dtype=np.int64)

    def hash64(self, x: np.ndarray | int) -> np.ndarray | int:
        """Evaluate the polynomial; output in ``[0, 2^31 - 1)``.

        Named ``hash64`` for protocol compatibility with
        :class:`~repro.hashing.mix.HashSource`; outputs occupy only the
        low 31 bits.
        """
        scalar = isinstance(x, (int, np.integer))
        vals = horner_mod(self._coeff_arr, np.atleast_1d(np.asarray(x, dtype=np.int64)))
        if scalar:
            return int(vals[0])
        return vals

    def uniform(self, x: np.ndarray | int) -> np.ndarray | float:
        """Map keys to ``[0, 1)`` with k-wise independent values."""
        h = self.hash64(x)
        if isinstance(h, (int, np.integer)):
            return h / MERSENNE31
        return h.astype(np.float64) / MERSENNE31

    def bucket(self, x: np.ndarray | int, buckets: int) -> np.ndarray | int:
        """Map keys to ``[0, buckets)``."""
        h = self.hash64(x)
        if isinstance(h, (int, np.integer)):
            return h % buckets
        return h % buckets

    def bernoulli(self, x: np.ndarray | int, p: float) -> np.ndarray | bool:
        """Consistent Bernoulli(p) coin for each key."""
        u = self.uniform(x)
        if isinstance(u, float):
            return u < p
        return u < p

    def levels(self, x: np.ndarray | int, max_level: int) -> np.ndarray | int:
        """Geometric levels from the hash's trailing zero bits."""
        h = self.hash64(x)
        scalar = isinstance(h, (int, np.integer))
        arr = np.atleast_1d(np.asarray(h, dtype=np.int64)) | (1 << 30)
        low = arr & -arr
        lev = np.zeros(low.shape, dtype=np.int64)
        tmp = low.copy()
        for shift in (16, 8, 4, 2, 1):
            big = tmp >= (1 << shift)
            lev[big] += shift
            tmp[big] >>= shift
        lev = np.minimum(lev, max_level)
        if scalar:
            return int(lev[0])
        return lev

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KWiseHash(k={self.k})"
