"""Nisan's pseudorandom generator for space-bounded computation.

Section 3.4 of the paper derandomises the sketch constructions by
replacing the fully random hash bits with the output of Nisan's PRG
[Nisan, Combinatorica 1992]: any algorithm running in space ``S`` with
one-way access to ``R`` random bits can instead use ``O(S log R)``
truly random bits, expanded on the fly.

Construction.  Pick ``l`` independent pairwise-independent hash
functions ``h_1, ..., h_l : {0,1}^m -> {0,1}^m`` and a random block
``x ∈ {0,1}^m``.  The generator is defined recursively::

    G_0(x)        = x
    G_i(x)        = G_{i-1}(x) || G_{i-1}(h_i(x))

so ``G_l`` outputs ``2^l`` blocks of ``m`` bits from a seed of
``m + 2 l m`` bits.  Blocks are produced left to right; the ``j``-th
block is computed by walking the recursion tree using the bits of ``j``
— block ``j`` equals ``h_{i_1}(...h_{i_t}(x))`` where ``i_1 < ... <
i_t`` are the positions of the set bits of ``j`` (from least to most
significant recursion level).  This gives O(1) random access per block
without materialising the whole output, which is exactly the "implicitly
stored measurement" property the sketches need.

The :class:`NisanPRG` exposes the same ``hash64``-style protocol as the
other hash backends so the sketch machinery can be run end-to-end on
pseudorandom bits (experiment E8 does this).
"""

from __future__ import annotations

import numpy as np

from .field import MERSENNE31, mulmod
from .mix import HashSource

__all__ = ["NisanPRG"]


class NisanPRG:
    """Nisan's generator over ``m = 61``-bit blocks... practically 31-bit field.

    Parameters
    ----------
    levels:
        Number of recursion levels ``l``; the generator produces
        ``2**levels`` blocks.
    source:
        Seed source supplying the truly random seed: one field element
        for the start block plus an (a, b) pair per level for the
        pairwise-independent functions ``h_i(x) = a_i x + b_i mod p``.

    Notes
    -----
    We work over ``GF(p)`` with ``p = 2^31 - 1`` rather than bit-blocks;
    affine maps over a prime field are the standard pairwise-independent
    family and keep everything vectorisable.  Each block therefore
    carries ~31 bits of output.
    """

    __slots__ = ("depth", "x0", "a", "b")

    def __init__(self, levels: int, source: HashSource):
        if not 1 <= levels <= 62:
            raise ValueError(f"levels must be in [1, 62], got {levels}")
        self.depth = levels
        self.x0 = int(source.derive(0).hash64(0)) % MERSENNE31
        self.a = []
        self.b = []
        for i in range(levels):
            a_i = int(source.derive(1, i).hash64(0)) % MERSENNE31
            if a_i == 0:
                a_i = 1  # keep h_i a bijection
            b_i = int(source.derive(2, i).hash64(0)) % MERSENNE31
            self.a.append(a_i)
            self.b.append(b_i)

    @property
    def num_blocks(self) -> int:
        """Total number of 31-bit pseudorandom blocks available."""
        return 1 << self.depth

    def block(self, j: int) -> int:
        """Return the ``j``-th output block (31-bit value).

        Random access: walks the recursion tree following the set bits
        of ``j``.  Matches sequential expansion of the classic
        construction.
        """
        if not 0 <= j < self.num_blocks:
            raise ValueError(f"block index {j} outside [0, {self.num_blocks})")
        x = self.x0
        for i in range(self.depth):
            if (j >> i) & 1:
                x = (self.a[i] * x + self.b[i]) % MERSENNE31
        return x

    def blocks(self, idx: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`block` for an int64 array of indices."""
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_blocks):
            raise ValueError("block index outside generator range")
        x = np.full(idx.shape, self.x0, dtype=np.int64)
        for i in range(self.depth):
            take = ((idx >> i) & 1).astype(bool)
            if np.any(take):
                x[take] = (mulmod(self.a[i], x[take]) + self.b[i]) % MERSENNE31
        return x

    # -- hash-protocol adaptor ------------------------------------------------
    # Treat the PRG output stream as a hash table indexed by key: key -> block.
    # This realises the paper's §3.4 argument operationally: the "random bits
    # for edge e" are the PRG blocks at positions derived from e, read once.

    def hash64(self, x: np.ndarray | int) -> np.ndarray | int:
        """Map keys to pseudorandom 62-bit values (two blocks glued)."""
        mask = self.num_blocks - 1
        if isinstance(x, (int, np.integer)):
            lo = self.block((2 * int(x)) & mask)
            hi = self.block((2 * int(x) + 1) & mask)
            return (hi << 31) | lo
        idx = np.asarray(x, dtype=np.int64)
        lo = self.blocks((2 * idx) & mask)
        hi = self.blocks((2 * idx + 1) & mask)
        return (hi.astype(np.uint64) << np.uint64(31)) | lo.astype(np.uint64)

    def uniform(self, x: np.ndarray | int) -> np.ndarray | float:
        """Map keys to pseudorandom floats in ``[0, 1)``."""
        h = self.hash64(x)
        if isinstance(h, (int, np.integer)):
            return int(h) / 2.0**62
        return h.astype(np.float64) / 2.0**62

    def bucket(self, x: np.ndarray | int, buckets: int) -> np.ndarray | int:
        """Map keys to ``[0, buckets)``."""
        h = self.hash64(x)
        if isinstance(h, (int, np.integer)):
            return int(h) % buckets
        return (np.asarray(h, dtype=np.uint64) % np.uint64(buckets)).astype(np.int64)

    def bernoulli(self, x: np.ndarray | int, p: float) -> np.ndarray | bool:
        """Consistent pseudorandom Bernoulli(p) coin per key."""
        u = self.uniform(x)
        if isinstance(u, float):
            return u < p
        return u < p

    def levels_of(self, x: np.ndarray | int, max_level: int) -> np.ndarray | int:
        """Geometric levels from trailing zero bits of the block value."""
        h = self.hash64(x)
        scalar = isinstance(h, (int, np.integer))
        arr = np.atleast_1d(np.asarray(h, dtype=np.uint64)) | np.uint64(1 << 61)
        low = (arr & (~arr + np.uint64(1))).astype(np.uint64)
        lev = np.zeros(low.shape, dtype=np.int64)
        tmp = low.copy()
        for shift in (32, 16, 8, 4, 2, 1):
            big = tmp >= (np.uint64(1) << np.uint64(shift))
            lev[big] += shift
            tmp[big] >>= np.uint64(shift)
        lev = np.minimum(lev, max_level)
        if scalar:
            return int(lev[0])
        return lev

    # The sketch machinery calls ``levels``; keep both names.
    levels = levels_of

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NisanPRG(levels={self.depth}, blocks={self.num_blocks})"
