"""Prime-field arithmetic helpers for fingerprints and hash families.

All sketch fingerprints and limited-independence hash families in this
package work over the Mersenne prime field ``GF(p)`` with
``p = 2^31 - 1``.  Staying below 2^31 keeps every intermediate product
inside a 64-bit integer, which lets the hot paths run as vectorised
numpy ``int64`` arithmetic with no overflow.  Where a single 31-bit
field gives too much collision probability, callers combine **two**
independent fingerprints (different generators), squaring the error.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MERSENNE31",
    "mod_mersenne31",
    "mulmod",
    "powmod",
    "horner_mod",
]

#: The Mersenne prime 2^31 - 1 used for all vectorised field arithmetic.
MERSENNE31: int = (1 << 31) - 1


def mod_mersenne31(x: np.ndarray | int) -> np.ndarray | int:
    """Reduce ``x`` modulo ``2^31 - 1`` using the Mersenne shortcut.

    For ``x < 2^62`` two folding rounds suffice: write
    ``x = a * 2^31 + b``; then ``x ≡ a + b (mod p)``.  Works elementwise
    on numpy int64 arrays and on Python ints alike.
    """
    if isinstance(x, (int, np.integer)):
        x = (int(x) & MERSENNE31) + (int(x) >> 31)
        if x >= MERSENNE31:
            x -= MERSENNE31
        return x
    x = np.asarray(x, dtype=np.int64)
    x = (x & MERSENNE31) + (x >> 31)
    x = (x & MERSENNE31) + (x >> 31)
    return np.where(x >= MERSENNE31, x - MERSENNE31, x)


def mulmod(a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray | int:
    """Product modulo ``2^31 - 1``.

    Inputs must already be reduced (``< 2^31``) so the raw product fits
    in an int64.  Elementwise on arrays.
    """
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        return int(a) * int(b) % MERSENNE31
    prod = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
    return mod_mersenne31(prod)


def powmod(base: int, exp: int) -> int:
    """Scalar ``base ** exp mod (2^31 - 1)``."""
    return pow(base % MERSENNE31, exp, MERSENNE31)


def powmod_array(base: int, exps: np.ndarray) -> np.ndarray:
    """Vectorised ``base ** exps mod (2^31 - 1)`` by binary exponentiation.

    ``exps`` is an array of non-negative int64 exponents.  Runs in
    ``O(len(exps) * log(max exp))`` field multiplications.
    """
    exps = np.asarray(exps, dtype=np.int64)
    result = np.ones_like(exps)
    b = base % MERSENNE31
    remaining = exps.copy()
    while np.any(remaining > 0):
        odd = (remaining & 1).astype(bool)
        if np.any(odd):
            result[odd] = mulmod(result[odd], b)
        remaining >>= 1
        b = int(mulmod(b, b))
    return result


def horner_mod(coeffs: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Evaluate a polynomial at many points over ``GF(2^31 - 1)``.

    ``coeffs`` are given highest-degree first.  This is the work-horse of
    the k-wise independent hash family: a random degree-(k-1) polynomial
    evaluated at the key gives a k-wise independent value.
    """
    x = mod_mersenne31(np.asarray(x, dtype=np.int64))
    acc = np.full_like(x, int(coeffs[0]) % MERSENNE31)
    for c in coeffs[1:]:
        acc = mod_mersenne31(mulmod(acc, x) + (int(c) % MERSENNE31))
    return acc


__all__.append("powmod_array")
