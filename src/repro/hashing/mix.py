"""Seeded 64-bit mixing — the library's "random oracle" stand-in.

The paper's analysis (Sections 2–3) assumes fully independent random
hash functions and then removes the assumption with Nisan's generator
(Section 3.4).  In practice — as in every deployed sketch system — a
strong seeded mixer is used instead.  We implement the ``splitmix64``
finaliser, which passes standard avalanche tests, fully vectorised over
numpy ``uint64`` arrays so that sketch banks can hash batches of edge
indices in one call.

Every sketch object owns a :class:`HashSource` created from a master
seed, and derives statistically independent sub-streams for each
logical hash function via :meth:`HashSource.derive`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["splitmix64", "HashSource"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def splitmix64(x: np.ndarray | int, seed: int = 0) -> np.ndarray | int:
    """Apply the splitmix64 finaliser to ``x`` offset by ``seed``.

    Deterministic, collision-free on 64-bit inputs for a fixed seed (it
    is a bijection), and statistically indistinguishable from random for
    sketching purposes.  Accepts scalars or numpy arrays; always computes
    in ``uint64`` with wrap-around semantics.
    """
    scalar = isinstance(x, (int, np.integer))
    with np.errstate(over="ignore"):
        z = np.asarray(x, dtype=np.uint64) + np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
        z = (z + _GOLDEN) * _MIX1
        z ^= z >> np.uint64(30)
        z *= _MIX1
        z ^= z >> np.uint64(27)
        z *= _MIX2
        z ^= z >> np.uint64(31)
    if scalar:
        return int(z)
    return z


class HashSource:
    """A tree of derivable, seeded hash functions.

    A ``HashSource`` wraps a 64-bit seed.  :meth:`derive` produces a
    child source whose seed is a mix of the parent seed and a label,
    giving a deterministic hierarchy: the same master seed always yields
    the same family of hash functions — the property that makes linear
    sketches *consistent* so that deletions cancel insertions.
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int):
        self.seed = int(seed) & 0xFFFFFFFFFFFFFFFF

    def derive(self, *labels: int) -> "HashSource":
        """Derive a child source from integer labels.

        ``source.derive(3, 7)`` is deterministic and distinct from
        ``source.derive(3, 8)`` or ``source.derive(7, 3)``.
        """
        seed = self.seed
        for label in labels:
            seed = int(splitmix64(int(label) & 0xFFFFFFFFFFFFFFFF, seed))
        return HashSource(seed)

    def hash64(self, x: np.ndarray | int) -> np.ndarray | int:
        """Hash 64-bit keys to uniform 64-bit values."""
        return splitmix64(x, self.seed)

    def uniform(self, x: np.ndarray | int) -> np.ndarray | float:
        """Hash keys to floats in ``[0, 1)``.

        Used for consistent Bernoulli sampling: an edge is "sampled with
        probability p" iff ``uniform(edge) < p``, which is stable across
        insertions and deletions of the same edge.
        """
        h = self.hash64(x)
        if isinstance(h, (int, np.integer)):
            return int(h) / 2.0**64
        return h.astype(np.float64) / 2.0**64

    def bucket(self, x: np.ndarray | int, buckets: int) -> np.ndarray | int:
        """Hash keys to ``[0, buckets)``.

        The scalar and array paths must agree bit-for-bit: sketch banks
        hash in bulk at update time but re-derive single buckets when
        peeling, and any divergence silently corrupts decoding.
        """
        h = self.hash64(x)
        if isinstance(h, (int, np.integer)):
            return ((int(h) >> 17) % buckets)
        shifted = np.asarray(h, dtype=np.uint64) >> np.uint64(17)
        if buckets & (buckets - 1) == 0:
            # Power-of-two bucket counts (the default) take a mask —
            # identical residues, a fraction of the integer-divide cost.
            return (shifted & np.uint64(buckets - 1)).astype(np.int64)
        return (shifted % np.uint64(buckets)).astype(np.int64)

    def bernoulli(self, x: np.ndarray | int, p: float) -> np.ndarray | bool:
        """Consistent Bernoulli(p) coin for each key."""
        u = self.uniform(x)
        if isinstance(u, float):
            return u < p
        return u < p

    def levels(self, x: np.ndarray | int, max_level: int) -> np.ndarray | int:
        """Geometric level of each key: ``P(level >= j) = 2^-j``.

        Computed as the number of trailing zero bits of the 64-bit hash,
        capped at ``max_level``.  This drives the nested subsampling
        hierarchy ``G = G_0 ⊇ G_1 ⊇ ...`` of the MINCUT and
        SPARSIFICATION algorithms as well as the ℓ₀ sampler levels.
        """
        h = self.hash64(x)
        if isinstance(h, (int, np.integer)):
            h = int(h) | (1 << 63)  # guarantee a set bit
            return min((h & -h).bit_length() - 1, max_level)
        h = np.asarray(h, dtype=np.uint64) | np.uint64(1 << 63)
        low = (h & (~h + np.uint64(1))).astype(np.uint64)
        # log2 of an exact power of two: float conversion is exact below 2^53,
        # and for larger powers the exponent arithmetic is still exact.
        lev = np.zeros(low.shape, dtype=np.int64)
        tmp = low.copy()
        for shift in (32, 16, 8, 4, 2, 1):
            big = tmp >= (np.uint64(1) << np.uint64(shift))
            lev[big] += shift
            tmp[big] >>= np.uint64(shift)
        return np.minimum(lev, max_level)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashSource(seed=0x{self.seed:016x})"
