"""k-sparse recovery — ``k-RECOVERY`` of Theorem 2.2.

Recovers a vector ``x ∈ Z^N`` exactly (w.h.p.) whenever it has at most
``k`` non-zero entries, and reports FAIL otherwise.  The structure is an
invertible-Bloom-lookup-table: ``rows`` hash tables of ``buckets ≈
1.4k`` 1-sparse cells each; every index lands in one bucket per row.

Decoding *peels*: find any cell passing the 1-sparse test, subtract the
recovered entry from all rows, repeat.  With ≥ 3 rows and a 1.3–1.5×
bucket factor, peeling succeeds w.h.p. for supports up to ``k`` — and
when the support exceeds ``k`` the peeling gets stuck and we raise
:class:`~repro.errors.RecoveryFailed`, matching the theorem's FAIL
semantics.  The two fingerprints per cell make a *wrong* successful
decode astronomically unlikely.

:class:`SparseRecovery` is a single structure; :class:`SparseRecoveryBank`
packs ``groups × instances`` structures into one numpy bank (one
instance per node per subsampling level in the SPARSIFICATION
algorithm) and supports decoding the *sum* of instances — the
``Σ_{u∈A} x^{u,j}`` trick of Fig. 3, step 4(c).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import RecoveryFailed, SketchCompatibilityError, incompatible
from ..hashing import MERSENNE31, HashSource, powmod
from ..hashing.field import mod_mersenne31, powmod_array
from .arena import ArenaBacked
from .bank import CellBank
from .base import LinearSketch

__all__ = ["SparseRecovery", "SparseRecoveryBank", "bucket_count_for"]


def bucket_count_for(k: int) -> int:
    """Buckets per row for capacity ``k`` (IBLT load factor ~1.4)."""
    return max(2, int(np.ceil(1.4 * k)) + 1)


class SparseRecovery(LinearSketch):
    """Exact recovery of a ``≤ k``-sparse vector over ``[0, domain)``.

    Parameters
    ----------
    domain:
        Universe size ``N``.
    k:
        Recovery capacity (`k-RECOVERY`'s ``k``).
    source:
        Seed source (bucket hashes and fingerprints).
    rows:
        Number of hash tables; 3 gives the classic IBLT guarantee.
    """

    def __init__(self, domain: int, k: int, source: HashSource, rows: int = 3):
        if k < 1:
            raise ValueError(f"capacity k must be >= 1, got {k}")
        if rows < 2:
            raise ValueError(f"need >= 2 rows for peeling, got {rows}")
        self.domain = domain
        self.k = k
        self.rows = rows
        self.buckets = bucket_count_for(k)
        self._bucket_source = source.derive(0xB)
        self.z1 = 2 + int(source.derive(1).hash64(0)) % (MERSENNE31 - 2)
        self.z2 = 2 + int(source.derive(2).hash64(0)) % (MERSENNE31 - 2)
        size = rows * self.buckets
        self.phi = np.zeros(size, dtype=np.int64)
        self.iota = np.zeros(size, dtype=np.int64)
        self.fp1 = np.zeros(size, dtype=np.int64)
        self.fp2 = np.zeros(size, dtype=np.int64)

    def _bucket_of(self, index: int, row: int) -> int:
        return int(self._bucket_source.bucket(index * self.rows + row, self.buckets))

    def update(self, index: int, delta: int) -> None:
        """Apply ``x[index] += delta``."""
        if not 0 <= index < self.domain:
            raise ValueError(f"index {index} outside domain [0, {self.domain})")
        f1 = delta % MERSENNE31 * powmod(self.z1, index) % MERSENNE31
        f2 = delta % MERSENNE31 * powmod(self.z2, index) % MERSENNE31
        for r in range(self.rows):
            c = r * self.buckets + self._bucket_of(index, r)
            self.phi[c] += delta
            self.iota[c] += index * delta
            self.fp1[c] = (self.fp1[c] + f1) % MERSENNE31
            self.fp2[c] = (self.fp2[c] + f2) % MERSENNE31

    def update_many(self, indices, deltas) -> None:
        """Vectorised bulk update."""
        indices = np.asarray(indices, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        if indices.size == 0:
            return
        dmod = np.mod(deltas, MERSENNE31)
        c1 = mod_mersenne31(dmod * powmod_array(self.z1, indices))
        c2 = mod_mersenne31(dmod * powmod_array(self.z2, indices))
        for r in range(self.rows):
            bucket = np.asarray(
                self._bucket_source.bucket(indices * self.rows + r, self.buckets),
                dtype=np.int64,
            )
            cells = r * self.buckets + bucket
            np.add.at(self.phi, cells, deltas)
            np.add.at(self.iota, cells, indices * deltas)
            np.add.at(self.fp1, cells, c1)
            np.add.at(self.fp2, cells, c2)
        self.fp1 = mod_mersenne31(self.fp1)
        self.fp2 = mod_mersenne31(self.fp2)

    def merge(self, other: "LinearSketch") -> None:
        """Add an identically-seeded structure (distributed sum)."""
        if (
            not isinstance(other, SparseRecovery)
            or other.domain != self.domain
            or other.k != self.k
            or other.rows != self.rows
            or other.z1 != self.z1
        ):
            raise SketchCompatibilityError(
                "can only merge identically-seeded SparseRecovery"
            )
        self.phi += other.phi
        self.iota += other.iota
        self.fp1 = mod_mersenne31(self.fp1 + other.fp1)
        self.fp2 = mod_mersenne31(self.fp2 + other.fp2)

    def decode(self) -> dict[int, int]:
        """Recover ``{index: value}`` exactly, or raise :class:`RecoveryFailed`."""
        return _peel(
            self.phi.copy(),
            self.iota.copy(),
            self.fp1.copy(),
            self.fp2.copy(),
            self.rows,
            self.buckets,
            self.domain,
            self.z1,
            self.z2,
            self._bucket_of,
            self.k,
        )


class SparseRecoveryBank(ArenaBacked):
    """``groups × instances`` k-RECOVERY structures in one numpy bank.

    The SPARSIFICATION algorithm (Fig. 3) keeps one instance per
    *(subsampling level i, node u)* pair; a group here is a level, an
    instance a node.  Instances within a group share hash functions so
    that instance sums can be decoded (:meth:`decode_sum`).

    Parameters
    ----------
    groups, instances:
        Grid of structures.
    domain:
        Universe size ``N``.
    k:
        Per-instance recovery capacity.
    source:
        Seed source.
    rows:
        Hash tables per instance.
    """

    def __init__(
        self,
        groups: int,
        instances: int,
        domain: int,
        k: int,
        source: HashSource,
        rows: int = 3,
    ):
        if groups < 1 or instances < 1:
            raise ValueError("groups and instances must be positive")
        if k < 1:
            raise ValueError(f"capacity k must be >= 1, got {k}")
        self.groups = groups
        self.instances = instances
        self.domain = domain
        self.k = k
        self.rows = rows
        self.buckets = bucket_count_for(k)
        self._bucket_source = source.derive(0xB)
        self._cells_per_instance = rows * self.buckets
        #: Seed of the constructing source (used by sketch serialisation).
        self.source_seed = getattr(source, "seed", None)
        self.bank = CellBank(
            groups * instances * self._cells_per_instance, domain, source.derive(0xC)
        )

    def _bucket_key(self, items: np.ndarray, group_ids: np.ndarray, row: int) -> np.ndarray:
        return (items * self.groups + group_ids) * self.rows + row

    def update(
        self,
        group_ids: np.ndarray,
        instance_ids: np.ndarray,
        items: np.ndarray,
        deltas: np.ndarray,
    ) -> None:
        """Apply ``x_{g,s}[item] += delta`` for each parallel entry."""
        group_ids = np.asarray(group_ids, dtype=np.int64)
        instance_ids = np.asarray(instance_ids, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        if items.size == 0:
            return
        base = (group_ids * self.instances + instance_ids) * self._cells_per_instance
        cells_per_row = []
        for r in range(self.rows):
            bucket = np.asarray(
                self._bucket_source.bucket(
                    self._bucket_key(items, group_ids, r), self.buckets
                ),
                dtype=np.int64,
            )
            cells_per_row.append(base + r * self.buckets + bucket)
        self.bank.scatter_multi(cells_per_row, items, deltas)

    def _require_combinable(
        self, other: "SparseRecoveryBank", op: str = "merge"
    ) -> None:
        if (
            other.groups != self.groups
            or other.instances != self.instances
            or other.domain != self.domain
            or other.k != self.k
            or other.rows != self.rows
        ):
            raise SketchCompatibilityError(
                f"cannot {op} banks: shapes differ"
            )
        if (
            self.source_seed is not None
            and other.source_seed is not None
            and other.source_seed != self.source_seed
        ):
            raise incompatible(
                "SparseRecoveryBank", "seed", self.source_seed,
                other.source_seed, op=op,
            )

    def _cell_banks(self) -> list[CellBank]:
        return [self.bank]

    def merge(self, other: "SparseRecoveryBank") -> None:
        """Cell-wise merge of an identically-shaped bank."""
        self._require_combinable(other)
        self.bank._require_combinable(other.bank)
        self.arena.merge(other.arena)

    def subtract(self, other: "SparseRecoveryBank") -> None:
        """Cell-wise subtraction of an identically-shaped bank."""
        self._require_combinable(other, op="subtract")
        self.bank._require_combinable(other.bank, op="subtract")
        self.arena.subtract(other.arena)

    def negate(self) -> None:
        """In-place negation of every sketched vector."""
        self.arena.negate()

    def _instance_cells(self, group: int, instance: int) -> np.ndarray:
        start = (group * self.instances + instance) * self._cells_per_instance
        return np.arange(start, start + self._cells_per_instance, dtype=np.int64)

    def decode(self, group: int, instance: int) -> dict[int, int]:
        """Decode one instance; see :meth:`SparseRecovery.decode`."""
        return self.decode_sum(group, [instance])

    def decode_sum(self, group: int, instance_ids: list[int]) -> dict[int, int]:
        """Decode the sum ``Σ_s x_{g,s}`` over the given instances.

        Fig. 3 step 4(c): summing the per-node sketches over a shore
        ``A`` cancels internal edges and leaves exactly the edges
        crossing the cut — then k-RECOVERY reads them out.
        """
        if not instance_ids:
            raise ValueError("instance_ids must be non-empty")
        idx2d = np.stack([self._instance_cells(group, s) for s in instance_ids])
        phi, iota, fp1, fp2 = self.bank.summed_cells(idx2d)

        def bucket_of(index: int, row: int) -> int:
            key = (index * self.groups + group) * self.rows + row
            return int(self._bucket_source.bucket(key, self.buckets))

        return _peel(
            phi.copy(),
            iota.copy(),
            fp1.copy(),
            fp2.copy(),
            self.rows,
            self.buckets,
            self.domain,
            self.bank.z1,
            self.bank.z2,
            bucket_of,
            self.k,
        )

    def memory_cells(self) -> int:
        """Total 1-sparse cells — the space unit reported by experiments."""
        return self.bank.memory_cells()


def _peel(
    phi: np.ndarray,
    iota: np.ndarray,
    fp1: np.ndarray,
    fp2: np.ndarray,
    rows: int,
    buckets: int,
    domain: int,
    z1: int,
    z2: int,
    bucket_of: Callable[[int, int], int],
    k: int,
) -> dict[int, int]:
    """Shared IBLT peeling decoder over raw cell arrays.

    ``bucket_of(index, row)`` must reproduce the bucket routing used at
    update time so recovered entries can be subtracted from all rows.
    """
    recovered: dict[int, int] = {}
    queue_scan = True
    max_iter = 4 * (rows * buckets + k + 8)
    for _ in range(max_iter):
        if not ((phi != 0) | (iota != 0) | (fp1 != 0) | (fp2 != 0)).any():
            if len(recovered) > k:
                raise RecoveryFailed(
                    f"decoded {len(recovered)} items, beyond capacity {k}"
                )
            return recovered
        progressed = False
        for c in range(rows * buckets):
            if phi[c] == 0:
                continue
            if iota[c] % phi[c] != 0:
                continue
            index = int(iota[c] // phi[c])
            if not 0 <= index < domain:
                continue
            value = int(phi[c])
            want1 = value % MERSENNE31 * powmod(z1, index) % MERSENNE31
            want2 = value % MERSENNE31 * powmod(z2, index) % MERSENNE31
            if fp1[c] != want1 or fp2[c] != want2:
                continue
            for r in range(rows):
                cell = r * buckets + bucket_of(index, r)
                phi[cell] -= value
                iota[cell] -= index * value
                fp1[cell] = (fp1[cell] - want1) % MERSENNE31
                fp2[cell] = (fp2[cell] - want2) % MERSENNE31
            recovered[index] = recovered.get(index, 0) + value
            if recovered[index] == 0:
                del recovered[index]
            progressed = True
            if len(recovered) > k:
                raise RecoveryFailed(
                    f"decoded more than capacity k={k} items; vector is not k-sparse"
                )
            break
        if not progressed:
            raise RecoveryFailed("peeling stuck: vector has more than k non-zeros")
        queue_scan = not queue_scan
    raise RecoveryFailed("peeling did not converge")
