"""Sketch serialisation — shipping sketches between sites.

The distributed-stream story (Section 1.1) requires sketches to travel:
each site summarises its sub-stream locally and sends the *sketch* —
not the stream — to a coordinator, which merges by addition.  This
module provides a compact, dependency-free binary format (numpy ``npz``
inside bytes) for the two bank types and the sketches built on them.

Only identically-parameterised, identically-seeded sketches merge, so
the format stores the constructor parameters and seeds alongside the
cell arrays and :func:`loads`-side constructors verify them.
"""

from __future__ import annotations

import io
import json

import numpy as np

from ..hashing import HashSource
from .l0 import L0SamplerBank
from .sparse_recovery import SparseRecoveryBank

__all__ = [
    "dump_l0_bank",
    "load_l0_bank",
    "dump_recovery_bank",
    "load_recovery_bank",
]

_MAGIC = "repro-sketch-v1"


def _pack(kind: str, meta: dict, arrays: dict[str, np.ndarray]) -> bytes:
    header = dict(meta)
    header["__magic__"] = _MAGIC
    header["__kind__"] = kind
    buf = io.BytesIO()
    np.savez_compressed(
        buf, __header__=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ), **arrays,
    )
    return buf.getvalue()


def _unpack(data: bytes, kind: str) -> tuple[dict, dict[str, np.ndarray]]:
    buf = io.BytesIO(data)
    with np.load(buf) as npz:
        header = json.loads(bytes(npz["__header__"]).decode("utf-8"))
        arrays = {k: npz[k] for k in npz.files if k != "__header__"}
    if header.get("__magic__") != _MAGIC:
        raise ValueError("not a repro sketch blob")
    if header.get("__kind__") != kind:
        raise ValueError(
            f"blob holds a {header.get('__kind__')!r}, expected {kind!r}"
        )
    return header, arrays


def dump_l0_bank(bank: L0SamplerBank, seed: int | None = None) -> bytes:
    """Serialise an :class:`L0SamplerBank`.

    The bank's constructor seed travels with the blob so the receiving
    side reconstructs identical hash functions (without it, the cell
    arrays would be uninterpretable).  Banks built from non-seeded
    sources must pass ``seed`` explicitly.
    """
    if seed is None:
        seed = bank.source_seed
    if seed is None:
        raise ValueError("bank has no recorded seed; pass one explicitly")
    meta = {
        "seed": int(seed),
        "families": bank.families,
        "samplers": bank.samplers,
        "domain": bank.domain,
        "rows": bank.rows,
        "buckets": bank.buckets,
    }
    arrays = {
        "phi": bank.bank.phi,
        "iota": bank.bank.iota,
        "fp1": bank.bank.fp1,
        "fp2": bank.bank.fp2,
    }
    return _pack("l0_bank", meta, arrays)


def load_l0_bank(data: bytes) -> L0SamplerBank:
    """Reconstruct an :class:`L0SamplerBank` from :func:`dump_l0_bank` bytes."""
    meta, arrays = _unpack(data, "l0_bank")
    bank = L0SamplerBank(
        families=meta["families"],
        samplers=meta["samplers"],
        domain=meta["domain"],
        source=HashSource(meta["seed"]),
        rows=meta["rows"],
        buckets=meta["buckets"],
    )
    _restore_cells(bank.bank, arrays)
    return bank


def dump_recovery_bank(bank: SparseRecoveryBank, seed: int | None = None) -> bytes:
    """Serialise a :class:`SparseRecoveryBank` (see :func:`dump_l0_bank`)."""
    if seed is None:
        seed = bank.source_seed
    if seed is None:
        raise ValueError("bank has no recorded seed; pass one explicitly")
    meta = {
        "seed": int(seed),
        "groups": bank.groups,
        "instances": bank.instances,
        "domain": bank.domain,
        "k": bank.k,
        "rows": bank.rows,
    }
    arrays = {
        "phi": bank.bank.phi,
        "iota": bank.bank.iota,
        "fp1": bank.bank.fp1,
        "fp2": bank.bank.fp2,
    }
    return _pack("recovery_bank", meta, arrays)


def load_recovery_bank(data: bytes) -> SparseRecoveryBank:
    """Reconstruct a bank from :func:`dump_recovery_bank` bytes."""
    meta, arrays = _unpack(data, "recovery_bank")
    bank = SparseRecoveryBank(
        groups=meta["groups"],
        instances=meta["instances"],
        domain=meta["domain"],
        k=meta["k"],
        source=HashSource(meta["seed"]),
        rows=meta["rows"],
    )
    _restore_cells(bank.bank, arrays)
    return bank


def _restore_cells(cell_bank, arrays: dict[str, np.ndarray]) -> None:
    if arrays["phi"].shape != cell_bank.phi.shape:
        raise ValueError(
            "serialised cell arrays do not match the reconstructed shape"
        )
    cell_bank.phi[:] = arrays["phi"]
    cell_bank.iota[:] = arrays["iota"]
    cell_bank.fp1[:] = arrays["fp1"]
    cell_bank.fp2[:] = arrays["fp2"]
