"""Sketch serialisation — shipping sketches between sites.

The distributed-stream story (Section 1.1) requires sketches to travel:
each site summarises its sub-stream locally and sends the *sketch* —
not the stream — to a coordinator, which merges by addition.  This
module provides a compact, dependency-free binary format in two layers:

* the two primitive bank formats (``dump_l0_bank`` / ``dump_recovery_
  bank`` and their loaders), kept for direct bank-level workflows; and
* a **generic sketch registry**: every high-level sketch class (spanning
  forest, k-EDGECONNECT, MINCUT, the sparsifiers, the subgraph-count
  sketch, ...) registers a :class:`SketchCodec` describing how to list
  its constituent cell banks and how to rebuild an empty twin from its
  constructor parameters.  :func:`dump_sketch` then works for any
  registered object and :func:`load_sketch` reconstructs it — verifying
  parameters, seed, and cell-array shapes before accepting the payload.

**Codec v2** (the current write format) exploits the contiguous
:class:`~repro.sketch.arena.SketchArena`: a blob is a fixed magic
prefix, a JSON header, and the arena buffer — ``header +
buffer.tobytes()``, level-1-deflated since cell buffers are mostly
zeros — with a CRC32 so flipped bits are still caught without the old
zip-container overhead.  Epoch manifests are the same shape with the
concatenated checkpoint blobs as a raw payload.
**Codec v1** (numpy ``npz`` inside bytes) is still fully *readable*:
golden fixtures and any persisted checkpoints keep loading through the
legacy path, and since the arena is laid out field-major in bank order,
a v1 blob's concatenated ``phi``/``iota``/``fp1``/``fp2`` arrays and a
v2 buffer hold the very same cells in the very same order.

Only identically-parameterised, identically-seeded sketches merge, so
the format stores the constructor parameters and seeds alongside the
cell arrays; ``load_sketch(data, like=...)`` additionally refuses blobs
whose parameters or seed differ from a local reference sketch, raising
:class:`~repro.errors.SketchCompatibilityError`.  For coordinator-style
hot paths, :func:`merge_sketch_bytes` / :func:`subtract_sketch_bytes`
fold a verified v2 payload straight into a live sketch's arena without
materialising a twin sketch first.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..errors import SketchCompatibilityError
from ..hashing import MERSENNE31, HashSource
from .arena import ensure_arena
from .bank import CellBank
from .l0 import L0SamplerBank
from .sparse_recovery import SparseRecoveryBank

__all__ = [
    "SketchCodec",
    "register_sketch_codec",
    "serializable_sketch_kinds",
    "sketch_codec",
    "sketch_kind_of",
    "dump_sketch",
    "load_sketch",
    "merge_sketch_bytes",
    "subtract_sketch_bytes",
    "peek_sketch_meta",
    "dump_epoch_manifest",
    "load_epoch_manifest",
    "dump_l0_bank",
    "load_l0_bank",
    "dump_recovery_bank",
    "load_recovery_bank",
]

_MAGIC = "repro-sketch-v1"
_MAGIC_V2 = "repro-sketch-v2"
_MANIFEST_KIND = "epoch-manifest"
#: Leading bytes of every v2 blob (sketches and manifests alike).
_V2_PREFIX = b"RSKB2\n"
_V2_HEAD = struct.Struct("<I")


def _pack(kind: str, meta: dict, arrays: dict[str, np.ndarray]) -> bytes:
    header = dict(meta)
    header["__magic__"] = _MAGIC
    header["__kind__"] = kind
    buf = io.BytesIO()
    np.savez_compressed(
        buf, __header__=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ), **arrays,
    )
    return buf.getvalue()


def _read_blob(data: bytes) -> tuple[dict, dict[str, np.ndarray]]:
    """Parse a blob into (header, arrays), with clear corruption errors."""
    buf = io.BytesIO(data)
    try:
        with np.load(buf) as npz:
            header = json.loads(bytes(npz["__header__"]).decode("utf-8"))
            arrays = {k: npz[k] for k in npz.files if k != "__header__"}
    except Exception as err:  # zipfile.BadZipFile, KeyError, json errors...
        raise ValueError(
            "not a repro sketch blob (corrupt or foreign bytes)"
        ) from err
    if header.get("__magic__") != _MAGIC:
        raise ValueError(
            f"not a repro sketch blob (bad magic {header.get('__magic__')!r})"
        )
    return header, arrays


def _unpack(data: bytes, kind: str) -> tuple[dict, dict[str, np.ndarray]]:
    if _is_v2(data):
        # The primitive bank formats are npz-only; a v2 blob handed to
        # them is by definition of another kind.
        header = _read_raw(data)[0]
        raise ValueError(
            f"blob holds a {header.get('__kind__')!r}, expected {kind!r}"
        )
    header, arrays = _read_blob(data)
    if header.get("__kind__") != kind:
        raise ValueError(
            f"blob holds a {header.get('__kind__')!r}, expected {kind!r}"
        )
    return header, arrays


# -- codec v2: raw header + payload containers ---------------------------------


def _is_v2(data: bytes) -> bool:
    return data[:len(_V2_PREFIX)] == _V2_PREFIX


def _pack_raw(
    kind: str, meta: dict, payload: bytes, encoding: str = "raw"
) -> bytes:
    """Assemble a v2 blob: magic, JSON header, payload bytes.

    ``encoding="zlib"`` deflates the payload at level 1 — sketch cell
    buffers are mostly zeros, so this keeps shipped/persisted sizes in
    v1 territory at a fraction of the old npz container cost.  Manifest
    payloads stay ``"raw"``: they are concatenations of already-encoded
    checkpoint blobs.
    """
    stored = (
        zlib.compress(payload, 1)
        if encoding in ("zlib", "sparse-zlib") else payload
    )
    header = dict(meta)
    header["__magic__"] = _MAGIC_V2
    header["__kind__"] = kind
    header["encoding"] = encoding
    header["payload_bytes"] = len(stored)
    header["crc32"] = zlib.crc32(stored) & 0xFFFFFFFF
    head = json.dumps(header).encode("utf-8")
    return b"".join((_V2_PREFIX, _V2_HEAD.pack(len(head)), head, stored))


def _read_raw(data: bytes) -> tuple[dict, bytes]:
    """Parse a v2 blob into (header, payload) with corruption checks.

    The declared payload length and a CRC32 stand in for the container
    integrity the v1 zip format provided: truncation, padding, and bit
    flips anywhere in the blob all raise :class:`ValueError`.
    """
    base = len(_V2_PREFIX)
    try:
        (head_len,) = _V2_HEAD.unpack_from(data, base)
        head_end = base + _V2_HEAD.size + head_len
        if head_end > len(data):
            raise ValueError("header extends past the blob")
        header = json.loads(data[base + _V2_HEAD.size:head_end].decode("utf-8"))
    except (ValueError, struct.error) as err:  # unicode/json derive ValueError
        raise ValueError(
            "not a repro sketch blob (corrupt or foreign bytes)"
        ) from err
    if not isinstance(header, dict) or header.get("__magic__") != _MAGIC_V2:
        magic = header.get("__magic__") if isinstance(header, dict) else None
        raise ValueError(f"not a repro sketch blob (bad magic {magic!r})")
    payload = data[head_end:]
    declared = header.get("payload_bytes")
    if declared != len(payload):
        raise ValueError(
            f"blob payload truncated or padded: header promises "
            f"{declared} bytes, blob holds {len(payload)}"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != header.get("crc32"):
        raise ValueError(
            "blob payload checksum mismatch — corrupt or tampered bytes"
        )
    encoding = header.get("encoding", "raw")
    if encoding in ("zlib", "sparse-zlib"):
        try:
            payload = zlib.decompress(payload)
        except zlib.error as err:
            raise ValueError(
                "blob payload fails to inflate — corrupt or tampered bytes"
            ) from err
    elif encoding != "raw":
        raise ValueError(f"blob payload has unknown encoding {encoding!r}")
    return header, payload


def _read_header_any(data: bytes) -> dict:
    """Header of a blob of either codec version."""
    if _is_v2(data):
        return _read_raw(data)[0]
    return _read_blob(data)[0]


def _validated_cell_buffer(payload: bytes, cells: int) -> np.ndarray:
    """Interpret a dense v2 sketch payload as a field-major arena buffer.

    Verifies the byte length against the expected ``4 * cells`` int64
    cells and that the fingerprint half stays inside ``GF(2^31 - 1)`` —
    the same guarantees the v1 loader enforced per field array.
    """
    if len(payload) != 4 * cells * 8:
        raise ValueError(
            f"blob cell buffer mis-sized: expected {4 * cells * 8} bytes "
            f"for {cells} cells, got {len(payload)} — corrupt or tampered "
            "blob"
        )
    raw = np.frombuffer(payload, dtype="<i8").astype(np.int64, copy=False)
    fps = raw[2 * cells:]
    if fps.size and (int(fps.min()) < 0 or int(fps.max()) >= MERSENNE31):
        raise ValueError(
            "blob fingerprint cells have values outside GF(2^31 - 1) — "
            "corrupt or tampered blob"
        )
    return raw


def _validated_sparse_cells(
    header: dict, payload: bytes, cells: int
) -> tuple[np.ndarray, np.ndarray]:
    """Interpret a sparse v2 payload as ``(positions, values)``.

    The payload is ``nnz`` strictly-increasing int64 buffer positions
    followed by ``nnz`` int64 values; ordering gives uniqueness (so
    scatters are well-defined) for free, and fingerprint-half values
    must already be reduced mod ``2^31 - 1``.
    """
    nnz = header.get("nnz")
    if not isinstance(nnz, int) or nnz < 0 or len(payload) != 16 * nnz:
        raise ValueError(
            f"blob sparse cell payload mis-sized: nnz={nnz!r} implies "
            f"{16 * nnz if isinstance(nnz, int) else '?'} bytes, got "
            f"{len(payload)} — corrupt or tampered blob"
        )
    raw = np.frombuffer(payload, dtype="<i8").astype(np.int64, copy=False)
    idx, values = raw[:nnz], raw[nnz:]
    if nnz:
        if int(idx[0]) < 0 or int(idx[-1]) >= 4 * cells:
            raise ValueError(
                "blob sparse cell positions outside the buffer — corrupt "
                "or tampered blob"
            )
        if not bool((np.diff(idx) > 0).all()):
            raise ValueError(
                "blob sparse cell positions not strictly increasing — "
                "corrupt or tampered blob"
            )
        fp_values = values[idx >= 2 * cells]
        if fp_values.size and (
            int(fp_values.min()) < 0 or int(fp_values.max()) >= MERSENNE31
        ):
            raise ValueError(
                "blob fingerprint cells have values outside GF(2^31 - 1) "
                "— corrupt or tampered blob"
            )
    return idx, values


# -- generic sketch registry ---------------------------------------------------

_SKETCH_KIND_PREFIX = "sketch:"


@dataclass(frozen=True)
class SketchCodec:
    """How to (de)serialise one sketch class.

    Attributes
    ----------
    kind:
        Stable format name stored in the blob header.
    cls:
        The sketch class this codec handles (matched exactly, not by
        subclass, so a subclass must register its own codec).
    params:
        ``obj -> dict`` of JSON-able constructor parameters (excluding
        the seed, which the dump layer adds).
    construct:
        ``meta -> obj`` rebuilding a fresh, empty, identically-seeded
        sketch from the stored parameters (``meta["seed"]`` included).
    banks:
        ``obj -> list[CellBank]`` in a deterministic order; the dump is
        the concatenation of their cell arrays.
    """

    kind: str
    cls: type
    params: Callable[[Any], dict]
    construct: Callable[[dict], Any]
    banks: Callable[[Any], list[CellBank]]


_CODECS_BY_KIND: dict[str, SketchCodec] = {}
_CODECS_BY_CLASS: dict[type, SketchCodec] = {}


def register_sketch_codec(codec: SketchCodec) -> None:
    """Register a codec (idempotent for identical re-registration)."""
    existing = _CODECS_BY_KIND.get(codec.kind)
    if existing is not None and existing.cls is not codec.cls:
        raise ValueError(
            f"sketch kind {codec.kind!r} already registered for "
            f"{existing.cls.__name__}"
        )
    _CODECS_BY_KIND[codec.kind] = codec
    _CODECS_BY_CLASS[codec.cls] = codec


def _ensure_codecs_loaded() -> None:
    """Import the modules that register codecs for the core sketches.

    Deferred so that :mod:`repro.sketch` stays importable on its own;
    :mod:`repro.core.codecs` imports this module in turn.
    """
    from ..core import codecs  # noqa: F401  (import-for-side-effect)


def serializable_sketch_kinds() -> tuple[str, ...]:
    """Registered kind names (sorted)."""
    _ensure_codecs_loaded()
    return tuple(sorted(_CODECS_BY_KIND))


def sketch_codec(kind: str) -> SketchCodec:
    """The registered codec for ``kind`` (raises ``KeyError`` if none).

    Public so tooling — the registry-completeness checker in
    :mod:`repro.analysis` in particular — can cross-check the codec
    registry against the capability registry without reaching into
    module privates.
    """
    _ensure_codecs_loaded()
    if kind not in _CODECS_BY_KIND:
        raise KeyError(
            f"no codec registered for sketch kind {kind!r}; "
            f"known kinds: {', '.join(sorted(_CODECS_BY_KIND))}"
        )
    return _CODECS_BY_KIND[kind]


def sketch_kind_of(sketch: Any) -> str:
    """The registered kind name of ``sketch`` (raises ``TypeError`` if none)."""
    _ensure_codecs_loaded()
    codec = _CODECS_BY_CLASS.get(type(sketch))
    if codec is None:
        raise TypeError(
            f"{type(sketch).__name__} has no registered sketch codec; "
            f"known kinds: {', '.join(sorted(_CODECS_BY_KIND))}"
        )
    return codec.kind


def dump_sketch(
    sketch: Any,
    seed: int | None = None,
    epoch_meta: dict | None = None,
) -> bytes:
    """Serialise any registered sketch object to bytes.

    The blob carries the constructor parameters, the master seed, and
    the concatenated cell arrays of every constituent bank — everything
    a coordinator needs to rebuild an identically-seeded twin and merge
    it (:func:`load_sketch`).  ``seed`` overrides the recorded
    ``source_seed`` for sketches built from non-seeded sources.

    ``epoch_meta`` attaches temporal-checkpoint metadata (epoch id,
    token counts...) under the reserved ``"epoch"`` header key; it is
    carried verbatim, surfaced by :func:`peek_sketch_meta`, and ignored
    by the parameter/seed verification of :func:`load_sketch` — two
    checkpoints of the same sketch at different epochs stay mergeable.
    """
    _ensure_codecs_loaded()
    codec = _CODECS_BY_CLASS.get(type(sketch))
    if codec is None:
        raise TypeError(
            f"{type(sketch).__name__} has no registered sketch codec; "
            f"known kinds: {', '.join(sorted(_CODECS_BY_KIND))}"
        )
    if seed is None:
        seed = getattr(sketch, "source_seed", None)
    if seed is None:
        raise ValueError(
            f"{type(sketch).__name__} has no recorded seed; pass one explicitly"
        )
    banks = codec.banks(sketch)
    meta = dict(codec.params(sketch))
    meta["seed"] = int(seed)
    meta["cells"] = [int(b.size) for b in banks]
    if epoch_meta is not None:
        meta["epoch"] = dict(epoch_meta)
    # Field-major arena buffer == the v1 concatenation order of
    # phi/iota/fp1/fp2 across banks, but with zero gather work.  A
    # lightly-loaded sketch (a site shard, an early epoch) ships as
    # sparse (position, value) pairs instead — smaller bytes *and* an
    # O(nnz) fold at the coordinator.
    buffer = ensure_arena(sketch).buffer
    idx = np.flatnonzero(buffer)
    kind = _SKETCH_KIND_PREFIX + codec.kind
    if 2 * idx.size <= buffer.size // 4:
        meta["nnz"] = int(idx.size)
        payload = (
            idx.astype("<i8", copy=False).tobytes()
            + buffer[idx].astype("<i8", copy=False).tobytes()
        )
        return _pack_raw(kind, meta, payload, encoding="sparse-zlib")
    payload = buffer.astype("<i8", copy=False).tobytes()
    return _pack_raw(kind, meta, payload, encoding="zlib")


def load_sketch(data: bytes, like: Any | None = None) -> Any:
    """Reconstruct a sketch serialised by :func:`dump_sketch`.

    The stored parameters rebuild a fresh identically-seeded sketch and
    the cell payload is copied in, after verifying that the bank layout
    implied by the parameters matches the payload exactly (mismatched
    or tampered parameters refuse to load).  Both codec versions load:
    v2 blobs restore the whole arena buffer in one copy; legacy v1
    (npz) blobs restore bank by bank.

    Parameters
    ----------
    like:
        Optional reference sketch.  When given, the blob must describe
        the *same* sketch type, parameters, and seed; any difference
        raises :class:`~repro.errors.SketchCompatibilityError` naming
        the offending fields.  Use this before merging a received
        sketch into a local one.
    """
    _ensure_codecs_loaded()
    if _is_v2(data):
        header, payload = _read_raw(data)
        arrays = None
    else:
        header, arrays = _read_blob(data)
        payload = None
    kind = header.get("__kind__", "")
    if not isinstance(kind, str) or not kind.startswith(_SKETCH_KIND_PREFIX):
        raise ValueError(
            f"blob holds a {kind!r}, not a registry-serialised sketch"
        )
    codec = _CODECS_BY_KIND.get(kind[len(_SKETCH_KIND_PREFIX):])
    if codec is None:
        raise ValueError(f"unknown sketch kind {kind!r}")
    if like is not None:
        _verify_like(codec, header, like)
    sketch = codec.construct(header)
    banks = codec.banks(sketch)
    cells = header.get("cells")
    if cells != [int(b.size) for b in banks]:
        raise ValueError(
            f"blob cell layout {cells} does not match the layout "
            f"reconstructed from its parameters — corrupt or tampered blob"
        )
    total = int(sum(cells))
    if payload is not None:
        arena = ensure_arena(sketch)
        if header.get("encoding") == "sparse-zlib":
            idx, values = _validated_sparse_cells(header, payload, total)
            # A freshly constructed sketch's buffer is all zeros.
            arena.buffer[idx] = values
        else:
            arena.buffer[:] = _validated_cell_buffer(payload, total)
        return sketch
    _restore_v1_arrays(banks, arrays, total)
    return sketch


def _restore_v1_arrays(
    banks: "list[CellBank]", arrays: dict[str, np.ndarray], total: int
) -> None:
    """Copy a legacy v1 blob's four field arrays into the banks."""
    for name in ("phi", "iota", "fp1", "fp2"):
        arr = arrays.get(name)
        if arr is None or arr.shape != (total,):
            raise ValueError(f"blob cell array {name!r} missing or mis-sized")
        if arr.dtype != np.int64:
            raise ValueError(
                f"blob cell array {name!r} has dtype {arr.dtype}, "
                "expected int64 — corrupt or tampered blob"
            )
    for name in ("fp1", "fp2"):
        arr = arrays[name]
        if arr.size and (
            int(arr.min()) < 0 or int(arr.max()) >= MERSENNE31
        ):
            raise ValueError(
                f"blob fingerprint array {name!r} has values outside "
                "GF(2^31 - 1) — corrupt or tampered blob"
            )
    offset = 0
    for bank in banks:
        end = offset + bank.size
        bank.phi[:] = arrays["phi"][offset:end]
        bank.iota[:] = arrays["iota"][offset:end]
        bank.fp1[:] = arrays["fp1"][offset:end]
        bank.fp2[:] = arrays["fp2"][offset:end]
        offset = end


def merge_sketch_bytes(sketch: Any, data: bytes) -> None:
    """Fold a serialised sketch directly into ``sketch`` (coordinator path).

    Equivalent to ``sketch.merge(load_sketch(data, like=sketch))`` but,
    for v2 blobs, skips materialising the twin: after the same
    parameter/seed/layout/fingerprint verification, the payload is
    added straight into the live sketch's arena — two vector ops total.
    Legacy v1 blobs fall back to reconstruct-and-merge.
    """
    _combine_sketch_bytes(sketch, data, subtract=False)


def subtract_sketch_bytes(sketch: Any, data: bytes) -> None:
    """Subtract a serialised sketch from ``sketch`` (temporal-window path).

    The subtraction twin of :func:`merge_sketch_bytes` — materialising
    an epoch window becomes one checkpoint load plus one in-arena
    subtraction of the earlier checkpoint's bytes.
    """
    _combine_sketch_bytes(sketch, data, subtract=True)


def _combine_sketch_bytes(sketch: Any, data: bytes, subtract: bool) -> None:
    _ensure_codecs_loaded()
    if _CODECS_BY_CLASS.get(type(sketch)) is None:
        raise TypeError(
            f"{type(sketch).__name__} has no registered sketch codec; "
            f"known kinds: {', '.join(sorted(_CODECS_BY_KIND))}"
        )
    if not _is_v2(data):
        other = load_sketch(data, like=sketch)
        (sketch.subtract if subtract else sketch.merge)(other)
        return
    header, payload = _read_raw(data)
    kind = header.get("__kind__", "")
    if not isinstance(kind, str) or not kind.startswith(_SKETCH_KIND_PREFIX):
        raise ValueError(
            f"blob holds a {kind!r}, not a registry-serialised sketch"
        )
    codec = _CODECS_BY_KIND.get(kind[len(_SKETCH_KIND_PREFIX):])
    if codec is None:
        raise ValueError(f"unknown sketch kind {kind!r}")
    _verify_like(codec, header, sketch, op="subtract" if subtract else "merge")
    banks = codec.banks(sketch)
    cells = header.get("cells")
    if cells != [int(b.size) for b in banks]:
        raise ValueError(
            f"blob cell layout {cells} does not match the local sketch — "
            "corrupt or tampered blob"
        )
    total = int(sum(cells))
    arena = ensure_arena(sketch)
    if header.get("encoding") == "sparse-zlib":
        idx, values = _validated_sparse_cells(header, payload, total)
        arena._combine_sparse(idx, values, subtract=subtract)
    else:
        arena._combine_raw(
            _validated_cell_buffer(payload, total), subtract=subtract
        )


def peek_sketch_meta(data: bytes) -> dict:
    """The blob's header (kind, parameters, seed) without reconstructing."""
    return _read_header_any(data)


def _verify_like(
    codec: SketchCodec, header: dict, like: Any, op: str = "load"
) -> None:
    like_codec = _CODECS_BY_CLASS.get(type(like))
    if like_codec is None or like_codec.kind != codec.kind:
        raise SketchCompatibilityError(
            f"cannot {op}: blob holds a {codec.kind!r} sketch but the "
            f"reference is {type(like).__name__}"
        )
    expected = dict(codec.params(like))
    expected["seed"] = getattr(like, "source_seed", None)
    mismatched = [
        f"{key}: blob={header.get(key)!r} local={value!r}"
        for key, value in expected.items()
        if value is not None and header.get(key) != value
    ]
    if mismatched:
        raise SketchCompatibilityError(
            f"cannot {op} serialised sketch: incompatible with the local "
            "reference — " + "; ".join(mismatched)
        )


# -- epoch manifests -----------------------------------------------------------


def dump_epoch_manifest(
    payloads: "list[bytes]",
    epoch_ids: "list[int] | None" = None,
    meta: dict | None = None,
) -> bytes:
    """Bundle per-epoch checkpoint payloads into one manifest blob.

    ``payloads`` are :func:`dump_sketch` blobs — cumulative prefix
    checkpoints, one per sealed epoch, all of the same sketch kind and
    seed (verified here, so a mixed bundle fails at *dump* time).
    ``epoch_ids`` defaults to ``1..E`` and must equal exactly that —
    the 1-based consecutive grid :class:`~repro.temporal.epochs.
    EpochTimeline` restores — which :func:`load_epoch_manifest`
    re-checks on the way back in.  ``meta`` carries caller metadata
    (epoch boundaries, token counts...) and must be JSON-serialisable.
    """
    if not payloads:
        raise ValueError("an epoch manifest needs at least one checkpoint")
    if epoch_ids is None:
        epoch_ids = list(range(1, len(payloads) + 1))
    epoch_ids = [int(e) for e in epoch_ids]
    if epoch_ids != list(range(1, len(payloads) + 1)):
        raise ValueError(
            f"epoch ids {epoch_ids} must be 1..{len(payloads)} in order, "
            f"one per payload"
        )
    kinds: set[object] = set()
    seeds: set[object] = set()
    for payload in payloads:
        header = _read_header_any(payload)
        kinds.add(header.get("__kind__"))
        seeds.add(header.get("seed"))
    if len(kinds) != 1 or len(seeds) != 1:
        raise SketchCompatibilityError(
            f"manifest checkpoints must share one sketch kind and seed, "
            f"got kinds={sorted(map(str, kinds))} seeds={sorted(map(str, seeds))}"
        )
    header = dict(meta or {})
    header["sketch_kind"] = kinds.pop()
    header["sketch_seed"] = seeds.pop()
    header["epoch_ids"] = epoch_ids
    header["lengths"] = [len(p) for p in payloads]
    # Zero-copy bundling: the manifest payload *is* the checkpoint
    # blobs back to back (each already carrying its own CRC).
    return _pack_raw(_MANIFEST_KIND, header, b"".join(payloads))


def load_epoch_manifest(data: bytes) -> tuple[dict, "list[bytes]"]:
    """Parse a manifest back into ``(header, checkpoint payloads)``.

    Refuses — with :class:`ValueError` / :class:`~repro.errors.
    SketchCompatibilityError`, never a silently wrong result — blobs
    that are not manifests, manifests whose concatenated payload bytes
    do not match the recorded lengths (truncation/padding), epoch ids
    that are not consecutive and increasing, and checkpoints whose
    sketch kind or seed disagrees with the manifest header.  Reads both
    codec versions (v1 fixtures keep loading).
    """
    if _is_v2(data):
        header, raw = _read_raw(data)
        if header.get("__kind__") != _MANIFEST_KIND:
            raise ValueError(
                f"blob holds a {header.get('__kind__')!r}, "
                f"expected {_MANIFEST_KIND!r}"
            )
    else:
        header, arrays = _unpack(data, _MANIFEST_KIND)
        blob = arrays.get("payloads")
        if blob is None or blob.dtype != np.uint8:
            raise ValueError(
                "epoch manifest payload array missing or mis-typed"
            )
        raw = blob.tobytes()
    epoch_ids = header.get("epoch_ids")
    lengths = header.get("lengths")
    if not isinstance(epoch_ids, list) or not isinstance(lengths, list):
        raise ValueError("epoch manifest header lacks epoch_ids/lengths")
    if len(epoch_ids) != len(lengths) or not epoch_ids:
        raise ValueError(
            f"epoch manifest header inconsistent: {len(epoch_ids)} epoch "
            f"ids vs {len(lengths)} payload lengths"
        )
    if epoch_ids != list(range(1, len(epoch_ids) + 1)):
        raise ValueError(
            f"epoch ids {epoch_ids} are not the consecutive grid "
            f"1..{len(epoch_ids)} — out-of-order, duplicated, or offset "
            "checkpoints"
        )
    if sum(lengths) != len(raw):
        raise ValueError(
            f"epoch manifest payloads truncated or padded: header promises "
            f"{sum(lengths)} bytes, blob holds {len(raw)}"
        )
    payloads: list[bytes] = []
    offset = 0
    for length in lengths:
        if length <= 0:
            raise ValueError(f"epoch manifest payload length {length} invalid")
        payloads.append(raw[offset:offset + length])
        offset += length
    for i, payload in enumerate(payloads):
        chk_header = _read_header_any(payload)
        if chk_header.get("__kind__") != header.get("sketch_kind"):
            raise ValueError(
                f"checkpoint {epoch_ids[i]} holds a "
                f"{chk_header.get('__kind__')!r} sketch, manifest promises "
                f"{header.get('sketch_kind')!r}"
            )
        if chk_header.get("seed") != header.get("sketch_seed"):
            raise SketchCompatibilityError(
                f"checkpoint {epoch_ids[i]} was built with seed "
                f"{chk_header.get('seed')!r}, manifest promises "
                f"{header.get('sketch_seed')!r}"
            )
    return header, payloads


def dump_l0_bank(bank: L0SamplerBank, seed: int | None = None) -> bytes:
    """Serialise an :class:`L0SamplerBank`.

    The bank's constructor seed travels with the blob so the receiving
    side reconstructs identical hash functions (without it, the cell
    arrays would be uninterpretable).  Banks built from non-seeded
    sources must pass ``seed`` explicitly.
    """
    if seed is None:
        seed = bank.source_seed
    if seed is None:
        raise ValueError("bank has no recorded seed; pass one explicitly")
    meta = {
        "seed": int(seed),
        "families": bank.families,
        "samplers": bank.samplers,
        "domain": bank.domain,
        "rows": bank.rows,
        "buckets": bank.buckets,
    }
    arrays = {
        "phi": bank.bank.phi,
        "iota": bank.bank.iota,
        "fp1": bank.bank.fp1,
        "fp2": bank.bank.fp2,
    }
    return _pack("l0_bank", meta, arrays)


def load_l0_bank(data: bytes) -> L0SamplerBank:
    """Reconstruct an :class:`L0SamplerBank` from :func:`dump_l0_bank` bytes."""
    meta, arrays = _unpack(data, "l0_bank")
    bank = L0SamplerBank(
        families=meta["families"],
        samplers=meta["samplers"],
        domain=meta["domain"],
        source=HashSource(meta["seed"]),
        rows=meta["rows"],
        buckets=meta["buckets"],
    )
    _restore_cells(bank.bank, arrays)
    return bank


def dump_recovery_bank(bank: SparseRecoveryBank, seed: int | None = None) -> bytes:
    """Serialise a :class:`SparseRecoveryBank` (see :func:`dump_l0_bank`)."""
    if seed is None:
        seed = bank.source_seed
    if seed is None:
        raise ValueError("bank has no recorded seed; pass one explicitly")
    meta = {
        "seed": int(seed),
        "groups": bank.groups,
        "instances": bank.instances,
        "domain": bank.domain,
        "k": bank.k,
        "rows": bank.rows,
    }
    arrays = {
        "phi": bank.bank.phi,
        "iota": bank.bank.iota,
        "fp1": bank.bank.fp1,
        "fp2": bank.bank.fp2,
    }
    return _pack("recovery_bank", meta, arrays)


def load_recovery_bank(data: bytes) -> SparseRecoveryBank:
    """Reconstruct a bank from :func:`dump_recovery_bank` bytes."""
    meta, arrays = _unpack(data, "recovery_bank")
    bank = SparseRecoveryBank(
        groups=meta["groups"],
        instances=meta["instances"],
        domain=meta["domain"],
        k=meta["k"],
        source=HashSource(meta["seed"]),
        rows=meta["rows"],
    )
    _restore_cells(bank.bank, arrays)
    return bank


def _restore_cells(cell_bank, arrays: dict[str, np.ndarray]) -> None:
    if arrays["phi"].shape != cell_bank.phi.shape:
        raise ValueError(
            "serialised cell arrays do not match the reconstructed shape"
        )
    cell_bank.phi[:] = arrays["phi"]
    cell_bank.iota[:] = arrays["iota"]
    cell_bank.fp1[:] = arrays["fp1"]
    cell_bank.fp2[:] = arrays["fp2"]
