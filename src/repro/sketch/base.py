"""Linear sketch interface (Definition 2).

A *sketch* is a collection of linear measurements of a vector
``x ∈ R^N``; linearity is the load-bearing property of the whole paper:

* **dynamic streams** — an edge deletion is just an update with
  ``delta = -1``, cancelling the earlier insertion inside the sketch;
* **distributed streams / MapReduce** — sketches of sub-streams *add*:
  ``sketch(S1 || S2) = sketch(S1) + sketch(S2)``.

Every concrete sketch in :mod:`repro.sketch` implements this interface,
and the property tests assert both bullets hold exactly (not just in
distribution) for every implementation.
"""

from __future__ import annotations

import abc

__all__ = ["LinearSketch"]


class LinearSketch(abc.ABC):
    """Abstract base class for linear sketches of a vector in ``Z^N``."""

    #: Size of the sketched vector's index universe.
    domain: int

    @abc.abstractmethod
    def update(self, index: int, delta: int) -> None:
        """Apply ``x[index] += delta``."""

    @abc.abstractmethod
    def merge(self, other: "LinearSketch") -> None:
        """Add another sketch of the *same shape and seed* into this one.

        After ``a.merge(b)``, ``a`` is the sketch of ``x_a + x_b``.
        Implementations must raise :class:`ValueError` when shapes or
        seeds differ — adding sketches built with different hash
        functions is meaningless.
        """

    def update_many(self, indices, deltas) -> None:
        """Bulk :meth:`update`; subclasses override with vectorised paths."""
        for i, d in zip(indices, deltas):
            self.update(int(i), int(d))

    def subtract(self, other: "LinearSketch") -> None:
        """Subtract another sketch of the *same shape and seed*.

        After ``a.subtract(b)``, ``a`` is the sketch of ``x_a - x_b``
        (exactly — linearity works for differences just as for sums,
        which is what makes temporal-window queries by checkpoint
        subtraction possible).  The vectorised banks and every
        registry-serialisable sketch class implement this as a
        whole-buffer op on their :class:`~repro.sketch.arena.
        SketchArena`; the default raises so scalar reference sketches
        stay minimal.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement subtract()"
        )

    def negate(self) -> None:
        """Negate the sketched vector in place (``x -> -x``).

        ``a.merge(b); b_neg.negate(); a.merge(b_neg)`` round-trips
        exactly — negation is subtraction from the zero sketch.  Like
        :meth:`subtract`, implemented by the arena-backed classes and
        left unimplemented on the scalar reference sketches.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement negate()"
        )
