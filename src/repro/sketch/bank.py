"""Vectorised banks of 1-sparse cells.

Every sketch algorithm in the paper maintains *many* small sketches:
``O(log n)`` ℓ₀ samplers per node per Borůvka round, per subsampling
level, per connectivity group...  Naive per-object Python sketches are
two orders of magnitude too slow, so this module stores all cells of a
bank in four contiguous ``int64`` arrays —

* ``phi``   — ``Σ x_i`` per cell,
* ``iota``  — ``Σ i·x_i`` per cell,
* ``fp1``, ``fp2`` — two polynomial fingerprints mod ``p = 2^31 - 1`` —

and applies updates with ``np.add.at`` scatter operations, touching all
affected (sampler, level, row) cells of a batch in a handful of numpy
calls.  Decoding is likewise vectorised: the 1-sparseness test of
:mod:`repro.sketch.onesparse` is evaluated for whole cell blocks at
once.

The four field arrays are always views into one contiguous ``int64``
buffer: a bank is born with its own field-major block, and a
:class:`~repro.sketch.arena.SketchArena` may later *adopt* the bank —
re-pointing the views into a whole-sketch buffer shared with sibling
banks.  Every mutating method here therefore writes strictly in place
(no array rebinding), so bank-level and arena-level operations see the
same cells.
"""

from __future__ import annotations

import numpy as np

from ..errors import SketchCompatibilityError
from ..hashing import MERSENNE31, HashSource
from ..hashing.field import mod_mersenne31, powmod_array
from ..kernels import get as _get_kernel

__all__ = ["CellBank", "decode_cells"]

_K_SCATTER = _get_kernel("scatter_multi")


class CellBank:
    """A flat array of 1-sparse cells sharing fingerprint generators.

    Parameters
    ----------
    size:
        Total number of cells.
    domain:
        Index universe of the sketched vector(s); decoded indices are
        validated against it.
    source:
        Seed source; determines the two fingerprint generators shared by
        every cell in the bank (sharing is sound — each cell's test is a
        separate polynomial identity).
    """

    __slots__ = ("size", "domain", "z1", "z2", "phi", "iota", "fp1", "fp2")

    def __init__(self, size: int, domain: int, source: HashSource):
        if size < 1:
            raise ValueError(f"bank needs at least one cell, got {size}")
        if domain < 1:
            raise ValueError(f"domain must be positive, got {domain}")
        self.size = size
        self.domain = domain
        self.z1 = 2 + int(source.derive(1).hash64(0)) % (MERSENNE31 - 2)
        self.z2 = 2 + int(source.derive(2).hash64(0)) % (MERSENNE31 - 2)
        # Field-major views into one contiguous block, so a lone bank is
        # already arena-shaped; SketchArena.adopt re-points these views
        # into a whole-sketch buffer.
        storage = np.zeros(4 * size, dtype=np.int64)
        self.phi = storage[:size]
        self.iota = storage[size:2 * size]
        self.fp1 = storage[2 * size:3 * size]
        self.fp2 = storage[3 * size:]

    def scatter(
        self, cells: np.ndarray, items: np.ndarray, deltas: np.ndarray
    ) -> None:
        """Apply ``x[items] += deltas`` routed into ``cells``.

        All three arrays are parallel; the same cell may appear multiple
        times (contributions accumulate).  This is the single hot path
        of the library.
        """
        self.scatter_multi([cells], items, deltas)

    def scatter_multi(
        self, cells_per_row: list[np.ndarray], items: np.ndarray, deltas: np.ndarray
    ) -> None:
        """Scatter one ``(items, deltas)`` payload through several routings.

        Equivalent to calling :meth:`scatter` once per entry of
        ``cells_per_row``, but the fingerprint powers — the expensive
        part of a scatter — are computed once per unique item and
        shared across rows, and the modular reduction of the
        fingerprint arrays touches only the scattered cells.  Routed
        through the ``scatter_multi`` kernel of :mod:`repro.kernels`.
        """
        _K_SCATTER(self, cells_per_row, items, deltas)

    def _require_combinable(self, other: "CellBank", op: str = "merge") -> None:
        if (
            other.size != self.size
            or other.domain != self.domain
            or other.z1 != self.z1
            or other.z2 != self.z2
        ):
            raise SketchCompatibilityError(
                f"cannot {op} banks: shape or seed differs"
            )

    def merge(self, other: "CellBank") -> None:
        """Cell-wise addition of a bank with identical seed and shape."""
        self._require_combinable(other)
        self.phi += other.phi
        self.iota += other.iota
        self.fp1[:] = mod_mersenne31(self.fp1 + other.fp1)
        self.fp2[:] = mod_mersenne31(self.fp2 + other.fp2)

    def subtract(self, other: "CellBank") -> None:
        """Cell-wise subtraction: afterwards this bank sketches ``x - y``.

        The temporal-decomposition primitive: a sketch of stream prefix
        ``[0, t2)`` minus a sketch of ``[0, t1)`` is *exactly* the
        sketch of the window ``[t1, t2)`` — same linearity that makes
        :meth:`merge` exact.  Fingerprints live in ``GF(2^31 - 1)``, so
        the difference is taken mod ``p`` (both operands are already
        reduced, hence ``+ p`` keeps the fold input non-negative).
        """
        self._require_combinable(other, op="subtract")
        self.phi -= other.phi
        self.iota -= other.iota
        self.fp1[:] = mod_mersenne31(self.fp1 - other.fp1 + MERSENNE31)
        self.fp2[:] = mod_mersenne31(self.fp2 - other.fp2 + MERSENNE31)

    def negate(self) -> None:
        """In-place negation: afterwards this bank sketches ``-x``."""
        np.negative(self.phi, out=self.phi)
        np.negative(self.iota, out=self.iota)
        self.fp1[:] = mod_mersenne31(MERSENNE31 - self.fp1)
        self.fp2[:] = mod_mersenne31(MERSENNE31 - self.fp2)

    def cells_view(
        self, idx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Gather ``(phi, iota, fp1, fp2)`` for the given cell indices."""
        return self.phi[idx], self.iota[idx], self.fp1[idx], self.fp2[idx]

    def summed_cells(
        self, idx2d: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Sum cells across the first axis of a 2-D index array.

        ``idx2d`` has shape ``(groups, cells)``; the result is the
        cell-wise sum over the ``groups`` axis — the linear-combination
        trick of the AGM sketch: the sketch of a supernode is the sum of
        its members' sketches.
        """
        phi = self.phi[idx2d].sum(axis=0)
        iota = self.iota[idx2d].sum(axis=0)
        fp1 = mod_mersenne31(self.fp1[idx2d].sum(axis=0))
        fp2 = mod_mersenne31(self.fp2[idx2d].sum(axis=0))
        return phi, iota, fp1, fp2

    def memory_cells(self) -> int:
        """Number of cells — the space-accounting unit of EXPERIMENTS.md."""
        return self.size


def decode_cells(
    phi: np.ndarray,
    iota: np.ndarray,
    fp1: np.ndarray,
    fp2: np.ndarray,
    domain: int,
    z1: int,
    z2: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised 1-sparse decoding of a block of cells.

    Returns ``(ok, index, value)`` arrays with the block's shape; where
    ``ok`` is True the cell verifiably holds exactly one non-zero entry
    ``x[index] = value``.  Cells failing any test (zero, multi-item, or
    fingerprint mismatch) have ``ok = False``.
    """
    phi = np.asarray(phi)
    iota = np.asarray(iota)
    ok = phi != 0
    index = np.zeros_like(iota)
    safe_phi = np.where(ok, phi, 1)
    divisible = np.mod(iota, safe_phi) == 0
    ok &= divisible
    index = np.where(ok, iota // safe_phi, 0)
    ok &= (index >= 0) & (index < domain)
    idx_clipped = np.clip(index, 0, domain - 1)
    phimod = np.mod(phi, MERSENNE31)
    # Powers only for the (few) distinct candidate indices.
    uniq, inv = np.unique(idx_clipped.ravel(), return_inverse=True)
    want1 = mod_mersenne31(
        phimod * powmod_array(z1, uniq)[inv].reshape(idx_clipped.shape)
    )
    want2 = mod_mersenne31(
        phimod * powmod_array(z2, uniq)[inv].reshape(idx_clipped.shape)
    )
    ok &= (fp1 == want1) & (fp2 == want2)
    return ok, index, phi
