"""Linear sketch primitives: 1-sparse cells, ℓ₀ samplers, k-RECOVERY.

The building blocks of Section 2.3, each in scalar (reference) and
numpy-bank (production) form, plus the squash encoding of Section 4.
"""

from .bank import CellBank, decode_cells
from .base import LinearSketch
from .l0 import L0Sampler, L0SamplerBank
from .onesparse import OneSparseCell
from .serialize import (
    dump_l0_bank,
    dump_recovery_bank,
    load_l0_bank,
    load_recovery_bank,
)
from .sparse_recovery import SparseRecovery, SparseRecoveryBank, bucket_count_for
from .squash import (
    is_valid_encoding,
    pair_position_in_subset,
    pair_positions_k3,
    rows_for_order,
    squash_matrix,
    unsquash_value,
)

__all__ = [
    "CellBank",
    "L0Sampler",
    "L0SamplerBank",
    "LinearSketch",
    "OneSparseCell",
    "SparseRecovery",
    "SparseRecoveryBank",
    "bucket_count_for",
    "decode_cells",
    "dump_l0_bank",
    "dump_recovery_bank",
    "load_l0_bank",
    "load_recovery_bank",
    "is_valid_encoding",
    "pair_position_in_subset",
    "pair_positions_k3",
    "rows_for_order",
    "squash_matrix",
    "unsquash_value",
]
