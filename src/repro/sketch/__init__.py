"""Linear sketch primitives: 1-sparse cells, ℓ₀ samplers, k-RECOVERY.

The building blocks of Section 2.3, each in scalar (reference) and
numpy-bank (production) form, plus the squash encoding of Section 4.
"""

from .arena import ArenaBacked, SketchArena, ensure_arena
from .bank import CellBank, decode_cells
from .base import LinearSketch
from .l0 import L0Sampler, L0SamplerBank
from .onesparse import OneSparseCell
from .serialize import (
    SketchCodec,
    dump_epoch_manifest,
    dump_l0_bank,
    dump_recovery_bank,
    dump_sketch,
    load_epoch_manifest,
    load_l0_bank,
    load_recovery_bank,
    load_sketch,
    merge_sketch_bytes,
    peek_sketch_meta,
    register_sketch_codec,
    serializable_sketch_kinds,
    sketch_kind_of,
    subtract_sketch_bytes,
)
from .sparse_recovery import SparseRecovery, SparseRecoveryBank, bucket_count_for
from .squash import (
    is_valid_encoding,
    pair_position_in_subset,
    pair_positions_k3,
    rows_for_order,
    squash_matrix,
    unsquash_value,
)

__all__ = [
    "ArenaBacked",
    "CellBank",
    "SketchArena",
    "ensure_arena",
    "L0Sampler",
    "L0SamplerBank",
    "LinearSketch",
    "OneSparseCell",
    "SparseRecovery",
    "SparseRecoveryBank",
    "SketchCodec",
    "bucket_count_for",
    "decode_cells",
    "dump_epoch_manifest",
    "dump_l0_bank",
    "dump_recovery_bank",
    "dump_sketch",
    "load_epoch_manifest",
    "load_l0_bank",
    "load_recovery_bank",
    "load_sketch",
    "merge_sketch_bytes",
    "subtract_sketch_bytes",
    "peek_sketch_meta",
    "register_sketch_codec",
    "serializable_sketch_kinds",
    "sketch_kind_of",
    "is_valid_encoding",
    "pair_position_in_subset",
    "pair_positions_k3",
    "rows_for_order",
    "squash_matrix",
    "unsquash_value",
]
