"""ℓ₀ sampling (Theorem 2.1, Jowhari–Sağlam–Tardos style).

An ℓ₀ sampler of ``x ∈ Z^N`` returns, with probability ``1 - δ``, a
pair ``(i, x_i)`` with ``i`` (near-)uniform over ``support(x)``; it may
also return FAIL (raised here as :class:`~repro.errors.SamplerFailed`).

Construction.  Each index is assigned a geometric *level*
``ℓ(i) = trailing_zeros(h(i))`` and participates in levels
``0..ℓ(i)`` (so level ``j`` subsamples the support at rate ``2^-j``).
Each level is a small grid of ``rows × buckets`` 1-sparse cells; an
index lands in one bucket per row.  To sample, decode every cell and
return the recovered index with the **deepest level** (ties broken by
hash) — that index is the argmax of a uniform hash over the support,
hence a uniform sample, whenever it is isolated in some cell at its
level, which happens with constant probability per level grid.

Two implementations:

* :class:`L0Sampler` — scalar, one vector, easy to read; used in tests
  and small tools.
* :class:`L0SamplerBank` — the vectorised work-horse: ``families ×
  samplers`` independent samplers stored in one :class:`~repro.sketch.
  bank.CellBank`.  All samplers of one *family* share hash functions,
  so they can be summed (the AGM supernode trick); distinct families
  are independent (fresh randomness per Borůvka round / per estimator
  repetition).
"""

from __future__ import annotations

from itertools import chain

import numpy as np

from ..errors import SamplerFailed, SketchCompatibilityError, incompatible
from ..hashing import HashSource
from ..kernels import get as _get_kernel
from ..util import ceil_log2
from .arena import ArenaBacked
from .bank import CellBank, decode_cells
from .base import LinearSketch
from .onesparse import OneSparseCell

__all__ = ["L0Sampler", "L0SamplerBank"]

_K_DECODE_ALL = _get_kernel("decode_all")


def _default_levels(domain: int) -> int:
    """Number of subsampling levels: enough to isolate any support size."""
    return ceil_log2(max(domain, 2)) + 2


class L0Sampler(LinearSketch):
    """Scalar reference ℓ₀ sampler over ``[0, domain)``.

    Parameters
    ----------
    domain:
        Universe size ``N``.
    source:
        Seed source (level hash, bucket hashes, fingerprints).
    rows, buckets:
        Grid dimensions of 1-sparse cells per level.
    """

    def __init__(
        self,
        domain: int,
        source: HashSource,
        rows: int = 2,
        buckets: int = 4,
    ):
        if rows < 1 or buckets < 1:
            raise ValueError("rows and buckets must be positive")
        self.domain = domain
        self.rows = rows
        self.buckets = buckets
        self.levels = _default_levels(domain)
        self._level_source = source.derive(0xA)
        self._bucket_source = source.derive(0xB)
        self._cells = [
            [
                [OneSparseCell(domain, source.derive(0xC, lv, r, b)) for b in range(buckets)]
                for r in range(rows)
            ]
            for lv in range(self.levels + 1)
        ]

    def level_of(self, index: int) -> int:
        """Deepest level index ``index`` participates in."""
        return int(self._level_source.levels(index, self.levels))

    def _bucket_of(self, index: int, level: int, row: int) -> int:
        key = (index * (self.levels + 1) + level) * self.rows + row
        return int(self._bucket_source.bucket(key, self.buckets))

    def update(self, index: int, delta: int) -> None:
        """Apply ``x[index] += delta``."""
        if not 0 <= index < self.domain:
            raise ValueError(f"index {index} outside domain [0, {self.domain})")
        top = self.level_of(index)
        for lv in range(top + 1):
            for r in range(self.rows):
                b = self._bucket_of(index, lv, r)
                self._cells[lv][r][b].update(index, delta)

    def merge(self, other: "LinearSketch") -> None:
        """Add a sampler with identical seed and shape."""
        if not isinstance(other, L0Sampler) or other.domain != self.domain:
            raise SketchCompatibilityError(
                "can only merge L0Samplers over the same domain"
            )
        for lv in range(self.levels + 1):
            for r in range(self.rows):
                for b in range(self.buckets):
                    self._cells[lv][r][b].merge(other._cells[lv][r][b])

    def sample(self) -> tuple[int, int]:
        """Return ``(index, value)`` for a (near-)uniform support element.

        The returned index is the argmax of ``(level_of(i), hash(i))``
        over every decodable cell — the same selection rule (including
        the hash tie-break) as :meth:`L0SamplerBank._sample_from`, so a
        scalar sampler and a one-family bank sharing a seed agree.

        Raises
        ------
        SamplerFailed
            With ``vector_is_zero=True`` when every cell is empty (the
            sketched vector is zero w.h.p.), else a recovery failure.
        """
        # (level_of(i), tiebreak hash, i, value); an item decoded at a
        # shallow grid level can still carry a deep level_of, so every
        # cell must be inspected before the argmax is known.
        best: tuple[int, int, int, int] | None = None
        any_nonzero = False
        for lv in range(self.levels, -1, -1):
            for r in range(self.rows):
                for b in range(self.buckets):
                    cell = self._cells[lv][r][b]
                    if cell.is_zero():
                        continue
                    any_nonzero = True
                    decoded = cell.try_decode()
                    if decoded is None:
                        continue
                    i, v = decoded
                    cand = (
                        self.level_of(i),
                        int(self._level_source.hash64(i)),
                        i,
                        v,
                    )
                    if best is None or cand[:2] > best[:2]:
                        best = cand
        if best is not None:
            return best[2], best[3]
        err = SamplerFailed(
            "l0 sample failed" if any_nonzero else "sketched vector is zero"
        )
        err.vector_is_zero = not any_nonzero
        raise err


class L0SamplerBank(ArenaBacked):
    """``families × samplers`` ℓ₀ samplers in one vectorised bank.

    Within a family all samplers share hash functions — their cell
    arrays can be *summed* to obtain the sampler of a sum of vectors
    (:meth:`sample_sum`), the key trick behind AGM connectivity.
    Distinct families use independent hashes.

    Parameters
    ----------
    families:
        Number of independent hash families ``F``.
    samplers:
        Samplers per family ``S`` (e.g. one per graph node).
    domain:
        Universe size ``N`` of each sketched vector.
    source:
        Seed source for the whole bank.
    rows, buckets:
        Per-level cell grid; memory per sampler is
        ``(levels+1) * rows * buckets`` cells.
    """

    def __init__(
        self,
        families: int,
        samplers: int,
        domain: int,
        source: HashSource,
        rows: int = 2,
        buckets: int = 4,
    ):
        if families < 1 or samplers < 1:
            raise ValueError("families and samplers must be positive")
        self.families = families
        self.samplers = samplers
        self.domain = domain
        self.rows = rows
        self.buckets = buckets
        self.levels = _default_levels(domain)
        #: Seed of the constructing source (used by sketch serialisation).
        self.source_seed = getattr(source, "seed", None)
        self._level_source = source.derive(0xA)
        self._bucket_source = source.derive(0xB)
        self._cells_per_sampler = (self.levels + 1) * rows * buckets
        self.bank = CellBank(
            families * samplers * self._cells_per_sampler, domain, source.derive(0xC)
        )

    # -- updates ---------------------------------------------------------------

    def update(
        self,
        family_ids: np.ndarray,
        sampler_ids: np.ndarray,
        items: np.ndarray,
        deltas: np.ndarray,
    ) -> None:
        """Apply ``x_{f,s}[item] += delta`` for each parallel entry.

        The level expansion (each item participates in levels
        ``0..ℓ(i)``) happens here; expected blow-up is 2×.
        """
        family_ids = np.asarray(family_ids, dtype=np.int64)
        sampler_ids = np.asarray(sampler_ids, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        if items.size == 0:
            return
        top = self._levels_of(family_ids, items)
        lengths = top + 1
        total = int(lengths.sum())
        rep_f = np.repeat(family_ids, lengths)
        rep_s = np.repeat(sampler_ids, lengths)
        rep_i = np.repeat(items, lengths)
        rep_d = np.repeat(deltas, lengths)
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        rep_lv = np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)
        self._scatter_rows(rep_f, rep_s, rep_lv, rep_i, rep_d)

    def _levels_of(self, family_ids: np.ndarray, items: np.ndarray) -> np.ndarray:
        keys = items * self.families + family_ids
        return np.asarray(self._level_source.levels(keys, self.levels), dtype=np.int64)

    def _scatter_rows(
        self,
        fams: np.ndarray,
        samps: np.ndarray,
        lvs: np.ndarray,
        items: np.ndarray,
        deltas: np.ndarray,
    ) -> None:
        base = (
            (fams * self.samplers + samps) * (self.levels + 1) + lvs
        ) * self.rows
        cells_per_row = []
        for row in range(self.rows):
            key = ((items * self.families + fams) * (self.levels + 1) + lvs) * self.rows + row
            bucket = np.asarray(
                self._bucket_source.bucket(key, self.buckets), dtype=np.int64
            )
            cells_per_row.append((base + row) * self.buckets + bucket)
        self.bank.scatter_multi(cells_per_row, items, deltas)

    def _require_combinable(
        self, other: "L0SamplerBank", op: str = "merge"
    ) -> None:
        if (
            other.families != self.families
            or other.samplers != self.samplers
            or other.domain != self.domain
            or other.rows != self.rows
            or other.buckets != self.buckets
        ):
            raise SketchCompatibilityError(
                f"cannot {op} banks: shapes differ"
            )
        if (
            self.source_seed is not None
            and other.source_seed is not None
            and other.source_seed != self.source_seed
        ):
            raise incompatible(
                "L0SamplerBank", "seed", self.source_seed, other.source_seed,
                op=op,
            )

    def _cell_banks(self) -> list[CellBank]:
        return [self.bank]

    def merge(self, other: "L0SamplerBank") -> None:
        """Cell-wise merge of an identically-seeded bank (distributed sum)."""
        self._require_combinable(other)
        self.bank._require_combinable(other.bank)
        self.arena.merge(other.arena)

    def subtract(self, other: "L0SamplerBank") -> None:
        """Cell-wise subtraction of an identically-seeded bank.

        Afterwards this bank sketches the *difference* of the two
        vectors — the temporal-window primitive (checkpoint algebra).
        """
        self._require_combinable(other, op="subtract")
        self.bank._require_combinable(other.bank, op="subtract")
        self.arena.subtract(other.arena)

    def negate(self) -> None:
        """In-place negation of every sketched vector."""
        self.arena.negate()

    # -- queries ---------------------------------------------------------------

    def _sampler_cells(self, family: int, sampler: int) -> np.ndarray:
        start = (family * self.samplers + sampler) * self._cells_per_sampler
        return np.arange(start, start + self._cells_per_sampler, dtype=np.int64)

    def sample(self, family: int, sampler: int) -> tuple[int, int]:
        """Sample from a single sampler; see :meth:`L0Sampler.sample`."""
        idx = self._sampler_cells(family, sampler)
        return self._sample_from(family, self.bank.cells_view(idx))

    def sample_sum(self, family: int, sampler_ids: list[int]) -> tuple[int, int]:
        """Sample from the *sum* of several samplers of one family.

        Equivalent to sketching ``Σ_s x_{f,s}`` directly — exact, not
        approximate, by linearity.  Used to sample an outgoing edge of a
        graph component from the sum of its nodes' incidence sketches.
        """
        if not sampler_ids:
            raise ValueError("sampler_ids must be non-empty")
        status, items, values = self.sample_many(family, [sampler_ids])
        if int(status[0]) == 0:
            return int(items[0]), int(values[0])
        err = SamplerFailed(
            "sketched vector is zero" if int(status[0]) == 1
            else "no cell decoded to a single item"
        )
        err.vector_is_zero = int(status[0]) == 1
        raise err

    def sample_many(
        self, family: int, member_groups: list[list[int]]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`sample_sum` over many member groups at once.

        Decodes the summed sampler of every group in one whole-bank
        kernel call (``decode_all``) instead of one Python round-trip
        per group — the Borůvka extraction loop decodes *all* current
        components of a round this way.  Returns parallel ``(status,
        items, values)`` arrays: status ``0`` = decoded (a sample of
        ``Σ_s x_{f,s}`` identical to :meth:`sample_sum`'s), ``1`` =
        zero vector, ``2`` = recovery failure.
        """
        count = len(member_groups)
        sizes = np.fromiter(
            (len(g) for g in member_groups), dtype=np.int64, count=count
        )
        if count == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        if bool((sizes < 1).any()):
            raise ValueError("every member group must be non-empty")
        total = int(sizes.sum())
        members = np.fromiter(
            chain.from_iterable(member_groups), dtype=np.int64, count=total
        )
        starts = (
            family * self.samplers + members
        ) * self._cells_per_sampler
        seg_offsets = np.concatenate(([0], np.cumsum(sizes)))
        return _K_DECODE_ALL(self, family, starts, seg_offsets)

    def _sample_from(
        self,
        family: int,
        cells: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ) -> tuple[int, int]:
        phi, iota, fp1, fp2 = cells
        nonzero = (phi != 0) | (iota != 0) | (fp1 != 0) | (fp2 != 0)
        if not bool(nonzero.any()):
            err = SamplerFailed("sketched vector is zero")
            err.vector_is_zero = True
            raise err
        ok, index, value = decode_cells(
            phi, iota, fp1, fp2, self.domain, self.bank.z1, self.bank.z2
        )
        if not bool(ok.any()):
            err = SamplerFailed("no cell decoded to a single item")
            err.vector_is_zero = False
            raise err
        cand_idx = index[ok]
        cand_val = value[ok]
        fam_arr = np.full(cand_idx.shape, family, dtype=np.int64)
        cand_lv = self._levels_of(fam_arr, cand_idx)
        # Tie-break by hash so the argmax is deterministic per seed.
        tiebreak = np.asarray(
            self._level_source.hash64(cand_idx * self.families + family),
            dtype=np.uint64,
        )
        order = np.lexsort((tiebreak, cand_lv))
        best = order[-1]
        return int(cand_idx[best]), int(cand_val[best])

    def is_zero(self, family: int, sampler: int) -> bool:
        """Whether sampler ``(family, sampler)``'s vector is zero (w.h.p.)."""
        idx = self._sampler_cells(family, sampler)
        phi, iota, fp1, fp2 = self.bank.cells_view(idx)
        return not bool(((phi != 0) | (iota != 0) | (fp1 != 0) | (fp2 != 0)).any())

    def memory_cells(self) -> int:
        """Total 1-sparse cells — the space unit reported by experiments."""
        return self.bank.memory_cells()
