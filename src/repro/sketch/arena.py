"""Contiguous sketch-state arena — the whole sketch as one vector.

The paper treats a graph sketch as a single linear measurement vector:
merging distributed sites (Section 1.1), subtracting epoch checkpoints,
and shipping bytes are all the *same* vector operation.  Before this
module, our in-memory layout disagreed — every sketch class scattered
its state across per-bank numpy arrays, so ``merge``/``subtract``/
``dump_sketch`` looped over banks and re-packed arrays on the hot path
of both the distributed coordinator and the temporal engine.

:class:`SketchArena` restores the paper's view.  It owns **one**
contiguous ``int64`` buffer holding every cell of every constituent
:class:`~repro.sketch.bank.CellBank`, laid out field-major::

    [ phi of bank 0 | phi of bank 1 | ... ]   cells [0, C)
    [ iota ...                            ]   cells [C, 2C)
    [ fp1 ...                             ]   cells [2C, 3C)
    [ fp2 ...                             ]   cells [3C, 4C)

with ``C`` the total cell count.  Each bank's ``phi``/``iota``/``fp1``/
``fp2`` become *views* into the buffer, so every existing per-bank code
path (scatters, decoding, sampling) works unchanged — while whole-sketch
linear algebra collapses to a handful of whole-buffer vector ops:

* ``merge``/``subtract`` — one add/sub on the count half, one modular
  fold on the fingerprint half, regardless of how many banks the sketch
  has (a MINCUT hierarchy has hundreds);
* serialisation — the payload *is* ``buffer.tobytes()``: no per-bank
  gather, no re-concatenation (see :mod:`repro.sketch.serialize`).

Arenas attach lazily: a sketch's banks are born with small contiguous
self-storage, and the first whole-sketch operation adopts them into a
shared buffer.  Adoption is idempotent and self-healing — if a nested
sketch (say one forest group inside a ``k-EDGECONNECT``) is later used
as a top-level object, its banks are re-adopted into a fresh buffer and
any arena left pointing at the old storage detects the detachment and
rebuilds on next use.  Bank views are the single source of truth; an
arena is only ever *used* while all of its banks still view its buffer.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..errors import SketchCompatibilityError
from ..kernels import get as _get_kernel
from ..kernels.reference import _fold_mersenne31_inplace  # noqa: F401  (re-export)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .bank import CellBank

__all__ = ["SketchArena", "ArenaBacked", "ensure_arena"]

_K_FOLD = _get_kernel("arena_fold")
_K_FOLD_SPARSE = _get_kernel("arena_fold_sparse")
_K_NEGATE = _get_kernel("arena_negate")


class SketchArena:
    """One contiguous ``int64`` buffer backing a list of cell banks.

    Build with :meth:`adopt`; the constructor is internal.  ``buffer``
    has length ``4 * cells``; ``layout`` is the per-bank shape/seed
    signature ``(size, domain, z1, z2)`` used for combinability checks.
    """

    __slots__ = ("buffer", "cells", "banks", "layout")

    def __init__(
        self,
        buffer: np.ndarray,
        cells: int,
        banks: tuple["CellBank", ...],
        layout: tuple[tuple[int, int, int, int], ...],
    ):
        self.buffer = buffer
        self.cells = cells
        self.banks = banks
        self.layout = layout

    @classmethod
    def adopt(cls, banks: Sequence["CellBank"]) -> "SketchArena":
        """Move the given banks' cells into one fresh contiguous buffer.

        Current cell contents are preserved (copied in), and each bank's
        four field arrays are re-pointed to views of the buffer.  The
        bank order is the serialisation order — it must be deterministic
        for a given sketch class (see ``_cell_banks`` implementations).
        """
        banks = tuple(banks)
        if not banks:
            raise ValueError("an arena needs at least one cell bank")
        cells = sum(b.size for b in banks)
        # np.zeros maps copy-on-write zero pages, and a bank that is
        # still all-zero (any freshly built sketch) skips its copy — so
        # adopting an empty hierarchy sketch touches no page at all.
        # The distributed coordinator builds one such sketch (hundreds
        # of MB for the hierarchy classes) per merge; this keeps that
        # construction O(nnz folded in later), not O(cells).
        buffer = np.zeros(4 * cells, dtype=np.int64)
        offset = 0
        for bank in banks:
            end = offset + bank.size
            views = tuple(
                buffer[f * cells + offset:f * cells + end] for f in range(4)
            )
            if bank.phi.any() or bank.iota.any() or bank.fp1.any() \
                    or bank.fp2.any():
                np.copyto(views[0], bank.phi)
                np.copyto(views[1], bank.iota)
                np.copyto(views[2], bank.fp1)
                np.copyto(views[3], bank.fp2)
            bank.phi, bank.iota, bank.fp1, bank.fp2 = views
            offset = end
        layout = tuple((b.size, b.domain, b.z1, b.z2) for b in banks)
        return cls(buffer, cells, banks, layout)

    @classmethod
    def adopt_external(
        cls, banks: Sequence["CellBank"], buffer: np.ndarray
    ) -> "SketchArena":
        """Re-point the banks at an externally-owned buffer, copy-free.

        The buffer's *current contents* become the sketch state — the
        caller zeroes or preloads it.  This is the process-mode seam:
        a worker adopts its warm sketch's banks onto a slot of a
        ``multiprocessing.shared_memory`` segment and folds stream
        deltas directly into coordinator-visible memory.  The buffer
        may itself be a view (e.g. a slice of a larger shared
        segment); it must be one writable C-contiguous ``int64``
        vector of exactly ``4 * total_cells`` elements.
        """
        banks = tuple(banks)
        if not banks:
            raise ValueError("an arena needs at least one cell bank")
        cells = sum(b.size for b in banks)
        if (
            buffer.ndim != 1
            or buffer.dtype != np.int64
            or buffer.size != 4 * cells
            or not buffer.flags.c_contiguous
            or not buffer.flags.writeable
        ):
            raise SketchCompatibilityError(
                "external arena buffer must be one writable contiguous "
                f"int64 vector of {4 * cells} elements"
            )
        offset = 0
        for bank in banks:
            end = offset + bank.size
            views = tuple(
                buffer[f * cells + offset:f * cells + end] for f in range(4)
            )
            bank.phi, bank.iota, bank.fp1, bank.fp2 = views
            offset = end
        layout = tuple((b.size, b.domain, b.z1, b.z2) for b in banks)
        return cls(buffer, cells, banks, layout)

    def attached(self) -> bool:
        """Whether every bank still views this buffer.

        False after any of the banks was re-adopted by another arena
        (nested sketch used as top level, or vice versa); the owner then
        rebuilds via :func:`ensure_arena`.

        When the buffer is itself a view of a larger array (an
        :meth:`adopt_external` slot inside a shared segment), numpy
        collapses view chains — a bank's ``base`` is the *root* array,
        not this buffer — so the check compares against the root and
        additionally pins the first bank's address: two slots of the
        same segment share a root, and only the address tells a bank
        re-adopted onto a different slot apart.
        """
        buffer = self.buffer
        root = buffer if buffer.base is None else buffer.base
        first = self.banks[0].phi
        if first.base is not buffer and first.base is not root:
            return False
        if (
            first.__array_interface__["data"][0]
            != buffer.__array_interface__["data"][0]
        ):
            return False
        return all(
            b.phi.base is buffer or b.phi.base is root for b in self.banks
        )

    # -- whole-buffer linear algebra -------------------------------------------

    def _require_combinable(self, other: "SketchArena", op: str = "merge") -> None:
        if other.layout != self.layout:
            raise SketchCompatibilityError(
                f"cannot {op} arenas: bank layout or fingerprint seeds differ"
            )

    def merge(self, other: "SketchArena") -> None:
        """Cell-wise addition of an identically-laid-out arena."""
        self._require_combinable(other)
        self._combine_raw(other.buffer, subtract=False)

    def subtract(self, other: "SketchArena") -> None:
        """Cell-wise subtraction (the temporal-window primitive)."""
        self._require_combinable(other, op="subtract")
        self._combine_raw(other.buffer, subtract=True)

    def _combine_raw(self, raw: np.ndarray, subtract: bool) -> None:
        """Fold a raw buffer (same layout, already validated) into this one.

        Routed through the ``arena_fold`` kernel — identical cell for
        cell to the per-bank ``CellBank.merge``/``subtract`` it
        replaces, without per-bank Python overhead or DRAM-sized
        temporaries.
        """
        _K_FOLD(self.buffer, raw, self.cells, subtract)

    def _combine_sparse(
        self, idx: np.ndarray, values: np.ndarray, subtract: bool
    ) -> None:
        """Fold a sparse (index, value) payload into this arena.

        ``idx`` must be strictly increasing positions into the buffer
        (so indices are unique and fancy assignment is well-defined) and
        fingerprint values already reduced — both validated by the
        serialisation layer.  Cost is ``O(nnz)``, not ``O(cells)``: the
        coordinator-merge win for lightly-loaded site sketches.  Routed
        through the ``arena_fold_sparse`` kernel.
        """
        _K_FOLD_SPARSE(self.buffer, self.cells, idx, values, subtract)

    def negate(self) -> None:
        """In-place negation: afterwards the arena sketches ``-x``."""
        _K_NEGATE(self.buffer, self.cells)

    # -- accounting -------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Size of the backing buffer in bytes."""
        return int(self.buffer.nbytes)

    def memory_cells(self) -> int:
        """Total 1-sparse cells held (space accounting)."""
        return self.cells

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SketchArena(banks={len(self.banks)}, cells={self.cells}, "
            f"bytes={self.nbytes})"
        )


def ensure_arena(sketch) -> SketchArena:
    """The sketch's arena, (re)building it if absent or detached.

    ``sketch`` must implement ``_cell_banks()`` returning its cell banks
    in deterministic serialisation order.  The arena is cached on the
    object; a cached arena whose banks were stolen by another adoption
    is detected via :meth:`SketchArena.attached` and rebuilt.
    """
    arena = getattr(sketch, "_arena", None)
    if arena is None or not arena.attached():
        arena = SketchArena.adopt(sketch._cell_banks())
        sketch._arena = arena
    return arena


class ArenaBacked:
    """Mixin for sketch classes whose linear ops run on a shared arena.

    Subclasses implement ``_cell_banks()`` (deterministic order, same
    list their serialisation codec uses) and get a lazily-attached
    :class:`SketchArena` via :attr:`arena`.
    """

    #: Query capabilities the class declares for the :mod:`repro.api`
    #: capability registry (e.g. ``"connectivity"``, ``"mincut"``).
    #: Empty by default; each registry sketch class overrides it with
    #: the queries its post-processing surface can actually answer.
    CAPABILITIES: frozenset[str] = frozenset()

    _arena: SketchArena | None = None

    def _cell_banks(self) -> list["CellBank"]:
        raise NotImplementedError

    @property
    def arena(self) -> SketchArena:
        """The contiguous cell-state arena (created on first use)."""
        return ensure_arena(self)
