"""Exact 1-sparse detection — the cell every other sketch is built from.

A 1-sparse detector for ``x ∈ Z^N`` stores three linear measurements:

* ``phi  = Σ_i x_i``                 (total mass)
* ``iota = Σ_i i · x_i``             (index-weighted mass)
* ``fp   = Σ_i x_i · z^i  mod p``    (polynomial fingerprint)

If ``x`` has exactly one non-zero entry ``x_i = v`` then
``phi = v``, ``iota = i·v``, so ``i = iota / phi``, and the fingerprint
confirms it: ``fp == v · z^i``.  A vector that merely *pretends* to be
1-sparse fools the check with probability ``< N/p`` per fingerprint;
we keep two independent fingerprints modulo ``p = 2^31 - 1``, driving
the failure odds to ~``(N/p)²``.

This module holds the scalar reference implementation used in tests and
documentation; the numpy bank in :mod:`repro.sketch.bank` implements the
same cell vectorised across millions of instances.
"""

from __future__ import annotations

from ..errors import SketchCompatibilityError, SketchFailure
from ..hashing import MERSENNE31, HashSource, powmod
from .base import LinearSketch

__all__ = ["OneSparseCell"]


class OneSparseCell(LinearSketch):
    """Scalar 1-sparse detector over ``[0, domain)``.

    Parameters
    ----------
    domain:
        Index universe size ``N``.
    source:
        Seed source; determines the fingerprint generators ``z1, z2``.
    """

    __slots__ = ("domain", "phi", "iota", "fp1", "fp2", "z1", "z2", "_seed")

    def __init__(self, domain: int, source: HashSource):
        if domain < 1:
            raise ValueError(f"domain must be positive, got {domain}")
        self.domain = domain
        self._seed = source.seed
        # Generators in [2, p-1]; z=0,1 would collapse the fingerprint.
        self.z1 = 2 + int(source.derive(1).hash64(0)) % (MERSENNE31 - 2)
        self.z2 = 2 + int(source.derive(2).hash64(0)) % (MERSENNE31 - 2)
        self.phi = 0
        self.iota = 0
        self.fp1 = 0
        self.fp2 = 0

    def update(self, index: int, delta: int) -> None:
        """Apply ``x[index] += delta``."""
        if not 0 <= index < self.domain:
            raise ValueError(f"index {index} outside domain [0, {self.domain})")
        self.phi += delta
        self.iota += index * delta
        self.fp1 = (self.fp1 + delta * powmod(self.z1, index)) % MERSENNE31
        self.fp2 = (self.fp2 + delta * powmod(self.z2, index)) % MERSENNE31

    def merge(self, other: "LinearSketch") -> None:
        """Add another cell with identical seed and domain."""
        if (
            not isinstance(other, OneSparseCell)
            or other.domain != self.domain
            or other._seed != self._seed
        ):
            raise SketchCompatibilityError(
                "can only merge OneSparseCells with equal seed/domain"
            )
        self.phi += other.phi
        self.iota += other.iota
        self.fp1 = (self.fp1 + other.fp1) % MERSENNE31
        self.fp2 = (self.fp2 + other.fp2) % MERSENNE31

    def is_zero(self) -> bool:
        """Whether the sketched vector is (almost surely) identically zero."""
        return self.phi == 0 and self.iota == 0 and self.fp1 == 0 and self.fp2 == 0

    def decode(self) -> tuple[int, int]:
        """Return ``(index, value)`` if the vector is exactly 1-sparse.

        Raises
        ------
        SketchFailure
            If the vector is zero, clearly not 1-sparse, or fails the
            fingerprint confirmation.
        """
        if self.is_zero():
            raise SketchFailure("cell is empty")
        if self.phi == 0 or self.iota % self.phi != 0:
            raise SketchFailure("cell is not 1-sparse (index test)")
        index = self.iota // self.phi
        if not 0 <= index < self.domain:
            raise SketchFailure("cell is not 1-sparse (index out of range)")
        want1 = self.phi % MERSENNE31 * powmod(self.z1, index) % MERSENNE31
        want2 = self.phi % MERSENNE31 * powmod(self.z2, index) % MERSENNE31
        if self.fp1 != want1 or self.fp2 != want2:
            raise SketchFailure("cell is not 1-sparse (fingerprint test)")
        return index, self.phi

    def try_decode(self) -> tuple[int, int] | None:
        """:meth:`decode` returning ``None`` instead of raising."""
        try:
            return self.decode()
        except SketchFailure:
            return None
