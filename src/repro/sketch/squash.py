"""The ``squash`` encoding of small binary matrices (Fig. 4).

Section 4 reduces sampling a uniformly random *non-zero column* of a
binary matrix ``X ∈ {0,1}^{a×b}`` to ordinary ℓ₀ sampling: encode each
column as the integer ``Σ_row 2^row`` — adding 1 to entry ``(i, j)`` of
``X`` adds ``2^i`` to entry ``j`` of ``squash(X)``.  An ℓ₀ sample of
``squash(X)`` is then a uniform non-zero column together with its full
contents.

For the subgraph application, ``a = C(k, 2)`` rows index the vertex
pairs of a k-subset in lexicographic order and the encoded value *is*
the induced-subgraph bitmask used by the exact census
(:func:`repro.graphs.subgraphs.induced_edge_pattern`), so sketch and
ground truth speak the same language.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotSupportedError
from ..util import comb

__all__ = [
    "squash_matrix",
    "unsquash_value",
    "pair_position_in_subset",
    "pair_positions_k3",
    "is_valid_encoding",
]


def squash_matrix(matrix: np.ndarray) -> np.ndarray:
    """Encode a binary matrix column-wise: ``out[j] = Σ_i 2^i X[i, j]``.

    Direct transcription of Fig. 4's ``Squash(X)``; mostly used by
    tests to validate the incremental sketch-side encoding.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    if not np.isin(matrix, (0, 1)).all():
        raise ValueError("squash encoding requires a binary matrix")
    weights = (1 << np.arange(matrix.shape[0], dtype=np.int64)).reshape(-1, 1)
    return (matrix * weights).sum(axis=0)


def unsquash_value(value: int, rows: int) -> tuple[int, ...]:
    """Decode a squash value back to the set of rows it contains.

    Raises :class:`ValueError` if the value is not a valid encoding of a
    binary column with the given row count — which happens for
    multigraph columns (an edge with multiplicity 2 contributes
    ``2·2^row``), so callers can detect the simple-graph precondition of
    Section 4 being violated.
    """
    if not 0 <= value < (1 << rows):
        raise ValueError(f"value {value} is not a {rows}-row binary column encoding")
    return tuple(i for i in range(rows) if (value >> i) & 1)


def is_valid_encoding(value: int, rows: int) -> bool:
    """Whether ``value`` encodes some binary column with ``rows`` rows."""
    return 0 <= value < (1 << rows)


def pair_position_in_subset(subset: tuple[int, ...], u: int, v: int) -> int:
    """Row index of pair ``{u, v}`` within a sorted k-subset.

    Rows enumerate pairs of the sorted subset lexicographically:
    (0,1), (0,2), ..., (0,k-1), (1,2), ...; this matches both Fig. 4 and
    the exact census encoding.
    """
    if u > v:
        u, v = v, u
    k = len(subset)
    try:
        a = subset.index(u)
        b = subset.index(v)
    except ValueError as exc:
        raise ValueError(f"pair ({u}, {v}) not inside subset {subset}") from exc
    # Position = pairs before row a + offset within row a.
    return a * k - a * (a + 1) // 2 + (b - a - 1)


def pair_positions_k3(u: int, v: int, w: np.ndarray) -> np.ndarray:
    """Vectorised row position of pair ``{u, v}`` within triples ``{u,v,w}``.

    The k = 3 fast path of the subgraph sketch: for a sorted triple
    ``a < b < c`` the rows are ``(a,b) → 0, (a,c) → 1, (b,c) → 2``, so
    the position of ``{u, v}`` (with ``u < v``) depends only on where
    ``w`` falls relative to ``u`` and ``v``.
    """
    if u > v:
        u, v = v, u
    w = np.asarray(w, dtype=np.int64)
    pos = np.zeros(w.shape, dtype=np.int64)  # w > v: (u,v) is (a,b) -> 0
    pos[(w > u) & (w < v)] = 1  # u < w < v: (u,v) is (a,c) -> 1
    pos[w < u] = 2  # w < u: (u,v) is (b,c) -> 2
    return pos


def rows_for_order(k: int) -> int:
    """Number of rows ``C(k, 2)`` of the order-k subgraph matrix."""
    if k < 2:
        raise NotSupportedError(f"subgraph matrices need order >= 2, got {k}")
    return comb(k, 2)


__all__.append("rows_for_order")
