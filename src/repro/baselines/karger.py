"""Karger uniform-sampling sparsifier — Lemma 3.1 (offline baseline).

Sample every edge independently with probability
``p >= 6 λ^{-1} ε^{-2} log n`` (λ = global minimum cut) and weight kept
edges by ``1/p``: the result ε-approximates every cut w.h.p.  This is
the sampling lemma MINCUT's analysis leans on; as an *offline* baseline
it lets experiment E1/E2 separate "does subsampling preserve cuts at
this scale" from "does the sketch machinery implement the subsampling".
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs import Graph, global_min_cut_value
from ..core.sparsifier import Sparsifier

__all__ = ["karger_sample_probability", "karger_sparsify"]


def karger_sample_probability(
    graph: Graph, epsilon: float, c: float = 6.0
) -> float:
    """The Lemma 3.1 uniform sampling probability ``min(c·log n/(λ ε²), 1)``."""
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    lam = global_min_cut_value(graph)
    if lam <= 0:
        return 1.0
    p = c * math.log(max(graph.n, 2)) / (lam * epsilon**2)
    return min(p, 1.0)


def karger_sparsify(
    graph: Graph, epsilon: float, c: float = 6.0, seed: int = 0
) -> Sparsifier:
    """Uniformly sample edges at the Lemma 3.1 rate; weight by ``1/p``."""
    p = karger_sample_probability(graph, epsilon, c)
    rng = np.random.default_rng(seed)
    out = Graph(graph.n)
    levels: dict[tuple[int, int], int] = {}
    for u, v, w in graph.weighted_edges():
        if rng.random() < p:
            out.add_edge(u, v, w / p)
            levels[(u, v)] = 0
    return Sparsifier(graph=out, epsilon=epsilon, edge_levels=levels, memory_cells=0)
