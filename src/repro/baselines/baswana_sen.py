"""Offline Baswana–Sen spanner [7] — the non-streaming reference.

The randomised ``(2k-1)``-spanner construction the Section 5 sketch
emulates, run directly on an in-memory graph with full adjacency
access.  Comparing its output size and measured stretch against the
sketch emulation (E6) isolates what the linear-measurement restriction
costs.
"""

from __future__ import annotations

import numpy as np

from ..graphs import Graph

__all__ = ["baswana_sen_offline"]


def baswana_sen_offline(graph: Graph, k: int, seed: int = 0) -> Graph:
    """Classic two-phase Baswana–Sen on an in-memory graph.

    Phase 1 runs ``k - 1`` rounds of cluster sampling at rate
    ``n^{-1/k}``; phase 2 connects every surviving vertex to each
    adjacent final cluster.  Output is a ``(2k-1)``-spanner w.h.p.
    """
    if k < 2:
        raise ValueError(f"stretch parameter k must be >= 2, got {k}")
    n = graph.n
    rng = np.random.default_rng(seed)
    spanner = Graph(n)
    # root[v]: cluster root, None = finished.
    root: list[int | None] = list(range(n))
    sampled = set(range(n))

    for _phase in range(1, k):
        prob = n ** (-1.0 / k)
        sampled = {r for r in sampled if rng.random() < prob}
        new_root: list[int | None] = list(root)
        for u in range(n):
            r = root[u]
            if r is None or r in sampled:
                continue
            # Try to join an adjacent sampled cluster.
            join_edge: tuple[int, int] | None = None
            for x in graph.neighbors(u):
                rx = root[x]
                if rx is not None and rx in sampled:
                    join_edge = (u, x)
                    break
            if join_edge is not None:
                spanner.add_edge(*join_edge, 1.0)
                new_root[u] = root[join_edge[1]]
                continue
            # Finish: one edge per adjacent cluster.
            seen_clusters: set[int] = set()
            for x in graph.neighbors(u):
                rx = root[x]
                if rx is None or rx in seen_clusters:
                    continue
                seen_clusters.add(rx)
                spanner.add_edge(u, x, 1.0)
            new_root[u] = None
        root = new_root

    # Clean-up: connect every survivor to each adjacent final cluster.
    for u in range(n):
        if root[u] is None:
            continue
        seen_clusters = set()
        for x in graph.neighbors(u):
            rx = root[x]
            if rx is None or rx == root[u] or rx in seen_clusters:
                continue
            seen_clusters.add(rx)
            spanner.add_edge(u, x, 1.0)
    return spanner
