"""Exact reference computations, packaged for the experiment harness.

Thin wrappers with experiment-friendly signatures around
:mod:`repro.graphs`; every benchmark reports its sketch output next to
one of these ground truths.
"""

from __future__ import annotations

from ..core.patterns import Pattern, encoding_class
from ..graphs import (
    Graph,
    gamma_exact,
    global_min_cut_value,
    triangle_count,
)
from ..streams import DynamicGraphStream

__all__ = [
    "graph_from_stream",
    "exact_min_cut",
    "exact_gamma",
    "exact_triangles",
]


def graph_from_stream(stream: DynamicGraphStream) -> Graph:
    """Materialise the final multigraph of a dynamic stream."""
    return Graph.from_multiplicities(stream.n, stream.multiplicities())


def exact_min_cut(stream: DynamicGraphStream) -> float:
    """Exact ``λ(G)`` of a stream's final graph."""
    return global_min_cut_value(graph_from_stream(stream))


def exact_gamma(stream: DynamicGraphStream, pattern: Pattern) -> float:
    """Exact ``γ_H`` of a stream's final graph."""
    return gamma_exact(
        graph_from_stream(stream), encoding_class(pattern), pattern.order
    )


def exact_triangles(stream: DynamicGraphStream) -> int:
    """Exact triangle count of a stream's final graph."""
    return triangle_count(graph_from_stream(stream))
