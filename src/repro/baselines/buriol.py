"""Insert-only streaming triangle estimation (Buriol et al. [9]).

The baseline the paper's Theorem 4.1 matches: an insert-only,
``O(ε^{-2})``-sample estimator of the triangle fraction.  Each sampler
keeps a uniformly random edge ``(a, b)`` of the stream (reservoir
sampling) plus a uniformly random third vertex ``c``, and checks
whether both closing edges ``(a, c)`` and ``(b, c)`` appear *later* in
the stream.  A triangle is hit exactly when the sampled edge is its
*first-appearing* edge and ``c`` is its third vertex, so
``P(hit) = T₃/(m·(n-2))`` and ``T₃ ≈ hit-rate · m · (n-2)`` is
unbiased.

The point of carrying this baseline is the contrast the paper draws:
this estimator *cannot* survive deletions (a counted triangle may be
destroyed), while the Section 4 sketch handles fully dynamic streams in
the same space.  E5 runs both on insert-only streams and shows only the
sketch surviving churn.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import StreamError
from ..streams import DynamicGraphStream

__all__ = ["BuriolTriangleEstimator", "TriangleEstimate"]


@dataclass(frozen=True, slots=True)
class TriangleEstimate:
    """Outcome of the insert-only estimator."""

    triangles: float
    hits: int
    samplers: int
    stream_edges: int


class BuriolTriangleEstimator:
    """Insert-only triangle count estimator with ``s`` parallel samplers.

    Parameters
    ----------
    n:
        Node universe size.
    samplers:
        Number of independent reservoir samplers (``O(ε^{-2})``).
    seed:
        RNG seed for reservoir choices and third-vertex draws.
    """

    def __init__(self, n: int, samplers: int = 256, seed: int = 0):
        if samplers < 1:
            raise ValueError(f"need at least one sampler, got {samplers}")
        self.n = n
        self.samplers = samplers
        self._rng = np.random.default_rng(seed)
        self._edges_seen = 0
        # Per sampler: reservoir edge, third vertex, progress flags.
        self._edge = [(-1, -1)] * samplers
        self._third = [-1] * samplers
        self._got_first = [False] * samplers
        self._got_second = [False] * samplers

    def update(self, u: int, v: int) -> None:
        """Process one inserted edge."""
        if u == v:
            raise StreamError("self-loop in triangle stream")
        self._edges_seen += 1
        key = (min(u, v), max(u, v))
        for s in range(self.samplers):
            # Reservoir: replace with probability 1/edges_seen.
            if self._rng.random() < 1.0 / self._edges_seen:
                self._edge[s] = key
                third = int(self._rng.integers(self.n - 2))
                # Map into [0, n) \ {u, v}.
                for endpoint in sorted(key):
                    if third >= endpoint:
                        third += 1
                self._third[s] = third
                self._got_first[s] = False
                self._got_second[s] = False
                continue
            a, b = self._edge[s]
            c = self._third[s]
            if c < 0:
                continue
            if key == (min(a, c), max(a, c)):
                self._got_first[s] = True
            elif key == (min(b, c), max(b, c)):
                self._got_second[s] = True

    def consume(self, stream: DynamicGraphStream) -> "BuriolTriangleEstimator":
        """Feed an insert-only stream; raises on any deletion token."""
        for upd in stream:
            if upd.delta < 0:
                raise StreamError(
                    "insert-only baseline cannot process deletions "
                    "(this is the gap the paper's sketch closes)"
                )
            for _ in range(upd.delta):
                self.update(upd.u, upd.v)
        return self

    def estimate(self) -> TriangleEstimate:
        """The unbiased triangle-count estimate."""
        hits = sum(
            1
            for s in range(self.samplers)
            if self._got_first[s] and self._got_second[s]
        )
        rate = hits / self.samplers
        triangles = rate * self._edges_seen * (self.n - 2)
        return TriangleEstimate(
            triangles=triangles,
            hits=hits,
            samplers=self.samplers,
            stream_edges=self._edges_seen,
        )
