"""Fung et al. connectivity-based sampling — Theorem 3.1 (offline baseline).

Sample each edge ``e = (u, v)`` independently with probability
``p_e >= min(253 λ_e^{-1} ε^{-2} log² n, 1)`` — ``λ_e`` the minimum u-v
cut value — and weight kept edges by ``1/p_e``: the result is an
ε-sparsifier w.h.p.  This is the exact sampling scheme
SIMPLE-SPARSIFICATION emulates with consistent (non-independent)
hashing and witness-estimated connectivities; comparing the two in E2
isolates the cost of that emulation.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.sparsifier import Sparsifier
from ..graphs import Graph, MaxFlow

__all__ = ["fung_sample_probabilities", "fung_sparsify"]


def fung_sample_probabilities(
    graph: Graph, epsilon: float, c: float = 253.0
) -> dict[tuple[int, int], float]:
    """Per-edge probabilities ``min(c log² n / (λ_e ε²), 1)``.

    Exact ``λ_e`` by one max-flow per edge (the offline luxury the
    streaming algorithm does not have).
    """
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    log2n = math.log2(max(graph.n, 2))
    flow = MaxFlow(graph)
    probs: dict[tuple[int, int], float] = {}
    for u, v in graph.edges():
        lam = flow.max_flow(u, v)
        if lam <= 0:
            probs[(u, v)] = 1.0
        else:
            probs[(u, v)] = min(c * log2n * log2n / (lam * epsilon**2), 1.0)
    return probs


def fung_sparsify(
    graph: Graph, epsilon: float, c: float = 253.0, seed: int = 0
) -> Sparsifier:
    """Independent connectivity-based sampling with ``1/p_e`` weights."""
    probs = fung_sample_probabilities(graph, epsilon, c)
    rng = np.random.default_rng(seed)
    out = Graph(graph.n)
    levels: dict[tuple[int, int], int] = {}
    for (u, v), p in probs.items():
        if rng.random() < p:
            out.add_edge(u, v, graph.weight(u, v) / p)
            levels[(u, v)] = max(0, int(round(-math.log2(max(p, 1e-12)))))
    return Sparsifier(graph=out, epsilon=epsilon, edge_levels=levels, memory_cells=0)
