"""Baselines: the algorithms the paper builds on or compares against."""

from .baswana_sen import baswana_sen_offline
from .buriol import BuriolTriangleEstimator, TriangleEstimate
from .exact import exact_gamma, exact_min_cut, exact_triangles, graph_from_stream
from .fung import fung_sample_probabilities, fung_sparsify
from .karger import karger_sample_probability, karger_sparsify

__all__ = [
    "BuriolTriangleEstimator",
    "TriangleEstimate",
    "baswana_sen_offline",
    "exact_gamma",
    "exact_min_cut",
    "exact_triangles",
    "fung_sample_probabilities",
    "fung_sparsify",
    "graph_from_stream",
    "karger_sample_probability",
    "karger_sparsify",
]
