"""Gomory–Hu trees (Definition 6) via the classic contraction algorithm.

A Gomory–Hu tree of ``G`` is a weighted tree on the same nodes in which
the minimum edge weight on the u-v path equals ``λ_{u,v}(G)`` for every
pair, **and** every tree edge induces (by removing it) a partition that
is an actual minimum cut of that value.  The second property is
load-bearing for the SPARSIFICATION algorithm (Fig. 3): step 4 iterates
over the ``n - 1`` tree-edge-induced cuts and relies on the bottleneck
tree edge of a u-v path inducing a minimum u-v cut.  (Gusfield's
simpler *flow-equivalent* tree does **not** have this property, which
is why we implement the original contraction construction.)

Algorithm (Gomory & Hu 1961, as in Schrijver's textbook): maintain a
tree of *supernodes* (disjoint node sets).  While some supernode ``X``
has two nodes ``u, v``: contract each subtree hanging off ``X`` into a
single vertex, compute a min u-v cut in the contracted graph, split
``X`` along the cut, and re-attach the subtrees to the side containing
their contracted vertex.  ``n - 1`` max-flow calls on contracted
graphs.
"""

from __future__ import annotations

from ..errors import GraphError
from .graph import Graph
from .maxflow import MaxFlow

__all__ = ["GomoryHuTree", "gomory_hu_tree"]


class GomoryHuTree:
    """A Gomory–Hu tree with path-minimum and induced-cut queries."""

    __slots__ = ("n", "_edges", "_adj")

    def __init__(self, edges: list[tuple[int, int, float]], n: int):
        self.n = n
        self._edges = list(edges)
        if len(self._edges) != n - 1:
            raise GraphError(
                f"Gomory-Hu tree on {n} nodes needs {n - 1} edges, got {len(edges)}"
            )
        self._adj: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for a, b, w in self._edges:
            self._adj[a].append((b, w))
            self._adj[b].append((a, w))

    def tree_edges(self) -> list[tuple[int, int, float]]:
        """The ``n - 1`` tree edges as ``(a, b, weight)``."""
        return list(self._edges)

    def min_cut_value(self, u: int, v: int) -> float:
        """``λ_{u,v}``: minimum weight along the tree path u → v."""
        return min(w for _, w in self._path(u, v))

    def min_weight_edge_on_path(self, u: int, v: int) -> tuple[int, int, float]:
        """The lightest tree edge on the u-v path, as ``(a, b, w)``.

        Deterministic tie-breaking (first lightest along the path from
        ``u``) so that step 4(d) of SPARSIFICATION assigns every graph
        edge to exactly one tree-edge cut.
        """
        path = self._path(u, v)
        best: tuple[int, int, float] | None = None
        prev = u
        for node, w in path:
            if best is None or w < best[2]:
                best = (prev, node, w)
            prev = node
        assert best is not None
        return best

    def induced_cut_side(self, a: int, b: int) -> set[int]:
        """Shore (containing ``a``) of the cut induced by tree edge ``{a, b}``.

        Removing the edge splits the tree into two components; for a
        true Gomory–Hu tree the returned node set is a *minimum* a-b
        cut whose value equals the edge weight.
        """
        if not any(x == b for x, _ in self._adj[a]):
            raise GraphError(f"({a}, {b}) is not a tree edge")
        side = {a}
        stack = [a]
        while stack:
            u = stack.pop()
            for v, _ in self._adj[u]:
                if (u == a and v == b) or (u == b and v == a):
                    continue
                if v not in side:
                    side.add(v)
                    stack.append(v)
        return side

    def same_edge(
        self, e1: tuple[int, int, float], e2: tuple[int, int, float]
    ) -> bool:
        """Whether two ``(a, b, w)`` triples denote the same tree edge."""
        return {e1[0], e1[1]} == {e2[0], e2[1]}

    def _path(self, u: int, v: int) -> list[tuple[int, float]]:
        """Nodes after ``u`` on the tree path to ``v``, with edge weights."""
        if u == v:
            raise GraphError("path endpoints must differ")
        prev: dict[int, tuple[int, float]] = {u: (-1, 0.0)}
        stack = [u]
        while stack:
            x = stack.pop()
            if x == v:
                break
            for y, w in self._adj[x]:
                if y not in prev:
                    prev[y] = (x, w)
                    stack.append(y)
        if v not in prev:
            raise GraphError(f"nodes {u} and {v} not connected in tree")
        path: list[tuple[int, float]] = []
        node = v
        while node != u:
            p, w = prev[node]
            path.append((node, w))
            node = p
        path.reverse()
        return path


def gomory_hu_tree(graph: Graph) -> GomoryHuTree:
    """Construct a true Gomory–Hu tree (contraction algorithm).

    Works on disconnected graphs too: cross-component tree edges get
    weight 0, correctly reporting ``λ_{u,v} = 0``.
    """
    n = graph.n
    if n < 2:
        raise GraphError("Gomory-Hu tree needs at least two nodes")

    # Tree over supernodes: supernodes[i] is a set of graph nodes;
    # tree_adj[i] is {j: weight}.
    supernodes: list[set[int]] = [set(range(n))]
    tree_adj: list[dict[int, float]] = [dict()]

    while True:
        split_idx = next(
            (i for i, sn in enumerate(supernodes) if len(sn) >= 2), None
        )
        if split_idx is None:
            break
        members = sorted(supernodes[split_idx])
        u, v = members[0], members[1]

        # Contract each subtree hanging off split_idx into one vertex.
        # component id of each *other* supernode:
        comp_of = _subtree_components(tree_adj, split_idx)
        num_comps = (max(comp_of.values()) + 1) if comp_of else 0
        # Graph' node ids: members keep 0..len-1 by position; components
        # take len(members)..len(members)+num_comps-1.
        gid: dict[int, int] = {node: pos for pos, node in enumerate(members)}
        for sn_idx, comp in comp_of.items():
            for node in supernodes[sn_idx]:
                gid[node] = len(members) + comp
        contracted = Graph(len(members) + num_comps)
        for a, b, w in graph.weighted_edges():
            ga, gb = gid[a], gid[b]
            if ga != gb:
                contracted.add_edge(ga, gb, w)

        value, side = MaxFlow(contracted).min_cut_side(gid[u], gid[v])

        in_side = {node for node in members if gid[node] in side}
        out_side = set(members) - in_side
        # u ∈ in_side by construction; v ∈ out_side.
        new_idx = len(supernodes)
        supernodes[split_idx] = in_side
        supernodes.append(out_side)
        tree_adj.append(dict())
        # Re-attach neighbours whose contracted vertex fell on v's side.
        for nbr, w in list(tree_adj[split_idx].items()):
            comp_vertex = len(members) + comp_of[nbr]
            if comp_vertex not in side:
                del tree_adj[split_idx][nbr]
                del tree_adj[nbr][split_idx]
                tree_adj[new_idx][nbr] = w
                tree_adj[nbr][new_idx] = w
        tree_adj[split_idx][new_idx] = value
        tree_adj[new_idx][split_idx] = value

    # All supernodes are singletons now; translate to node-level edges.
    node_of = {i: next(iter(sn)) for i, sn in enumerate(supernodes)}
    edges: list[tuple[int, int, float]] = []
    for i, adj in enumerate(tree_adj):
        for j, w in adj.items():
            if i < j:
                edges.append((node_of[i], node_of[j], w))
    return GomoryHuTree(edges, n)


def _subtree_components(
    tree_adj: list[dict[int, float]], removed: int
) -> dict[int, int]:
    """Component id of every supernode when ``removed`` is deleted."""
    comp_of: dict[int, int] = {}
    comp = 0
    for start in tree_adj[removed]:
        if start in comp_of:
            continue
        comp_of[start] = comp
        stack = [start]
        while stack:
            x = stack.pop()
            for y in tree_adj[x]:
                if y != removed and y not in comp_of:
                    comp_of[y] = comp
                    stack.append(y)
        comp += 1
    return comp_of


