"""Spanner verification: stretch measurement against Definition 3.

``H`` is an α-spanner of ``G`` when
``d_G(u, v) <= d_H(u, v) <= α · d_G(u, v)`` for every pair.  For a
subgraph the lower bound is automatic, so verification reduces to
measuring the *stretch* ``d_H / d_G`` over connected pairs.  The
experiments report maximum and mean stretch over all (or sampled)
pairs and compare them with the paper's bounds: ``2k - 1`` for the
Baswana–Sen emulation and ``k^{log₂ 5} - 1`` for RECURSECONNECT
(Theorem 5.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import GraphError
from .distances import bfs_distances
from .graph import Graph

__all__ = ["StretchReport", "verify_subgraph", "measure_stretch", "is_spanner"]


@dataclass(frozen=True, slots=True)
class StretchReport:
    """Stretch statistics of a candidate spanner.

    Attributes
    ----------
    max_stretch:
        Largest ``d_H(u,v) / d_G(u,v)`` over evaluated pairs (inf if H
        disconnects a pair G connects).
    mean_stretch:
        Average over evaluated pairs.
    pairs_evaluated:
        Number of (connected-in-G) pairs measured.
    disconnected_pairs:
        Pairs connected in G but not in H — must be 0 for a spanner.
    spanner_edges:
        Edge count of H, the space side of the trade-off.
    """

    max_stretch: float
    mean_stretch: float
    pairs_evaluated: int
    disconnected_pairs: int
    spanner_edges: int

    def satisfies(self, alpha: float) -> bool:
        """Whether the measured stretch certifies an α-spanner."""
        return self.disconnected_pairs == 0 and self.max_stretch <= alpha + 1e-9


def verify_subgraph(graph: Graph, candidate: Graph) -> None:
    """Assert the candidate spanner only uses edges of ``graph``."""
    if candidate.n != graph.n:
        raise GraphError("spanner and graph are over different node universes")
    for u, v in candidate.edges():
        if not graph.has_edge(u, v):
            raise GraphError(f"spanner edge ({u}, {v}) not present in the graph")


def measure_stretch(
    graph: Graph,
    candidate: Graph,
    sample_pairs: int | None = None,
    seed: int = 0,
) -> StretchReport:
    """Measure hop-distance stretch of ``candidate`` w.r.t. ``graph``.

    With ``sample_pairs`` set, sources are subsampled for larger graphs;
    otherwise all sources are used (``O(n·m)`` BFS total).
    """
    verify_subgraph(graph, candidate)
    n = graph.n
    sources = list(range(n))
    if sample_pairs is not None and sample_pairs < n:
        rng = np.random.default_rng(seed)
        sources = sorted(rng.choice(n, size=sample_pairs, replace=False).tolist())

    worst = 1.0
    total = 0.0
    pairs = 0
    disconnected = 0
    for s in sources:
        dg = bfs_distances(graph, s)
        dh = bfs_distances(candidate, s)
        for v in range(n):
            if v == s or math.isinf(dg[v]):
                continue
            pairs += 1
            if math.isinf(dh[v]):
                disconnected += 1
                worst = math.inf
                continue
            if dg[v] > 0:
                ratio = dh[v] / dg[v]
                worst = max(worst, ratio)
                total += ratio
    ok_pairs = pairs - disconnected
    mean = (total / ok_pairs) if ok_pairs else 1.0
    return StretchReport(
        max_stretch=worst,
        mean_stretch=mean,
        pairs_evaluated=pairs,
        disconnected_pairs=disconnected,
        spanner_edges=candidate.num_edges(),
    )


def is_spanner(graph: Graph, candidate: Graph, alpha: float) -> bool:
    """Full-verification convenience: candidate is an α-spanner of graph."""
    return measure_stretch(graph, candidate).satisfies(alpha)
