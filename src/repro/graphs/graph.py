"""In-memory weighted graph used as substrate and ground truth.

The sketches never materialise the graph — that is the point of the
paper — but the post-processing steps (Gomory–Hu trees on the rough
sparsifier, min-cut computations on witnesses) and every experiment's
verification do.  :class:`Graph` is a small, explicit adjacency-map
multigraph with real-valued edge weights; parallel edges are folded
into weights, matching how the paper treats multiplicities.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from ..errors import GraphError

__all__ = ["Graph"]


class Graph:
    """Undirected weighted graph on nodes ``[0, n)``.

    Parameters
    ----------
    n:
        Node universe size.  Nodes are dense integers; isolated nodes
        are first-class (cut and distance semantics need them).

    Notes
    -----
    Weights are kept as floats; integer multiplicities round-trip
    exactly.  Self-loops are rejected, matching Definition 1.
    """

    __slots__ = ("n", "_adj")

    def __init__(self, n: int):
        if n < 1:
            raise GraphError(f"graph needs at least one node, got n={n}")
        self.n = n
        self._adj: list[dict[int, float]] = [dict() for _ in range(n)]

    # -- construction ---------------------------------------------------------

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add ``weight`` to edge ``{u, v}`` (creating it if absent).

        A zero-resulting weight removes the edge, mirroring multiplicity
        cancellation in dynamic streams.
        """
        self._check_pair(u, v)
        new = self._adj[u].get(v, 0.0) + weight
        if new == 0.0:
            self._adj[u].pop(v, None)
            self._adj[v].pop(u, None)
        else:
            self._adj[u][v] = new
            self._adj[v][u] = new

    def set_edge(self, u: int, v: int, weight: float) -> None:
        """Set edge ``{u, v}`` weight exactly (0 deletes)."""
        self._check_pair(u, v)
        if weight == 0.0:
            self._adj[u].pop(v, None)
            self._adj[v].pop(u, None)
        else:
            self._adj[u][v] = weight
            self._adj[v][u] = weight

    def remove_edge(self, u: int, v: int) -> None:
        """Remove edge ``{u, v}``; raises if absent."""
        self._check_pair(u, v)
        if v not in self._adj[u]:
            raise GraphError(f"edge ({u}, {v}) not present")
        del self._adj[u][v]
        del self._adj[v][u]

    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[tuple[int, int]], weight: float = 1.0
    ) -> "Graph":
        """Build a graph from an unweighted edge list."""
        g = cls(n)
        for u, v in edges:
            g.add_edge(u, v, weight)
        return g

    @classmethod
    def from_weighted_edges(
        cls, n: int, edges: Iterable[tuple[int, int, float]]
    ) -> "Graph":
        """Build a graph from ``(u, v, weight)`` triples."""
        g = cls(n)
        for u, v, w in edges:
            g.add_edge(u, v, w)
        return g

    @classmethod
    def from_multiplicities(
        cls, n: int, mult: Mapping[tuple[int, int], int]
    ) -> "Graph":
        """Build from a stream's aggregate multiplicity map."""
        g = cls(n)
        for (u, v), m in mult.items():
            if m < 0:
                raise GraphError(f"negative multiplicity {m} for edge ({u}, {v})")
            if m:
                g.add_edge(u, v, float(m))
        return g

    # -- queries ----------------------------------------------------------------

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``{u, v}`` is present."""
        self._check_pair(u, v)
        return v in self._adj[u]

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}`` (0 if absent)."""
        self._check_pair(u, v)
        return self._adj[u].get(v, 0.0)

    def neighbors(self, u: int) -> Iterator[int]:
        """Iterate over neighbours of ``u``."""
        self._check_node(u)
        return iter(self._adj[u])

    def neighbor_items(self, u: int) -> Iterator[tuple[int, float]]:
        """Iterate over ``(neighbor, weight)`` pairs of ``u``."""
        self._check_node(u)
        return iter(self._adj[u].items())

    def degree(self, u: int) -> int:
        """Number of distinct neighbours of ``u``."""
        self._check_node(u)
        return len(self._adj[u])

    def weighted_degree(self, u: int) -> float:
        """Total incident weight of ``u``."""
        self._check_node(u)
        return sum(self._adj[u].values())

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges once, as ``(u, v)`` with ``u < v``."""
        for u in range(self.n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def weighted_edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate ``(u, v, weight)`` with ``u < v``."""
        for u in range(self.n):
            for v, w in self._adj[u].items():
                if u < v:
                    yield (u, v, w)

    def num_edges(self) -> int:
        """Number of distinct edges."""
        return sum(len(a) for a in self._adj) // 2

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.weighted_edges())

    def cut_value(self, side: Iterable[int]) -> float:
        """Capacity ``λ_A`` of the cut ``(A, V \\ A)`` (Section 2.2)."""
        in_side = set(side)
        for u in in_side:
            self._check_node(u)
        total = 0.0
        for u in in_side:
            for v, w in self._adj[u].items():
                if v not in in_side:
                    total += w
        return total

    def subgraph_on_edges(
        self, edges: Iterable[tuple[int, int]], weight: float = 1.0
    ) -> "Graph":
        """A graph on the same universe restricted to the given edges."""
        g = Graph(self.n)
        for u, v in edges:
            if not self.has_edge(u, v):
                raise GraphError(f"edge ({u}, {v}) not in graph")
            g.add_edge(u, v, weight)
        return g

    def copy(self) -> "Graph":
        """Deep copy."""
        g = Graph(self.n)
        for u, v, w in self.weighted_edges():
            g.set_edge(u, v, w)
        return g

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self.n == other.n and self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.n}, m={self.num_edges()})"

    # -- helpers ----------------------------------------------------------------

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.n:
            raise GraphError(f"node {u} outside universe [0, {self.n})")

    def _check_pair(self, u: int, v: int) -> None:
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError(f"self-loop ({u}, {v}) not allowed")
