"""Global minimum cuts: Stoer–Wagner, brute force, and edge connectivity.

Ground truth for the MINCUT experiment (E1) and for the sampling
thresholds of the sparsification analysis: Karger's lemma (Lemma 3.1)
keys on the global minimum cut ``λ(G)``, Fung et al.'s theorem
(Theorem 3.1) on per-edge connectivities ``λ_e = λ_{u,v}``.
"""

from __future__ import annotations

import itertools

from ..errors import GraphError
from .graph import Graph
from .maxflow import MaxFlow

__all__ = [
    "stoer_wagner",
    "global_min_cut_value",
    "brute_force_min_cut",
    "edge_connectivity",
    "all_edge_connectivities",
]


def stoer_wagner(graph: Graph) -> tuple[float, set[int]]:
    """Global minimum cut by the Stoer–Wagner algorithm.

    Returns ``(value, side)`` where ``side`` is one shore of a minimum
    cut.  Requires a connected graph with at least two nodes and
    non-negative weights; a disconnected graph trivially has cut 0 and
    is reported as such with a connected-component shore.
    """
    n = graph.n
    if n < 2:
        raise GraphError("minimum cut needs at least two nodes")
    component = _component_of(graph, 0)
    if len(component) < n:
        return 0.0, component

    # Mutable dense adjacency over "supernodes"; merged[v] = nodes absorbed.
    active = list(range(n))
    weight = {u: dict(graph.neighbor_items(u)) for u in range(n)}
    merged: dict[int, set[int]] = {u: {u} for u in range(n)}

    best_value = float("inf")
    best_side: set[int] = set()

    while len(active) > 1:
        # Maximum-adjacency (minimum cut phase) order.
        start = active[0]
        in_a = {start}
        w_to_a = dict(weight[start])
        order = [start]
        while len(order) < len(active):
            nxt = max(
                (u for u in active if u not in in_a),
                key=lambda u: w_to_a.get(u, 0.0),
            )
            order.append(nxt)
            in_a.add(nxt)
            for v, w in weight[nxt].items():
                if v not in in_a:
                    w_to_a[v] = w_to_a.get(v, 0.0) + w
        s, t = order[-2], order[-1]
        cut_of_phase = w_to_a.get(t, 0.0)
        if cut_of_phase < best_value:
            best_value = cut_of_phase
            best_side = set(merged[t])
        # Merge t into s.
        merged[s] |= merged[t]
        for v, w in list(weight[t].items()):
            if v == s:
                continue
            weight[s][v] = weight[s].get(v, 0.0) + w
            weight[v][s] = weight[s][v]
            del weight[v][t]
        weight[s].pop(t, None)
        del weight[t]
        del merged[t]
        active.remove(t)
    return best_value, best_side


def global_min_cut_value(graph: Graph) -> float:
    """Global minimum cut value ``λ(G)`` (Section 2.2)."""
    return stoer_wagner(graph)[0]


def brute_force_min_cut(graph: Graph) -> tuple[float, set[int]]:
    """Exhaustive minimum cut over all ``2^{n-1} - 1`` bipartitions.

    Exponential; used only in tests (n ≤ ~16) to validate
    :func:`stoer_wagner` and the sketch-based MINCUT.
    """
    n = graph.n
    if n < 2:
        raise GraphError("minimum cut needs at least two nodes")
    if n > 20:
        raise GraphError(f"brute force min cut infeasible for n={n}")
    best = float("inf")
    best_side: set[int] = set()
    nodes = list(range(1, n))
    for r in range(0, n - 1):
        for rest in itertools.combinations(nodes, r):
            side = {0, *rest}
            value = graph.cut_value(side)
            if value < best:
                best = value
                best_side = side
    return best, best_side


def edge_connectivity(graph: Graph, u: int, v: int) -> float:
    """Minimum u-v cut value ``λ_{u,v}`` via max-flow."""
    return MaxFlow(graph).max_flow(u, v)


def all_edge_connectivities(graph: Graph) -> dict[tuple[int, int], float]:
    """``λ_e`` for every edge ``e`` of the graph.

    The quantity Fung et al. sampling (Theorem 3.1) keys on.  One
    max-flow per edge; fine at experiment scale.
    """
    flow = MaxFlow(graph)
    return {(u, v): flow.max_flow(u, v) for u, v in graph.edges()}


def _component_of(graph: Graph, start: int) -> set[int]:
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for v in graph.neighbors(u):
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return seen
