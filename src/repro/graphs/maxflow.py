"""Dinic's maximum-flow algorithm and s-t minimum cuts.

The flow engine behind two substrates the paper relies on: exact
``λ_{u,v}`` edge-connectivity values (used by the Fung et al. sampling
baseline, Theorem 3.1) and Gomory–Hu tree construction (Definition 6,
used in the better SPARSIFICATION algorithm's post-processing).

Undirected edges are modelled as a pair of arcs sharing capacity in
each direction; Dinic's on unit graphs also serves the Nagamochi–
Ibaraki certificate cross-checks in tests.
"""

from __future__ import annotations

from collections import deque

from ..errors import GraphError
from .graph import Graph

__all__ = ["MaxFlow", "min_st_cut"]


class MaxFlow:
    """Dinic max-flow over an undirected weighted graph.

    Build once per graph; :meth:`max_flow` can be called repeatedly for
    different terminal pairs (capacities are reset between calls).
    """

    __slots__ = ("n", "_head", "_nxt", "_to", "_cap0", "_cap")

    def __init__(self, graph: Graph):
        self.n = graph.n
        self._head = [-1] * graph.n
        self._to: list[int] = []
        self._nxt: list[int] = []
        self._cap0: list[float] = []
        for u, v, w in graph.weighted_edges():
            if w < 0:
                raise GraphError(f"negative capacity {w} on edge ({u}, {v})")
            self._add_arc(u, v, w)
            self._add_arc(v, u, w)
        self._cap = list(self._cap0)

    def _add_arc(self, u: int, v: int, cap: float) -> None:
        self._to.append(v)
        self._cap0.append(cap)
        self._nxt.append(self._head[u])
        self._head[u] = len(self._to) - 1

    def max_flow(self, s: int, t: int) -> float:
        """Maximum s-t flow (equals min s-t cut by duality)."""
        if s == t:
            raise GraphError("source and sink must differ")
        self._cap = list(self._cap0)
        flow = 0.0
        while True:
            level = self._bfs_levels(s, t)
            if level[t] < 0:
                return flow
            it = list(self._head)
            while True:
                pushed = self._dfs(s, t, float("inf"), level, it)
                if pushed <= 0:
                    break
                flow += pushed

    def min_cut_side(self, s: int, t: int) -> tuple[float, set[int]]:
        """Min s-t cut value and the source-side node set.

        Runs :meth:`max_flow` then returns the set of nodes reachable
        from ``s`` in the residual network — a minimum cut certificate.
        """
        value = self.max_flow(s, t)
        side = {s}
        queue = deque([s])
        while queue:
            u = queue.popleft()
            e = self._head[u]
            while e != -1:
                v = self._to[e]
                if self._cap[e] > 1e-12 and v not in side:
                    side.add(v)
                    queue.append(v)
                e = self._nxt[e]
        return value, side

    def _bfs_levels(self, s: int, t: int) -> list[int]:
        level = [-1] * self.n
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            e = self._head[u]
            while e != -1:
                v = self._to[e]
                if self._cap[e] > 1e-12 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
                e = self._nxt[e]
        return level

    def _dfs(
        self, u: int, t: int, limit: float, level: list[int], it: list[int]
    ) -> float:
        if u == t:
            return limit
        while it[u] != -1:
            e = it[u]
            v = self._to[e]
            if self._cap[e] > 1e-12 and level[v] == level[u] + 1:
                pushed = self._dfs(v, t, min(limit, self._cap[e]), level, it)
                if pushed > 0:
                    self._cap[e] -= pushed
                    self._cap[e ^ 1] += pushed
                    return pushed
            it[u] = self._nxt[e]
        return 0.0


def min_st_cut(graph: Graph, s: int, t: int) -> float:
    """Minimum s-t cut value ``λ_{s,t}`` of a weighted graph."""
    return MaxFlow(graph).max_flow(s, t)
