"""Exact induced-subgraph census — ground truth for Section 4.

The paper's subgraph sketch estimates

    γ_H(G) = (# induced order-k subgraphs of G isomorphic to H)
             / (# non-empty order-k subgraphs of G)

up to an additive ε (Theorem 4.1).  This module computes both numerator
and denominator exactly by enumerating k-subsets (feasible for the
n ≤ ~100, k ≤ 4 scales the experiments use), plus convenience counters
for the classic special cases (triangles, wedges).
"""

from __future__ import annotations

import itertools

from ..errors import NotSupportedError
from .graph import Graph

__all__ = [
    "induced_edge_pattern",
    "census",
    "count_nonempty_subgraphs",
    "count_pattern",
    "gamma_exact",
    "triangle_count",
    "wedge_count",
]

#: Largest pattern order for which exhaustive enumeration is allowed.
MAX_CENSUS_ORDER = 5


def induced_edge_pattern(graph: Graph, subset: tuple[int, ...]) -> int:
    """Bitmask encoding of the induced subgraph on a sorted k-subset.

    Bit ``r`` is set iff the ``r``-th pair (in lexicographic order of
    the sorted subset: (0,1), (0,2), ..., (0,k-1), (1,2), ...) is an
    edge.  This matches the row order of the matrix ``X_G`` in Fig. 4,
    so sketch-recovered squash values and census patterns compare
    directly.
    """
    mask = 0
    bit = 0
    k = len(subset)
    for i in range(k):
        for j in range(i + 1, k):
            if graph.has_edge(subset[i], subset[j]):
                mask |= 1 << bit
            bit += 1
    return mask


def census(graph: Graph, k: int) -> dict[int, int]:
    """Histogram of induced-subgraph encodings over all k-subsets.

    Keys are the bitmask encodings of :func:`induced_edge_pattern`;
    the zero key counts *empty* induced subgraphs, which the γ_H
    denominator excludes.
    """
    if not 2 <= k <= MAX_CENSUS_ORDER:
        raise NotSupportedError(
            f"census supports pattern order 2..{MAX_CENSUS_ORDER}, got {k}"
        )
    counts: dict[int, int] = {}
    for subset in itertools.combinations(range(graph.n), k):
        mask = induced_edge_pattern(graph, subset)
        counts[mask] = counts.get(mask, 0) + 1
    return counts


def count_nonempty_subgraphs(graph: Graph, k: int) -> int:
    """Number of order-k subsets inducing at least one edge."""
    counts = census(graph, k)
    return sum(c for mask, c in counts.items() if mask != 0)


def count_pattern(graph: Graph, pattern_masks: frozenset[int], k: int) -> int:
    """Number of k-subsets whose induced encoding lies in ``pattern_masks``.

    ``pattern_masks`` should be the isomorphism-closed encoding class
    ``A_H`` produced by :func:`repro.core.patterns.encoding_class`.
    """
    counts = census(graph, k)
    return sum(c for mask, c in counts.items() if mask in pattern_masks)


def gamma_exact(graph: Graph, pattern_masks: frozenset[int], k: int) -> float:
    """Exact ``γ_H(G)``; 0.0 when the graph has no edges at all."""
    counts = census(graph, k)
    nonempty = sum(c for mask, c in counts.items() if mask != 0)
    if nonempty == 0:
        return 0.0
    matched = sum(c for mask, c in counts.items() if mask in pattern_masks)
    return matched / nonempty


def triangle_count(graph: Graph) -> int:
    """Number of triangles, by neighbour intersection (no enumeration)."""
    total = 0
    for u, v in graph.edges():
        nu = set(graph.neighbors(u))
        nv = set(graph.neighbors(v))
        for w in nu & nv:
            if w > v:  # count each triangle once: u < v < w
                total += 1
    return total


def wedge_count(graph: Graph) -> int:
    """Number of paths on three nodes (induced or not): Σ C(deg(v), 2)."""
    return sum(
        graph.degree(v) * (graph.degree(v) - 1) // 2 for v in range(graph.n)
    )
