"""Connectivity: components, spanning forests, union-find, certificates.

Three roles in the reproduction:

* exact connected components and spanning forests — ground truth for
  the AGM connectivity sketch (`repro.core.forest`);
* a :class:`UnionFind` shared by the sketch-side Borůvka contraction;
* Nagamochi–Ibaraki sparse certificates — the *offline* analogue of the
  ``k-EDGECONNECT`` witness (Theorem 2.3): a union of ``k``
  edge-disjoint spanning forests ``F_1 ∪ ... ∪ F_k`` that contains every
  edge crossing any cut of value ``< k`` and preserves all cut values up
  to ``k``.  Tests compare the sketch witness against this certificate's
  guarantees.
"""

from __future__ import annotations

from ..errors import GraphError
from .graph import Graph

__all__ = [
    "UnionFind",
    "connected_components",
    "is_connected",
    "spanning_forest",
    "sparse_certificate",
    "is_k_edge_connected",
]


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    __slots__ = ("parent", "size", "count")

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.size = [1] * n
        #: Number of current components.
        self.count = n

    def find(self, x: int) -> int:
        """Representative of ``x``'s component."""
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge components of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.count -= 1
        return True

    def groups(self) -> dict[int, list[int]]:
        """Map from representative to sorted member list."""
        out: dict[int, list[int]] = {}
        for x in range(len(self.parent)):
            out.setdefault(self.find(x), []).append(x)
        return out


def connected_components(graph: Graph) -> list[set[int]]:
    """Connected components as node sets, ordered by smallest member."""
    seen = [False] * graph.n
    components: list[set[int]] = []
    for start in range(graph.n):
        if seen[start]:
            continue
        comp = {start}
        seen[start] = True
        stack = [start]
        while stack:
            u = stack.pop()
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    comp.add(v)
                    stack.append(v)
        components.append(comp)
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph has a single connected component."""
    return len(connected_components(graph)) == 1


def spanning_forest(graph: Graph) -> list[tuple[int, int]]:
    """An arbitrary spanning forest (one tree per component)."""
    uf = UnionFind(graph.n)
    forest: list[tuple[int, int]] = []
    for u, v in graph.edges():
        if uf.union(u, v):
            forest.append((u, v))
    return forest


def sparse_certificate(graph: Graph, k: int) -> Graph:
    """Nagamochi–Ibaraki certificate: union of ``k`` edge-disjoint forests.

    ``F_i`` is a spanning forest of ``G - (F_1 ∪ ... ∪ F_{i-1})``.  The
    union ``H`` has at most ``k (n - 1)`` edges and satisfies, for every
    cut ``(A, V-A)``: ``λ_A(H) >= min(λ_A(G), k)``, and it contains every
    edge of ``G`` whose endpoints are separated by some cut of value
    ``<= k`` — exactly the witness property of Theorem 2.3 that the
    MINCUT and SIMPLE-SPARSIFICATION algorithms need.
    """
    if k < 1:
        raise GraphError(f"certificate parameter k must be >= 1, got {k}")
    remaining = graph.copy()
    cert = Graph(graph.n)
    for _ in range(k):
        forest = spanning_forest(remaining)
        if not forest:
            break
        for u, v in forest:
            cert.add_edge(u, v, graph.weight(u, v))
            remaining.remove_edge(u, v)
    return cert


def is_k_edge_connected(graph: Graph, k: int) -> bool:
    """Whether every cut of the graph has value at least ``k``.

    Uses the certificate + Stoer–Wagner on the certificate: cut values
    up to ``k`` are preserved, so the check is exact.
    """
    from .cuts import global_min_cut_value  # local import to avoid a cycle

    if graph.n < 2:
        raise GraphError("k-edge-connectivity needs at least two nodes")
    cert = sparse_certificate(graph, k)
    return global_min_cut_value(cert) >= k
