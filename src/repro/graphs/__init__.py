"""Exact graph algorithms: substrate and ground truth for every experiment."""

from .connectivity import (
    UnionFind,
    connected_components,
    is_connected,
    is_k_edge_connected,
    sparse_certificate,
    spanning_forest,
)
from .cuts import (
    all_edge_connectivities,
    brute_force_min_cut,
    edge_connectivity,
    global_min_cut_value,
    stoer_wagner,
)
from .distances import (
    all_pairs_distances,
    bfs_distances,
    diameter,
    dijkstra,
    eccentricity,
)
from .gomory_hu import GomoryHuTree, gomory_hu_tree
from .graph import Graph
from .maxflow import MaxFlow, min_st_cut
from .spanners import StretchReport, is_spanner, measure_stretch, verify_subgraph
from .subgraphs import (
    census,
    count_nonempty_subgraphs,
    count_pattern,
    gamma_exact,
    induced_edge_pattern,
    triangle_count,
    wedge_count,
)

__all__ = [
    "Graph",
    "GomoryHuTree",
    "MaxFlow",
    "StretchReport",
    "UnionFind",
    "all_edge_connectivities",
    "all_pairs_distances",
    "bfs_distances",
    "brute_force_min_cut",
    "census",
    "connected_components",
    "count_nonempty_subgraphs",
    "count_pattern",
    "diameter",
    "dijkstra",
    "eccentricity",
    "edge_connectivity",
    "gamma_exact",
    "global_min_cut_value",
    "gomory_hu_tree",
    "induced_edge_pattern",
    "is_connected",
    "is_k_edge_connected",
    "is_spanner",
    "measure_stretch",
    "min_st_cut",
    "sparse_certificate",
    "spanning_forest",
    "stoer_wagner",
    "triangle_count",
    "verify_subgraph",
    "wedge_count",
]
