"""Shortest-path distances: BFS, Dijkstra, all-pairs, diameter.

Ground truth ``d_G(u, v)`` for the spanner experiments (Section 5): a
subgraph ``H`` is an α-spanner iff
``d_G(u, v) <= d_H(u, v) <= α · d_G(u, v)`` for all pairs
(Definition 3).  The left inequality is automatic for subgraphs; the
right one is what :mod:`repro.graphs.spanners` measures using these
routines.
"""

from __future__ import annotations

import heapq
import math
from collections import deque

from ..errors import GraphError
from .graph import Graph

__all__ = [
    "bfs_distances",
    "dijkstra",
    "all_pairs_distances",
    "eccentricity",
    "diameter",
]


def bfs_distances(graph: Graph, source: int) -> list[float]:
    """Hop distances from ``source``; ``inf`` for unreachable nodes.

    The spanner sections treat graphs as unweighted, so BFS is the
    default distance oracle.
    """
    if not 0 <= source < graph.n:
        raise GraphError(f"source {source} outside universe [0, {graph.n})")
    dist = [math.inf] * graph.n
    dist[source] = 0.0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if math.isinf(dist[v]):
                dist[v] = dist[u] + 1.0
                queue.append(v)
    return dist


def dijkstra(graph: Graph, source: int) -> list[float]:
    """Weighted shortest-path distances from ``source`` (non-negative weights)."""
    if not 0 <= source < graph.n:
        raise GraphError(f"source {source} outside universe [0, {graph.n})")
    dist = [math.inf] * graph.n
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in graph.neighbor_items(u):
            if w < 0:
                raise GraphError(f"negative weight {w} on edge ({u}, {v})")
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def all_pairs_distances(graph: Graph, weighted: bool = False) -> list[list[float]]:
    """All-pairs distances via repeated BFS/Dijkstra.

    ``O(n·m)`` unweighted; fine at experiment scale (n ≤ a few hundred).
    """
    single = dijkstra if weighted else bfs_distances
    return [single(graph, s) for s in range(graph.n)]


def eccentricity(graph: Graph, source: int) -> float:
    """Greatest finite hop distance from ``source`` (inf if isolated... unreachable parts ignored)."""
    dist = bfs_distances(graph, source)
    finite = [d for d in dist if not math.isinf(d)]
    return max(finite)


def diameter(graph: Graph) -> float:
    """Largest finite pairwise hop distance."""
    best = 0.0
    for s in range(graph.n):
        best = max(best, eccentricity(graph, s))
    return best
