"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so callers
can catch everything coming out of this package with a single handler.
Sketch-level *expected* failures (an ℓ₀ sampler returning FAIL, a sparse
recovery on a vector with too many non-zeros) are modelled as exceptions
deriving from :class:`SketchFailure`; they correspond to the explicit
FAIL outcomes in the paper (Theorems 2.1 and 2.2) rather than bugs.

Every public exception additionally carries a stable machine-readable
:attr:`~ReproError.code` string — the contract surfaced in CLI error
exits (``error[NOT_SUPPORTED]: ...``) and in the error bodies of the
:mod:`repro.serve` wire API, where clients dispatch on the code rather
than parse prose.  Codes are part of the wire format: renaming one is a
breaking change and must update the snapshot table pinned by
``tests/test_error_codes.py``.
"""

from __future__ import annotations

from typing import ClassVar


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""

    #: Stable machine-readable error code (wire-format contract).
    code: ClassVar[str] = "REPRO_ERROR"


class StreamError(ReproError):
    """An ill-formed dynamic graph stream.

    Raised for self-loops, endpoints outside ``[0, n)``, zero deltas, or
    streams that drive an edge multiplicity negative (the model in
    Definition 1 of the paper requires non-negative multiplicities).
    """

    code: ClassVar[str] = "STREAM_INVALID"


class GraphError(ReproError):
    """An ill-formed graph or an invalid graph-algorithm request."""

    code: ClassVar[str] = "GRAPH_INVALID"


class SketchCompatibilityError(ReproError, ValueError):
    """Two sketches cannot be combined (merge / load-and-merge).

    Linearity only holds between sketches of the *same measurement
    matrix*: identical parameters and identical hash seeds.  Every
    ``merge()`` in the library raises this single type on mismatch, and
    the serialisation layer raises it when a deserialised sketch does
    not match the sketch it is being reconciled against.  Subclasses
    :class:`ValueError` so pre-existing callers catching ``ValueError``
    keep working.
    """

    code: ClassVar[str] = "SKETCH_INCOMPATIBLE"


def incompatible(
    kind: str,
    field: str,
    ours: object,
    theirs: object,
    op: str = "merge",
) -> "SketchCompatibilityError":
    """Build the standard sketch-compatibility error message.

    ``op`` names the operation that was refused (``"merge"``,
    ``"subtract"``, ``"load"``...), so a failure surfaced from a
    temporal subtraction or a codec ``like=`` reconciliation does not
    misleadingly claim a merge was attempted.
    """
    return SketchCompatibilityError(
        f"cannot {op} {kind}: {field} differs ({ours!r} != {theirs!r})"
    )


class EpochStoreError(ReproError):
    """Invalid use of a durable epoch store.

    Raised by :class:`~repro.temporal.store.EpochStore` for requests the
    store cannot honour *by policy or state* rather than by corruption:
    appending checkpoints out of order or with a mismatched sketch
    kind/seed, windows that reach below the retention floor (evicted
    epochs), windows whose endpoints fall between the retained dyadic
    spans (finer than the declared ``min_granularity``), and opening a
    path that holds no store.
    """

    code: ClassVar[str] = "STORE_INVALID"


class StoreCorruptionError(EpochStoreError):
    """On-disk epoch-store state failed an integrity check.

    Raised — instead of ever returning a wrong window answer — when a
    catalog or segment blob is truncated, fails its CRC, is missing,
    or holds a sketch whose kind/seed/span disagrees with the catalog
    entry that references it.  The store object stays usable for the
    epochs whose segments are intact, and the store remains openable.
    """

    code: ClassVar[str] = "STORE_CORRUPT"


class SketchFailure(ReproError):
    """Base class for *expected*, probabilistic sketch failures.

    The paper's primitives are allowed to fail with small probability
    (``δ``).  Such failures raise subclasses of this exception so callers
    can distinguish "retry with another seed / more space" from
    programming errors.
    """

    code: ClassVar[str] = "SKETCH_FAILURE"


class SamplerFailed(SketchFailure):
    """An ℓ₀ sampler could not produce a sample (the FAIL outcome).

    Corresponds to the FAIL event in Theorem 2.1.  Either the sketched
    vector is identically zero or every recovery cell was polluted by
    collisions.
    """

    code: ClassVar[str] = "SAMPLER_FAILED"


class RecoveryFailed(SketchFailure):
    """k-sparse recovery could not reconstruct the vector.

    Corresponds to the FAIL outcome of ``k-RECOVERY`` (Theorem 2.2):
    either the vector has more than ``k`` non-zero entries or the peeling
    process got stuck.
    """

    code: ClassVar[str] = "RECOVERY_FAILED"


class AdaptivityError(ReproError):
    """An adaptive (multi-batch) sketch was driven out of order.

    Adaptive sketching schemes (Definition 2) must receive their batches
    in sequence: batch ``r`` measurements may only be constructed after
    the outcomes of batches ``1..r-1`` are known.
    """

    code: ClassVar[str] = "ADAPTIVITY_VIOLATION"


class NotSupportedError(ReproError):
    """A request outside the implemented parameter range.

    For example pattern subgraphs on more than five nodes, where the
    generic encoding enumeration would be astronomically slow.
    """

    code: ClassVar[str] = "NOT_SUPPORTED"


class WireFormatError(ReproError, ValueError):
    """A malformed wire payload (query/result dict or serve request).

    Raised by :mod:`repro.api.wire` and the :mod:`repro.serve` request
    parsers for payloads the wire schema cannot decode: missing or
    unknown schema version, unknown query/result kind, wrong field
    types, undecodable base64 blobs.  Subclasses :class:`ValueError`
    so generic "bad input" handlers keep working.
    """

    code: ClassVar[str] = "WIRE_INVALID"


def error_code_table() -> dict[str, str]:
    """The full ``exception name → stable code`` table, sorted by name.

    This *is* the wire contract: ``tests/test_error_codes.py`` pins it
    name for name, so adding an exception means extending the snapshot
    deliberately and renaming a code fails the suite.
    """
    return {
        cls.__name__: cls.code
        for cls in sorted(_walk_public_errors(), key=lambda c: c.__name__)
    }


def _walk_public_errors() -> "set[type[ReproError]]":
    """Every public exception class in this module (``ReproError`` down)."""
    found: set[type[ReproError]] = set()
    frontier = [ReproError]
    while frontier:
        cls = frontier.pop()
        if cls.__module__ == __name__ and not cls.__name__.startswith("_"):
            found.add(cls)
        frontier.extend(cls.__subclasses__())
    return found
