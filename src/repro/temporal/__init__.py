"""Temporal sketching — epoch checkpoints and sliding-window queries.

The linear-sketch property that powers the paper's distributed model
(Section 1.1) equally enables *temporal* decomposition: a sketch of
stream prefix ``[0, t2)`` minus a sketch of prefix ``[0, t1)`` is
**exactly** the sketch of the window ``[t1, t2)``.  A long-running
service can therefore seal an immutable checkpoint of its cumulative
sketch at every epoch boundary and later answer historical and
sliding-window queries by *checkpoint subtraction* — no stream replay,
no per-window state.

The package:

* :class:`~repro.temporal.epochs.EpochManager` — consumes a
  :class:`~repro.streams.DynamicGraphStream` through the columnar path
  and seals per-epoch checkpoints (``dump_sketch`` payloads with epoch
  metadata);
* :class:`~repro.temporal.epochs.EpochTimeline` — the immutable
  checkpoint sequence, serialisable to a single manifest blob
  (:func:`repro.sketch.dump_epoch_manifest`);
* :class:`~repro.temporal.query.TemporalQueryEngine` — materialises any
  epoch-aligned window ``[t1, t2)`` by subtraction and routes it
  through the sketch's existing query surface;
* :class:`~repro.temporal.store.EpochStore` — durable, append-only
  checkpoint storage with dyadic compaction (old windows answered from
  O(log T) span loads), :class:`~repro.temporal.store.RetentionPolicy`
  enforcement, and lazy LRU paging of segment blobs.

Multi-site deployments compose orthogonally: per-site, per-epoch
checkpoints are merged across sites *and* subtracted across time
(:meth:`repro.distributed.ShardedSketchRunner.run_epochs`).  The
equivalence harness (``tests/test_temporal_equivalence.py``) pins all
three routes — direct window stream, checkpoint subtraction, and
sharded-then-subtracted — byte-identical for every sketch class.
"""

from .epochs import (
    EpochCheckpoint,
    EpochManager,
    EpochTimeline,
    epoch_boundaries,
    normalize_boundaries,
)
from .query import (
    TemporalQueryEngine,
    materialise_window,
    window_answer,
    window_payload_bytes,
    window_tokens,
)
from .store import EpochStore, RetentionPolicy, SpanEntry

__all__ = [
    "EpochCheckpoint",
    "EpochManager",
    "EpochStore",
    "EpochTimeline",
    "RetentionPolicy",
    "SpanEntry",
    "TemporalQueryEngine",
    "epoch_boundaries",
    "materialise_window",
    "normalize_boundaries",
    "window_answer",
    "window_payload_bytes",
    "window_tokens",
]
