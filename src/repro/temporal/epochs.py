"""Epoch checkpointing of cumulative sketches.

An *epoch* is a contiguous run of stream tokens; sealing an epoch
serialises the manager's cumulative sketch — the sketch of the whole
prefix ``[0, boundary)`` — into an immutable checkpoint payload.
Checkpoints are deliberately cumulative rather than per-epoch deltas:
any window ``[t1, t2)`` then needs exactly *two* checkpoint loads and
one subtraction, instead of ``t2 - t1`` delta merges.

Checkpoints are plain :func:`repro.sketch.dump_sketch` payloads with
epoch metadata attached, so everything the serialisation layer already
verifies (parameters, seed, cell layout, fingerprint range, payload
CRC) applies to temporal storage too, and a checkpoint can be loaded,
merged, or subtracted like any shipped sketch.  With the arena codec,
sealing is a single buffer snapshot (early, lightly-loaded epochs ship
as sparse ``(position, value)`` pairs) and the query engine folds an
earlier checkpoint's *bytes* straight into a materialised window —
see :func:`repro.sketch.subtract_sketch_bytes`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from ..sketch.serialize import (
    dump_epoch_manifest,
    dump_sketch,
    load_epoch_manifest,
    peek_sketch_meta,
)
from ..streams import DynamicGraphStream, StreamBatch

__all__ = [
    "EpochCheckpoint",
    "EpochManager",
    "EpochTimeline",
    "epoch_boundaries",
    "normalize_boundaries",
]


def epoch_boundaries(tokens: int, epochs: int) -> list[int]:
    """Evenly spaced epoch-end token positions (last one == ``tokens``)."""
    if epochs < 1:
        raise ValueError(f"need at least one epoch, got {epochs}")
    return [tokens * (e + 1) // epochs for e in range(epochs)]


@dataclass(frozen=True, slots=True)
class EpochCheckpoint:
    """One sealed epoch: the cumulative sketch of the prefix ``[0, end)``.

    Attributes
    ----------
    epoch:
        1-based epoch index; checkpoint ``e`` covers epochs ``1..e``.
    tokens:
        Tokens consumed during this epoch alone.
    cumulative_tokens:
        Tokens in the whole checkpointed prefix.
    payload:
        ``dump_sketch`` bytes (with ``epoch`` metadata in the header).
    """

    epoch: int
    tokens: int
    cumulative_tokens: int
    payload: bytes


class EpochTimeline:
    """An immutable, ordered sequence of cumulative epoch checkpoints.

    The temporal analogue of a shipped sketch: everything a query
    engine needs to materialise any epoch-aligned window, bundled into
    one manifest blob by :meth:`to_bytes` and restored — with full
    integrity checking — by :meth:`from_bytes`.
    """

    def __init__(self, n: int, checkpoints: Sequence[EpochCheckpoint]):
        if not checkpoints:
            raise ValueError("a timeline needs at least one checkpoint")
        for i, chk in enumerate(checkpoints):
            if chk.epoch != i + 1:
                raise ValueError(
                    f"checkpoint {i} carries epoch id {chk.epoch}, "
                    f"expected {i + 1} — out-of-order or missing epochs"
                )
        self.n = n
        self.checkpoints: tuple[EpochCheckpoint, ...] = tuple(checkpoints)

    @property
    def epochs(self) -> int:
        """Number of sealed epochs ``E``."""
        return len(self.checkpoints)

    @property
    def boundaries(self) -> tuple[int, ...]:
        """Cumulative token position at the end of each epoch."""
        return tuple(c.cumulative_tokens for c in self.checkpoints)

    @property
    def total_payload_bytes(self) -> int:
        """Total checkpoint storage held by the timeline."""
        return sum(len(c.payload) for c in self.checkpoints)

    @property
    def sketch_kind(self) -> str:
        """Registered kind name of the checkpointed sketch class."""
        return str(peek_sketch_meta(self.checkpoints[0].payload)["__kind__"])

    def checkpoint(self, epoch: int) -> EpochCheckpoint:
        """The checkpoint sealing epoch ``epoch`` (1-based)."""
        if not 1 <= epoch <= self.epochs:
            raise ValueError(
                f"epoch {epoch} outside the timeline's [1, {self.epochs}]"
            )
        return self.checkpoints[epoch - 1]

    def to_bytes(self) -> bytes:
        """Serialise the timeline into one epoch-manifest blob."""
        return dump_epoch_manifest(
            [c.payload for c in self.checkpoints],
            epoch_ids=[c.epoch for c in self.checkpoints],
            meta={
                "n": self.n,
                "epoch_tokens": [c.tokens for c in self.checkpoints],
                "boundaries": list(self.boundaries),
            },
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "EpochTimeline":
        """Restore a timeline from :meth:`to_bytes` output.

        Truncated payload bytes, out-of-order epoch ids, and mixed
        sketch kinds/seeds are all refused by the manifest loader
        (:class:`ValueError` / :class:`~repro.errors.
        SketchCompatibilityError`) — a timeline that loads is internally
        consistent.
        """
        header, payloads = load_epoch_manifest(data)
        epoch_ids = header["epoch_ids"]
        epoch_tokens = header.get("epoch_tokens")
        boundaries = header.get("boundaries")
        if (
            not isinstance(epoch_tokens, list)
            or not isinstance(boundaries, list)
            or len(epoch_tokens) != len(payloads)
            or len(boundaries) != len(payloads)
        ):
            raise ValueError(
                "epoch manifest lacks consistent epoch_tokens/boundaries"
            )
        checkpoints = [
            EpochCheckpoint(
                epoch=int(epoch_ids[i]),
                tokens=int(epoch_tokens[i]),
                cumulative_tokens=int(boundaries[i]),
                payload=payloads[i],
            )
            for i in range(len(payloads))
        ]
        return cls(int(header.get("n", 0)), checkpoints)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EpochTimeline(n={self.n}, epochs={self.epochs}, "
            f"bytes={self.total_payload_bytes})"
        )


class EpochManager:
    """Consume a stream epoch by epoch, sealing cumulative checkpoints.

    Parameters
    ----------
    factory:
        Zero-argument callable returning a fresh, *seeded* sketch (the
        same contract as the distributed runner's factory: the seed
        must be recorded so checkpoints can be serialised and later
        verified against each other).

    Streaming usage::

        manager = EpochManager(factory)
        manager.extend(batch_1)      # any number of columnar batches
        manager.seal_epoch()         # checkpoint prefix so far
        manager.extend(batch_2)
        manager.seal_epoch()
        timeline = manager.timeline()

    or one-shot over a whole stream with an epoch grid:
    :meth:`consume`.
    """

    def __init__(self, factory: Callable[[], object]):
        self._factory = factory
        self._sketch = factory()
        if not hasattr(self._sketch, "consume_batch"):
            raise TypeError(
                f"{type(self._sketch).__name__} has no consume_batch; the "
                "epoch manager requires the columnar ingestion path"
            )
        self._checkpoints: list[EpochCheckpoint] = []
        self._epoch_tokens = 0
        self._cumulative_tokens = 0

    @property
    def n(self) -> int:
        """Node universe of the managed sketch."""
        return int(self._sketch.n)

    @property
    def sealed_epochs(self) -> int:
        """Number of checkpoints sealed so far."""
        return len(self._checkpoints)

    def extend(self, batch: StreamBatch) -> "EpochManager":
        """Feed one columnar batch into the open epoch."""
        self._sketch.consume_batch(batch)
        self._epoch_tokens += len(batch)
        self._cumulative_tokens += len(batch)
        return self

    def seal_epoch(self) -> EpochCheckpoint:
        """Close the open epoch and checkpoint the cumulative sketch.

        Empty epochs are legal (the checkpoint simply equals the
        previous one); the returned checkpoint is immutable and already
        appended to the manager's timeline.
        """
        epoch = len(self._checkpoints) + 1
        payload = dump_sketch(
            self._sketch,
            epoch_meta={
                "epoch": epoch,
                "tokens": self._epoch_tokens,
                "cumulative_tokens": self._cumulative_tokens,
            },
        )
        checkpoint = EpochCheckpoint(
            epoch=epoch,
            tokens=self._epoch_tokens,
            cumulative_tokens=self._cumulative_tokens,
            payload=payload,
        )
        self._checkpoints.append(checkpoint)
        self._epoch_tokens = 0
        return checkpoint

    def timeline(self) -> EpochTimeline:
        """The timeline of every checkpoint sealed so far."""
        return EpochTimeline(self.n, self._checkpoints)

    @classmethod
    def consume(
        cls,
        factory: Callable[[], object],
        stream: DynamicGraphStream,
        epochs: int | None = None,
        boundaries: Sequence[int] | None = None,
    ) -> EpochTimeline:
        """Checkpoint a whole stream along an epoch grid.

        Exactly one of ``epochs`` (evenly spaced) or ``boundaries``
        (explicit epoch-end token positions; non-decreasing, ending at
        ``len(stream)``) must be given.  Consumption goes through the
        shared columnar batch, sliced per epoch — no token-level Python.
        """
        bounds = normalize_boundaries(len(stream), epochs, boundaries)
        manager = cls(factory)
        batch = stream.as_batch()
        start = 0
        for end in bounds:
            manager.extend(batch.slice(start, end))
            manager.seal_epoch()
            start = end
        return manager.timeline()


def normalize_boundaries(
    tokens: int,
    epochs: int | None,
    boundaries: Sequence[int] | None,
) -> list[int]:
    """Normalise the ``(epochs | boundaries)`` argument pair.

    Exactly one must be given; explicit boundaries must be
    non-decreasing epoch-end token positions finishing at ``tokens``.
    Shared by :meth:`EpochManager.consume` and the sharded epoch runner.
    """
    if (epochs is None) == (boundaries is None):
        raise ValueError("pass exactly one of epochs= or boundaries=")
    if boundaries is None:
        return epoch_boundaries(tokens, epochs)
    bounds = [int(b) for b in boundaries]
    if not bounds:
        raise ValueError("boundaries must name at least one epoch end")
    previous = 0
    for b in bounds:
        if b < previous:
            raise ValueError(f"boundaries must be non-decreasing, got {bounds}")
        previous = b
    if bounds[-1] != tokens:
        raise ValueError(
            f"final boundary {bounds[-1]} must equal the stream length "
            f"{tokens} (every token belongs to some epoch)"
        )
    return bounds
