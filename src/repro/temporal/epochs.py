"""Epoch checkpointing of cumulative sketches.

An *epoch* is a contiguous run of stream tokens; sealing an epoch
serialises the manager's cumulative sketch — the sketch of the whole
prefix ``[0, boundary)`` — into an immutable checkpoint payload.
Checkpoints are deliberately cumulative rather than per-epoch deltas:
any window ``[t1, t2)`` then needs exactly *two* checkpoint loads and
one subtraction, instead of ``t2 - t1`` delta merges.

Checkpoints are plain :func:`repro.sketch.dump_sketch` payloads with
epoch metadata attached, so everything the serialisation layer already
verifies (parameters, seed, cell layout, fingerprint range, payload
CRC) applies to temporal storage too, and a checkpoint can be loaded,
merged, or subtracted like any shipped sketch.  With the arena codec,
sealing is a single buffer snapshot (early, lightly-loaded epochs ship
as sparse ``(position, value)`` pairs) and the query engine folds an
earlier checkpoint's *bytes* straight into a materialised window —
see :func:`repro.sketch.subtract_sketch_bytes`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import EpochStoreError
from ..sketch.serialize import (
    dump_epoch_manifest,
    dump_sketch,
    load_epoch_manifest,
    load_sketch,
    peek_sketch_meta,
)
from ..streams import DynamicGraphStream, StreamBatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store imports us)
    from .store import EpochStore

__all__ = [
    "EpochCheckpoint",
    "EpochManager",
    "EpochTimeline",
    "epoch_boundaries",
    "normalize_boundaries",
]


def epoch_boundaries(tokens: int, epochs: int) -> list[int]:
    """Evenly spaced epoch-end token positions (last one == ``tokens``)."""
    if epochs < 1:
        raise ValueError(f"need at least one epoch, got {epochs}")
    return [tokens * (e + 1) // epochs for e in range(epochs)]


@dataclass(frozen=True, slots=True)
class EpochCheckpoint:
    """One sealed epoch: the cumulative sketch of the prefix ``[0, end)``.

    Attributes
    ----------
    epoch:
        1-based epoch index; checkpoint ``e`` covers epochs ``1..e``.
    tokens:
        Tokens consumed during this epoch alone.
    cumulative_tokens:
        Tokens in the whole checkpointed prefix.
    payload:
        ``dump_sketch`` bytes (with ``epoch`` metadata in the header).
    """

    epoch: int
    tokens: int
    cumulative_tokens: int
    payload: bytes


class EpochTimeline:
    """An immutable, ordered sequence of cumulative epoch checkpoints.

    The temporal analogue of a shipped sketch: everything a query
    engine needs to materialise any epoch-aligned window, bundled into
    one manifest blob by :meth:`to_bytes` and restored — with full
    integrity checking — by :meth:`from_bytes`.
    """

    def __init__(self, n: int, checkpoints: Sequence[EpochCheckpoint]):
        if not checkpoints:
            raise ValueError("a timeline needs at least one checkpoint")
        for i, chk in enumerate(checkpoints):
            if chk.epoch != i + 1:
                raise ValueError(
                    f"checkpoint {i} carries epoch id {chk.epoch}, "
                    f"expected {i + 1} — out-of-order or missing epochs"
                )
        self.n = n
        self.checkpoints: tuple[EpochCheckpoint, ...] = tuple(checkpoints)

    @property
    def epochs(self) -> int:
        """Number of sealed epochs ``E``."""
        return len(self.checkpoints)

    @property
    def boundaries(self) -> tuple[int, ...]:
        """Cumulative token position at the end of each epoch."""
        return tuple(c.cumulative_tokens for c in self.checkpoints)

    @property
    def total_payload_bytes(self) -> int:
        """Total checkpoint storage held by the timeline."""
        return sum(len(c.payload) for c in self.checkpoints)

    @property
    def sketch_kind(self) -> str:
        """Registered kind name of the checkpointed sketch class."""
        return str(peek_sketch_meta(self.checkpoints[0].payload)["__kind__"])

    def checkpoint(self, epoch: int) -> EpochCheckpoint:
        """The checkpoint sealing epoch ``epoch`` (1-based)."""
        if not 1 <= epoch <= self.epochs:
            raise ValueError(
                f"epoch {epoch} outside the timeline's [1, {self.epochs}]"
            )
        return self.checkpoints[epoch - 1]

    def window_payloads(self, t1: int, t2: int) -> tuple[list[bytes], list[bytes]]:
        """Payloads to merge / subtract for the window ``[t1, t2)``.

        The cumulative representation answers every window from the
        ``t2`` checkpoint minus (when ``t1 > 0``) the ``t1`` checkpoint.
        Same duck-typed surface as :meth:`repro.temporal.store.
        EpochStore.window_payloads`, whose second list is always empty.
        """
        # Bounds check inlined rather than imported from .query (which
        # imports this module).
        if not 0 <= t1 < t2 <= self.epochs:
            raise ValueError(
                f"window [{t1}, {t2}) is not a valid epoch range within "
                f"[0, {self.epochs}]"
            )
        subtract = [self.checkpoint(t1).payload] if t1 > 0 else []
        return [self.checkpoint(t2).payload], subtract

    def window_payload_bytes(self, t1: int, t2: int) -> int:
        """Checkpoint bytes a window materialisation loads for ``[t1, t2)``."""
        merge, subtract = self.window_payloads(t1, t2)
        return sum(len(p) for p in merge) + sum(len(p) for p in subtract)

    def to_bytes(self) -> bytes:
        """Serialise the timeline into one epoch-manifest blob."""
        return dump_epoch_manifest(
            [c.payload for c in self.checkpoints],
            epoch_ids=[c.epoch for c in self.checkpoints],
            meta={
                "n": self.n,
                "epoch_tokens": [c.tokens for c in self.checkpoints],
                "boundaries": list(self.boundaries),
            },
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "EpochTimeline":
        """Restore a timeline from :meth:`to_bytes` output.

        Truncated payload bytes, out-of-order epoch ids, and mixed
        sketch kinds/seeds are all refused by the manifest loader
        (:class:`ValueError` / :class:`~repro.errors.
        SketchCompatibilityError`) — a timeline that loads is internally
        consistent.
        """
        header, payloads = load_epoch_manifest(data)
        epoch_ids = header["epoch_ids"]
        epoch_tokens = header.get("epoch_tokens")
        boundaries = header.get("boundaries")
        if (
            not isinstance(epoch_tokens, list)
            or not isinstance(boundaries, list)
            or len(epoch_tokens) != len(payloads)
            or len(boundaries) != len(payloads)
        ):
            raise ValueError(
                "epoch manifest lacks consistent epoch_tokens/boundaries"
            )
        checkpoints = [
            EpochCheckpoint(
                epoch=int(epoch_ids[i]),
                tokens=int(epoch_tokens[i]),
                cumulative_tokens=int(boundaries[i]),
                payload=payloads[i],
            )
            for i in range(len(payloads))
        ]
        return cls(int(header.get("n", 0)), checkpoints)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EpochTimeline(n={self.n}, epochs={self.epochs}, "
            f"bytes={self.total_payload_bytes})"
        )


class EpochManager:
    """Consume a stream epoch by epoch, sealing cumulative checkpoints.

    Parameters
    ----------
    factory:
        Zero-argument callable returning a fresh, *seeded* sketch (the
        same contract as the distributed runner's factory: the seed
        must be recorded so checkpoints can be serialised and later
        verified against each other).

    Streaming usage::

        manager = EpochManager(factory)
        manager.extend(batch_1)      # any number of columnar batches
        manager.seal_epoch()         # checkpoint prefix so far
        manager.extend(batch_2)
        manager.seal_epoch()
        timeline = manager.timeline()

    or one-shot over a whole stream with an epoch grid:
    :meth:`consume`.

    With ``store=`` the manager runs *durable*: every sealed checkpoint
    is appended straight to an :class:`~repro.temporal.store.EpochStore`
    and **not** retained in memory, so RAM stays bounded by one live
    sketch no matter how many epochs are sealed.  Query the store (or
    :func:`~repro.temporal.query.materialise_window` over it) instead of
    :meth:`timeline`, and continue an interrupted run from disk with
    :meth:`resume`.
    """

    def __init__(
        self,
        factory: Callable[[], object],
        store: "EpochStore | None" = None,
    ):
        self._factory = factory
        self._sketch = factory()
        if not hasattr(self._sketch, "consume_batch"):
            raise TypeError(
                f"{type(self._sketch).__name__} has no consume_batch; the "
                "epoch manager requires the columnar ingestion path"
            )
        if store is not None and store.epochs > 0:
            raise EpochStoreError(
                f"store at {store.root!s} already holds {store.epochs} "
                "epochs; use EpochManager.resume(store) to continue it "
                "instead of attaching a fresh manager"
            )
        self._store = store
        self._checkpoints: list[EpochCheckpoint] = []
        self._epoch_tokens = 0
        self._cumulative_tokens = 0

    @property
    def n(self) -> int:
        """Node universe of the managed sketch."""
        return int(self._sketch.n)

    @property
    def sealed_epochs(self) -> int:
        """Number of checkpoints sealed so far."""
        if self._store is not None:
            return self._store.epochs
        return len(self._checkpoints)

    @property
    def store(self) -> "EpochStore | None":
        """The attached durable store, when running store-backed."""
        return self._store

    def extend(self, batch: StreamBatch) -> "EpochManager":
        """Feed one columnar batch into the open epoch."""
        self._sketch.consume_batch(batch)
        self._epoch_tokens += len(batch)
        self._cumulative_tokens += len(batch)
        return self

    def seal_epoch(self) -> EpochCheckpoint:
        """Close the open epoch and checkpoint the cumulative sketch.

        Empty epochs are legal (the checkpoint simply equals the
        previous one); the returned checkpoint is immutable and already
        appended to the manager's timeline — or, store-backed, durably
        appended to the store and *not* retained in memory.
        """
        epoch = self.sealed_epochs + 1
        payload = dump_sketch(
            self._sketch,
            epoch_meta={
                "epoch": epoch,
                "tokens": self._epoch_tokens,
                "cumulative_tokens": self._cumulative_tokens,
            },
        )
        checkpoint = EpochCheckpoint(
            epoch=epoch,
            tokens=self._epoch_tokens,
            cumulative_tokens=self._cumulative_tokens,
            payload=payload,
        )
        if self._store is not None:
            self._store.append_checkpoint(checkpoint)
        else:
            self._checkpoints.append(checkpoint)
        self._epoch_tokens = 0
        return checkpoint

    def timeline(self) -> EpochTimeline:
        """The timeline of every checkpoint sealed so far.

        Only for in-memory managers: a store-backed manager deliberately
        does not hold its checkpoints (that is the point), so query the
        attached :class:`~repro.temporal.store.EpochStore` instead.
        """
        if self._store is not None:
            raise EpochStoreError(
                "manager is store-backed; checkpoints live in the store at "
                f"{self._store.root!s} — query it directly instead of "
                "materialising an in-memory timeline"
            )
        return EpochTimeline(self.n, self._checkpoints)

    @classmethod
    def resume(
        cls,
        factory: Callable[[], object],
        store: "EpochStore",
    ) -> "EpochManager":
        """Continue sealing epochs into a non-empty store.

        The cumulative sketch is rebuilt from the store's head
        checkpoint (exact — the head *is* the serialised cumulative
        state), so epochs sealed from here extend the stored timeline
        seamlessly; windows spanning the restart stay byte-identical to
        an uninterrupted run.  ``factory`` is only consulted for the
        ingestion-path type check on the rebuilt sketch's behalf; the
        head payload supplies parameters and seed.
        """
        if store.epochs == 0:
            raise EpochStoreError(
                f"store at {store.root!s} is empty; build a fresh "
                "EpochManager(factory, store=store) instead of resuming"
            )
        manager = cls(factory)
        manager._sketch = load_sketch(store.head_payload())
        manager._store = store
        manager._cumulative_tokens = store.boundaries[-1]
        return manager

    @classmethod
    def consume(
        cls,
        factory: Callable[[], object],
        stream: DynamicGraphStream,
        epochs: int | None = None,
        boundaries: Sequence[int] | None = None,
        store: "EpochStore | None" = None,
    ) -> "EpochTimeline | EpochStore":
        """Checkpoint a whole stream along an epoch grid.

        Exactly one of ``epochs`` (evenly spaced) or ``boundaries``
        (explicit epoch-end token positions; non-decreasing, ending at
        ``len(stream)``) must be given.  Consumption goes through the
        shared columnar batch, sliced per epoch — no token-level Python.
        With ``store=`` the checkpoints are sealed durably and the
        store itself is returned instead of an in-memory timeline.
        """
        bounds = normalize_boundaries(len(stream), epochs, boundaries)
        manager = cls(factory, store=store)
        batch = stream.as_batch()
        start = 0
        for end in bounds:
            manager.extend(batch.slice(start, end))
            manager.seal_epoch()
            start = end
        if store is not None:
            return store
        return manager.timeline()


def normalize_boundaries(
    tokens: int,
    epochs: int | None,
    boundaries: Sequence[int] | None,
) -> list[int]:
    """Normalise the ``(epochs | boundaries)`` argument pair.

    Exactly one must be given; explicit boundaries must be
    non-decreasing epoch-end token positions finishing at ``tokens``.
    Shared by :meth:`EpochManager.consume` and the sharded epoch runner.
    """
    if (epochs is None) == (boundaries is None):
        raise ValueError("pass exactly one of epochs= or boundaries=")
    if boundaries is None:
        return epoch_boundaries(tokens, epochs)
    bounds = [int(b) for b in boundaries]
    if not bounds:
        raise ValueError("boundaries must name at least one epoch end")
    previous = 0
    for b in bounds:
        if b < previous:
            raise ValueError(f"boundaries must be non-decreasing, got {bounds}")
        previous = b
    if bounds[-1] != tokens:
        raise ValueError(
            f"final boundary {bounds[-1]} must equal the stream length "
            f"{tokens} (every token belongs to some epoch)"
        )
    return bounds
