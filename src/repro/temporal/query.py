"""Window materialisation and query routing over an epoch timeline.

``TemporalQueryEngine`` answers "what did the graph look like between
checkpoints t1 and t2?" by *sketch subtraction*: load the cumulative
checkpoint at ``t2``, subtract the one at ``t1``, and the result is —
exactly, by linearity — the sketch a fresh instance would have produced
consuming only the window's tokens.  The materialised window sketch is
an ordinary sketch object, so every existing query surface (forest
extraction, k-connectivity witnesses, min-cut estimation, both
sparsifiers, weighted classes, subgraph counts, the property sketches)
applies unchanged; :func:`window_answer` bundles one canonical answer
per sketch class for the CLI and experiments.

A caveat inherent to *delta* windows: a window that deletes edges
inserted before ``t1`` sketches a vector with negative entries.  The
algebra stays exact (the equivalence suite pins byte-identity), but
graph-shaped answers are about the window's net effect, not a graph
state.  For state-at-a-time questions, query a prefix window
``[0, t)`` — see ``examples/temporal_forensics.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Union

from ..errors import SketchFailure
from ..sketch.serialize import (
    load_sketch,
    merge_sketch_bytes,
    subtract_sketch_bytes,
)
from .epochs import EpochTimeline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store imports epochs)
    from .store import EpochStore

    WindowSource = Union[EpochTimeline, EpochStore]
else:
    WindowSource = Any

__all__ = [
    "TemporalQueryEngine",
    "materialise_window",
    "require_window",
    "window_answer",
    "window_payload_bytes",
    "window_tokens",
]


def require_window(epochs: int, t1: int, t2: int) -> None:
    """Validate the half-open epoch range ``[t1, t2)`` against ``epochs``."""
    if not (0 <= t1 < t2 <= epochs):
        raise ValueError(
            f"window [{t1}, {t2}) is not a valid epoch range within "
            f"[0, {epochs}]"
        )


def materialise_window(source: WindowSource, t1: int, t2: int) -> Any:
    """The sketch of exactly the tokens in epochs ``t1+1 .. t2``.

    ``source`` is either an in-memory :class:`~repro.temporal.epochs.
    EpochTimeline` (one checkpoint load for a prefix window, two loads
    and a subtraction otherwise) or a durable :class:`~repro.temporal.
    store.EpochStore` (O(log T) dyadic span loads merged, no
    subtraction) — both exact by linearity, and byte-identical to each
    other.  The shared implementation behind both
    :class:`TemporalQueryEngine` and the
    :class:`~repro.api.GraphSketchEngine` temporal mode.
    """
    require_window(source.epochs, t1, t2)
    merge, subtract = source.window_payloads(t1, t2)
    sketch = load_sketch(merge[0])
    for payload in merge[1:]:
        merge_sketch_bytes(sketch, payload)
    for payload in subtract:
        # In-arena subtraction of the earlier checkpoint's bytes —
        # no second twin sketch is materialised.
        subtract_sketch_bytes(sketch, payload)
    return sketch


def window_payload_bytes(source: WindowSource, t1: int, t2: int) -> int:
    """Checkpoint bytes :func:`materialise_window` loads for ``[t1, t2)``."""
    return int(source.window_payload_bytes(t1, t2))


def window_tokens(source: WindowSource, t1: int, t2: int) -> int:
    """Number of stream tokens the epoch window ``[t1, t2)`` spans."""
    require_window(source.epochs, t1, t2)
    boundaries = source.boundaries
    start = boundaries[t1 - 1] if t1 else 0
    return int(boundaries[t2 - 1] - start)


class TemporalQueryEngine:
    """Materialise epoch-aligned windows of a checkpoint timeline.

    Windows are half-open epoch index ranges ``[t1, t2)`` with
    ``0 <= t1 < t2 <= epochs``: ``window(0, t)`` is the prefix through
    epoch ``t``; ``window(t - 1, t)`` is epoch ``t`` alone.

    .. deprecated::
        Direct construction is deprecated — build a
        :class:`~repro.api.GraphSketchEngine` with ``.epochs(...)`` (or
        restore one from manifest bytes) and issue windowed queries
        through its single ``query()`` dispatch instead.
    """

    def __init__(self, timeline: WindowSource):
        # Either an in-memory EpochTimeline or a durable EpochStore —
        # every window path below goes through the generic helpers.
        from ..api.deprecation import warn_deprecated

        warn_deprecated(
            "direct TemporalQueryEngine use",
            "GraphSketchEngine.for_spec(spec).epochs(...) / "
            "GraphSketchEngine.restore(manifest)",
        )
        self.timeline = timeline

    @classmethod
    def from_manifest(cls, data: bytes) -> "TemporalQueryEngine":
        """Build an engine straight from epoch-manifest bytes."""
        from ..api.deprecation import warn_deprecated

        # Warn here (attributed to the caller) rather than routing
        # through __init__, whose fixed stacklevel would attribute the
        # warning to this classmethod's frame inside the library.
        warn_deprecated(
            "TemporalQueryEngine.from_manifest()",
            "GraphSketchEngine.restore(manifest)",
        )
        engine = cls.__new__(cls)
        engine.timeline = EpochTimeline.from_bytes(data)
        return engine

    @property
    def epochs(self) -> int:
        """Number of epochs addressable by window queries."""
        return self.timeline.epochs

    def _require_window(self, t1: int, t2: int) -> None:
        require_window(self.epochs, t1, t2)

    def window_sketch(self, t1: int, t2: int) -> Any:
        """The sketch of exactly the tokens in epochs ``t1+1 .. t2``."""
        return materialise_window(self.timeline, t1, t2)

    def prefix_sketch(self, t: int) -> Any:
        """The cumulative sketch through epoch ``t`` (graph state)."""
        return self.window_sketch(0, t)

    def window_tokens(self, t1: int, t2: int) -> int:
        """Number of stream tokens the window spans."""
        return window_tokens(self.timeline, t1, t2)

    def answer(self, t1: int, t2: int) -> dict:
        """One canonical answer for the window, keyed by sketch kind."""
        return window_answer(self.window_sketch(t1, t2))

    def was_connected(self, u: int, v: int, through_epoch: int) -> bool:
        """Whether ``u`` and ``v`` were connected in the graph state at
        the end of ``through_epoch`` (forest-family sketches only)."""
        sketch = self.prefix_sketch(through_epoch)
        if not hasattr(sketch, "connected_components"):
            raise TypeError(
                f"{type(sketch).__name__} has no connectivity surface"
            )
        for component in sketch.connected_components():
            if u in component:
                return v in component
        return False


def window_answer(sketch: Any) -> dict:
    """Route a materialised window sketch through its query surface.

    Returns a small JSON-able dict: the sketch class plus one canonical
    metric per kind.  Probabilistic FAIL outcomes (Theorems 2.1/2.2)
    surface as ``"FAIL"`` rather than an exception, so sweeps over many
    windows don't abort on one unlucky decode.
    """
    from ..core import (
        TRIANGLE,
        BipartitenessSketch,
        CutEdgesSketch,
        EdgeConnectivitySketch,
        MinCutSketch,
        MSTWeightSketch,
        SimpleSparsification,
        Sparsification,
        SpanningForestSketch,
        SubgraphSketch,
        WeightedSparsification,
    )

    result: dict[str, Any] = {"sketch": type(sketch).__name__}
    try:
        if isinstance(sketch, SpanningForestSketch):
            forest = sketch.spanning_forest()
            result["components"] = sketch.n - len(forest)
            result["forest_edges"] = len(forest)
        elif isinstance(sketch, EdgeConnectivitySketch):
            witness = sketch.witness()
            result["k"] = sketch.k
            result["witness_edges"] = witness.num_edges()
        elif isinstance(sketch, MinCutSketch):
            estimate = sketch.estimate()
            result["mincut"] = estimate.value
            result["stop_level"] = estimate.stop_level
        elif isinstance(
            sketch, (SimpleSparsification, Sparsification, WeightedSparsification)
        ):
            result["sparsifier_edges"] = sketch.sparsifier().graph.num_edges()
        elif isinstance(sketch, SubgraphSketch):
            estimate = sketch.estimate(TRIANGLE)
            result["triangle_gamma"] = estimate.gamma
        elif isinstance(sketch, CutEdgesSketch):
            result["crossing_node0"] = len(sketch.crossing_edges({0}))
        elif isinstance(sketch, BipartitenessSketch):
            result["bipartite"] = sketch.is_bipartite()
        elif isinstance(sketch, MSTWeightSketch):
            result["mst_weight"] = sketch.estimate()
        else:
            result["note"] = "no canonical window answer registered"
    except SketchFailure as err:
        result["answer"] = "FAIL"
        result["reason"] = str(err)
    return result
