"""Durable epoch storage — append-only segments, dyadic compaction, paging.

The in-memory :class:`~repro.temporal.epochs.EpochTimeline` holds every
cumulative checkpoint at once, so "temporal forensics" dies at a few
hundred epochs.  :class:`EpochStore` is the durable replacement: sealed
checkpoints land append-only in a directory and the store keeps only a
catalog plus a small LRU of paged segment bytes in memory.

Representation.  The store keeps *delta spans*, not cumulative blobs:
the segment for span ``(a, b]`` is the codec-v2 sketch of exactly the
tokens of epochs ``a+1 .. b``.  Appending checkpoint ``e`` subtracts
the previous cumulative payload (the *head*) from the new one —
linearity makes the difference exactly epoch ``e``'s delta — and seals
it as the length-1 span ``(e-1, e]``.

Dyadic compaction.  Epochs older than a configurable ``horizon`` are
merged bottom-up into aligned power-of-two spans: whenever the two
children ``(k·2^j, k·2^j + 2^(j-1)]`` and ``(k·2^j + 2^(j-1),
(k+1)·2^j]`` exist, their merge *is* the parent span — exactly, by
linearity — so the store holds a segment-tree over the old region.  Any
window ``[t1, t2)`` is then answered by the canonical greedy cover: at
position ``p`` load the largest stored span ``(p, q]`` with ``q <=
t2`` — at most ``2·log2(T)`` spans over a full pyramid (plus at most
``horizon`` length-1 tail spans), instead of the two full-timeline
checkpoint loads of the manifest path.

Retention.  ``min_granularity g`` (a power of two) evicts spans shorter
than ``g`` once their covering ``g``-aligned ancestor exists — old data
stays addressable exactly at granularity ``g`` and coarser, never
approximately.  ``max_epochs`` / ``max_bytes`` evict whole spans from
the old end and advance a ``base`` floor; windows reaching below
``base`` raise :class:`~repro.errors.EpochStoreError` rather than
answering from partial data.

Crash safety.  Every segment is written tmp-then-rename *before* the
catalog (itself tmp-then-rename) references it, so a crash at any point
leaves the previous catalog — and every segment it references — fully
intact; orphaned segments from an interrupted append are swept on the
next open.  The versioned JSON catalog carries a CRC32 per referenced
segment (checked at page-in) and one over its own canonical body, so
flipped bits anywhere surface as :class:`~repro.errors.
StoreCorruptionError`, never as a wrong window answer.
"""

from __future__ import annotations

import json
import os
import pathlib
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from ..errors import EpochStoreError, StoreCorruptionError
from ..sketch.serialize import (
    _pack_raw,
    _read_raw,
    dump_sketch,
    load_sketch,
    merge_sketch_bytes,
    peek_sketch_meta,
    subtract_sketch_bytes,
)
from .epochs import EpochCheckpoint, EpochTimeline

__all__ = ["EpochStore", "RetentionPolicy", "SpanEntry"]

#: Catalog ``format`` marker and write version.
STORE_FORMAT = "repro-epoch-store"
STORE_VERSION = 1
#: Header kind of an engine snapshot pointing at a store directory.
STORE_POINTER_KIND = "epoch-store"

_CATALOG_NAME = "catalog.json"
_SEGMENT_DIR = "segments"
_SKETCH_PREFIX = "sketch:"
#: Default LRU budget for paged segment bytes (1 MiB).
DEFAULT_CACHE_BYTES = 1 << 20


@dataclass(frozen=True, slots=True)
class RetentionPolicy:
    """What the store is allowed to forget.

    Attributes
    ----------
    max_epochs:
        Keep at most this many trailing epochs addressable; older spans
        are evicted whole (the floor advances in span-sized steps, so
        slightly more may be retained until a span boundary passes).
    max_bytes:
        Evict oldest spans while total segment bytes exceed this.
    min_granularity:
        Power-of-two span length below which compacted spans are
        evicted once their covering aligned ancestor exists.  Old
        windows stay *exact* at this granularity; finer old windows
        raise :class:`~repro.errors.EpochStoreError`.
    """

    max_epochs: int | None = None
    max_bytes: int | None = None
    min_granularity: int = 1

    def __post_init__(self) -> None:
        if self.max_epochs is not None and self.max_epochs < 1:
            raise ValueError(f"max_epochs must be >= 1, got {self.max_epochs}")
        if self.max_bytes is not None and self.max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {self.max_bytes}")
        g = self.min_granularity
        if g < 1 or (g & (g - 1)) != 0:
            raise ValueError(
                f"min_granularity must be a power of two >= 1, got {g}"
            )

    def to_json(self) -> dict:
        return {
            "max_epochs": self.max_epochs,
            "max_bytes": self.max_bytes,
            "min_granularity": self.min_granularity,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "RetentionPolicy":
        return cls(
            max_epochs=doc.get("max_epochs"),
            max_bytes=doc.get("max_bytes"),
            min_granularity=int(doc.get("min_granularity", 1)),
        )


@dataclass(frozen=True, slots=True)
class SpanEntry:
    """One catalog entry: the segment holding delta span ``(start, end]``."""

    start: int
    end: int
    file: str
    nbytes: int
    crc32: int

    @property
    def length(self) -> int:
        return self.end - self.start


def _span_file(start: int, end: int) -> str:
    return f"span-{start:06d}-{end:06d}.blob"


def _head_file(epoch: int) -> str:
    return f"head-{epoch:06d}.blob"


class EpochStore:
    """A durable, compacting, lazily-paged store of sealed epochs.

    Parameters
    ----------
    root:
        Store directory.  Opened if it holds a catalog, created (along
        with missing parents) otherwise; a non-empty directory without
        a catalog is refused rather than adopted.
    retention:
        :class:`RetentionPolicy` applied from now on.  ``None`` keeps
        the persisted policy (or no limits for a new store).
    horizon:
        Epochs younger than this stay as length-1 spans; older epochs
        are compacted into dyadic spans.  ``None`` keeps the persisted
        value (0 — compact eagerly — for a new store).
    cache_bytes:
        LRU budget for paged segment bytes (process-local, not
        persisted).
    """

    def __init__(
        self,
        root: "str | os.PathLike[str]",
        *,
        retention: RetentionPolicy | None = None,
        horizon: int | None = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
    ):
        if horizon is not None and horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        if cache_bytes < 1:
            raise ValueError(f"cache_bytes must be >= 1, got {cache_bytes}")
        self.root = pathlib.Path(root)
        self.cache_bytes = int(cache_bytes)
        self._segments = self.root / _SEGMENT_DIR
        self._entries: dict[tuple[int, int], SpanEntry] = {}
        self._by_start: dict[int, list[tuple[int, int]]] | None = None
        self._boundaries: list[int] = []
        self._epoch_tokens: list[int] = []
        self._base = 0
        self._kind: str | None = None
        self._seed: int | None = None
        self._n = 0
        self._head: dict | None = None
        self._head_cache: bytes | None = None
        self._cache: OrderedDict[str, bytes] = OrderedDict()
        self._resident = 0
        self.disk_loads = 0
        self._defer_commit = False
        self._deferred_stale: list[str] = []
        self.retention = retention if retention is not None else RetentionPolicy()
        self.horizon = horizon if horizon is not None else 0
        if (self.root / _CATALOG_NAME).exists():
            self._load_catalog()
            # Explicit arguments override the persisted policy.
            if retention is not None:
                self.retention = retention
            if horizon is not None:
                self.horizon = horizon
            self._sweep_orphans()
        else:
            self._create()

    @classmethod
    def open(
        cls,
        root: "str | os.PathLike[str]",
        *,
        retention: RetentionPolicy | None = None,
        horizon: int | None = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
    ) -> "EpochStore":
        """Open an existing store; refuse to create one."""
        if not (pathlib.Path(root) / _CATALOG_NAME).exists():
            raise EpochStoreError(f"no epoch store at {root!s} (no catalog)")
        return cls(
            root, retention=retention, horizon=horizon, cache_bytes=cache_bytes
        )

    @classmethod
    def from_timeline(
        cls,
        root: "str | os.PathLike[str]",
        timeline: EpochTimeline,
        *,
        retention: RetentionPolicy | None = None,
        horizon: int | None = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
    ) -> "EpochStore":
        """Seal a whole in-memory timeline into a fresh store.

        Bulk import defers the per-append catalog commit (each one
        re-serialises the whole catalog — O(T) per append, O(T^2) for a
        T-epoch import) to a single commit at the end.  Crash safety is
        preserved with the same commit-point argument as
        :meth:`append_checkpoint`: until the final catalog rename the
        store on disk is whatever it was before (here: empty), and a
        reopen sweeps the unreferenced segments.
        """
        store = cls(
            root, retention=retention, horizon=horizon, cache_bytes=cache_bytes
        )
        store._defer_commit = True
        try:
            for checkpoint in timeline.checkpoints:
                store.append_checkpoint(checkpoint)
        finally:
            store._defer_commit = False
        stale, store._deferred_stale = store._deferred_stale, []
        store._commit_catalog()
        store._cache_drop(set(stale))
        for name in stale:
            try:
                (store._segments / name).unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                continue
        return store

    # -- creation / catalog I/O -------------------------------------------------

    def _create(self) -> None:
        if self.root.exists() and any(self.root.iterdir()):
            raise EpochStoreError(
                f"{self.root!s} exists, is not empty, and holds no catalog — "
                "refusing to adopt it as an epoch store"
            )
        self._segments.mkdir(parents=True, exist_ok=True)
        self._commit_catalog()

    def _catalog_doc(self) -> dict:
        spans = [
            {
                "start": e.start, "end": e.end, "file": e.file,
                "bytes": e.nbytes, "crc32": e.crc32,
            }
            for e in sorted(self._entries.values(), key=lambda e: (e.start, e.end))
        ]
        return {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "sketch_kind": self._kind,
            "sketch_seed": self._seed,
            "n": self._n,
            "base": self._base,
            "epoch_tokens": list(self._epoch_tokens),
            "boundaries": list(self._boundaries),
            "horizon": self.horizon,
            "retention": self.retention.to_json(),
            "head": dict(self._head) if self._head is not None else None,
            "spans": spans,
        }

    @staticmethod
    def _canonical(doc: dict) -> bytes:
        return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()

    def _commit_catalog(self) -> None:
        """Atomically publish the current in-memory state as the catalog.

        Segments referenced by the new catalog are already on disk (each
        tmp-then-renamed), so the rename below is the single commit
        point: before it the old catalog and its segments are intact,
        after it the new state is.
        """
        doc = self._catalog_doc()
        doc["self_crc32"] = zlib.crc32(self._canonical(doc)) & 0xFFFFFFFF
        payload = json.dumps(doc, sort_keys=True, indent=1).encode() + b"\n"
        tmp = self.root / (_CATALOG_NAME + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.root / _CATALOG_NAME)

    def _load_catalog(self) -> None:
        path = self.root / _CATALOG_NAME
        try:
            doc = json.loads(path.read_bytes())
        except (OSError, ValueError) as err:
            raise StoreCorruptionError(
                f"epoch-store catalog {path!s} is unreadable or not valid "
                f"JSON: {err}"
            ) from err
        if not isinstance(doc, dict) or doc.get("format") != STORE_FORMAT:
            raise StoreCorruptionError(
                f"{path!s} is not an epoch-store catalog "
                f"(format={doc.get('format')!r} if it parses at all)"
            )
        version = doc.get("version")
        if not isinstance(version, int) or version > STORE_VERSION:
            raise EpochStoreError(
                f"catalog version {version!r} is newer than this library "
                f"supports (<= {STORE_VERSION})"
            )
        recorded = doc.pop("self_crc32", None)
        actual = zlib.crc32(self._canonical(doc)) & 0xFFFFFFFF
        if recorded != actual:
            raise StoreCorruptionError(
                f"catalog checksum mismatch (recorded {recorded!r}, body "
                f"hashes to {actual}) — corrupt or tampered catalog"
            )
        try:
            self._kind = doc["sketch_kind"]
            self._seed = doc["sketch_seed"]
            self._n = int(doc["n"] or 0)
            self._base = int(doc["base"])
            self._epoch_tokens = [int(t) for t in doc["epoch_tokens"]]
            self._boundaries = [int(b) for b in doc["boundaries"]]
            self.horizon = int(doc["horizon"])
            self.retention = RetentionPolicy.from_json(doc["retention"])
            head = doc["head"]
            spans = doc["spans"]
            entries: dict[tuple[int, int], SpanEntry] = {}
            for span in spans:
                entry = SpanEntry(
                    start=int(span["start"]), end=int(span["end"]),
                    file=str(span["file"]), nbytes=int(span["bytes"]),
                    crc32=int(span["crc32"]),
                )
                if not (0 <= entry.start < entry.end) or \
                        os.sep in entry.file or "/" in entry.file:
                    raise ValueError(f"invalid span entry {span!r}")
                if (entry.start, entry.end) in entries:
                    raise ValueError(f"duplicate span {span!r}")
                entries[(entry.start, entry.end)] = entry
        except (KeyError, TypeError, ValueError) as err:
            raise StoreCorruptionError(
                f"catalog {path!s} fails schema validation: {err}"
            ) from err
        if head is not None and not (
            isinstance(head, dict)
            and isinstance(head.get("epoch"), int)
            and isinstance(head.get("file"), str)
        ):
            raise StoreCorruptionError(f"catalog head entry invalid: {head!r}")
        epochs = len(self._boundaries)
        if len(self._epoch_tokens) != epochs or \
                (epochs > 0) != (head is not None):
            raise StoreCorruptionError(
                "catalog epoch bookkeeping inconsistent "
                f"({len(self._epoch_tokens)} token counts, {epochs} "
                f"boundaries, head={'set' if head else 'absent'})"
            )
        for start, end in entries:
            if end > epochs or start < 0:
                raise StoreCorruptionError(
                    f"catalog span ({start}, {end}] reaches outside the "
                    f"{epochs} recorded epochs"
                )
        self._entries = entries
        self._head = head
        self._by_start = None

    def _sweep_orphans(self) -> None:
        """Delete store-named segment files the catalog does not reference.

        Orphans are the benign residue of an append interrupted between
        segment write and catalog rename; sweeping them (best-effort,
        only files matching our naming scheme) keeps re-opened stores
        from accreting garbage.  Foreign files are left alone.
        """
        if not self._segments.is_dir():
            raise StoreCorruptionError(
                f"epoch store {self.root!s} lost its segment directory"
            )
        live = {e.file for e in self._entries.values()}
        if self._head is not None:
            live.add(self._head["file"])
        for path in sorted(self._segments.iterdir()):
            name = path.name
            ours = (
                (name.startswith(("span-", "head-")) and name.endswith(".blob"))
                or name.endswith(".tmp")
            )
            if ours and name not in live:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - best-effort sweep
                    continue

    def _write_segment(self, name: str, payload: bytes) -> None:
        tmp = self._segments / (name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._segments / name)

    # -- introspection ----------------------------------------------------------

    @property
    def epochs(self) -> int:
        """Number of epochs ever sealed (including evicted ones)."""
        return len(self._boundaries)

    @property
    def base(self) -> int:
        """Retention floor: epochs ``<= base`` have been evicted."""
        return self._base

    @property
    def boundaries(self) -> tuple[int, ...]:
        """Cumulative token position at the end of each epoch."""
        return tuple(self._boundaries)

    @property
    def sketch_kind(self) -> str:
        """Blob-header kind of the stored sketch (``sketch:...``)."""
        if self._kind is None:
            raise EpochStoreError("store is empty; no sketch kind recorded yet")
        return self._kind

    @property
    def seed(self) -> int:
        """Master seed of the stored sketch."""
        if self._seed is None:
            raise EpochStoreError("store is empty; no seed recorded yet")
        return int(self._seed)

    @property
    def n(self) -> int:
        """Node universe of the stored sketch."""
        return self._n

    @property
    def span_count(self) -> int:
        """Number of live span segments."""
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """On-disk bytes of all live segments (spans + head)."""
        total = sum(e.nbytes for e in self._entries.values())
        if self._head is not None:
            total += int(self._head["bytes"])
        return total

    @property
    def resident_bytes(self) -> int:
        """Paged segment bytes currently held by the LRU cache."""
        return self._resident

    def spans(self) -> tuple[SpanEntry, ...]:
        """Live span entries, ordered by (start, end)."""
        return tuple(
            sorted(self._entries.values(), key=lambda e: (e.start, e.end))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EpochStore(root={str(self.root)!r}, epochs={self.epochs}, "
            f"base={self._base}, spans={len(self._entries)}, "
            f"bytes={self.total_bytes})"
        )

    # -- paging -----------------------------------------------------------------

    def _cache_put(self, name: str, data: bytes) -> None:
        self._cache[name] = data
        self._cache.move_to_end(name)
        self._resident += len(data)
        # Trim the least-recently-used entries past the budget, always
        # keeping the entry just inserted.
        while self._resident > self.cache_bytes and len(self._cache) > 1:
            _evicted, blob = self._cache.popitem(last=False)
            self._resident -= len(blob)

    def _cache_drop(self, names: "set[str]") -> None:
        for name in names:
            blob = self._cache.pop(name, None)
            if blob is not None:
                self._resident -= len(blob)

    def _read_segment(self, name: str, nbytes: int, crc: int) -> bytes:
        path = self._segments / name
        try:
            data = path.read_bytes()
        except OSError as err:
            raise StoreCorruptionError(
                f"segment {name} is missing or unreadable: {err}"
            ) from err
        if len(data) != nbytes or zlib.crc32(data) & 0xFFFFFFFF != crc:
            raise StoreCorruptionError(
                f"segment {name} fails its catalog integrity check "
                f"({len(data)} bytes vs {nbytes} recorded; CRC mismatch "
                "or truncation) — corrupt or tampered segment"
            )
        self.disk_loads += 1
        return data

    def _segment_header(self, name: str, data: bytes) -> dict:
        try:
            header = peek_sketch_meta(data)
        except ValueError as err:
            raise StoreCorruptionError(
                f"segment {name} is not a parseable sketch blob: {err}"
            ) from err
        if header.get("__kind__") != self._kind or \
                header.get("seed") != self._seed:
            raise StoreCorruptionError(
                f"segment {name} holds kind={header.get('__kind__')!r} "
                f"seed={header.get('seed')!r}, catalog promises "
                f"kind={self._kind!r} seed={self._seed!r} — wrong or "
                "swapped segment"
            )
        return header

    def _page(self, entry: SpanEntry) -> bytes:
        """The verified payload bytes of one span segment (LRU-cached)."""
        cached = self._cache.get(entry.file)
        if cached is not None:
            self._cache.move_to_end(entry.file)
            return cached
        data = self._read_segment(entry.file, entry.nbytes, entry.crc32)
        header = self._segment_header(entry.file, data)
        span = header.get("epoch", {}).get("span") \
            if isinstance(header.get("epoch"), dict) else None
        if span != [entry.start, entry.end]:
            raise StoreCorruptionError(
                f"segment {entry.file} records span {span!r}, catalog "
                f"promises ({entry.start}, {entry.end}] — misplaced segment"
            )
        self._cache_put(entry.file, data)
        return data

    def head_payload(self) -> bytes:
        """The cumulative checkpoint payload at the latest epoch."""
        if self._head is None:
            raise EpochStoreError("store is empty; no head checkpoint yet")
        if self._head_cache is not None:
            return self._head_cache
        name = str(self._head["file"])
        data = self._read_segment(
            name, int(self._head["bytes"]), int(self._head["crc32"])
        )
        header = self._segment_header(name, data)
        epoch_meta = header.get("epoch")
        recorded = epoch_meta.get("epoch") if isinstance(epoch_meta, dict) \
            else None
        if recorded != self._head["epoch"]:
            raise StoreCorruptionError(
                f"head segment {name} records epoch {recorded!r}, catalog "
                f"promises {self._head['epoch']} — misplaced segment"
            )
        self._head_cache = data
        return data

    def verify(self) -> int:
        """Read and integrity-check every live segment; return the count.

        Raises :class:`~repro.errors.StoreCorruptionError` on the first
        bad segment.  Bypasses the LRU so a full scan cannot evict a
        hot working set.
        """
        checked = 0
        for entry in self.spans():
            data = self._read_segment(entry.file, entry.nbytes, entry.crc32)
            self._segment_header(entry.file, data)
            checked += 1
        if self._head is not None:
            self.head_payload()
            checked += 1
        return checked

    # -- appending --------------------------------------------------------------

    def append_checkpoint(self, checkpoint: EpochCheckpoint) -> SpanEntry:
        """Seal one cumulative checkpoint into the store.

        Checkpoints must arrive in order (``epoch == epochs + 1``) and
        carry the same sketch kind and seed as every earlier one.  The
        stored segment is the epoch's *delta* (new cumulative minus the
        previous head, exact by linearity); compaction and retention
        run before the catalog commits, so the store is never published
        in an intermediate state.
        """
        if checkpoint.epoch != self.epochs + 1:
            raise EpochStoreError(
                f"checkpoint carries epoch {checkpoint.epoch}, store "
                f"expects {self.epochs + 1} — out-of-order append"
            )
        try:
            header = peek_sketch_meta(checkpoint.payload)
        except ValueError as err:
            raise EpochStoreError(
                f"checkpoint payload is not a sketch blob: {err}"
            ) from err
        kind = header.get("__kind__")
        if not isinstance(kind, str) or not kind.startswith(_SKETCH_PREFIX):
            raise EpochStoreError(
                f"checkpoint payload holds a {kind!r}, not a serialised sketch"
            )
        if self._kind is None:
            self._kind = kind
            self._seed = header.get("seed")
            self._n = int(header.get("n", 0) or 0)
        elif kind != self._kind or header.get("seed") != self._seed:
            raise EpochStoreError(
                f"checkpoint kind={kind!r} seed={header.get('seed')!r} does "
                f"not match the store's kind={self._kind!r} "
                f"seed={self._seed!r}"
            )
        epoch = checkpoint.epoch
        try:
            sketch = load_sketch(checkpoint.payload)
            if epoch > 1:
                subtract_sketch_bytes(sketch, self.head_payload())
        except ValueError as err:
            raise EpochStoreError(
                f"checkpoint payload failed to load: {err}"
            ) from err
        delta = dump_sketch(sketch, epoch_meta={"span": [epoch - 1, epoch]})
        span_name = _span_file(epoch - 1, epoch)
        self._write_segment(span_name, delta)
        stale: list[str] = []
        if self._head is not None:
            stale.append(str(self._head["file"]))
        head_name = _head_file(epoch)
        self._write_segment(head_name, checkpoint.payload)
        created = SpanEntry(
            start=epoch - 1, end=epoch, file=span_name,
            nbytes=len(delta), crc32=zlib.crc32(delta) & 0xFFFFFFFF,
        )
        self._entries[(epoch - 1, epoch)] = created
        self._by_start = None
        self._boundaries.append(checkpoint.cumulative_tokens)
        self._epoch_tokens.append(checkpoint.tokens)
        self._head = {
            "epoch": epoch, "file": head_name,
            "bytes": len(checkpoint.payload),
            "crc32": zlib.crc32(checkpoint.payload) & 0xFFFFFFFF,
        }
        self._head_cache = checkpoint.payload
        stale += self._compact()
        stale += self._enforce_retention()
        if self._defer_commit:
            # Bulk import (from_timeline): segment names are never
            # reused, so stale files can all be dropped after the one
            # final commit.
            self._deferred_stale += stale
        else:
            self._commit_catalog()
            self._cache_drop(set(stale))
            for name in stale:
                try:
                    (self._segments / name).unlink()
                except OSError:  # pragma: no cover - best-effort cleanup
                    continue
        # The entry may already have been compacted away (granularity
        # eviction folds fresh length-1 spans into their ancestor as
        # soon as it exists), so return the created entry itself.
        return created

    # -- compaction & retention -------------------------------------------------

    def _compact(self) -> "list[str]":
        """Build dyadic parent spans over the pre-horizon region.

        Bottom-up: a parent ``(a, a+2L]`` is written whenever both
        aligned children of length ``L`` exist, the parent lies fully
        before the horizon frontier, and it starts at or above the
        retention floor.  Then, under a ``min_granularity`` policy,
        spans shorter than the granularity whose covering aligned
        ancestor now exists are scheduled for deletion.  Returns the
        segment file names to delete after the catalog commits.
        """
        frontier = self.epochs - self.horizon
        length = 2
        while length <= frontier - self._base:
            half = length // 2
            start = -(-self._base // length) * length  # first aligned >= base
            while start + length <= frontier:
                key = (start, start + length)
                if key not in self._entries and \
                        (start, start + half) in self._entries and \
                        (start + half, start + length) in self._entries:
                    self._write_parent(start, start + length, half)
                start += length
            length *= 2
        stale: list[str] = []
        g = self.retention.min_granularity
        if g > 1:
            for key in sorted(self._entries):
                s, e = key
                if e - s >= g:
                    continue
                anchor = (s // g) * g
                if (anchor, anchor + g) in self._entries:
                    stale.append(self._entries.pop(key).file)
            if stale:
                self._by_start = None
        return stale

    def _write_parent(self, start: int, end: int, half: int) -> None:
        left = self._entries[(start, start + half)]
        right = self._entries[(start + half, end)]
        try:
            sketch = load_sketch(self._page(left))
            merge_sketch_bytes(sketch, self._page(right))
        except ValueError as err:
            raise StoreCorruptionError(
                f"cannot compact spans ({start}, {start + half}] + "
                f"({start + half}, {end}]: {err}"
            ) from err
        payload = dump_sketch(sketch, epoch_meta={"span": [start, end]})
        name = _span_file(start, end)
        self._write_segment(name, payload)
        self._entries[(start, end)] = SpanEntry(
            start=start, end=end, file=name, nbytes=len(payload),
            crc32=zlib.crc32(payload) & 0xFFFFFFFF,
        )
        self._by_start = None

    def _spans_at(self, start: int) -> "list[tuple[int, int]]":
        """Live spans starting at ``start``, widest first."""
        if self._by_start is None:
            by_start: dict[int, list[tuple[int, int]]] = {}
            for key in self._entries:
                by_start.setdefault(key[0], []).append(key)
            for lst in by_start.values():
                lst.sort(key=lambda k: -k[1])
            self._by_start = by_start
        return self._by_start.get(start, [])

    def _evict_through(self, new_base: int) -> "list[str]":
        """Drop every span reaching below ``new_base``; advance the floor."""
        stale = [
            self._entries.pop(key).file
            for key in sorted(self._entries)
            if key[0] < new_base
        ]
        self._base = new_base
        self._by_start = None
        return stale

    def _enforce_retention(self) -> "list[str]":
        stale: list[str] = []
        policy = self.retention
        if policy.max_epochs is not None:
            target = self.epochs - policy.max_epochs
            while self._base < target:
                # Largest span at the floor that lies wholly inside the
                # must-evict region; stop (retaining extra) when only a
                # span crossing the target remains.
                fit = [e for _s, e in self._spans_at(self._base) if e <= target]
                if not fit:
                    break
                stale += self._evict_through(fit[0])
        if policy.max_bytes is not None:
            while self.total_bytes > policy.max_bytes:
                # Smallest span at the floor (minimal loss per step);
                # never evict through the newest epoch.
                ends = [e for _s, e in self._spans_at(self._base) if e < self.epochs]
                if not ends:
                    break
                stale += self._evict_through(ends[-1])
        return stale

    # -- windows ----------------------------------------------------------------

    def plan_window(self, t1: int, t2: int) -> "list[SpanEntry]":
        """The greedy dyadic cover of ``[t1, t2)`` from live spans.

        At most ``2·log2(T) + horizon`` entries when the window is
        addressable; raises :class:`~repro.errors.EpochStoreError` when
        it reaches below the retention floor or falls between retained
        spans (finer than ``min_granularity`` in the compacted region).
        """
        if not 0 <= t1 < t2 <= self.epochs:
            raise ValueError(
                f"window [{t1}, {t2}) is not a valid epoch range within "
                f"[0, {self.epochs}]"
            )
        if t1 < self._base:
            raise EpochStoreError(
                f"window [{t1}, {t2}) reaches below the retention floor "
                f"{self._base}: epochs <= {self._base} have been evicted"
            )
        plan: list[SpanEntry] = []
        position = t1
        while position < t2:
            chosen: tuple[int, int] | None = None
            for key in self._spans_at(position):
                if key[1] <= t2:
                    chosen = key
                    break
            if chosen is None:
                raise EpochStoreError(
                    f"no stored span starts at epoch {position} within "
                    f"[{t1}, {t2}): the window is finer than the retained "
                    f"granularity (min_granularity="
                    f"{self.retention.min_granularity})"
                )
            plan.append(self._entries[chosen])
            position = chosen[1]
        return plan

    def window_payloads(self, t1: int, t2: int) -> "tuple[list[bytes], list[bytes]]":
        """Payloads to merge / subtract for ``[t1, t2)`` (store: merge-only)."""
        return [self._page(entry) for entry in self.plan_window(t1, t2)], []

    def window_sketch(self, t1: int, t2: int) -> Any:
        """Materialise the window ``[t1, t2)`` — exact, by linearity."""
        merge, _subtract = self.window_payloads(t1, t2)
        try:
            sketch = load_sketch(merge[0])
            for payload in merge[1:]:
                merge_sketch_bytes(sketch, payload)
        except ValueError as err:
            raise StoreCorruptionError(
                f"window [{t1}, {t2}) failed to materialise from verified "
                f"segments: {err}"
            ) from err
        return sketch

    def window_payload_bytes(self, t1: int, t2: int) -> int:
        """Segment bytes :meth:`window_sketch` pages for ``[t1, t2)``."""
        return sum(entry.nbytes for entry in self.plan_window(t1, t2))

    # -- engine snapshot pointer ------------------------------------------------

    def pointer_bytes(self) -> bytes:
        """A codec-v2 snapshot blob pointing at this store's catalog."""
        meta = {
            "root": str(self.root.resolve()),
            "epochs": self.epochs,
            "base": self._base,
            "sketch_kind": self._kind,
            "sketch_seed": self._seed,
            "n": self._n,
        }
        return _pack_raw(STORE_POINTER_KIND, meta, b"")

    @classmethod
    def from_pointer(
        cls,
        data: bytes,
        *,
        root: "str | os.PathLike[str] | None" = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
    ) -> "EpochStore":
        """Reopen the store a :meth:`pointer_bytes` snapshot names.

        ``root`` overrides the recorded directory (for stores that
        moved).  The reopened catalog must agree with the snapshot on
        sketch kind and seed; it may hold *more* epochs than the
        snapshot did (the store kept running).
        """
        header, _payload = _read_raw(data)
        if header.get("__kind__") != STORE_POINTER_KIND:
            raise ValueError(
                f"blob holds a {header.get('__kind__')!r}, expected "
                f"{STORE_POINTER_KIND!r}"
            )
        store = cls.open(root or str(header.get("root")),
                         cache_bytes=cache_bytes)
        if store.epochs and (
            store.sketch_kind != header.get("sketch_kind")
            or store.seed != header.get("sketch_seed")
        ):
            raise EpochStoreError(
                f"store at {store.root!s} holds kind="
                f"{store.sketch_kind!r} seed={store.seed}, snapshot "
                f"promises kind={header.get('sketch_kind')!r} "
                f"seed={header.get('sketch_seed')!r}"
            )
        if store.epochs < int(header.get("epochs", 0) or 0):
            raise EpochStoreError(
                f"store at {store.root!s} holds {store.epochs} epochs, "
                f"snapshot promises at least {header.get('epochs')}"
            )
        return store
