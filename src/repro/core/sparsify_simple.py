"""``SIMPLE-SPARSIFICATION`` — Fig. 2; Lemma 3.2 and Theorem 3.3.

Single-pass dynamic-stream cut sparsifier.  Extends MINCUT by keying
the sampling level of each edge on *its own connectivity* instead of
the global minimum cut:

1. (stream) maintain the nested subsampled graphs ``G_0 ⊇ G_1 ⊇ ...``
   and a ``k-EDGECONNECT`` witness ``H_i`` per level, with
   ``k = O(ε^{-2} log² n)``;
2. (post-processing) for each edge ``e``, find the first level ``j``
   where the *witness* connectivity ``λ_e(H_j)`` of its endpoints
   drops below ``k``; if ``e`` survived the subsampling to level ``j``
   (equivalently ``e ∈ H_j``), keep it with weight ``2^j``.

The analysis replaces Fung et al.'s independent-sampling bound by the
martingale argument of Lemma 3.5 — freezing an edge's weight at the
level where its connectivity budget is exhausted — because the nested
hierarchy samples edges *consistently*, not independently.

Weighted multigraphs (Section 3.5) are supported through the
``weight_scale`` parameter: an edge of multiplicity ``w`` contributes
``±w`` to the incidence vectors, witnesses carry weighted edges, and
the connectivity threshold is compared in weight units
(``λ_e(H_i) < k · weight_scale``).  The weight-class decomposition in
:mod:`repro.core.weighted` instantiates one sparsifier per dyadic
class with ``weight_scale = 2^{j+1}``.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import incompatible
from ..graphs import Graph, gomory_hu_tree
from ..hashing import HashSource
from ..kernels import get as _get_kernel
from ..sketch import ArenaBacked
from ..sketch.bank import CellBank
from ..streams import DynamicGraphStream, EdgeUpdate, StreamBatch
from ..util import ceil_log2
from .edge_connect import EdgeConnectivitySketch
from .sparsifier import Sparsifier

__all__ = ["SimpleSparsification", "default_sparsifier_k"]

_K_LEVEL_ROUTE = _get_kernel("level_route")


def default_sparsifier_k(n: int, epsilon: float, c_k: float) -> int:
    """Witness parameter ``k = max(2, c_k ε^{-2} log2² n)``.

    The paper's constant (Theorem 3.1, Fung et al.) is 253 with natural
    logs; laptop-scale experiments exhibit the guarantee with ``c_k``
    well below 1 — E2 sweeps it.
    """
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    log2n = math.log2(max(n, 2))
    return max(2, int(round(c_k * log2n * log2n / epsilon**2)))


class SimpleSparsification(ArenaBacked):
    """Single-pass dynamic-stream ε-sparsifier (Fig. 2).

    Parameters
    ----------
    n:
        Node universe size.
    epsilon:
        Target cut accuracy.
    source:
        Seed source.
    c_k:
        Constant scale for ``k`` (see :func:`default_sparsifier_k`).
    levels:
        Subsampling depth, default ``2 log2 n``.
    weight_scale:
        Upper bound on edge multiplicities in this (sub)graph; the
        connectivity-freeze threshold becomes ``k * weight_scale``
        (Lemma 3.6).  Leave at 1 for unweighted streams.
    rounds, rows, buckets:
        Forest-sketch tuning knobs.
    """

    #: Queries this class answers through the repro.api capability registry.
    CAPABILITIES = frozenset({"sparsifier"})

    def __init__(
        self,
        n: int,
        epsilon: float = 0.5,
        source: HashSource | None = None,
        c_k: float = 0.5,
        levels: int | None = None,
        weight_scale: float = 1.0,
        rounds: int | None = None,
        rows: int = 2,
        buckets: int = 4,
    ):
        if source is None:
            source = HashSource(0x51A9)
        if weight_scale < 1.0:
            raise ValueError(f"weight_scale must be >= 1, got {weight_scale}")
        self.n = n
        self.epsilon = epsilon
        self.c_k = c_k
        #: Seed of the constructing source (serialisation / merge checks).
        self.source_seed = getattr(source, "seed", None)
        self.k = default_sparsifier_k(n, epsilon, c_k)
        self.weight_scale = weight_scale
        self.levels = levels if levels is not None else 2 * ceil_log2(max(n, 2))
        self._level_source = source.derive(0x17)
        self.instances = [
            EdgeConnectivitySketch(
                n,
                self.k,
                source.derive(0x21, i),
                rounds=rounds,
                rows=rows,
                buckets=buckets,
            )
            for i in range(self.levels + 1)
        ]

    # -- stream side -----------------------------------------------------------

    def update(self, update: EdgeUpdate) -> None:
        """Route one edge update into levels ``0 .. level(e)``."""
        e = update.lo * self.n - update.lo * (update.lo + 1) // 2 + (
            update.hi - update.lo - 1
        )
        top = int(self._level_source.levels(e, self.levels))
        for i in range(top + 1):
            self.instances[i].update(update)

    def consume(self, stream: DynamicGraphStream) -> "SimpleSparsification":
        """Feed an entire stream (single pass), batched per level."""
        from ..api.deprecation import warn_deprecated

        warn_deprecated(
            f"{type(self).__name__}.consume()",
            "GraphSketchEngine.for_spec(spec).ingest(stream)",
        )
        if stream.n != self.n:
            raise ValueError("stream and sketch node universes differ")
        return self.consume_batch(stream.as_batch())

    def consume_batch(self, batch: StreamBatch) -> "SimpleSparsification":
        """Ingest one columnar batch, subsampled into every level.

        The ``level_route`` kernel sorts the batch once by deepest
        surviving level, so every level's payload is a nested prefix of
        the sorted batch instead of a fresh boolean-mask copy; scatter
        results are order-independent, so the bytes are unchanged.
        """
        if batch.n != self.n:
            raise ValueError("batch and sketch node universes differ")
        top = np.asarray(
            self._level_source.levels(batch.ranks, self.levels), dtype=np.int64
        )
        order, survivors = _K_LEVEL_ROUTE(top, self.levels)
        lo = batch.lo[order]
        hi = batch.hi[order]
        delta = batch.delta[order]
        ranks = batch.ranks[order]
        for i, instance in enumerate(self.instances):
            keep = int(survivors[i])
            if keep == 0:
                break
            instance.update_edges(
                lo[:keep], hi[:keep], delta[:keep], items=ranks[:keep],
            )
        return self

    def _cell_banks(self) -> list[CellBank]:
        """Constituent cell banks in serialisation/arena order."""
        return [b for inst in self.instances for b in inst._cell_banks()]

    def _require_combinable(self, other: "SimpleSparsification", op: str = "merge") -> None:
        for field in ("n", "levels", "k"):
            if getattr(other, field) != getattr(self, field):
                raise incompatible(
                    "SimpleSparsification", field, getattr(self, field),
                    getattr(other, field), op=op)
        for mine, theirs in zip(self.instances, other.instances):
            mine._require_combinable(theirs, op=op)

    def merge(self, other: "SimpleSparsification") -> None:
        """Merge an identically-seeded sketch (distributed streams)."""
        self._require_combinable(other)
        self.arena.merge(other.arena)

    def subtract(self, other: "SimpleSparsification") -> None:
        """Subtract an identically-seeded sketch (temporal windows)."""
        self._require_combinable(other, op="subtract")
        self.arena.subtract(other.arena)

    def negate(self) -> None:
        """Negate the sketched stream in place."""
        self.arena.negate()

    # -- post-processing ---------------------------------------------------------

    def sparsifier(self) -> Sparsifier:
        """Run Fig. 2, step 3 and return the weighted sparsifier.

        For each witness edge ``e`` the freeze level
        ``j_e = min{i : λ_e(H_i) < k·weight_scale}`` is located with one
        Gomory–Hu tree per level (all pairwise witness connectivities in
        ``n - 1`` max-flows); ``e`` joins the sparsifier iff it is
        present in ``H_{j_e}``, with weight ``2^{j_e} × multiplicity``.
        """
        witnesses = [inst.witness() for inst in self.instances]
        trees = [
            gomory_hu_tree(h) if h.num_edges() > 0 else None for h in witnesses
        ]
        threshold = self.k * self.weight_scale

        result = Graph(self.n)
        edge_levels: dict[tuple[int, int], int] = {}
        seen: set[tuple[int, int]] = set()
        for h in witnesses:
            for u, v, _w in h.weighted_edges():
                key = (u, v)
                if key in seen:
                    continue
                seen.add(key)
                j = self._freeze_level(trees, u, v, threshold)
                if j is None:
                    continue
                mult = witnesses[j].weight(u, v)
                if mult > 0:
                    result.add_edge(u, v, (2**j) * mult)
                    edge_levels[key] = j
        return Sparsifier(
            graph=result,
            epsilon=self.epsilon,
            edge_levels=edge_levels,
            memory_cells=self.memory_cells(),
        )

    def _freeze_level(
        self, trees: list, u: int, v: int, threshold: float
    ) -> int | None:
        """First level where the witness u-v connectivity drops below k."""
        for i, tree in enumerate(trees):
            if tree is None:
                return i
            if tree.min_cut_value(u, v) < threshold:
                return i
        return None

    def witnesses(self) -> list[Graph]:
        """Per-level witnesses ``H_i`` (diagnostics / experiments)."""
        return [inst.witness() for inst in self.instances]

    def memory_cells(self) -> int:
        """Total 1-sparse cells across all levels."""
        return sum(inst.memory_cells() for inst in self.instances)
