"""``SPARSIFICATION`` — Fig. 3; Theorems 3.4 and 3.7.

The space-efficient sparsifier.  Instead of paying for a full
``k-EDGECONNECT`` witness with ``k = O(ε^{-2} log² n)`` at every level,
it runs:

1. a **rough sparsifier** — SIMPLE-SPARSIFICATION at constant accuracy
   ``ε = 1/2`` — whose job is only to estimate every edge's
   connectivity within a constant factor;
2. per subsampling level ``i`` and node ``u``, a ``k-RECOVERY`` sketch
   of the signed incidence vector ``x^{u,i}`` of ``G_i`` (Eq. 1);
3. post-processing over the **Gomory–Hu tree** ``T`` of the rough
   sparsifier: each tree edge induces a minimum cut ``C``; the
   appropriate sampling level ``j`` is computed from the cut weight;
   summing the level-``j`` recovery sketches over the shore ``A``
   cancels internal edges (Eq. 1's telescoping) and k-RECOVERY returns
   every edge of ``G_j`` crossing ``C``; a recovered edge ``(u, v)`` is
   kept — with weight ``2^j`` — iff the *bottleneck* tree edge on its
   u-v path is exactly the tree edge being processed, which assigns
   each graph edge to at most one cut and samples it at a level matched
   to its connectivity.

If a recovery fails (more than ``k`` edges crossed the cut at level
``j`` — a low-probability event the theory budgets for), we escalate to
level ``j+1`` where the expected crossing count halves, and record the
escalation; the kept weight escalates with the level, so the estimator
stays unbiased.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import RecoveryFailed, incompatible
from ..graphs import Graph, gomory_hu_tree
from ..hashing import HashSource
from ..sketch import ArenaBacked, SparseRecoveryBank
from ..sketch.bank import CellBank
from ..streams import DynamicGraphStream, EdgeUpdate, StreamBatch
from ..util import ceil_log2, pair_unrank
from .sparsifier import Sparsifier
from .sparsify_simple import SimpleSparsification, default_sparsifier_k

__all__ = ["Sparsification", "SparsificationDiagnostics"]


@dataclass(slots=True)
class SparsificationDiagnostics:
    """Counters exposed after post-processing (experiment E3 reports them)."""

    cuts_processed: int = 0
    recoveries_failed: int = 0
    level_escalations: int = 0
    edges_recovered: int = 0
    edges_kept: int = 0


class Sparsification(ArenaBacked):
    """Single-pass dynamic-stream ε-sparsifier (Fig. 3).

    Parameters
    ----------
    n:
        Node universe size.
    epsilon:
        Target cut accuracy.
    source:
        Seed source.
    c_k:
        Constant scale for the k-RECOVERY capacity
        (``k = c_k ε^{-2} log2² n``, Fig. 3 step 3b).
    c_rough:
        Constant scale handed to the rough sparsifier.
    c_level:
        Constant inside the level rule of step 4(b),
        ``j = floor(log2(max(c_level · w(e) ε² / log2 n, 1)))``.
    levels:
        Subsampling depth, default ``2 log2 n``.
    rounds, rows, buckets:
        Rough-sparsifier tuning knobs.
    """

    #: Queries this class answers through the repro.api capability registry.
    CAPABILITIES = frozenset({"sparsifier"})

    def __init__(
        self,
        n: int,
        epsilon: float = 0.5,
        source: HashSource | None = None,
        c_k: float = 0.5,
        c_rough: float = 0.5,
        c_level: float = 1.0,
        levels: int | None = None,
        rounds: int | None = None,
        rows: int = 2,
        buckets: int = 4,
    ):
        if source is None:
            source = HashSource(0xBE77)
        self.n = n
        self.epsilon = epsilon
        self.c_k = c_k
        self.c_rough = c_rough
        self.c_level = c_level
        #: Seed of the constructing source (serialisation / merge checks).
        self.source_seed = getattr(source, "seed", None)
        self.levels = levels if levels is not None else 2 * ceil_log2(max(n, 2))
        self.k = default_sparsifier_k(n, epsilon, c_k)
        self.rough = SimpleSparsification(
            n,
            epsilon=0.5,
            source=source.derive(0x52),
            c_k=c_rough,
            levels=self.levels,
            rounds=rounds,
            rows=rows,
            buckets=buckets,
        )
        self._level_source = source.derive(0x33)
        domain = n * (n - 1) // 2
        self.recovery = SparseRecoveryBank(
            groups=self.levels + 1,
            instances=n,
            domain=domain,
            k=self.k,
            source=source.derive(0x44),
        )
        self.diagnostics = SparsificationDiagnostics()

    # -- stream side -----------------------------------------------------------

    def update(self, update: EdgeUpdate) -> None:
        """Feed one token to the rough sparsifier and the recovery bank."""
        self.rough.update(update)
        lo, hi, delta = update.lo, update.hi, update.delta
        e = lo * self.n - lo * (lo + 1) // 2 + (hi - lo - 1)
        top = int(self._level_source.levels(e, self.levels))
        groups = np.repeat(np.arange(top + 1, dtype=np.int64), 2)
        insts = np.tile(np.array([lo, hi], dtype=np.int64), top + 1)
        items = np.full(2 * (top + 1), e, dtype=np.int64)
        deltas = np.tile(np.array([delta, -delta], dtype=np.int64), top + 1)
        self.recovery.update(groups, insts, items, deltas)

    def consume(self, stream: DynamicGraphStream) -> "Sparsification":
        """Feed an entire stream (single pass), batched."""
        from ..api.deprecation import warn_deprecated

        warn_deprecated(
            f"{type(self).__name__}.consume()",
            "GraphSketchEngine.for_spec(spec).ingest(stream)",
        )
        if stream.n != self.n:
            raise ValueError("stream and sketch node universes differ")
        return self.consume_batch(stream.as_batch())

    def consume_batch(self, batch: StreamBatch) -> "Sparsification":
        """Ingest one columnar batch (rough sparsifier + recovery bank)."""
        if batch.n != self.n:
            raise ValueError("batch and sketch node universes differ")
        if len(batch) == 0:
            return self
        self.rough.consume_batch(batch)
        lo, hi, dl, e = batch.lo, batch.hi, batch.delta, batch.ranks
        top = np.asarray(self._level_source.levels(e, self.levels), dtype=np.int64)
        lengths = top + 1
        total = int(lengths.sum())
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        rep_group = np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)
        rep_lo = np.repeat(lo, lengths)
        rep_hi = np.repeat(hi, lengths)
        rep_e = np.repeat(e, lengths)
        rep_d = np.repeat(dl, lengths)
        groups = np.concatenate([rep_group, rep_group])
        insts = np.concatenate([rep_lo, rep_hi])
        items = np.concatenate([rep_e, rep_e])
        deltas = np.concatenate([rep_d, -rep_d])
        self.recovery.update(groups, insts, items, deltas)
        return self

    def _cell_banks(self) -> list[CellBank]:
        """Constituent cell banks in serialisation/arena order."""
        return self.rough._cell_banks() + [self.recovery.bank]

    def _require_combinable(self, other: "Sparsification", op: str = "merge") -> None:
        for field in ("n", "levels", "k"):
            if getattr(other, field) != getattr(self, field):
                raise incompatible(
                    "Sparsification", field, getattr(self, field),
                    getattr(other, field), op=op)
        self.rough._require_combinable(other.rough, op=op)
        self.recovery._require_combinable(other.recovery, op=op)

    def merge(self, other: "Sparsification") -> None:
        """Merge an identically-seeded sketch (distributed streams)."""
        self._require_combinable(other)
        self.arena.merge(other.arena)

    def subtract(self, other: "Sparsification") -> None:
        """Subtract an identically-seeded sketch (temporal windows)."""
        self._require_combinable(other, op="subtract")
        self.arena.subtract(other.arena)

    def negate(self) -> None:
        """Negate the sketched stream in place."""
        self.arena.negate()

    # -- post-processing ---------------------------------------------------------

    def _target_level(self, cut_weight: float) -> int:
        """Fig. 3 step 4(b): the sampling level matched to a cut weight."""
        log2n = math.log2(max(self.n, 2))
        raw = max(self.c_level * cut_weight * self.epsilon**2 / log2n, 1.0)
        return min(int(math.floor(math.log2(raw))), self.levels)

    def sparsifier(self) -> Sparsifier:
        """Run Fig. 3, step 4 and return the weighted sparsifier."""
        diag = SparsificationDiagnostics()
        rough_sp = self.rough.sparsifier()
        rough_graph = rough_sp.graph
        result = Graph(self.n)
        edge_levels: dict[tuple[int, int], int] = {}

        if rough_graph.num_edges() == 0:
            self.diagnostics = diag
            return Sparsifier(
                graph=result,
                epsilon=self.epsilon,
                edge_levels=edge_levels,
                memory_cells=self.memory_cells(),
            )

        tree = gomory_hu_tree(rough_graph)
        for a, b, w in tree.tree_edges():
            diag.cuts_processed += 1
            side = sorted(tree.induced_cut_side(a, b))
            j = self._target_level(w)
            crossing: dict[int, int] | None = None
            while j <= self.levels:
                try:
                    crossing = self.recovery.decode_sum(j, side)
                    break
                except RecoveryFailed:
                    diag.recoveries_failed += 1
                    j += 1
                    diag.level_escalations += 1
            if crossing is None:
                continue
            for item, value in crossing.items():
                diag.edges_recovered += 1
                u, v = pair_unrank(item, self.n)
                f = tree.min_weight_edge_on_path(min(u, v), max(u, v))
                if not tree.same_edge(f, (a, b, w)):
                    continue
                key = (u, v)
                if key in edge_levels:
                    continue
                mult = abs(value)
                result.add_edge(u, v, float((2**j) * mult))
                edge_levels[key] = j
                diag.edges_kept += 1
        self.diagnostics = diag
        return Sparsifier(
            graph=result,
            epsilon=self.epsilon,
            edge_levels=edge_levels,
            memory_cells=self.memory_cells(),
        )

    def memory_cells(self) -> int:
        """Total 1-sparse cells (rough sparsifier + recovery bank)."""
        return self.rough.memory_cells() + self.recovery.memory_cells()
