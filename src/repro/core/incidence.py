"""Signed node–edge incidence encoding (Eq. 1 of the paper).

Every node ``u`` is associated with the vector
``x^u ∈ {-A(e), 0, +A(e)}^{C(n,2)}``:

    x^u[(v, w)] = +A(v, w)   if u = v   (u is the smaller endpoint)
    x^u[(v, w)] = -A(v, w)   if u = w   (u is the larger endpoint)
    x^u[(v, w)] = 0          otherwise

The crucial cancellation property: for any node set ``A``,

    support(Σ_{u∈A} x^u)  =  E(A, V \\ A)

— edges inside ``A`` appear once with ``+`` and once with ``-`` and
vanish, edges crossing the cut survive with a sign telling which
endpoint lies inside ``A`` and magnitude equal to the edge multiplicity.
The AGM spanning-forest sketch, ``k-EDGECONNECT``, and the k-RECOVERY
step 4(c) of SPARSIFICATION all ride on this identity.

This module centralises the *update rule*: given an edge update
``(u, v, Δ)`` it emits the (sampler, item, delta) rows to feed into a
sketch bank.
"""

from __future__ import annotations

import numpy as np

from ..streams import EdgeUpdate
from ..util import pair_count, pair_rank, pair_unrank

__all__ = [
    "edge_domain",
    "incidence_rows",
    "decode_incidence_sample",
]


def edge_domain(n: int) -> int:
    """Dimension ``C(n, 2)`` of the edge-indexed vectors."""
    return pair_count(n)


def incidence_rows(
    update: EdgeUpdate, n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The two signed rows an edge update contributes.

    Returns parallel arrays ``(nodes, items, deltas)`` of length 2:
    the smaller endpoint receives ``+delta`` and the larger ``-delta``
    at the edge's pair rank.
    """
    lo, hi = update.lo, update.hi
    e = pair_rank(lo, hi, n)
    nodes = np.array([lo, hi], dtype=np.int64)
    items = np.array([e, e], dtype=np.int64)
    deltas = np.array([update.delta, -update.delta], dtype=np.int64)
    return nodes, items, deltas


def decode_incidence_sample(item: int, value: int, n: int) -> tuple[int, int, int]:
    """Decode an ℓ₀ sample of a summed incidence vector.

    Returns ``(inside, outside, multiplicity)``: the endpoint on the
    sampled side (positive sign ⇒ the smaller endpoint is inside the
    summed node set), the endpoint outside, and the edge multiplicity
    ``|value|``.
    """
    lo, hi = pair_unrank(item, n)
    if value > 0:
        return lo, hi, value
    return hi, lo, -value
