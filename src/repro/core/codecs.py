"""Serialisation codecs for the high-level sketch classes.

Registers a :class:`~repro.sketch.serialize.SketchCodec` for every
linear sketch a site might ship to a coordinator (Section 1.1): the
spanning-forest / k-EDGECONNECT substrates, the MINCUT and sparsifier
hierarchies, the weighted and subgraph-count sketches, and the
companion-property sketches.  Each codec records the constructor
parameters needed to rebuild an identically-seeded empty twin, plus the
deterministic order of the constituent cell banks whose arrays form the
payload.

The adaptive spanner builders (:class:`BaswanaSenSpanner`,
:class:`RecurseConnectSpanner`) are deliberately absent: they are
*drivers* holding no persistent linear state between batches — their
per-batch banks ship through the primitive bank format instead (see
:meth:`BaswanaSenSpanner.build_sharded`).
"""

from __future__ import annotations

from ..hashing import HashSource
from ..sketch.serialize import SketchCodec, register_sketch_codec
from .cut_queries import CutEdgesSketch
from .edge_connect import EdgeConnectivitySketch
from .forest import SpanningForestSketch
from .mincut import MinCutSketch
from .properties import BipartitenessSketch, MSTWeightSketch
from .sparsify import Sparsification
from .sparsify_simple import SimpleSparsification
from .subgraph_count import SubgraphSketch
from .weighted import WeightedSparsification

__all__ = []  # import-for-side-effect module


def _banks(sketch):
    """Codec bank order == the class's own arena order (one source of truth)."""
    return sketch._cell_banks()


def _grid_shape(sketch) -> dict:
    """(rows, buckets) of the forest sketches inside a hierarchy."""
    forest = sketch.instances[0].groups[0]
    return {"rounds": forest.rounds, "rows": forest.rows,
            "buckets": forest.buckets}


register_sketch_codec(SketchCodec(
    kind="spanning_forest",
    cls=SpanningForestSketch,
    params=lambda s: {"n": s.n, "rounds": s.rounds, "rows": s.rows,
                      "buckets": s.buckets},
    construct=lambda m: SpanningForestSketch(
        m["n"], HashSource(m["seed"]), rounds=m["rounds"], rows=m["rows"],
        buckets=m["buckets"],
    ),
    banks=_banks,
))

register_sketch_codec(SketchCodec(
    kind="edge_connectivity",
    cls=EdgeConnectivitySketch,
    params=lambda s: {"n": s.n, "k": s.k, "rounds": s.groups[0].rounds,
                      "rows": s.groups[0].rows,
                      "buckets": s.groups[0].buckets},
    construct=lambda m: EdgeConnectivitySketch(
        m["n"], m["k"], HashSource(m["seed"]), rounds=m["rounds"],
        rows=m["rows"], buckets=m["buckets"],
    ),
    banks=_banks,
))

register_sketch_codec(SketchCodec(
    kind="mincut",
    cls=MinCutSketch,
    params=lambda s: {"n": s.n, "epsilon": s.epsilon, "c_k": s.c_k,
                      "k": s.k, "levels": s.levels, **_grid_shape(s)},
    construct=lambda m: _check_derived(MinCutSketch(
        m["n"], epsilon=m["epsilon"], source=HashSource(m["seed"]),
        c_k=m["c_k"], levels=m["levels"], rounds=m["rounds"],
        rows=m["rows"], buckets=m["buckets"],
    ), m, "k"),
    banks=_banks,
))

register_sketch_codec(SketchCodec(
    kind="simple_sparsification",
    cls=SimpleSparsification,
    params=lambda s: {"n": s.n, "epsilon": s.epsilon, "c_k": s.c_k,
                      "k": s.k, "levels": s.levels,
                      "weight_scale": s.weight_scale, **_grid_shape(s)},
    construct=lambda m: _check_derived(SimpleSparsification(
        m["n"], epsilon=m["epsilon"], source=HashSource(m["seed"]),
        c_k=m["c_k"], levels=m["levels"], weight_scale=m["weight_scale"],
        rounds=m["rounds"], rows=m["rows"], buckets=m["buckets"],
    ), m, "k"),
    banks=_banks,
))

register_sketch_codec(SketchCodec(
    kind="sparsification",
    cls=Sparsification,
    params=lambda s: {"n": s.n, "epsilon": s.epsilon, "c_k": s.c_k,
                      "c_rough": s.c_rough, "c_level": s.c_level,
                      "k": s.k, "levels": s.levels,
                      **_grid_shape(s.rough)},
    construct=lambda m: _check_derived(Sparsification(
        m["n"], epsilon=m["epsilon"], source=HashSource(m["seed"]),
        c_k=m["c_k"], c_rough=m["c_rough"], c_level=m["c_level"],
        levels=m["levels"], rounds=m["rounds"], rows=m["rows"],
        buckets=m["buckets"],
    ), m, "k"),
    banks=_banks,
))

register_sketch_codec(SketchCodec(
    kind="weighted_sparsification",
    cls=WeightedSparsification,
    params=lambda s: {"n": s.n, "max_weight": s.max_weight,
                      "epsilon": s.epsilon, "c_k": s.c_k,
                      **_grid_shape(s.classes[0])},
    construct=lambda m: WeightedSparsification(
        m["n"], max_weight=m["max_weight"], epsilon=m["epsilon"],
        source=HashSource(m["seed"]), c_k=m["c_k"], rounds=m["rounds"],
        rows=m["rows"], buckets=m["buckets"],
    ),
    banks=_banks,
))

register_sketch_codec(SketchCodec(
    kind="subgraph_count",
    cls=SubgraphSketch,
    params=lambda s: {"n": s.n, "order": s.order, "samplers": s.samplers,
                      "rows": s.bank.rows, "buckets": s.bank.buckets},
    construct=lambda m: SubgraphSketch(
        m["n"], order=m["order"], samplers=m["samplers"],
        source=HashSource(m["seed"]), rows=m["rows"], buckets=m["buckets"],
    ),
    banks=_banks,
))

register_sketch_codec(SketchCodec(
    kind="cut_edges",
    cls=CutEdgesSketch,
    params=lambda s: {"n": s.n, "k": s.k},
    construct=lambda m: CutEdgesSketch(
        m["n"], m["k"], source=HashSource(m["seed"])
    ),
    banks=_banks,
))

register_sketch_codec(SketchCodec(
    kind="bipartiteness",
    cls=BipartitenessSketch,
    params=lambda s: {"n": s.n, "rounds": s.ctor_rounds},
    construct=lambda m: BipartitenessSketch(
        m["n"], HashSource(m["seed"]), rounds=m["rounds"]
    ),
    banks=_banks,
))

register_sketch_codec(SketchCodec(
    kind="mst_weight",
    cls=MSTWeightSketch,
    params=lambda s: {"n": s.n, "max_weight": s.max_weight,
                      "epsilon": s.epsilon, "rounds": s.ctor_rounds},
    construct=lambda m: MSTWeightSketch(
        m["n"], max_weight=m["max_weight"], epsilon=m["epsilon"],
        source=HashSource(m["seed"]), rounds=m["rounds"],
    ),
    banks=_banks,
))


def _check_derived(sketch, meta: dict, *fields: str):
    """Refuse blobs whose stored derived values don't reconstruct."""
    for field in fields:
        if getattr(sketch, field) != meta[field]:
            raise ValueError(
                f"stored {field}={meta[field]!r} does not match the value "
                f"{getattr(sketch, field)!r} derived from the blob's "
                f"parameters — corrupt or tampered blob"
            )
    return sketch
